"""``macross`` command-line interface.

Subcommands::

    macross list                      # available benchmarks
    macross targets                   # registered SIMD targets
    macross compile <bench>           # compilation report (+ --cpp for code)
    macross run <bench>               # execute scalar vs macro-SIMDized
    macross multicore <bench>         # modeled makespan vs parallel runtime
    macross plan <bench>              # partition/buffer/SIMD co-planning
    macross trace <bench>             # per-pass timing + hottest actors
    macross fuzz                      # differential fuzzing campaign
    macross serve <bench...>          # sessions through the worker pool
    macross loadgen --apps ...        # open-/closed-loop load generation
    macross fig10a|fig10b|fig11|fig12|fig13   # regenerate a paper figure
    macross all                       # every figure

``compile``, ``run``, ``profile``, ``trace``, ``dot``, and ``fuzz``
accept ``--machine NAME`` resolved through the target registry
(``macross targets`` lists names and aliases; unknown names print the
listing).  ``--sagu`` remains a shorthand for the SAGU-equipped Core i7
(or, combined with ``--machine``, adds a SAGU to the named target).
``compile`` also accepts ``--pipeline NAME`` to run one of the named
ablation pipelines (``scalar``, ``single-only``, ``no-tape``, ``full``,
…).

``run``, ``profile``, and ``trace`` accept ``--backend
{interp,compiled,vector}`` to select the execution engine: ``interp`` is
the reference tree-walking IR interpreter, ``compiled`` compiles each
actor body once to cached Python closures (identical outputs and
performance counters, several times faster wall-clock), and ``vector``
additionally batches firings into numpy whole-array kernels where
provably safe (requires the optional numpy extra).  With the compiled
and vector backends the kernel-cache statistics of the run are reported;
with ``vector``, ``run`` also prints the per-actor vectorized-vs-fallback
summary (tape fallbacks included) and the number of batched firings, and
``multicore`` gains a ``batched`` column counting firings that ran
through batch kernels across all cores.

``run --cores N`` executes both variants on the thread-based parallel
runtime (N worker threads over an LPT partition, cut tapes replaced by
bounded channels) and reports backpressure stalls — the outputs and
modeled cycles are identical to the sequential run by construction.
``--stall-timeout SECONDS`` bounds every cross-core channel wait; on a
stall timeout the CLI prints *which* channel stalled on which side (the
deadlock diagnostics of the serving layer) and exits 3.

``serve`` runs sessions for one or more benchmarks through the
process-sharded worker pool (``repro.serve``) and prints the per-worker
blame table plus a parity check against direct execution; ``loadgen``
drives an open-loop (``--mode open --rate R``) or closed-loop
(``--mode closed --concurrency C``) request stream over the app registry
and reports p50/p99 latency and throughput (``--json FILE`` saves the
machine-readable report).

``list`` prints every registry benchmark with its flat-graph actor and
tape counts, so loadgen mixes can be sized without opening the source.
``multicore <bench>`` prints a per-core-count table comparing the
Figure 13 makespan *model* against the *measured* parallel runtime, for
the scalar and macro-SIMDized variants (``--cores`` is repeatable,
default 1/2/4; ``--partitioner NAME`` selects any strategy registered
with the planning subsystem — ``lpt``, ``contiguous``, ``opt``, … —
unknown names exit 2 with a did-you-mean suggestion).

``plan <bench>`` runs the co-optimizing planner (``repro.plan``) for one
benchmark on one target: it compares every registered partitioner's
communication-aware makespan and planned channel-buffer memory, reports
the branch-and-bound optimizer's plan (min memory under a makespan
bound; ``--memory-budget`` flips to the dual), the whole-program
vectorization choice, and the memory-vs-makespan Pareto front
(``--points`` bounds). ``--target`` is an alias for ``--machine`` —
``macross plan dct --cores 4 --target gpu-like`` shows how an expensive
inter-core transfer price changes the plan versus the Core i7.

``compile``, ``run``, ``trace``, and ``fuzz`` accept ``--trace FILE`` to
capture an execution trace: ``*.jsonl`` writes JSON lines, anything else
a Chrome ``trace_event`` file loadable in ``chrome://tracing``/Perfetto
(see ``repro.obs``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="macross",
        description="MacroSS (ASPLOS 2010) reproduction driver")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available benchmarks")
    sub.add_parser("targets",
                   help="list registered SIMD targets (name, width, "
                        "features, aliases)")

    def add_trace_flag(p) -> None:
        p.add_argument("--trace", default=None, metavar="FILE",
                       help="write a trace capture to FILE (*.jsonl for "
                            "JSON lines, else Chrome trace_event JSON)")

    def add_machine_flag(p) -> None:
        p.add_argument("--machine", default=None, metavar="NAME",
                       help="target machine, resolved through the "
                            "registry (see `macross targets`; "
                            "default: core-i7-sse4)")

    def _add_pool_flags(p) -> None:
        p.add_argument("--transport", choices=("queue", "shm"),
                       default="shm", dest="transport",
                       help="result wire transport: 'shm' moves large "
                            "output arrays via shared memory, 'queue' "
                            "pickles everything (default: shm)")
        p.add_argument("--shm-threshold", type=int, default=None,
                       metavar="V",
                       help="min output values before a result uses shm "
                            "(default: 256 or $MACROSS_SHM_THRESHOLD; "
                            "<= 0 forces shm for every packable result)")
        p.add_argument("--store", default=None, metavar="DIR",
                       help="on-disk kernel store directory (default: "
                            "$MACROSS_KERNEL_STORE, unset = no store)")

    p_compile = sub.add_parser("compile", help="show compilation decisions")
    p_compile.add_argument("benchmark")
    p_compile.add_argument("--cpp", action="store_true",
                           help="emit the generated C++ with intrinsics")
    p_compile.add_argument("--sagu", action="store_true",
                           help="target the SAGU-equipped machine")
    p_compile.add_argument("--pipeline", default=None, metavar="NAME",
                           help="named ablation pipeline (scalar, "
                                "single-only, no-tape, full, ...)")
    add_machine_flag(p_compile)
    add_trace_flag(p_compile)

    p_run = sub.add_parser("run", help="execute scalar vs macro-SIMDized")
    p_run.add_argument("benchmark")
    p_run.add_argument("--iterations", type=int, default=4)
    p_run.add_argument("--sagu", action="store_true")
    p_run.add_argument("--backend", choices=("interp", "compiled", "vector"),
                       default="interp",
                       help="execution engine (default: interp)")
    p_run.add_argument("--cores", type=int, default=1, metavar="N",
                       help="execute on N worker threads via the parallel "
                            "runtime (default: 1 = sequential)")
    p_run.add_argument("--stall-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="abort a parallel run when a cross-core "
                            "channel stalls this long, reporting which "
                            "channel deadlocked (default: 30)")
    add_machine_flag(p_run)
    add_trace_flag(p_run)

    p_mc = sub.add_parser(
        "multicore",
        help="Figure 13 makespan model vs the measured parallel runtime")
    p_mc.add_argument("benchmark")
    p_mc.add_argument("--cores", type=int, action="append", default=None,
                      metavar="N",
                      help="worker-core count to measure (repeatable; "
                           "default: 1 2 4)")
    p_mc.add_argument("--iterations", type=int, default=2)
    p_mc.add_argument("--backend", choices=("interp", "compiled", "vector"),
                      default="interp",
                      help="execution engine (default: interp)")
    p_mc.add_argument("--partitioner", default="lpt", metavar="NAME",
                      help="partitioning strategy registered with the "
                           "planning subsystem (lpt, contiguous, opt, ...; "
                           "default: lpt)")
    p_mc.add_argument("--sagu", action="store_true")
    add_machine_flag(p_mc)
    add_trace_flag(p_mc)

    p_plan = sub.add_parser(
        "plan",
        help="co-optimize partition shape, channel buffers, and "
             "SIMDization for one benchmark")
    p_plan.add_argument("benchmark")
    p_plan.add_argument("--cores", type=int, default=4, metavar="N",
                        help="core count to plan for (default: 4)")
    p_plan.add_argument("--target", dest="machine", metavar="NAME",
                        help="alias for --machine")
    p_plan.add_argument("--points", type=int, default=8, metavar="K",
                        help="interior Pareto sweep points (default: 8)")
    p_plan.add_argument("--memory-budget", type=int, default=None,
                        metavar="ITEMS",
                        help="plan min-makespan under this channel-memory "
                             "budget instead of min-memory under the LPT "
                             "makespan bound")
    p_plan.add_argument("--iterations", type=int, default=2)
    p_plan.add_argument("--sagu", action="store_true")
    add_machine_flag(p_plan)

    p_prof = sub.add_parser("profile",
                            help="per-actor cycle breakdown, scalar vs SIMD")
    p_prof.add_argument("benchmark")
    p_prof.add_argument("--sagu", action="store_true")
    p_prof.add_argument("--backend", choices=("interp", "compiled", "vector"),
                        default="interp",
                        help="execution engine (default: interp)")
    add_machine_flag(p_prof)

    p_trace = sub.add_parser(
        "trace", help="per-pass compile trace + hottest actors at runtime")
    p_trace.add_argument("benchmark")
    p_trace.add_argument("--iterations", type=int, default=4)
    p_trace.add_argument("--sagu", action="store_true")
    p_trace.add_argument("--backend", choices=("interp", "compiled", "vector"),
                         default="compiled",
                         help="execution engine (default: compiled, which "
                              "also reports kernel-cache statistics)")
    p_trace.add_argument("--top", type=int, default=10, metavar="N",
                         help="number of hottest actors to list "
                              "(default: 10)")
    add_machine_flag(p_trace)
    add_trace_flag(p_trace)

    p_dot = sub.add_parser("dot", help="emit Graphviz DOT for a benchmark")
    p_dot.add_argument("benchmark")
    p_dot.add_argument("--compiled", action="store_true",
                       help="render the macro-SIMDized graph")
    p_dot.add_argument("--sagu", action="store_true")
    add_machine_flag(p_dot)

    p_fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing of every SIMDization path")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default: 0)")
    p_fuzz.add_argument("--budget", type=int, default=100,
                        help="number of generated programs (default: 100)")
    p_fuzz.add_argument("--corpus", default=None, metavar="DIR",
                        help="directory for minimized repros; also replayed "
                             "before fuzzing (default: no persistence)")
    p_fuzz.add_argument("--time-limit", type=float, default=None,
                        metavar="SECONDS",
                        help="stop the campaign after this many seconds")
    p_fuzz.add_argument("--replay-only", action="store_true",
                        help="only replay the corpus, no new programs")
    p_fuzz.add_argument("--machine", action="append", default=None,
                        metavar="NAME", dest="machine",
                        help="restrict the machine axis to this registered "
                             "target (repeatable; default: every "
                             "registered target)")
    p_fuzz.add_argument("--backend", action="append", default=None,
                        choices=("compiled", "vector"), dest="backend",
                        help="restrict the differential backend axis "
                             "(repeatable; default: compiled plus vector "
                             "when numpy is installed)")
    add_trace_flag(p_fuzz)

    p_serve = sub.add_parser(
        "serve", help="run benchmark sessions through the process-sharded "
                      "worker pool")
    p_serve.add_argument("benchmarks", nargs="+",
                         help="benchmark name(s); sessions cycle over them")
    p_serve.add_argument("--workers", type=int, default=2, metavar="N",
                         help="worker processes (default: 2)")
    p_serve.add_argument("--sessions", type=int, default=8, metavar="M",
                         help="total sessions to submit (default: 8)")
    p_serve.add_argument("--iterations", type=int, default=4)
    p_serve.add_argument("--backend", choices=("interp", "compiled", "vector"),
                         default="compiled")
    p_serve.add_argument("--policy", default="round-robin", metavar="NAME",
                         help="placement policy (round-robin, least-loaded;"
                              " default: round-robin)")
    p_serve.add_argument("--pipeline", default="full", metavar="NAME",
                         help="compilation pipeline per session "
                              "(default: full)")
    p_serve.add_argument("--max-queue-depth", type=int, default=8,
                         metavar="D",
                         help="per-worker admission high-water (default: 8)")
    p_serve.add_argument("--admit-timeout", type=float, default=30.0,
                         metavar="S",
                         help="give up re-submitting an overloaded session "
                              "after S seconds and shed it (default: 30)")
    _add_pool_flags(p_serve)
    add_machine_flag(p_serve)
    add_trace_flag(p_serve)

    p_lg = sub.add_parser(
        "loadgen", help="drive open-/closed-loop load at the worker pool")
    p_lg.add_argument("--apps", nargs="+", required=True, metavar="BENCH",
                      help="benchmark mix; requests cycle over it")
    p_lg.add_argument("--workers", type=int, default=2, metavar="N")
    p_lg.add_argument("--mode", choices=("closed", "open"),
                      default="closed",
                      help="closed = fixed concurrency, open = fixed "
                           "arrival rate (default: closed)")
    p_lg.add_argument("--concurrency", type=int, default=2, metavar="C",
                      help="closed-loop clients (default: 2)")
    p_lg.add_argument("--rate", type=float, default=20.0, metavar="RPS",
                      help="open-loop arrival rate (default: 20/s)")
    p_lg.add_argument("--requests", type=int, default=32, metavar="R",
                      help="total requests (default: 32)")
    p_lg.add_argument("--iterations", type=int, default=4)
    p_lg.add_argument("--backend", choices=("interp", "compiled", "vector"),
                      default="compiled")
    p_lg.add_argument("--policy", default="least-loaded", metavar="NAME",
                      help="placement policy (default: least-loaded)")
    p_lg.add_argument("--pipeline", default="full", metavar="NAME")
    p_lg.add_argument("--max-queue-depth", type=int, default=8,
                      metavar="D")
    p_lg.add_argument("--kill-worker-after", type=int, default=None,
                      metavar="N",
                      help="fault injection: SIGKILL one worker once N "
                           "sessions have completed (supervision restarts "
                           "the lane; stranded sessions re-dispatch once)")
    p_lg.add_argument("--json", default=None, metavar="FILE",
                      help="write the machine-readable report to FILE")
    _add_pool_flags(p_lg)
    add_machine_flag(p_lg)
    add_trace_flag(p_lg)

    for fig in ("fig10a", "fig10b", "fig11", "fig12", "fig13"):
        p_fig = sub.add_parser(fig, help=f"regenerate {fig}")
        p_fig.add_argument("--benchmarks", nargs="*", default=None)
    sub.add_parser("all", help="regenerate every figure")

    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except BrokenPipeError:
        # Output piped into head/less that closed early: not an error.
        import os
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


def _machine(args: argparse.Namespace):
    """Resolve the target machine of a subcommand through the registry.

    ``--machine NAME`` (name or alias, case-insensitive) picks a
    registered target; ``--sagu`` alone is the historical shorthand for
    the SAGU-equipped Core i7, and combined with ``--machine`` it adds a
    SAGU to the named target.  Unknown names raise
    :class:`repro.simd.UnknownTargetError` (rendered with the registry
    listing by :func:`_dispatch`).
    """
    from .simd import get_target
    name = getattr(args, "machine", None)
    sagu = getattr(args, "sagu", False)
    if name:
        machine = get_target(name)
        return machine.with_sagu() if sagu else machine
    from .simd import CORE_I7, CORE_I7_SAGU
    return CORE_I7_SAGU if sagu else CORE_I7


def _targets_table() -> str:
    """The registry listing shown by ``macross targets`` and on unknown
    ``--machine`` names."""
    from .simd import get_target, list_targets, target_aliases
    header = ("target", "SW", "SAGU", "even/odd", "vector math", "aliases")
    rows = [header]
    for name in list_targets():
        m = get_target(name)
        rows.append((
            m.name,
            str(m.simd_width),
            "yes" if m.has_sagu else "no",
            "yes" if m.has_extract_even_odd else "no",
            f"{len(m.vector_math_funcs)} funcs",
            ", ".join(target_aliases(name)) or "-",
        ))
    widths = [max(len(row[col]) for row in rows)
              for col in range(len(header))]
    lines = ["  ".join(cell.ljust(width)
                       for cell, width in zip(row, widths)).rstrip()
             for row in rows]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _tracer_for(args: argparse.Namespace):
    """A live tracer when ``--trace FILE`` was given, else ``None``."""
    if getattr(args, "trace", None):
        from .obs import Tracer
        return Tracer()
    return None


def _write_trace(tracer, args: argparse.Namespace) -> None:
    if tracer is None or not getattr(args, "trace", None):
        return
    from .obs import write_trace
    path = write_trace(tracer, args.trace,
                       metadata={"command": args.command,
                                 "benchmark": getattr(args, "benchmark",
                                                      None)})
    print(f"trace: {len(tracer.events)} event(s) written to {path}")


def _cache_stats_line(result) -> Optional[str]:
    """Kernel-cache statistics line for a compiled-backend result."""
    if result.kernel_cache is None:
        return None
    from .obs import kernel_cache_summary
    return kernel_cache_summary(result.kernel_cache)


def _dispatch(args: argparse.Namespace) -> int:
    from .runtime.errors import StreamRuntimeError
    from .simd import UnknownTargetError
    try:
        return _dispatch_inner(args)
    except UnknownTargetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(file=sys.stderr)
        print(_targets_table(), file=sys.stderr)
        return 2
    except StreamRuntimeError as exc:
        # Serving-layer misuse (unknown policy, pool failures) and other
        # runtime errors: report, don't traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch_inner(args: argparse.Namespace) -> int:
    from .apps import BENCHMARKS

    if args.command == "list":
        from .graph.flatten import flatten
        rows = []
        for name in sorted(BENCHMARKS):
            try:
                graph = flatten(BENCHMARKS[name]())
                rows.append((name, str(len(graph.actors)),
                             str(len(graph.tapes))))
            except Exception as exc:  # noqa: BLE001 - still list the name
                rows.append((name, "?", f"({type(exc).__name__})"))
        width = max(len(row[0]) for row in rows)
        for name, actors, tapes in rows:
            print(f"{name.ljust(width)}  actors={actors:>3s}  "
                  f"tapes={tapes:>3s}")
        return 0

    if args.command == "targets":
        print(_targets_table())
        return 0

    if args.command == "compile":
        from .experiments.harness import scalar_graph
        from .simd import compile_graph
        machine = _machine(args)
        tracer = _tracer_for(args)
        compiled = compile_graph(scalar_graph(args.benchmark), machine,
                                 tracer=tracer, pipeline=args.pipeline)
        print(compiled.report.summary())
        print()
        print(compiled.graph.summary())
        if args.cpp:
            from .codegen import emit_cpp
            print()
            print(emit_cpp(compiled.graph, machine))
        _write_trace(tracer, args)
        return 0

    if args.command == "run":
        from .experiments.harness import scalar_graph
        from .multicore.channels import ChannelStallTimeout
        from .runtime import execute
        from .simd import compile_graph
        machine = _machine(args)
        tracer = _tracer_for(args)
        cores = getattr(args, "cores", 1)
        stall_timeout = getattr(args, "stall_timeout", 30.0)
        graph = scalar_graph(args.benchmark)
        try:
            scalar = execute(graph, machine=machine,
                             iterations=args.iterations,
                             backend=args.backend, tracer=tracer,
                             cores=cores, stall_timeout=stall_timeout)
            compiled = compile_graph(graph, machine, tracer=tracer)
            simd = execute(compiled.graph, machine=machine,
                           iterations=args.iterations, backend=args.backend,
                           tracer=tracer, cores=cores,
                           stall_timeout=stall_timeout)
        except ChannelStallTimeout as exc:
            print(f"error: parallel run deadlocked: {exc}", file=sys.stderr)
            print(f"  channel:   {exc.channel} ({exc.side} side)",
                  file=sys.stderr)
            print(f"  occupancy: {exc.occupancy}/{exc.capacity}, needed "
                  f"{exc.needed}", file=sys.stderr)
            print(f"  timeout:   {exc.timeout_s:.1f}s "
                  f"(adjust with --stall-timeout)", file=sys.stderr)
            _write_trace(tracer, args)
            return 3
        scalar_cpo = scalar.cycles_per_output(machine)
        simd_cpo = simd.cycles_per_output(machine)
        matches = sum(
            1 for a, b in zip(scalar.outputs, simd.outputs) if a == b)
        compared = min(len(scalar.outputs), len(simd.outputs))
        engine = f"{scalar.backend} backend"
        if cores > 1:
            engine += f", {cores} cores"
        print(f"{args.benchmark} on {machine.name} [{engine}]")
        print(f"  scalar:  {scalar_cpo:10.1f} cycles/output")
        print(f"  MacroSS: {simd_cpo:10.1f} cycles/output "
              f"({scalar_cpo / simd_cpo:.2f}x)")
        print(f"  outputs identical: {matches}/{compared}")
        for label, result in (("scalar", scalar), ("MacroSS", simd)):
            stats = getattr(result, "channel_stats", None)
            if stats is not None:
                stalls = result.total_stalls()
                print(f"  {label} parallel run: {len(stats)} channel(s), "
                      f"{stalls} stall(s), "
                      f"{result.wall_time_s * 1e3:.1f} ms wall")
        cache_line = _cache_stats_line(simd)
        if cache_line is not None:
            print(f"  {cache_line}")
        if simd.vectorized is not None:
            vec = sum(1 for v in simd.vectorized.values()
                      if v.startswith("vector"))
            total = len(simd.vectorized)
            print(f"  vectorized actors: {vec}/{total}")
            batched = getattr(simd, "batched_firings", 0)
            print(f"  batched firings: {batched}")
            for actor_id, status in sorted(simd.vectorized.items()):
                if not status.startswith("vector"):
                    name = compiled.graph.actors[actor_id].name
                    print(f"    fallback {name}: "
                          f"{status.split(': ', 1)[-1]}")
        _write_trace(tracer, args)
        return 0

    if args.command == "multicore":
        return _run_multicore_command(args)

    if args.command == "plan":
        return _run_plan_command(args)

    if args.command == "trace":
        return _run_trace_command(args)

    if args.command == "dot":
        from .experiments.harness import scalar_graph
        from .graph import to_dot
        from .schedule import repetition_vector
        from .simd import compile_graph
        machine = _machine(args)
        graph = scalar_graph(args.benchmark)
        if args.compiled:
            graph = compile_graph(graph, machine).graph
        print(to_dot(graph, repetition_vector(graph)))
        return 0

    if args.command == "profile":
        from .experiments.harness import scalar_graph
        from .perf import event_class_table, profile_table
        from .runtime import execute
        from .simd import compile_graph
        machine = _machine(args)
        graph = scalar_graph(args.benchmark)
        for label, g in (("scalar", graph),
                         ("MacroSS", compile_graph(graph, machine).graph)):
            result = execute(g, machine=machine, iterations=2,
                             backend=args.backend)
            print(f"--- {label} ---")
            print(profile_table(g, result.steady_counters, machine))
            print()
            print(event_class_table(result.steady_counters.total(), machine))
            cache_line = _cache_stats_line(result)
            if cache_line is not None:
                print(cache_line)
            print()
        return 0

    if args.command == "fuzz":
        return _run_fuzz_command(args)

    if args.command == "serve":
        return _run_serve_command(args)

    if args.command == "loadgen":
        return _run_loadgen_command(args)

    if args.command in ("fig10a", "fig10b", "fig11", "fig12", "fig13"):
        result = _run_figure(args.command, args.benchmarks)
        print(result.render())
        return 0

    if args.command == "all":
        for fig in ("fig10a", "fig10b", "fig11", "fig12", "fig13"):
            print(f"== {fig} ==")
            print(_run_figure(fig, None).render())
            print()
        return 0

    return 1


def _run_multicore_command(args: argparse.Namespace) -> int:
    """``macross multicore <bench>``: per core count, the Figure 13
    *modeled* makespan per output next to a *measured* run on the
    thread-based parallel runtime — for the scalar graph and for the
    macro-SIMDized variant (partition-first, then per-core SIMDization,
    the paper's §5 scheduler)."""
    from .experiments.harness import scalar_graph
    from .multicore import (
        Partition,
        get_partitioner,
        parallel_execute,
        profile_actor_costs,
        simulate_multicore,
    )
    from .runtime import execute
    from .simd import compile_graph

    machine = _machine(args)
    tracer = _tracer_for(args)
    graph = scalar_graph(args.benchmark)
    core_counts = args.cores or [1, 2, 4]
    partitioner = get_partitioner(args.partitioner, machine)
    iterations = args.iterations

    baseline = execute(graph, machine=machine, iterations=iterations,
                       backend=args.backend)
    base_cpo = baseline.cycles_per_output(machine)
    costs = profile_actor_costs(graph, machine, iterations=iterations)

    print(f"{args.benchmark} on {machine.name} [{args.backend} backend, "
          f"{args.partitioner} partitioner, {iterations} steady "
          f"iteration(s)]")
    print(f"  sequential scalar baseline: {base_cpo:.1f} cycles/output")
    header = ("cores", "variant", "model cyc/out", "speedup", "channels",
              "stalls", "batched", "wall ms", "parity")
    rows = [header]
    exit_code = 0
    for cores in core_counts:
        part = partitioner(graph, costs, cores)
        for variant, macro in (("scalar", False), ("+MacroSS", True)):
            model = simulate_multicore(graph, machine, cores,
                                       macro_simd=macro,
                                       partitioner=partitioner,
                                       iterations=iterations)
            if macro:
                compiled = compile_graph(graph, machine,
                                         partition=part.assignment,
                                         tracer=tracer)
                exec_graph = compiled.graph
                run_partition = Partition(compiled.core_assignment, cores)
            else:
                exec_graph = graph
                run_partition = part
            seq = execute(exec_graph, machine=machine,
                          iterations=iterations, backend=args.backend)
            par = parallel_execute(exec_graph, machine=machine,
                                   iterations=iterations,
                                   backend=args.backend, cores=cores,
                                   partition=run_partition, tracer=tracer)
            parity = (par.outputs == seq.outputs
                      and par.init_outputs == seq.init_outputs)
            if not parity:
                exit_code = 1
            rows.append((
                str(cores), variant,
                f"{model.makespan_per_output:.1f}",
                f"{base_cpo / model.makespan_per_output:.2f}x",
                str(len(par.channel_stats)),
                str(par.total_stalls()),
                (str(par.batched_firings)
                 if args.backend == "vector" else "-"),
                f"{par.wall_time_s * 1e3:.1f}",
                "ok" if parity else "MISMATCH",
            ))
    widths = [max(len(row[col]) for row in rows)
              for col in range(len(header))]
    lines = ["  ".join(cell.rjust(width) if col not in (1,)
                       else cell.ljust(width)
                       for col, (cell, width)
                       in enumerate(zip(row, widths))).rstrip()
             for row in rows]
    lines.insert(1, "  ".join("-" * width for width in widths))
    print()
    print("\n".join(lines))
    _write_trace(tracer, args)
    return exit_code


def _run_plan_command(args: argparse.Namespace) -> int:
    """``macross plan <bench>``: one planning context per benchmark/target,
    every registered partitioner priced through it, the branch-and-bound
    plan, the whole-program vectorization choice, and the Pareto front."""
    from .experiments.harness import scalar_graph
    from .plan import (
        build_plan_context,
        evaluate_partition,
        get_partitioner,
        list_partitioners,
        optimize_partition,
        pareto_front,
        plan_vectorization,
    )

    machine = _machine(args)
    graph = scalar_graph(args.benchmark)
    cores = args.cores
    ctx = build_plan_context(graph, machine, iterations=args.iterations)

    print(f"{args.benchmark} on {machine.name} "
          f"[{cores} cores, COMM {ctx.comm_price:g} cyc/item, "
          f"{len(graph.actors)} actors]")
    print()

    header = ("strategy", "makespan", "memory", "cuts", "cores used")
    rows = [header]
    for name in list_partitioners():
        part = get_partitioner(name, machine)(graph, ctx.costs, cores)
        ev = evaluate_partition(ctx, part)
        rows.append((name, f"{ev.makespan:.1f}", str(ev.memory_items),
                     str(len(ev.cut_tapes)),
                     str(len(set(part.assignment.values())))))
    widths = [max(len(row[col]) for row in rows)
              for col in range(len(header))]
    lines = ["  ".join(cell.ljust(width) if col == 0 else cell.rjust(width)
                       for col, (cell, width)
                       in enumerate(zip(row, widths))).rstrip()
             for row in rows]
    lines.insert(1, "  ".join("-" * width for width in widths))
    print("\n".join(lines))

    if args.memory_budget is not None:
        # The dual: fastest plan that fits the channel-memory budget.
        result = optimize_partition(ctx, cores, objective="makespan",
                                    memory_budget=args.memory_budget)
    else:
        result = optimize_partition(ctx, cores)
    print()
    bound = (f"memory budget {result.memory_budget}"
             if args.memory_budget is not None
             else f"makespan bound {result.makespan_bound:.1f} (LPT)")
    print(f"optimizer: {result.objective} objective under {bound}; "
          f"{result.nodes} nodes"
          + (" (budget exhausted)" if result.exhausted else ""))
    print(f"  plan: makespan {result.evaluation.makespan:.1f}, "
          f"memory {result.evaluation.memory_items} items, "
          f"{len(result.evaluation.cut_tapes)} cut tape(s)")

    vec = plan_vectorization(graph, machine, iterations=args.iterations)
    counts = ", ".join(f"{technique} x{count}" for technique, count
                       in sorted(vec.technique_counts().items()))
    print(f"  vectorization: {vec.mode} "
          f"({vec.speedup:.2f}x vs scalar; {counts})")

    front = pareto_front(ctx, cores, points=args.points)
    print()
    print("Pareto front (memory vs makespan):")
    header = ("makespan", "memory", "cuts")
    rows = [header] + [(f"{pt.makespan:.1f}", str(pt.memory_items),
                        str(len(pt.evaluation.cut_tapes)))
                       for pt in front]
    widths = [max(len(row[col]) for row in rows)
              for col in range(len(header))]
    lines = ["  ".join(cell.rjust(width)
                       for cell, width in zip(row, widths)).rstrip()
             for row in rows]
    lines.insert(1, "  ".join("-" * width for width in widths))
    print("\n".join(lines))
    return 0


def _run_trace_command(args: argparse.Namespace) -> int:
    """``macross trace <bench>``: compile + run under a live tracer, then
    print the per-pass table, the hottest actors, and cache statistics."""
    from .experiments.harness import scalar_graph
    from .obs import Tracer, hottest_actors_table, kernel_cache_summary, \
        pass_table
    from .runtime import execute
    from .simd import compile_graph

    machine = _machine(args)
    tracer = Tracer()
    graph = scalar_graph(args.benchmark)
    compiled = compile_graph(graph, machine, tracer=tracer)
    result = execute(compiled.graph, machine=machine,
                     iterations=args.iterations, backend=args.backend,
                     tracer=tracer)

    print(f"{args.benchmark} on {machine.name} [{result.backend} backend, "
          f"{args.iterations} steady iteration(s)]")
    print()
    print("Algorithm-1 passes:")
    print(pass_table(tracer))
    print()
    print(f"hottest actors (top {args.top}):")
    print(hottest_actors_table(compiled.graph, result, machine,
                               top=args.top))
    if result.kernel_cache is not None:
        print()
        print(kernel_cache_summary(result.kernel_cache))
    _write_trace(tracer, args)
    return 0


def _run_fuzz_command(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .fuzz import replay_corpus, run_fuzz

    machines = None
    if args.machine:
        from .simd import get_target
        machines = {name: get_target(name) for name in args.machine}

    exit_code = 0
    corpus_dir = Path(args.corpus) if args.corpus else None
    tracer = _tracer_for(args)

    if corpus_dir is not None:
        replay = replay_corpus(corpus_dir)
        print(f"corpus replay: {replay.checked} repro(s) from {corpus_dir}")
        for path, div in replay.failures:
            exit_code = 1
            print(f"  REGRESSION {path.name}: {div}")
        if replay.ok and replay.checked:
            print("  all clean")
    if args.replay_only:
        return exit_code

    backends = tuple(args.backend) if args.backend else None
    report = run_fuzz(args.seed, args.budget, corpus_dir=corpus_dir,
                      time_limit=args.time_limit, tracer=tracer,
                      machines=machines, backends=backends)
    print(report.summary())
    for finding in report.findings:
        exit_code = 1
        print(f"  FINDING seed={finding.seed} index={finding.index}: "
              f"{finding.divergence}")
        if finding.divergence.pass_trail:
            print("    pass trail: "
                  + " -> ".join(finding.divergence.pass_trail))
        print(f"    minimized to {finding.minimized.filter_count()} "
              f"filter(s)"
              + (f", saved {finding.repro_path}" if finding.repro_path
                 else ""))
    _write_trace(tracer, args)
    return exit_code


def _build_pool(args: argparse.Namespace, tracer):
    from .serve import ServePool
    return ServePool(args.workers, policy=args.policy,
                     backend=args.backend,
                     max_queue_depth=args.max_queue_depth,
                     wire_transport=getattr(args, "transport", "shm"),
                     shm_threshold=getattr(args, "shm_threshold", None),
                     store_dir=getattr(args, "store", None),
                     tracer=tracer)


def _merged_store_stats(stats) -> dict:
    """Sum the workers' on-disk store counters (empty = no store)."""
    merged: dict = {}
    for entry in stats:
        for key, value in (entry.get("env", {}).get("store") or {}).items():
            merged[key] = merged.get(key, 0) + value
    return merged


def _print_supervision(stats) -> None:
    restarts = sum(e.get("restarts", 0) for e in stats)
    requeued = sum(e.get("requeued", 0) for e in stats)
    died = sum(e.get("worker_died", 0) for e in stats)
    if restarts or requeued or died:
        print(f"  supervision: {restarts} lane restart(s), {requeued} "
              f"session(s) re-dispatched, {died} failed as worker-died")
    store = _merged_store_stats(stats)
    if store:
        print("  kernel store: {hits} hit(s), {misses} miss(es), "
              "{stores} publish(es), {quarantined} quarantined, "
              "{errors} fs error(s)".format(
                  hits=store.get("hits", 0),
                  misses=store.get("misses", 0),
                  stores=store.get("stores", 0),
                  quarantined=store.get("quarantined", 0),
                  errors=store.get("errors", 0)))


def _serve_specs(args: argparse.Namespace, names, machine, count: int):
    from .serve import SessionSpec
    return [SessionSpec(benchmark=names[i % len(names)],
                        pipeline=args.pipeline, machine=machine.name,
                        backend=args.backend, iterations=args.iterations,
                        tag=f"s{i}")
            for i in range(count)]


def _serve_references(names, machine, args: argparse.Namespace):
    """Direct in-process executions to check served outputs against."""
    from .apps import get_benchmark
    from .graph.flatten import flatten
    from .runtime import execute
    from .schedule import build_schedule
    from .simd import compile_graph
    refs = {}
    for name in names:
        graph = flatten(get_benchmark(name))
        if args.pipeline is not None:
            graph = compile_graph(graph, machine,
                                  pipeline=args.pipeline).graph
        refs[name] = execute(graph, build_schedule(graph), machine=machine,
                             iterations=args.iterations,
                             backend=args.backend)
    return refs


def _run_serve_command(args: argparse.Namespace) -> int:
    """``macross serve``: run sessions through a live worker pool, check
    every served output against a direct in-process execution, and print
    the per-worker blame table."""
    import time as _time

    from .obs import serve_table
    from .serve import ServeOverload

    machine = _machine(args)
    tracer = _tracer_for(args)
    names = list(dict.fromkeys(args.benchmarks))  # de-dup, keep order
    try:
        refs = _serve_references(names, machine, args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    specs = _serve_specs(args, args.benchmarks, machine, args.sessions)

    pool = _build_pool(args, tracer)
    admitted = []          # (spec, ticket) pairs, in submit order
    shed = []              # specs rejected until --admit-timeout ran out
    overloads = 0
    try:
        for spec in specs:
            deadline = _time.monotonic() + args.admit_timeout
            while True:
                outcome = pool.submit(spec)
                if isinstance(outcome, ServeOverload):
                    overloads += 1
                    if _time.monotonic() >= deadline:
                        shed.append(spec)
                        break
                    _time.sleep(0.002)
                    continue
                admitted.append((spec, outcome))
                break
        results = [t.result(timeout=300.0) for _spec, t in admitted]
    finally:
        stats = pool.shutdown()

    errors = [r for r in results if not r.ok]
    mismatches = []
    for (spec, _ticket), result in zip(admitted, results):
        if not result.ok:
            continue
        ref = refs[spec.benchmark] if spec.benchmark in refs \
            else refs[next(iter(refs))]
        if (result.outputs != ref.outputs
                or result.init_outputs != ref.init_outputs):
            mismatches.append(spec.tag)

    print(f"serve: {len(results)} session(s) over {args.workers} worker(s) "
          f"[{args.backend} backend, {args.policy} policy, "
          f"pipeline={args.pipeline}, transport={args.transport}]")
    if overloads or shed:
        print(f"  admission: {overloads} overload rejection(s), "
              f"{len(shed)} session(s) shed after "
              f"{args.admit_timeout:g}s admit timeout")
    latencies = sorted(t.latency_s for _spec, t in admitted)
    if latencies:
        from .serve import percentile
        print(f"  latency p50 {percentile(latencies, 50) * 1e3:.1f} ms  "
              f"p99 {percentile(latencies, 99) * 1e3:.1f} ms")
    print()
    print(serve_table(stats))
    _print_supervision(stats)
    for result in errors:
        print(f"  ERROR session {result.seq} ({result.tag}): "
              f"{result.error}")
    if mismatches:
        print(f"  PARITY MISMATCH in session(s): {', '.join(mismatches)}")
    else:
        print(f"  parity: all {len(results) - len(errors)} served "
              f"session(s) match direct execution")
    _write_trace(tracer, args)
    # Shed sessions are admission control doing its job, not a failure:
    # only real session errors or parity mismatches are non-zero.
    return 1 if errors or mismatches else 0


def _run_loadgen_command(args: argparse.Namespace) -> int:
    """``macross loadgen``: drive open-/closed-loop load at a pool and
    print the latency/throughput report."""
    from .obs import serve_table
    from .serve import run_closed_loop, run_open_loop

    machine = _machine(args)
    tracer = _tracer_for(args)
    names = list(dict.fromkeys(args.apps))
    from .apps import BENCHMARKS
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        print(f"error: unknown benchmark(s) {unknown}; available: "
              f"{sorted(BENCHMARKS)}", file=sys.stderr)
        return 2
    specs = _serve_specs(args, args.apps, machine, len(args.apps))

    pool = _build_pool(args, tracer)
    fault = None
    try:
        if args.kill_worker_after is not None:
            from .serve import kill_worker_after
            fault = kill_worker_after(pool, args.kill_worker_after)
        if args.mode == "closed":
            report = run_closed_loop(pool, specs,
                                     concurrency=args.concurrency,
                                     requests=args.requests)
        else:
            report = run_open_loop(pool, specs, rate=args.rate,
                                   requests=args.requests)
    finally:
        stats = pool.shutdown()
    if fault is not None:
        fault.join(timeout=1.0)

    print(report.summary())
    print()
    print(serve_table(stats))
    _print_supervision(stats)
    if args.json:
        import json as _json
        payload = report.to_dict()
        payload["apps"] = names
        payload["policy"] = args.policy
        payload["machine"] = machine.name
        payload["transport"] = args.transport
        payload["restarts"] = sum(e.get("restarts", 0) for e in stats)
        payload["requeued"] = sum(e.get("requeued", 0) for e in stats)
        payload["worker_died"] = sum(e.get("worker_died", 0)
                                     for e in stats)
        store = _merged_store_stats(stats)
        if store:
            payload["store"] = store
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"report written to {args.json}")
    _write_trace(tracer, args)
    return 0 if report.errors == 0 else 1


def _run_figure(name: str, benchmarks):
    from . import experiments as ex
    runner = {"fig10a": ex.run_fig10a, "fig10b": ex.run_fig10b,
              "fig11": ex.run_fig11, "fig12": ex.run_fig12,
              "fig13": ex.run_fig13}[name]
    return runner(benchmarks=benchmarks)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
