"""Multicore partitioners — re-exported from the planning subsystem.

The greedy partitioners (§5's "simple SIMD-aware scheduler") moved to
:mod:`repro.plan.partitioners`, where they live alongside the
partitioner registry and the branch-and-bound optimizer so partition
shape, buffer sizing, and SIMD choice are priced through one
:class:`~repro.plan.context.PlanContext`.  This module keeps the
historical import path (``repro.multicore.partition``) working.
"""

from __future__ import annotations

from ..plan.partitioners import (
    Partition,
    UnknownPartitionerError,
    get_partitioner,
    list_partitioners,
    partition_contiguous,
    partition_lpt,
    register_partitioner,
)

__all__ = [
    "Partition", "UnknownPartitionerError", "get_partitioner",
    "list_partitioners", "partition_contiguous", "partition_lpt",
    "register_partitioner",
]
