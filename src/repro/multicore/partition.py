"""Naive multicore partitioner (§5's "simple SIMD-aware scheduler").

Longest-processing-time greedy: actors sorted by profiled work, each
assigned to the currently least-loaded core.  Deliberately communication-
oblivious — the paper's point in Figure 13 is that even a *naive*
partition-first scheduler beats wider scalar multicore once each core's
slice is macro-SIMDized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..graph.stream_graph import StreamGraph


@dataclass(frozen=True)
class Partition:
    assignment: Dict[int, int]
    cores: int

    def core_of(self, actor_id: int) -> int:
        return self.assignment[actor_id]

    def loads(self, costs: Dict[int, float]) -> List[float]:
        loads = [0.0] * self.cores
        for actor_id, core in self.assignment.items():
            loads[core] += costs.get(actor_id, 0.0)
        return loads


def partition_lpt(graph: StreamGraph, costs: Dict[int, float],
                  cores: int) -> Partition:
    """Greedy LPT multiprocessor scheduling over profiled actor costs."""
    if cores < 1:
        raise ValueError("need at least one core")
    assignment: Dict[int, int] = {}
    loads = [0.0] * cores
    order = sorted(graph.actors,
                   key=lambda aid: (-costs.get(aid, 0.0), aid))
    for actor_id in order:
        core = min(range(cores), key=lambda c: (loads[c], c))
        assignment[actor_id] = core
        loads[core] += costs.get(actor_id, 0.0)
    return Partition(assignment, cores)


def partition_contiguous(graph: StreamGraph, costs: Dict[int, float],
                         cores: int) -> Partition:
    """Alternative partitioner: contiguous topological slices balanced by
    cost (keeps pipelines together, fewer cut tapes).  Used by the ablation
    bench to show the comm/balance trade-off.

    Edge cases share :func:`partition_lpt`'s contract: every actor is
    assigned, cores stay in ``range(cores)``, and ``cores >
    len(actors)`` (or an all-zero cost map) simply leaves trailing cores
    empty — :meth:`Partition.loads` still reports one (zero) load per
    core."""
    if cores < 1:
        raise ValueError("need at least one core")
    order = graph.ordered_actors()
    total = sum(costs.get(aid, 0.0) for aid in order)
    target = total / cores
    assignment: Dict[int, int] = {}
    core = 0
    acc = 0.0
    for actor_id in order:
        assignment[actor_id] = core
        acc += costs.get(actor_id, 0.0)
        if acc >= target * (core + 1) and core < cores - 1:
            core += 1
    return Partition(assignment, cores)
