"""Multicore partitioning and makespan simulation (Figure 13)."""

from .partition import Partition, partition_contiguous, partition_lpt
from .simulate import (
    MulticoreResult,
    multicore_speedups,
    profile_actor_costs,
    simulate_multicore,
)

__all__ = [
    "Partition", "partition_contiguous", "partition_lpt",
    "MulticoreResult", "multicore_speedups", "profile_actor_costs",
    "simulate_multicore",
]
