"""Multicore partitioning, the Figure 13 makespan model, and the
thread-based parallel runtime that validates it."""

from .channels import (
    Channel,
    ChannelAborted,
    ChannelError,
    ChannelStallTimeout,
    ChannelStats,
    plan_capacities,
    sequential_max_occupancy,
    steady_crossings,
)
from .parallel import (
    ParallelExecutionResult,
    calibrated_pace,
    parallel_execute,
)
from .partition import (
    Partition,
    UnknownPartitionerError,
    get_partitioner,
    list_partitioners,
    partition_contiguous,
    partition_lpt,
    register_partitioner,
)
from .simulate import (
    MulticoreResult,
    multicore_speedups,
    profile_actor_costs,
    simulate_multicore,
)

__all__ = [
    "Partition", "UnknownPartitionerError", "get_partitioner",
    "list_partitioners", "partition_contiguous", "partition_lpt",
    "register_partitioner",
    "MulticoreResult", "multicore_speedups", "profile_actor_costs",
    "simulate_multicore",
    "Channel", "ChannelAborted", "ChannelError", "ChannelStallTimeout",
    "ChannelStats", "plan_capacities", "sequential_max_occupancy",
    "steady_crossings",
    "ParallelExecutionResult", "calibrated_pace", "parallel_execute",
]
