"""Thread-based parallel executor: a :class:`Partition` actually *runs*.

:mod:`repro.multicore.simulate` models Figure 13's makespan analytically;
this module executes it.  Each core of a partition gets a worker thread
driving the ordinary execution backends (interpreter or compiled) over
exactly its slice of the global schedule; tapes cut by the partition are
replaced with bounded, double-buffered
:class:`~repro.multicore.channels.Channel` objects, so a core that runs
ahead of its consumers stalls on real backpressure and a core that
outruns its producers blocks on the read — the paper's §5 communication
semantics, executed rather than priced.

Correctness story (enforced by the parity suite and the fuzz oracle):

* **Determinism** — the graph plus its per-core schedule slices form a
  Kahn process network: deterministic actors over blocking FIFOs.  The
  interleaving chosen by the OS scheduler cannot change any data value,
  so outputs are bit-identical to the sequential :func:`execute`, run
  after run.
* **Counter reconciliation** — every actor lives on exactly one core and
  fires exactly as often as sequentially, charging the same events to its
  core-local :class:`~repro.perf.counters.PerActorCounters`; merging the
  per-core bags therefore reproduces the sequential counter bags
  event-for-event (init and steady phases separately).
* **Deadlock freedom** — channel capacities come from
  :func:`~repro.multicore.channels.plan_capacities`, which grants at
  least the sequential maximum occupancy plus one steady iteration of
  double-buffer headroom.

``pace`` optionally attaches a per-firing wall-clock cost to each actor
(seconds per firing, usually derived from modeled cycles via
:func:`calibrated_pace`).  Sleeping releases the GIL, so a paced run
exhibits the *modeled* parallelism on real threads — this is how the
multicore benchmark validates Figure 13's makespan model against a
measured wall-clock run.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from ..graph.stream_graph import StreamGraph
from ..obs.tracer import Tracer, ensure_tracer
from ..perf.counters import PerActorCounters
from ..runtime.errors import StreamRuntimeError
from ..runtime.executor import ExecutionResult, _GraphRun, \
    _annotate_tape_fallbacks, execute
from ..runtime.backends import resolve_backend
from ..runtime.tape import Tape
from ..schedule.steady_state import Schedule, build_schedule
from ..simd.machine import CORE_I7, MachineDescription
from ..plan.context import profile_actor_costs
from ..plan.partitioners import get_partitioner
from .channels import Channel, ChannelAborted, RunAbort, plan_capacities
from .partition import Partition, partition_lpt

__all__ = ["ParallelExecutionResult", "parallel_execute", "calibrated_pace"]


@dataclass
class ParallelExecutionResult(ExecutionResult):
    """A sequential-identical :class:`ExecutionResult` plus the parallel
    run's anatomy: the partition, per-core counter bags (which merge back
    into the aggregate ``init_counters``/``steady_counters`` exactly),
    per-channel statistics, and the measured wall time."""

    cores: int = 1
    partition: Optional[Partition] = None
    #: per-core counter bags; disjoint by construction (an actor runs on
    #: exactly one core) and merging them yields the aggregate fields.
    per_core_init: Dict[int, PerActorCounters] = field(default_factory=dict)
    per_core_steady: Dict[int, PerActorCounters] = field(default_factory=dict)
    #: ``tape id -> ChannelStats.snapshot()`` for every cut tape.
    channel_stats: Dict[int, Dict[str, int]] = field(default_factory=dict)
    wall_time_s: float = 0.0

    def core_cycles(self, machine: MachineDescription) -> List[float]:
        """Modeled steady cycles per core (the measured analogue of the
        makespan model's ``core_loads``)."""
        return [self.per_core_steady[core].cycles(machine)
                if core in self.per_core_steady else 0.0
                for core in range(self.cores)]

    def total_stalls(self) -> int:
        return sum(stats["push_stalls"] + stats["pop_stalls"]
                   for stats in self.channel_stats.values())


def _merge_per_actor(parts: Dict[int, PerActorCounters]) -> PerActorCounters:
    """Union of disjoint per-core bags (cores never share an actor)."""
    merged = PerActorCounters()
    for counters in parts.values():
        for actor_id, bag in counters.by_actor.items():
            merged.for_actor(actor_id).merge(bag)
    return merged


def _normalize_partition(graph: StreamGraph,
                         partition: Union[Partition, Dict[int, int], None],
                         cores: int,
                         partitioner: Union[str, Callable, None],
                         machine: MachineDescription) -> Partition:
    if partition is None:
        if cores == 1 and partitioner is None:
            return Partition({aid: 0 for aid in graph.actors}, 1)
        costs = profile_actor_costs(graph, machine)
        chosen = get_partitioner(partitioner, machine) \
            if partitioner is not None else partition_lpt
        partition = chosen(graph, costs, cores)
    if isinstance(partition, dict):
        partition = Partition(dict(partition), cores)
    missing = sorted(set(graph.actors) - set(partition.assignment))
    if missing:
        raise StreamRuntimeError(
            f"partition does not cover actors {missing}")
    bad = {aid: core for aid, core in partition.assignment.items()
           if not 0 <= core < partition.cores}
    if bad:
        raise StreamRuntimeError(
            f"partition assigns cores outside range(0, {partition.cores}): "
            f"{bad}")
    return partition


@dataclass
class _CoreOutcome:
    """What one worker thread hands back to the coordinator."""

    init_counters: Optional[PerActorCounters] = None
    steady_counters: Optional[PerActorCounters] = None
    init_outputs: List[Any] = field(default_factory=list)
    outputs: List[Any] = field(default_factory=list)


class _Pacer:
    """Accumulates owed per-firing wall time; sleeps in >= 1 ms batches so
    tiny per-firing costs are not swamped by timer granularity.  Sleeping
    releases the GIL, which is the whole point."""

    __slots__ = ("owed", "min_sleep")

    def __init__(self, min_sleep: float = 0.002) -> None:
        self.owed = 0.0
        self.min_sleep = min_sleep

    def add(self, seconds: float) -> None:
        self.owed += seconds
        if self.owed >= self.min_sleep:
            time.sleep(self.owed)
            self.owed = 0.0

    def flush(self) -> None:
        if self.owed > 0.0:
            time.sleep(self.owed)
            self.owed = 0.0


def calibrated_pace(graph: StreamGraph,
                    machine: MachineDescription,
                    schedule: Optional[Schedule] = None,
                    *,
                    seconds_per_cycle: float,
                    profile_iterations: int = 2) -> Dict[int, float]:
    """Per-actor wall seconds per firing, proportional to modeled cycles.

    Profiles ``graph`` sequentially, divides each actor's steady-state
    cycles by its firing count, and scales by ``seconds_per_cycle`` — the
    emulation knob that lets a paced parallel run reproduce the modeled
    compute/communication balance in measurable wall time.
    """
    if schedule is None:
        schedule = build_schedule(graph)
    result = execute(graph, schedule, machine=machine,
                     iterations=profile_iterations)
    firings = result.firings_by_actor()
    pace: Dict[int, float] = {}
    for actor_id, cycles in result.actor_cycles(machine).items():
        fired = firings.get(actor_id, 0)
        if fired > 0:
            pace[actor_id] = (cycles / fired) * seconds_per_cycle
    return pace


def parallel_execute(graph: StreamGraph,
                     schedule: Optional[Schedule] = None,
                     *,
                     machine: MachineDescription = CORE_I7,
                     iterations: int = 8,
                     backend: Any = "interp",
                     tracer: Optional[Tracer] = None,
                     cores: int = 2,
                     partition: Union[Partition, Dict[int, int], None] = None,
                     partitioner: Union[str, Callable, None] = None,
                     channel_capacities: Optional[Dict[int, int]] = None,
                     channel_slack: int = 1,
                     stall_timeout: float = 30.0,
                     pace: Optional[Dict[int, float]] = None
                     ) -> ParallelExecutionResult:
    """Run ``graph`` on ``cores`` worker threads and return a result that
    is event-identical to the sequential :func:`execute`.

    ``partition`` may be a :class:`Partition`, a raw ``actor id -> core``
    dict, or ``None`` (profile the graph and apply ``partitioner``,
    default :func:`~repro.multicore.partition.partition_lpt`).  The
    partition must cover every actor with cores in ``range(cores)``.

    ``channel_capacities`` overrides the planned per-cut-tape bounds
    (clamped up to the deadlock-free minimum); ``channel_slack`` is the
    number of extra steady iterations of double-buffer headroom.

    ``pace`` maps actor ids to wall seconds per firing (see
    :func:`calibrated_pace`).

    Tracing: one ``parallel_execute`` span on the calling thread, one
    ``core<N>`` span (with nested ``.init``/``.steady`` phases) per
    worker thread, and a ``channel.stall`` instant every time a channel
    side blocks.
    """
    tracer = ensure_tracer(tracer)
    if schedule is None:
        with tracer.span("runtime.schedule", cat="runtime",
                         graph=graph.name):
            schedule = build_schedule(graph)
    partition = _normalize_partition(graph, partition, cores, partitioner,
                                     machine)
    cores = partition.cores
    core_of = partition.assignment
    be = resolve_backend(backend)
    cache = getattr(be, "cache", None)

    cut_tapes = sorted(
        tid for tid, edge in graph.tapes.items()
        if core_of[edge.src] != core_of[edge.dst])
    capacities = plan_capacities(graph, schedule, cut_tapes,
                                 slack_iterations=channel_slack)
    if channel_capacities:
        for tid, cap in channel_capacities.items():
            if tid in capacities:
                # Never below the deadlock-free minimum.
                floor = plan_capacities(graph, schedule, [tid],
                                        slack_iterations=0)[tid]
                capacities[tid] = max(cap, floor)

    abort = RunAbort()
    live_tracer = tracer if tracer.enabled else None
    # Core-local tapes use the backend's preferred implementation (the
    # vector backend's ndarray-native NdTape); cut tapes must be Channels.
    tape_cls = getattr(be, "tape_class", Tape)
    tapes: Dict[int, Tape] = {}
    channels: Dict[int, Channel] = {}
    for tid, edge in graph.tapes.items():
        if tid in capacities:
            channel = Channel(f"tape{tid}", capacities[tid], abort=abort,
                              tracer=live_tracer,
                              stall_timeout=stall_timeout)
            channel.preload(edge.initial)
            tapes[tid] = channel
            channels[tid] = channel
        else:
            tape = tape_cls(f"tape{tid}")
            for item in edge.initial:
                tape.push(item)
            tapes[tid] = tape

    with tracer.span("parallel_execute", cat="runtime", graph=graph.name,
                     backend=be.name, machine=machine.name,
                     iterations=iterations, cores=cores,
                     cut_tapes=len(cut_tapes)) as exec_span:
        cache_before = cache.stats.snapshot() if cache is not None else None
        core_actors: Dict[int, List[int]] = {c: [] for c in range(cores)}
        for actor_id, core in core_of.items():
            core_actors[core].append(actor_id)
        runs: Dict[int, _GraphRun] = {}
        with tracer.span("runtime.setup", cat="runtime") as sp:
            for core in range(cores):
                if not core_actors[core]:
                    continue
                runs[core] = _GraphRun(graph, schedule, machine, be,
                                       tapes=tapes,
                                       only_actors=core_actors[core])
            sp.add(actors=len(graph.actors), tapes=len(graph.tapes),
                   channels=len(channels))
        kernel_cache: Optional[Dict[str, int]] = None
        if cache is not None:
            kernel_cache = cache.stats.delta(cache_before)
            kernel_cache["size"] = len(cache)

        if pace:
            for core, run in runs.items():
                pacer = _Pacer()
                for actor_id, cost in pace.items():
                    fn = run.fire_fns.get(actor_id)
                    if fn is None or cost <= 0.0:
                        continue

                    def paced(_fn=fn, _cost=cost, _pacer=pacer) -> None:
                        _fn()
                        _pacer.add(_cost)
                    run.fire_fns[actor_id] = paced

        init_slices = {
            core: tuple((aid, n) for aid, n in schedule.init
                        if core_of[aid] == core)
            for core in runs}
        steady_slices = {
            core: tuple((aid, n) for aid, n in schedule.steady
                        if core_of[aid] == core)
            for core in runs}

        outcomes: Dict[int, _CoreOutcome] = {core: _CoreOutcome()
                                             for core in runs}

        def worker(core: int) -> None:
            run = runs[core]
            outcome = outcomes[core]
            try:
                with tracer.span(f"core{core}", cat="core",
                                 actors=len(core_actors[core])):
                    with tracer.span(f"core{core}.init", cat="core"):
                        run.run_phase(init_slices[core])
                    outcome.init_outputs = run.drain_collector()
                    outcome.init_counters = run.reset_counters()
                    with tracer.span(f"core{core}.steady", cat="core",
                                     iterations=iterations):
                        for _ in range(iterations):
                            run.run_phase(steady_slices[core])
                    outcome.outputs = run.drain_collector()
                    outcome.steady_counters = run.counters
            except ChannelAborted:
                pass  # a peer already tripped the abort flag
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                abort.trip(exc)

        start = time.perf_counter()
        threads = [threading.Thread(target=worker, args=(core,),
                                    name=f"macross-core{core}", daemon=True)
                   for core in sorted(runs)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        if abort.tripped:
            raise abort.exception

        per_core_init = {core: outcome.init_counters
                         for core, outcome in outcomes.items()
                         if outcome.init_counters is not None}
        per_core_steady = {core: outcome.steady_counters
                           for core, outcome in outcomes.items()
                           if outcome.steady_counters is not None}
        init_outputs: List[Any] = []
        outputs: List[Any] = []
        for core, outcome in sorted(outcomes.items()):
            # Exactly one core owns the collector, so "merging" is a
            # deterministic concatenation over at most one contributor.
            init_outputs.extend(outcome.init_outputs)
            outputs.extend(outcome.outputs)

        channel_stats = {tid: channel.stats.snapshot()
                         for tid, channel in channels.items()}
        vectorized: Optional[Dict[int, str]] = None
        if be.name == "vector":
            vectorized = {}
            for run in runs.values():
                statuses = dict(run.vector_status)
                for actor_id, runner in run.actors.items():
                    status = getattr(runner, "vector_status", None)
                    if status is not None:
                        statuses[actor_id] = status
                _annotate_tape_fallbacks(run, statuses)
                vectorized.update(statuses)
        batched_firings = sum(run.batched_firings for run in runs.values())
        if tracer.enabled:
            for tid, stats in channel_stats.items():
                tracer.event(f"channel.tape{tid}", cat="channel", **stats)
            exec_span.add(outputs=len(outputs), wall_s=round(wall, 6),
                          stalls=sum(s["push_stalls"] + s["pop_stalls"]
                                     for s in channel_stats.values()))

        result = ParallelExecutionResult(
            graph_name=graph.name,
            iterations=iterations,
            outputs=outputs,
            init_outputs=init_outputs,
            init_counters=_merge_per_actor(per_core_init),
            steady_counters=_merge_per_actor(per_core_steady),
            schedule=schedule,
            backend=be.name,
            kernel_cache=kernel_cache,
            vectorized=vectorized,
            batched_firings=batched_firings,
            cores=cores,
            partition=partition,
            per_core_init=per_core_init,
            per_core_steady=per_core_steady,
            channel_stats=channel_stats,
            wall_time_s=wall,
        )
    return result
