"""Bounded cross-core channels for the parallel runtime.

When a :class:`~repro.multicore.partition.Partition` places the two
endpoints of a tape on different cores, the tape becomes a
:class:`Channel`: a thread-safe, *bounded* FIFO with blocking semantics on
both sides.  A reader that needs data which has not been produced yet
blocks until the producing core catches up, and a writer that would
overflow the bound blocks until the consuming core drains — the paper's
"the receiving core stalls on the transfer" (§5) made literal, plus real
backpressure on the sending side.

Capacity planning
-----------------

Capacity planning lives in :mod:`repro.plan.capacity` (the planning
subsystem prices a candidate partition's buffer memory with the same
planner the runtime allocates from); :func:`plan_capacities`,
:func:`sequential_max_occupancy`, and :func:`steady_crossings` are
re-exported here for the historical import path.  Short version: each
cut tape is granted its sequential maximum occupancy (liveness, see the
deadlock-freedom argument there) plus ``slack_iterations`` steady
iterations of double-buffer headroom.

Every :class:`Channel` keeps :class:`ChannelStats` (pushes, pops, stall
counts, high-water mark) and, when given a live tracer, emits a
``channel.stall`` instant (category ``"channel"``) each time a side
blocks, carrying the occupancy at stall time — the channel-occupancy
timeline of a parallel trace.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional

from ..obs.tracer import Tracer
from ..plan.capacity import (
    plan_capacities,
    sequential_max_occupancy,
    steady_crossings,
)
from ..runtime.errors import StreamRuntimeError
from ..runtime.tape import Tape

__all__ = [
    "Channel", "ChannelAborted", "ChannelError", "ChannelStallTimeout",
    "ChannelStats", "RunAbort", "plan_capacities", "sequential_max_occupancy",
    "steady_crossings",
]


class ChannelError(StreamRuntimeError):
    """Base class for cross-core channel failures."""


class ChannelStallTimeout(ChannelError):
    """A channel side stalled longer than the configured timeout — the
    cores have deadlocked (or the capacity plan is wrong).

    Carries structured diagnostics so callers (``execute(..., cores=N)``,
    ``macross run --cores``, the serving layer) can report *which*
    channel stalled on *which* side without parsing the message:
    ``channel`` (tape name), ``side`` (``"push"``/``"pop"``),
    ``occupancy``/``needed``/``capacity`` at timeout, and the configured
    ``timeout_s``.
    """

    def __init__(self, message: str, *, channel: str = "?",
                 side: str = "?", occupancy: int = 0, needed: int = 0,
                 capacity: int = 0, timeout_s: float = 0.0) -> None:
        super().__init__(message)
        self.channel = channel
        self.side = side
        self.occupancy = occupancy
        self.needed = needed
        self.capacity = capacity
        self.timeout_s = timeout_s


class ChannelAborted(ChannelError):
    """Another core failed; this channel unblocked so its core can exit."""


class RunAbort:
    """Shared failure flag for one parallel run.

    The first worker that raises trips the flag; every blocked channel
    wait re-checks it and raises :class:`ChannelAborted`, so one core's
    failure cannot leave its peers blocked forever.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.exception: Optional[BaseException] = None

    @property
    def tripped(self) -> bool:
        return self.exception is not None

    def trip(self, exc: BaseException) -> None:
        with self._lock:
            if self.exception is None:
                self.exception = exc


@dataclass
class ChannelStats:
    """Observable behaviour of one channel (mutated under the lock)."""

    pushes: int = 0
    pops: int = 0
    push_stalls: int = 0
    pop_stalls: int = 0
    max_occupancy: int = 0
    capacity: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {"pushes": self.pushes, "pops": self.pops,
                "push_stalls": self.push_stalls,
                "pop_stalls": self.pop_stalls,
                "max_occupancy": self.max_occupancy,
                "capacity": self.capacity}


#: Condition-wait slice so aborts propagate even without a notification.
_WAIT_SLICE_S = 0.05


class Channel(Tape):
    """A :class:`~repro.runtime.tape.Tape` whose two ends live on
    different threads.

    The full tape repertoire is supported — ``push``/``pop``/``peek``,
    the SIMDized ``rpush``/``advance_writer``/``advance_reader`` — with
    blocking semantics:

    * readers (``pop``, ``peek``, ``peek_block``, ``advance_reader``)
      block until enough *committed* items are available;
    * committing writers (``push``, ``advance_writer``) block while the
      channel holds ``capacity`` committed items (backpressure);
    * ``rpush``/``write_strided`` only stage past the write pointer and
      never block — the commit that follows (``advance_writer``) is the
      gated step.

    Bulk operations make the vector backend's batched path work across
    cores: ``peek_block(count)`` is the batched analogue of ``count``
    blocking pops (it waits until the whole window is committed), and
    ``advance_writer(count)`` commits in capacity-bounded *chunks*, each
    released to the consuming core as soon as it lands — so a bulk
    commit larger than the remaining free space behaves exactly like the
    equivalent sequence of blocking pushes (and is deadlock-free under
    the same capacity-planner argument).
    """

    __slots__ = ("capacity", "stats", "_cond", "_abort", "_tracer",
                 "stall_timeout")

    def __init__(self, name: str, capacity: int, *,
                 abort: Optional[RunAbort] = None,
                 tracer: Optional[Tracer] = None,
                 stall_timeout: float = 30.0) -> None:
        if capacity < 1:
            raise ValueError(f"{name}: channel capacity must be >= 1")
        super().__init__(name)
        self.capacity = capacity
        self.stats = ChannelStats(capacity=capacity)
        self._cond = threading.Condition()
        self._abort = abort
        self._tracer = tracer
        self.stall_timeout = stall_timeout

    # -- setup ----------------------------------------------------------------
    def preload(self, items: Iterable[Any]) -> None:
        """Load initial (feedback-delay) items without blocking or stats."""
        with self._cond:
            for item in items:
                Tape.push(self, item)
            occupancy = Tape.__len__(self)
            if occupancy > self.capacity:
                raise ChannelError(
                    f"{self.name}: {occupancy} initial items exceed "
                    f"capacity {self.capacity}")
            self.stats.max_occupancy = max(self.stats.max_occupancy,
                                           occupancy)
            self._cond.notify_all()

    # -- blocking machinery ---------------------------------------------------
    def _await(self, ready, side: str, needed: int) -> None:
        """Block until ``ready()`` under the held condition lock."""
        if ready():
            return
        if side == "push":
            self.stats.push_stalls += 1
        else:
            self.stats.pop_stalls += 1
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.event("channel.stall", cat="channel",
                               channel=self.name, side=side,
                               occupancy=Tape.__len__(self), needed=needed,
                               capacity=self.capacity)
        deadline = time.monotonic() + self.stall_timeout
        while not ready():
            if self._abort is not None and self._abort.tripped:
                raise ChannelAborted(
                    f"{self.name}: unblocked by peer-core failure")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ChannelStallTimeout(
                    f"{self.name}: {side} side stalled for more than "
                    f"{self.stall_timeout:.1f}s (occupancy "
                    f"{Tape.__len__(self)}/{self.capacity}, needed "
                    f"{needed}) — cross-core deadlock",
                    channel=self.name, side=side,
                    occupancy=Tape.__len__(self), needed=needed,
                    capacity=self.capacity,
                    timeout_s=self.stall_timeout)
            self._cond.wait(min(remaining, _WAIT_SLICE_S))

    def _record_high_water(self) -> None:
        occupancy = Tape.__len__(self)
        if occupancy > self.stats.max_occupancy:
            self.stats.max_occupancy = occupancy

    # -- writing --------------------------------------------------------------
    def push(self, value: Any) -> None:
        with self._cond:
            self._await(lambda: Tape.__len__(self) < self.capacity,
                        "push", 1)
            Tape.push(self, value)
            self.stats.pushes += 1
            self._record_high_water()
            self._cond.notify_all()

    def rpush(self, value: Any, offset: int) -> None:
        with self._cond:
            Tape.rpush(self, value, offset)

    def write_strided(self, offset: int, stride: int, values: Any) -> None:
        # Staging only (never blocks): commit is the gated step.
        with self._cond:
            Tape.write_strided(self, offset, stride, values)

    def advance_writer(self, count: int) -> None:
        if count < 0:
            raise ValueError(f"{self.name}: negative writer advance")
        remaining = count
        while True:
            with self._cond:
                self._await(
                    lambda: Tape.__len__(self) + min(remaining, 1)
                    <= self.capacity,
                    "push", remaining)
                chunk = min(remaining,
                            self.capacity - Tape.__len__(self))
                Tape.advance_writer(self, chunk)
                self.stats.pushes += chunk
                self._record_high_water()
                self._cond.notify_all()
                remaining -= chunk
                if not remaining:
                    return

    # -- reading --------------------------------------------------------------
    def pop(self) -> Any:
        with self._cond:
            self._await(lambda: Tape.__len__(self) >= 1, "pop", 1)
            value = Tape.pop(self)
            self.stats.pops += 1
            self._cond.notify_all()
            return value

    def peek(self, offset: int) -> Any:
        if offset < 0:
            raise ValueError(f"{self.name}: negative peek offset {offset}")
        with self._cond:
            self._await(lambda: Tape.__len__(self) >= offset + 1,
                        "pop", offset + 1)
            return Tape.peek(self, offset)

    def peek_block(self, count: int) -> Any:
        if count < 0:
            raise ValueError(f"{self.name}: negative block size {count}")
        with self._cond:
            self._await(lambda: Tape.__len__(self) >= count, "pop", count)
            return Tape.peek_block(self, count)

    def advance_reader(self, count: int) -> None:
        with self._cond:
            self._await(lambda: Tape.__len__(self) >= count, "pop", count)
            Tape.advance_reader(self, count)
            self.stats.pops += count
            self._cond.notify_all()

    def drain(self):  # pragma: no cover - collectors are never channels
        with self._cond:
            items = Tape.drain(self)
            self._cond.notify_all()
            return items

    def __len__(self) -> int:
        with self._cond:
            return Tape.__len__(self)


# Capacity planning moved to repro.plan.capacity (re-exported above).
