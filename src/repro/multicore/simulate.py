"""Multicore execution model (Figure 13).

Steady-state makespan simulation: each core's time is the modeled cycles of
its assigned actors plus a per-element charge for every tape element that
crosses cores.  The macro-SIMDized variants follow the paper's scheduler:
partition the *scalar* graph first (SIMD-oblivious), then macro-SIMDize
within each core — which is exactly where cross-core fusion/horizontal
opportunities are lost, making these conservative estimates (§5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from ..graph.stream_graph import StreamGraph
from ..perf import events as ev
from ..plan.context import profile_actor_costs
from ..plan.partitioners import get_partitioner
from ..runtime.errors import StreamRuntimeError
from ..runtime.executor import execute
from ..simd.machine import MachineDescription
from ..simd.pipeline import MacroSSOptions, compile_graph
from .partition import Partition, partition_lpt

__all__ = ["MulticoreResult", "multicore_speedups", "profile_actor_costs",
           "simulate_multicore"]


@dataclass
class MulticoreResult:
    cores: int
    macro_simd: bool
    #: modeled steady cycles of the busiest core, per produced output item.
    makespan_per_output: float
    core_loads: List[float]
    comm_cycles: float


def simulate_multicore(graph: StreamGraph, machine: MachineDescription,
                       cores: int, *,
                       macro_simd: bool = False,
                       options: Optional[MacroSSOptions] = None,
                       partitioner: Union[str, Callable] = partition_lpt,
                       iterations: int = 2) -> MulticoreResult:
    """Partition, optionally SIMDize per core, and compute the makespan.

    ``partitioner`` may be a callable or a registered name
    (``"lpt"``, ``"contiguous"``, ``"opt"``, …) resolved through
    :func:`repro.plan.get_partitioner` with ``machine`` so
    communication-aware strategies price cut edges on the right target.

    Raises :class:`~repro.runtime.errors.StreamRuntimeError` when the
    graph produces no steady-state output — the same contract as
    :meth:`~repro.runtime.executor.ExecutionResult.cycles_per_output`
    (a per-output makespan is meaningless without outputs; it used to be
    silently masked with ``max(1, ...)``).
    """
    if options is None:
        options = MacroSSOptions()
    partitioner = get_partitioner(partitioner, machine)
    costs = profile_actor_costs(graph, machine, iterations=iterations)
    partition = partitioner(graph, costs, cores)

    if macro_simd:
        compiled = compile_graph(graph, machine, options,
                                 partition=partition.assignment)
        exec_graph = compiled.graph
        core_of = compiled.core_assignment
    else:
        exec_graph = graph
        core_of = partition.assignment

    result = execute(exec_graph, machine=machine, iterations=iterations)
    if not result.outputs:
        raise StreamRuntimeError(
            "graph produced no steady-state output — cannot compute a "
            "per-output makespan")
    per_actor = result.actor_cycles(machine)

    loads = [0.0] * cores
    for actor_id, cycles in per_actor.items():
        loads[core_of[actor_id]] += cycles

    # Communication accounting (deliberate, pinned by tests):
    #  * the transfer cost is charged to the *receiving* core only — the
    #    paper's "the receiving core stalls on the transfer" (§5); the
    #    sending side's store is already priced through the producer's
    #    ordinary SCALAR_STORE/VECTOR_STORE events;
    #  * only *steady-state* crossings are charged.  Init-phase items
    #    crossing a cut tape are a one-time priming cost that amortises
    #    to zero in the steady-state per-output makespan, exactly like
    #    init-phase compute cycles (which are likewise excluded).
    comm_price = machine.price(ev.COMM)
    comm_total = 0.0
    reps = result.schedule.reps
    for tape in exec_graph.tapes.values():
        if core_of[tape.src] == core_of[tape.dst]:
            continue
        items = reps[tape.src] * exec_graph.push_rate(tape.src, tape.src_port)
        cost = items * iterations * comm_price
        comm_total += cost
        loads[core_of[tape.dst]] += cost

    outputs = len(result.outputs)
    return MulticoreResult(
        cores=cores,
        macro_simd=macro_simd,
        makespan_per_output=max(loads) / outputs,
        core_loads=[load / outputs for load in loads],
        comm_cycles=comm_total / outputs,
    )


def multicore_speedups(graph: StreamGraph, machine: MachineDescription,
                       core_counts: List[int], *,
                       options: Optional[MacroSSOptions] = None,
                       partitioner: Union[str, Callable] = partition_lpt,
                       iterations: int = 2) -> Dict[str, float]:
    """Figure 13 row for one benchmark: speedup over scalar single-core for
    {N cores} x {scalar, +MacroSS}.

    ``options``, ``partitioner``, and ``iterations`` are forwarded to
    every :func:`simulate_multicore` call (they used to be silently
    dropped, which made the partitioner ablation a no-op through this
    entry point).
    """
    baseline = execute(graph, machine=machine, iterations=iterations)
    base_cpo = baseline.cycles_per_output(machine)
    row: Dict[str, float] = {}
    for cores in core_counts:
        scalar = simulate_multicore(graph, machine, cores, macro_simd=False,
                                    partitioner=partitioner,
                                    iterations=iterations)
        simd = simulate_multicore(graph, machine, cores, macro_simd=True,
                                  options=options, partitioner=partitioner,
                                  iterations=iterations)
        row[f"{cores}c"] = base_cpo / scalar.makespan_per_output
        row[f"{cores}c+simd"] = base_cpo / simd.makespan_per_output
    return row
