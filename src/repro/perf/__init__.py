"""Performance events and counters."""

from .counters import PerActorCounters, PerfCounters
from .report import classify_cycles, event_class_table, profile_table

__all__ = ["PerActorCounters", "PerfCounters",
           "classify_cycles", "event_class_table", "profile_table"]
