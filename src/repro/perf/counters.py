"""Event counters, per actor and aggregated."""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Dict, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..simd.machine import MachineDescription


class PerfCounters:
    """A bag of event counts with cycle pricing."""

    __slots__ = ("events",)

    def __init__(self, events: Mapping[str, int] | None = None) -> None:
        self.events: Counter[str] = Counter(events or {})

    def add(self, event: str, count: int = 1) -> None:
        self.events[event] += count

    def merge(self, other: "PerfCounters") -> None:
        self.events.update(other.events)

    def cycles(self, machine: "MachineDescription") -> float:
        """Total modeled cycles under ``machine``'s price table."""
        return sum(count * machine.price(event)
                   for event, count in self.events.items())

    def scaled(self, factor: float) -> "PerfCounters":
        """Counters with every count multiplied by ``factor``.

        Counts are rounded to the nearest integer — truncation would
        systematically under-count (e.g. 3 events at factor 0.5 must
        yield 2, not 1).
        """
        out = PerfCounters()
        for event, count in self.events.items():
            out.events[event] = round(count * factor)
        return out

    def __getitem__(self, event: str) -> int:
        return self.events.get(event, 0)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        top = ", ".join(f"{k}={v}" for k, v in sorted(self.events.items()))
        return f"PerfCounters({top})"


class PerActorCounters:
    """Per-actor event counters (keyed by actor id).

    The multicore partitioner needs per-actor work estimates, and the
    experiment reports break cycles down by actor.
    """

    def __init__(self) -> None:
        self.by_actor: Dict[int, PerfCounters] = {}

    def for_actor(self, actor_id: int) -> PerfCounters:
        counters = self.by_actor.get(actor_id)
        if counters is None:
            counters = PerfCounters()
            self.by_actor[actor_id] = counters
        return counters

    def total(self) -> PerfCounters:
        out = PerfCounters()
        for counters in self.by_actor.values():
            out.merge(counters)
        return out

    def cycles(self, machine: "MachineDescription") -> float:
        return self.total().cycles(machine)

    def cycles_by_actor(self, machine: "MachineDescription") -> Dict[int, float]:
        return {aid: counters.cycles(machine)
                for aid, counters in self.by_actor.items()}
