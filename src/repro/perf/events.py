"""Canonical performance-event names.

The interpreter emits one event per dynamic operation; a
:class:`~repro.simd.machine.MachineDescription` prices each event in cycles.
Keeping events symbolic separates *what the program did* (machine
independent) from *what it costs* (machine dependent), which is exactly the
split the paper's cost model needs when comparing tape-access strategies.

Naming scheme::

    s_alu / s_mul / s_div      scalar add-like / multiply / divide
    v_alu / v_mul / v_div      vector forms (one event covers SW lanes)
    s_load / s_store           scalar tape or array access
    v_load / v_store           vector access (aligned)
    v_load_u / v_store_u       vector access (unaligned)
    pack / unpack              insert / extract one scalar lane
    permute                    extract_even / extract_odd style shuffle
    splat                      broadcast scalar to all lanes
    m_<func> / vm_<func>       math intrinsic call, scalar / vector
    loop                       loop back-edge overhead (cmp + inc + branch)
    fire                       per-firing overhead (call + schedule loop)
    addr                       software lane-order address translation
                               (Figure 8: ~6 cycles on Core i7)
    sagu                       SAGU-assisted address generation (Figure 9)
    comm                       inter-core transfer of one element
"""

from __future__ import annotations

SCALAR_ALU = "s_alu"
SCALAR_MUL = "s_mul"
SCALAR_DIV = "s_div"
VECTOR_ALU = "v_alu"
VECTOR_MUL = "v_mul"
VECTOR_DIV = "v_div"
SCALAR_LOAD = "s_load"
SCALAR_STORE = "s_store"
VECTOR_LOAD = "v_load"
VECTOR_STORE = "v_store"
VECTOR_LOAD_U = "v_load_u"
VECTOR_STORE_U = "v_store_u"
PACK = "pack"
UNPACK = "unpack"
PERMUTE = "permute"
SPLAT = "splat"
LOOP = "loop"
FIRE = "fire"
ADDR = "addr"
SAGU = "sagu"
COMM = "comm"


def scalar_math(func: str) -> str:
    return f"m_{func}"


def vector_math(func: str) -> str:
    return f"vm_{func}"
