"""Human-readable performance reports from execution results.

Breaks modeled cycles down by actor and by event class — the tool used to
understand *where* a SIMDization decision pays off (e.g. how many cycles a
benchmark spends packing/unpacking before and after vertical fusion).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence, Tuple

from .counters import PerActorCounters, PerfCounters

if TYPE_CHECKING:  # pragma: no cover
    from ..graph.stream_graph import StreamGraph
    from ..simd.machine import MachineDescription

#: Event-class buckets for the breakdown columns.
EVENT_CLASSES: Mapping[str, Tuple[str, ...]] = {
    "scalar-alu": ("s_alu", "s_mul", "s_div"),
    "vector-alu": ("v_alu", "v_mul", "v_div"),
    "memory": ("s_load", "s_store", "v_load", "v_store",
               "v_load_u", "v_store_u"),
    "pack/unpack": ("pack", "unpack", "splat"),
    "permute": ("permute",),
    "addressing": ("addr", "sagu"),
    "overhead": ("loop", "fire"),
    "comm": ("comm",),
}


def classify_cycles(counters: PerfCounters,
                    machine: "MachineDescription") -> Dict[str, float]:
    """Cycles per event class; math calls land in a 'math' bucket."""
    buckets = {name: 0.0 for name in EVENT_CLASSES}
    buckets["math"] = 0.0
    lookup = {event: name
              for name, events in EVENT_CLASSES.items()
              for event in events}
    for event, count in counters.events.items():
        cycles = count * machine.price(event)
        if event.startswith(("m_", "vm_")):
            buckets["math"] += cycles
        else:
            buckets[lookup.get(event, "overhead")] += cycles
    return buckets


def profile_table(graph: "StreamGraph", counters: PerActorCounters,
                  machine: "MachineDescription",
                  top: int = 0) -> str:
    """Per-actor cycle table, heaviest first."""
    from ..experiments.tables import format_table

    per_actor = counters.cycles_by_actor(machine)
    total = sum(per_actor.values()) or 1.0
    ranked = sorted(per_actor.items(), key=lambda kv: -kv[1])
    if top:
        ranked = ranked[:top]
    rows: List[Sequence[object]] = []
    for actor_id, cycles in ranked:
        buckets = classify_cycles(counters.by_actor[actor_id], machine)
        dominant = max(buckets.items(), key=lambda kv: kv[1])
        rows.append((graph.actors[actor_id].name, cycles,
                     f"{100 * cycles / total:.1f}%",
                     f"{dominant[0]} ({dominant[1]:.0f})"))
    rows.append(("TOTAL", total, "100.0%", ""))
    return format_table(["actor", "cycles", "share", "dominant class"], rows)


def event_class_table(counters: PerfCounters,
                      machine: "MachineDescription") -> str:
    from ..experiments.tables import format_table

    buckets = classify_cycles(counters, machine)
    total = sum(buckets.values()) or 1.0
    rows = [(name, cycles, f"{100 * cycles / total:.1f}%")
            for name, cycles in sorted(buckets.items(), key=lambda kv: -kv[1])
            if cycles > 0]
    return format_table(["event class", "cycles", "share"], rows)
