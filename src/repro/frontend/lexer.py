"""Lexer for the StreamIt-subset textual frontend."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = frozenset({
    "filter", "pipeline", "splitjoin", "feedbackloop",
    "float", "int", "void", "boolean",
    "work", "init", "push", "pop", "peek", "for", "if", "else", "add",
    "split", "join", "duplicate", "roundrobin", "true", "false",
})

#: Multi-character operators, longest first.
_OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "->",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
]


class LexError(SyntaxError):
    """Raised on unrecognisable input."""


@dataclass(frozen=True)
class Token:
    kind: str       # "ident", "keyword", "int", "float", "op", "eof"
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.text!r}, L{self.line})"


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str) -> LexError:
        return LexError(f"line {line}: {message}")

    while index < length:
        ch = source[index]
        if ch == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            column += 1
            continue
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end < 0:
                raise error("unterminated block comment")
            line += source.count("\n", index, end)
            index = end + 2
            continue
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (source[index].isalnum()
                                      or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += index - start
            continue
        if ch.isdigit() or (ch == "." and index + 1 < length
                            and source[index + 1].isdigit()):
            start = index
            is_float = False
            while index < length and source[index].isdigit():
                index += 1
            if index < length and source[index] == ".":
                is_float = True
                index += 1
                while index < length and source[index].isdigit():
                    index += 1
            if index < length and source[index] in "eE":
                is_float = True
                index += 1
                if index < length and source[index] in "+-":
                    index += 1
                while index < length and source[index].isdigit():
                    index += 1
            text = source[start:index]
            tokens.append(Token("float" if is_float else "int", text,
                                line, column))
            column += index - start
            continue
        for op in _OPERATORS:
            if source.startswith(op, index):
                tokens.append(Token("op", op, line, column))
                index += len(op)
                column += len(op)
                break
        else:
            raise error(f"unexpected character {ch!r}")
    tokens.append(Token("eof", "", line, column))
    return tokens
