"""Lowering: textual declarations -> the graph/IR object model.

Instantiates a named top-level stream (and everything it adds,
recursively), resolving stream parameters to constants, producing the same
:class:`~repro.graph.structure.Program` the Python DSL builds.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from ..graph.actor import FilterSpec, StateVar, bind_params
from ..graph.builtins import (
    duplicate_splitter,
    roundrobin_joiner,
    roundrobin_splitter,
)
from ..graph.structure import Program, StreamNode, pipeline, splitjoin
from ..ir import expr as E
from ..ir.types import BOOL, FLOAT, INT, Scalar
from .ast_nodes import (
    AddStmt,
    CompositeDecl,
    FeedbackDecl,
    FilterDecl,
    StateDecl,
    StreamDecl,
)
from .parser import parse

_IR_TYPES: Mapping[str, Scalar] = {"float": FLOAT, "int": INT,
                                   "boolean": BOOL}


class LoweringError(Exception):
    pass


def _const_eval(expr: E.Expr, params: Mapping[str, float | int]):
    """Evaluate a compile-time-constant expression (rates, weights, args)."""
    if isinstance(expr, (E.IntConst, E.FloatConst, E.BoolConst)):
        return expr.value
    if isinstance(expr, E.Param):
        try:
            return params[expr.name]
        except KeyError:
            raise LoweringError(f"unbound parameter {expr.name!r}") from None
    if isinstance(expr, E.UnaryOp) and expr.op == "-":
        return -_const_eval(expr.operand, params)
    if isinstance(expr, E.BinaryOp):
        from ..runtime.values import apply_binary
        return apply_binary(expr.op,
                            _const_eval(expr.left, params),
                            _const_eval(expr.right, params))
    raise LoweringError(f"expression is not compile-time constant: {expr!r}")


class Lowerer:
    def __init__(self, decls: Sequence[StreamDecl]) -> None:
        self.decls: Dict[str, StreamDecl] = {}
        for decl in decls:
            if decl.name in self.decls:
                raise LoweringError(f"duplicate stream {decl.name!r}")
            self.decls[decl.name] = decl

    def instantiate(self, name: str,
                    args: Sequence[float | int] = ()) -> StreamNode:
        decl = self.decls.get(name)
        if decl is None:
            raise LoweringError(f"unknown stream {name!r}")
        params = self._bind_args(decl, args)
        if isinstance(decl, FilterDecl):
            from ..graph.structure import FilterNode
            return FilterNode(self._filter_spec(decl, params))
        if isinstance(decl, FeedbackDecl):
            return self._feedback(decl, params)
        return self._composite(decl, params)

    def _bind_args(self, decl: StreamDecl,
                   args: Sequence[float | int]) -> Dict[str, float | int]:
        if len(args) != len(decl.params):
            raise LoweringError(
                f"{decl.name}: expected {len(decl.params)} arguments, "
                f"got {len(args)}")
        bound: Dict[str, float | int] = {}
        for param, value in zip(decl.params, args):
            if param.type_name == "int":
                bound[param.name] = int(value)
            else:
                bound[param.name] = float(value)
        return bound

    # -- filters ------------------------------------------------------------------
    def _filter_spec(self, decl: FilterDecl,
                     params: Dict[str, float | int]) -> FilterSpec:
        pop = int(_const_eval(decl.rates.pop, params))
        push = int(_const_eval(decl.rates.push, params))
        peek = (int(_const_eval(decl.rates.peek, params))
                if decl.rates.peek is not None else 0)
        spec = FilterSpec(
            name=decl.name,
            pop=pop,
            push=push,
            peek=peek,
            data_type=_IR_TYPES.get(decl.in_type, FLOAT),
            output_type=_IR_TYPES.get(decl.out_type, FLOAT),
            state=tuple(self._state_var(s, params) for s in decl.states),
            init_body=decl.init_body,
            work_body=decl.work_body,
        )
        if params:
            spec = bind_params(spec, params)
        return spec

    def _state_var(self, state: StateDecl,
                   params: Dict[str, float | int]) -> StateVar:
        ir_type = _IR_TYPES[state.type_name]
        if state.size is not None:
            if state.array_init is not None:
                init = tuple(_const_eval(e, params) for e in state.array_init)
                if len(init) != state.size:
                    raise LoweringError(
                        f"state {state.name}: initialiser length mismatch")
            else:
                init = 0 if state.type_name == "int" else 0.0
            return StateVar(state.name, ir_type, state.size, init)
        if state.init is not None:
            value = _const_eval(state.init, params)
        else:
            value = 0 if state.type_name == "int" else 0.0
        return StateVar(state.name, ir_type, 0, value)

    # -- composites ---------------------------------------------------------------
    def _composite(self, decl: CompositeDecl,
                   params: Dict[str, float | int]) -> StreamNode:
        children: List[StreamNode] = []
        for add in decl.adds:
            children.append(self._lower_add(add, params))
        if decl.kind == "pipeline":
            return pipeline(*children)
        weights = [int(_const_eval(w, params)) for w in decl.join or ()]
        assert decl.split is not None
        if decl.split.kind == "duplicate":
            splitter = duplicate_splitter(len(children))
        else:
            split_weights = [int(_const_eval(w, params))
                             for w in decl.split.weights]
            if len(split_weights) != len(children):
                raise LoweringError(
                    f"{decl.name}: split weights do not match branches")
            splitter = roundrobin_splitter(split_weights)
        if len(weights) != len(children):
            raise LoweringError(
                f"{decl.name}: join weights do not match branches")
        return splitjoin(splitter, children, roundrobin_joiner(weights))

    def _feedback(self, decl: FeedbackDecl,
                  params: Dict[str, float | int]) -> StreamNode:
        from ..graph.structure import feedbackloop
        join_weights = tuple(int(_const_eval(w, params))
                             for w in decl.join_weights)
        enqueue = tuple(_const_eval(e, params) for e in decl.enqueue)
        if decl.split.kind == "duplicate":
            duplicate, split_weights = True, (1, 1)
        else:
            duplicate = False
            split_weights = tuple(int(_const_eval(w, params))
                                  for w in decl.split.weights)
            if len(split_weights) != 2:
                raise LoweringError(
                    f"{decl.name}: feedback split takes 2 weights")
        return feedbackloop(
            self._lower_add(decl.body, params),
            self._lower_add(decl.loop, params),
            join_weights=join_weights,
            split_weights=split_weights,
            duplicate_split=duplicate,
            enqueue=enqueue,
        )

    def _lower_add(self, add: AddStmt,
                   params: Dict[str, float | int]) -> StreamNode:
        if add.inline is not None:
            return self._composite(add.inline, params)
        assert add.name is not None
        args = [_const_eval(a, params) for a in add.args]
        return self.instantiate(add.name, args)


def compile_source(source: str, top: str = "Main",
                   args: Sequence[float | int] = ()) -> Program:
    """Parse and lower a textual stream program.

    ``top`` names the stream to instantiate as the program root.
    """
    lowerer = Lowerer(parse(source))
    node = lowerer.instantiate(top, args)
    return Program(top, node)
