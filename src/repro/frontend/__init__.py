"""Textual StreamIt-subset frontend: lexer, parser, lowering."""

from .ast_nodes import CompositeDecl, FilterDecl, StreamDecl
from .lexer import LexError, Token, tokenize
from .lower import LoweringError, Lowerer, compile_source
from .parser import ParseError, parse

__all__ = [
    "CompositeDecl", "FilterDecl", "StreamDecl",
    "LexError", "Token", "tokenize",
    "LoweringError", "Lowerer", "compile_source",
    "ParseError", "parse",
]
