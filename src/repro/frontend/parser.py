"""Recursive-descent parser for the StreamIt-subset textual frontend.

Grammar (informal)::

    program    := stream+
    stream     := type "->" type kind NAME "(" params? ")" "{" body "}"
    kind       := "filter" | "pipeline" | "splitjoin"

    # filter bodies
    body(filter)    := state* init? work
    state           := type NAME ("[" INT "]")? ("=" init)? ";"
    init            := "init" block
    work            := "work" rates block
    rates           := ("pop" cexpr | "push" cexpr | "peek" cexpr)*

    # composite bodies
    body(pipeline)  := ("add" add ";")+
    body(splitjoin) := "split" splitkind ";" ("add" add ";")+
                       "join" "roundrobin" "(" cexprs ")" ";"
    add             := NAME "(" args? ")" | anonymous-splitjoin/pipeline

Statements and expressions are parsed directly into :mod:`repro.ir`;
references to declared stream parameters become ``Param`` nodes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..ir import expr as E
from ..ir import lvalue as L
from ..ir import stmt as S
from ..ir.expr import MATH_FUNCS
from ..ir.types import BOOL, FLOAT, INT, Scalar
from .ast_nodes import (
    AddStmt,
    CompositeDecl,
    FeedbackDecl,
    FilterDecl,
    ParamDecl,
    RateSpec,
    SplitSpec,
    StateDecl,
    StreamDecl,
)
from .lexer import Token, tokenize


class ParseError(SyntaxError):
    pass


_TYPE_NAMES = {"float", "int", "boolean", "void"}
_IR_TYPES = {"float": FLOAT, "int": INT, "boolean": BOOL}

#: binary operator precedence (higher binds tighter)
_BINARY_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6, "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8, "+": 9, "-": 9, "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.position = 0
        self._params: set[str] = set()
        self._anon_counter = 0

    # -- token plumbing --------------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.position + ahead, len(self.tokens) - 1)]

    def _next(self) -> Token:
        token = self._peek()
        self.position += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(f"line {token.line}: {message} "
                          f"(found {token.text!r})")

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise self._error(f"expected {wanted!r}")
        return self._next()

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._next()
        return None

    # -- program ----------------------------------------------------------------
    def parse_program(self) -> List[StreamDecl]:
        decls: List[StreamDecl] = []
        while self._peek().kind != "eof":
            decls.append(self._stream_decl())
        if not decls:
            raise self._error("empty program")
        return decls

    def _stream_decl(self) -> StreamDecl:
        in_type = self._type_name()
        self._expect("op", "->")
        out_type = self._type_name()
        kind_token = self._next()
        if kind_token.text not in ("filter", "pipeline", "splitjoin",
                                   "feedbackloop"):
            raise self._error(
                "expected filter/pipeline/splitjoin/feedbackloop")
        name = self._expect("ident").text
        params = self._param_list()
        self._params = {p.name for p in params}
        if kind_token.text == "filter":
            return self._filter_body(name, in_type, out_type, params)
        if kind_token.text == "feedbackloop":
            return self._feedback_body(name, in_type, out_type, params)
        return self._composite_body(kind_token.text, name, in_type,
                                    out_type, params)

    def _type_name(self) -> str:
        token = self._next()
        if token.text not in _TYPE_NAMES:
            raise self._error("expected a type name")
        return token.text

    def _param_list(self) -> Tuple[ParamDecl, ...]:
        self._expect("op", "(")
        params: List[ParamDecl] = []
        while not self._accept("op", ")"):
            if params:
                self._expect("op", ",")
            type_name = self._type_name()
            name = self._expect("ident").text
            params.append(ParamDecl(type_name, name))
        return tuple(params)

    # -- filters --------------------------------------------------------------
    def _filter_body(self, name: str, in_type: str, out_type: str,
                     params: Tuple[ParamDecl, ...]) -> FilterDecl:
        self._expect("op", "{")
        states: List[StateDecl] = []
        init_body: S.Body = ()
        rates: Optional[RateSpec] = None
        work_body: S.Body = ()
        while not self._accept("op", "}"):
            if self._accept("keyword", "init"):
                init_body = self._block()
            elif self._accept("keyword", "work"):
                rates = self._rates()
                work_body = self._block()
            elif self._peek().text in _TYPE_NAMES:
                states.append(self._state_decl())
            else:
                raise self._error("expected state/init/work in filter body")
        if rates is None:
            raise self._error(f"filter {name} has no work block")
        return FilterDecl(name, in_type, out_type, params, tuple(states),
                          rates, init_body, work_body)

    def _state_decl(self) -> StateDecl:
        type_name = self._type_name()
        name = self._expect("ident").text
        size: Optional[int] = None
        init: Optional[E.Expr] = None
        array_init: Optional[Tuple[E.Expr, ...]] = None
        if self._accept("op", "["):
            size = int(self._expect("int").text)
            self._expect("op", "]")
        if self._accept("op", "="):
            if self._accept("op", "{"):
                items: List[E.Expr] = []
                while not self._accept("op", "}"):
                    if items:
                        self._expect("op", ",")
                    items.append(self._expr())
                array_init = tuple(items)
            else:
                init = self._expr()
        self._expect("op", ";")
        return StateDecl(type_name, name, size, init, array_init)

    def _rates(self) -> RateSpec:
        pop: Optional[E.Expr] = None
        push: Optional[E.Expr] = None
        peek: Optional[E.Expr] = None
        while self._peek().text in ("pop", "push", "peek"):
            which = self._next().text
            value = self._unary()
            if which == "pop":
                pop = value
            elif which == "push":
                push = value
            else:
                peek = value
        return RateSpec(pop or E.IntConst(0), push or E.IntConst(0), peek)

    # -- statements ---------------------------------------------------------------
    def _block(self) -> S.Body:
        self._expect("op", "{")
        stmts: List[S.Stmt] = []
        while not self._accept("op", "}"):
            stmts.append(self._statement())
        return tuple(stmts)

    def _statement(self) -> S.Stmt:
        token = self._peek()
        if token.text in ("float", "int", "boolean"):
            return self._local_decl()
        if token.text == "for":
            return self._for_stmt()
        if token.text == "if":
            return self._if_stmt()
        if token.text == "push":
            self._next()
            self._expect("op", "(")
            value = self._expr()
            self._expect("op", ")")
            self._expect("op", ";")
            return S.Push(value)
        # assignment or expression statement
        return self._assign_or_expr_stmt()

    def _local_decl(self) -> S.Stmt:
        type_name = self._next().text
        ir_type = _IR_TYPES[type_name]
        name = self._expect("ident").text
        if self._accept("op", "["):
            size = int(self._expect("int").text)
            self._expect("op", "]")
            init: Optional[Tuple[float, ...]] = None
            if self._accept("op", "="):
                self._expect("op", "{")
                items: List[float] = []
                while not self._accept("op", "}"):
                    if items:
                        self._expect("op", ",")
                    items.append(self._const_number())
                init = tuple(items)
            self._expect("op", ";")
            return S.DeclArray(name, ir_type, size, init)
        init_expr: Optional[E.Expr] = None
        if self._accept("op", "="):
            init_expr = self._expr()
        self._expect("op", ";")
        return S.DeclVar(name, ir_type, init_expr)

    def _const_number(self) -> float:
        negative = bool(self._accept("op", "-"))
        token = self._next()
        if token.kind not in ("int", "float"):
            raise self._error("expected a numeric literal")
        value = float(token.text)
        return -value if negative else value

    def _assign_or_expr_stmt(self) -> S.Stmt:
        stmt = self._assign_or_expr()
        self._expect("op", ";")
        return stmt

    def _assign_or_expr(self) -> S.Stmt:
        start = self.position
        if self._peek().kind == "ident":
            name = self._next().text
            index: Optional[E.Expr] = None
            if self._accept("op", "["):
                index = self._expr()
                self._expect("op", "]")
            op_token = self._peek()
            if op_token.text in ("=", "+=", "-=", "*=", "/=", "++", "--"):
                self._next()
                target: L.LValue = (L.ArrayLV(name, index)
                                    if index is not None else L.VarLV(name))
                read: E.Expr = (E.ArrayRead(name, index)
                                if index is not None else E.Var(name))
                if op_token.text == "=":
                    return S.Assign(target, self._expr())
                if op_token.text in ("++", "--"):
                    delta = E.IntConst(1)
                    op = "+" if op_token.text == "++" else "-"
                    return S.Assign(target, E.BinaryOp(op, read, delta))
                value = self._expr()
                return S.Assign(target,
                                E.BinaryOp(op_token.text[0], read, value))
            self.position = start  # plain expression statement
        return S.ExprStmt(self._expr())

    def _for_stmt(self) -> S.Stmt:
        self._expect("keyword", "for")
        self._expect("op", "(")
        self._expect("keyword", "int")
        var = self._expect("ident").text
        self._expect("op", "=")
        start = self._expr()
        self._expect("op", ";")
        cond_var = self._expect("ident").text
        if cond_var != var:
            raise self._error("for-loop condition must test the loop variable")
        self._expect("op", "<")
        end = self._expr()
        self._expect("op", ";")
        update = self._assign_or_expr()
        if not (isinstance(update, S.Assign)
                and isinstance(update.lhs, L.VarLV)
                and update.lhs.name == var):
            raise self._error("for-loop update must assign the loop variable")
        self._expect("op", ")")
        body = self._block() if self._peek().text == "{" \
            else (self._statement(),)
        return S.For(var, start, end, body)

    def _if_stmt(self) -> S.Stmt:
        self._expect("keyword", "if")
        self._expect("op", "(")
        cond = self._expr()
        self._expect("op", ")")
        then_body = self._block()
        else_body: S.Body = ()
        if self._accept("keyword", "else"):
            if self._peek().text == "if":
                else_body = (self._if_stmt(),)
            else:
                else_body = self._block()
        return S.If(cond, then_body, else_body)

    # -- expressions ----------------------------------------------------------------
    def _expr(self) -> E.Expr:
        return self._ternary()

    def _ternary(self) -> E.Expr:
        cond = self._binary(1)
        if self._accept("op", "?"):
            if_true = self._expr()
            self._expect("op", ":")
            if_false = self._expr()
            return E.Select(cond, if_true, if_false)
        return cond

    def _binary(self, min_precedence: int) -> E.Expr:
        left = self._unary()
        while True:
            op = self._peek().text
            precedence = _BINARY_PRECEDENCE.get(op)
            if precedence is None or precedence < min_precedence:
                return left
            self._next()
            right = self._binary(precedence + 1)
            left = E.BinaryOp(op, left, right)

    def _unary(self) -> E.Expr:
        if self._accept("op", "-"):
            operand = self._unary()
            if isinstance(operand, E.IntConst):
                return E.IntConst(-operand.value)
            if isinstance(operand, E.FloatConst):
                return E.FloatConst(-operand.value)
            return E.UnaryOp("-", operand)
        if self._accept("op", "!"):
            return E.UnaryOp("!", self._unary())
        if self._accept("op", "~"):
            return E.UnaryOp("~", self._unary())
        return self._postfix()

    def _postfix(self) -> E.Expr:
        token = self._next()
        if token.kind == "int":
            return E.IntConst(int(token.text))
        if token.kind == "float":
            return E.FloatConst(float(token.text))
        if token.kind == "keyword" and token.text in ("true", "false"):
            return E.BoolConst(token.text == "true")
        if token.kind == "op" and token.text == "(":
            inner = self._expr()
            self._expect("op", ")")
            return inner
        if token.kind == "keyword" and token.text == "pop":
            self._expect("op", "(")
            self._expect("op", ")")
            return E.Pop()
        if token.kind == "keyword" and token.text == "peek":
            self._expect("op", "(")
            offset = self._expr()
            self._expect("op", ")")
            return E.Peek(offset)
        if token.kind == "ident":
            name = token.text
            if self._peek().text == "(":
                if name not in MATH_FUNCS:
                    raise self._error(f"unknown function {name!r}")
                self._next()
                args: List[E.Expr] = []
                while not self._accept("op", ")"):
                    if args:
                        self._expect("op", ",")
                    args.append(self._expr())
                return E.Call(name, tuple(args))
            if self._accept("op", "["):
                index = self._expr()
                self._expect("op", "]")
                return E.ArrayRead(name, index)
            if name in self._params:
                return E.Param(name)
            return E.Var(name)
        raise self._error("expected an expression")

    # -- composites ----------------------------------------------------------------
    def _composite_body(self, kind: str, name: str, in_type: str,
                        out_type: str,
                        params: Tuple[ParamDecl, ...]) -> CompositeDecl:
        saved_params = set(self._params)
        self._expect("op", "{")
        adds: List[AddStmt] = []
        split: Optional[SplitSpec] = None
        join: Optional[Tuple[E.Expr, ...]] = None
        while not self._accept("op", "}"):
            if self._accept("keyword", "split"):
                split = self._split_spec()
                self._expect("op", ";")
            elif self._accept("keyword", "join"):
                self._expect("keyword", "roundrobin")
                join = self._weight_list()
                self._expect("op", ";")
            elif self._accept("keyword", "add"):
                adds.append(self._add_stmt(in_type, out_type))
                self._expect("op", ";")
            else:
                raise self._error("expected add/split/join")
        self._params = saved_params
        if kind == "splitjoin" and (split is None or join is None):
            raise self._error(f"splitjoin {name} needs split and join")
        if not adds:
            raise self._error(f"{kind} {name} adds nothing")
        return CompositeDecl(name, kind, in_type, out_type, params,
                             tuple(adds), split, join)

    def _feedback_body(self, name: str, in_type: str, out_type: str,
                       params: Tuple[ParamDecl, ...]) -> FeedbackDecl:
        """``join roundrobin(a, b); body S(); loop L(); split ...;
        enqueue(v, ...);`` — contextual keywords (body/loop/enqueue are
        ordinary identifiers elsewhere)."""
        self._expect("op", "{")
        join_weights = None
        split = None
        body = None
        loop = None
        enqueue: Tuple[E.Expr, ...] = ()
        while not self._accept("op", "}"):
            if self._accept("keyword", "join"):
                self._expect("keyword", "roundrobin")
                weights = self._weight_list()
                if len(weights) != 2:
                    raise self._error("feedback join takes 2 weights")
                join_weights = (weights[0], weights[1])
            elif self._accept("keyword", "split"):
                split = self._split_spec()
            elif self._peek().kind == "ident" \
                    and self._peek().text in ("body", "loop", "enqueue"):
                which = self._next().text
                if which == "enqueue":
                    enqueue = enqueue + self._weight_list()
                else:
                    stmt = self._add_stmt(in_type, out_type)
                    if which == "body":
                        body = stmt
                    else:
                        loop = stmt
            else:
                raise self._error("expected join/body/loop/split/enqueue")
            self._expect("op", ";")
        if None in (join_weights, split, body, loop) or not enqueue:
            raise self._error(
                f"feedbackloop {name} needs join, body, loop, split, enqueue")
        return FeedbackDecl(name, in_type, out_type, params,
                            join_weights, split, body, loop, enqueue)

    def _split_spec(self) -> SplitSpec:
        if self._accept("keyword", "duplicate"):
            return SplitSpec("duplicate", ())
        self._expect("keyword", "roundrobin")
        return SplitSpec("roundrobin", self._weight_list())

    def _weight_list(self) -> Tuple[E.Expr, ...]:
        self._expect("op", "(")
        weights: List[E.Expr] = []
        while not self._accept("op", ")"):
            if weights:
                self._expect("op", ",")
            weights.append(self._expr())
        return tuple(weights)

    def _add_stmt(self, in_type: str, out_type: str) -> AddStmt:
        if self._peek().text == "splitjoin":
            self._next()
            self._anon_counter += 1
            inline = self._composite_body(
                "splitjoin", f"__anon{self._anon_counter}",
                in_type, out_type, ())
            return AddStmt(inline=inline)
        if self._peek().text == "pipeline":
            self._next()
            self._anon_counter += 1
            inline = self._composite_body(
                "pipeline", f"__anon{self._anon_counter}",
                in_type, out_type, ())
            return AddStmt(inline=inline)
        name = self._expect("ident").text
        self._expect("op", "(")
        args: List[E.Expr] = []
        while not self._accept("op", ")"):
            if args:
                self._expect("op", ",")
            args.append(self._expr())
        return AddStmt(name=name, args=tuple(args))


def parse(source: str) -> List[StreamDecl]:
    """Parse a textual stream program into declarations."""
    return Parser(source).parse_program()
