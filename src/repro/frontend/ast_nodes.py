"""Declaration-level AST of the textual frontend.

Statement/expression bodies are parsed directly into the work-function IR
(:mod:`repro.ir`), with :class:`~repro.ir.expr.Param` placeholders for
stream parameters; only the stream-graph level needs its own nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..ir import expr as E
from ..ir.stmt import Body


@dataclass(frozen=True)
class ParamDecl:
    type_name: str  # "int" | "float"
    name: str


@dataclass(frozen=True)
class StateDecl:
    type_name: str
    name: str
    size: Optional[int]          # None for scalars
    init: Optional[E.Expr]       # scalar initialiser (constant or Param)
    array_init: Optional[Tuple[E.Expr, ...]] = None


@dataclass(frozen=True)
class RateSpec:
    pop: E.Expr
    push: E.Expr
    peek: Optional[E.Expr] = None


@dataclass(frozen=True)
class FilterDecl:
    name: str
    in_type: str
    out_type: str
    params: Tuple[ParamDecl, ...]
    states: Tuple[StateDecl, ...]
    rates: RateSpec
    init_body: Body
    work_body: Body


@dataclass(frozen=True)
class SplitSpec:
    kind: str                     # "duplicate" | "roundrobin"
    weights: Tuple[E.Expr, ...]   # empty for duplicate


@dataclass(frozen=True)
class AddStmt:
    """``add Name(args);`` or an inline anonymous composite."""

    name: Optional[str] = None
    args: Tuple[E.Expr, ...] = ()
    inline: Optional["CompositeDecl"] = None


@dataclass(frozen=True)
class CompositeDecl:
    name: str
    kind: str                     # "pipeline" | "splitjoin"
    in_type: str
    out_type: str
    params: Tuple[ParamDecl, ...]
    adds: Tuple[AddStmt, ...]
    split: Optional[SplitSpec] = None
    join: Optional[Tuple[E.Expr, ...]] = None


@dataclass(frozen=True)
class FeedbackDecl:
    """``feedbackloop`` declaration: join, body, loop, split, enqueue."""

    name: str
    in_type: str
    out_type: str
    params: Tuple[ParamDecl, ...]
    join_weights: Tuple[E.Expr, E.Expr]
    split: SplitSpec
    body: AddStmt
    loop: AddStmt
    enqueue: Tuple[E.Expr, ...]


StreamDecl = Union[FilterDecl, CompositeDecl, FeedbackDecl]
