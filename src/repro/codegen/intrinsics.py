"""SSE intrinsic name mapping for the C++ emitter.

MacroSS emits target-specific intermediate code (§3.5 "Code Generation"):
vector types and intrinsics of the machine the graph was compiled for.
This module centralises the SSE 4.2 mapping used for the Core-i7 target;
transcendentals use the SVML entry points ICC links against.
"""

from __future__ import annotations

#: C type of one SIMD vector of 32-bit floats.
VECTOR_TYPE = "__m128"
VECTOR_INT_TYPE = "__m128i"

#: Arithmetic intrinsics keyed by IR operator.
BINARY_FLOAT = {
    "+": "_mm_add_ps",
    "-": "_mm_sub_ps",
    "*": "_mm_mul_ps",
    "/": "_mm_div_ps",
}

COMPARISON_FLOAT = {
    "==": "_mm_cmpeq_ps",
    "!=": "_mm_cmpneq_ps",
    "<": "_mm_cmplt_ps",
    "<=": "_mm_cmple_ps",
    ">": "_mm_cmpgt_ps",
    ">=": "_mm_cmpge_ps",
}

#: Math intrinsics: SSE where native, SVML elsewhere.
MATH = {
    "sqrt": "_mm_sqrt_ps",
    "min": "_mm_min_ps",
    "max": "_mm_max_ps",
    "abs": "_mm_andnot_ps(_SIGN_MASK, {0})",  # formatted specially
    "sin": "_mm_sin_ps",
    "cos": "_mm_cos_ps",
    "tan": "_mm_tan_ps",
    "asin": "_mm_asin_ps",
    "acos": "_mm_acos_ps",
    "atan": "_mm_atan_ps",
    "exp": "_mm_exp_ps",
    "log": "_mm_log_ps",
    "pow": "_mm_pow_ps",
    "floor": "_mm_floor_ps",
    "ceil": "_mm_ceil_ps",
    "round": "_mm_round_ps({0}, _MM_FROUND_TO_NEAREST_INT)",
    "rint": "_mm_round_ps({0}, _MM_FROUND_TO_NEAREST_INT)",
}

#: Integer (epi32) arithmetic; shifts take an immediate count.
BINARY_INT = {
    "+": "_mm_add_epi32",
    "-": "_mm_sub_epi32",
    "*": "_mm_mullo_epi32",   # SSE4.1
    "&": "_mm_and_si128",
    "|": "_mm_or_si128",
    "^": "_mm_xor_si128",
}

SHIFT_INT = {"<<": "_mm_slli_epi32", ">>": "_mm_srli_epi32"}

COMPARISON_INT = {
    "==": "_mm_cmpeq_epi32",
    ">": "_mm_cmpgt_epi32",
    "<": "_mm_cmplt_epi32",
}

SPLAT = "_mm_set1_ps"
SPLAT_INT = "_mm_set1_epi32"
SET_LANES = "_mm_set_ps"  # note: takes lanes high-to-low
SET_LANES_INT = "_mm_set_epi32"
LOAD_U = "_mm_loadu_ps"
STORE_U = "_mm_storeu_ps"

#: Scalar math: C library names.
SCALAR_MATH = {
    "sin": "sinf", "cos": "cosf", "tan": "tanf",
    "asin": "asinf", "acos": "acosf", "atan": "atanf", "atan2": "atan2f",
    "sqrt": "sqrtf", "exp": "expf", "log": "logf", "pow": "powf",
    "abs": "fabsf", "min": "fminf", "max": "fmaxf",
    "floor": "floorf", "ceil": "ceilf", "round": "roundf", "rint": "rintf",
    "float": "(float)", "int": "(int)",
}
