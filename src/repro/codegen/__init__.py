"""Target-specific intermediate code generation (C++ with SSE intrinsics)."""

from .cpp import CppEmitter, emit_cpp

__all__ = ["CppEmitter", "emit_cpp"]
