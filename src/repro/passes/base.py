"""Pass-pipeline building blocks: the :class:`Pass` protocol, the shared
:class:`CompilationContext`, and the pipeline error types.

Design constraints:

* This package is the *mechanism* layer: it knows how to thread a context
  through an ordered pass list with tracing, hooks, and verification.  The
  *policy* — which passes exist, what the ablation presets are — lives in
  :mod:`repro.passes.algorithm1` and :mod:`repro.simd.pipeline`.
* No module here imports :mod:`repro.simd.pipeline` at runtime (the driver
  imports us); type names from it appear only under ``TYPE_CHECKING``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Set,
    Tuple,
    runtime_checkable,
)

from ..graph.stream_graph import StreamGraph
from ..obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..simd.machine import MachineDescription
    from ..simd.pipeline import CompilationReport, MacroSSOptions
    from ..simd.analysis import Verdict
    from ..simd.segments import HorizontalCandidate


class PipelineError(Exception):
    """Malformed pipeline: unknown pass name, duplicate pass, bad spec."""


class PassVerificationError(Exception):
    """A pass left the work graph in an invalid state
    (``verify_each_pass=True``)."""

    def __init__(self, pass_name: str, problems: List[str]) -> None:
        self.pass_name = pass_name
        self.problems = list(problems)
        super().__init__(
            f"after pass {pass_name!r}: " + "; ".join(self.problems))


#: Hook type: called as ``hook(pass_name, work_graph)`` after every pass,
#: with the (mutable, mid-compilation) work graph.
PassHook = Callable[[str, StreamGraph], None]


@dataclass
class CompilationContext:
    """Everything Algorithm-1 passes share.

    One context lives for the duration of one :func:`compile_graph` call:
    the immutable source graph, the mutable work graph each pass rewrites,
    the machine/options the pipeline was compiled for, the report being
    filled in, and the inter-pass scratch state (verdicts, candidates,
    segments, …) that the monolithic driver used to keep in local
    variables.
    """

    #: the caller's source graph (never mutated).
    source: StreamGraph
    #: the clone every pass rewrites in place.
    work: StreamGraph
    machine: "MachineDescription"
    options: "MacroSSOptions"
    report: "CompilationReport"
    tracer: Tracer
    #: actor id -> core, when a multicore partition constrains compilation.
    partition: Optional[Dict[int, int]] = None
    core_of: Dict[int, int] = field(default_factory=dict)
    pass_hook: Optional[PassHook] = None

    # --- inter-pass state (produced / consumed along the pipeline) ---
    #: prepass.analysis: actor id -> SIMDizability verdict.
    verdicts: Dict[int, "Verdict"] = field(default_factory=dict)
    #: segments.horizontal: surviving split-join candidates.
    candidates: List["HorizontalCandidate"] = field(default_factory=list)
    #: segments.horizontal: actor ids claimed by a horizontal candidate.
    claimed_by_horizontal: Set[int] = field(default_factory=set)
    #: segments.vertical: maximal vertical segments (lists of actor ids).
    segments: List[List[int]] = field(default_factory=list)
    #: vertical.fuse: (actor id, "vertical" | "single") pending
    #: single-actor vectorization.
    simdized_ids: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def sw(self) -> int:
        return self.machine.simd_width

    def stats(self) -> Tuple[int, int]:
        """(actor count, tape count) of the work graph right now."""
        return len(self.work.actors), len(self.work.tapes)


@runtime_checkable
class Pass(Protocol):
    """One Algorithm-1 (or custom) graph-rewriting pass.

    ``name`` labels the trace span and the ``pass_hook`` dispatch;
    ``applies`` lets a pass opt out for a given context (the manager still
    emits its span and hook so trails stay uniform); ``run`` mutates
    ``ctx.work``/``ctx.report`` and returns extra span attributes
    (``detail=...`` by convention) or ``None``.

    The eight standard passes always apply and handle disabled
    :class:`MacroSSOptions` toggles *inside* ``run`` — that preserves the
    pre-refactor trace schema, where every pass span appears in every
    compile regardless of ablation.
    """

    name: str

    def applies(self, ctx: CompilationContext) -> bool: ...

    def run(self, ctx: CompilationContext) -> Optional[Dict[str, Any]]: ...


class PassBase:
    """Convenience base: ``applies`` defaults to True, ``name`` is a class
    attribute."""

    name: str = "<unnamed>"

    def applies(self, ctx: CompilationContext) -> bool:
        return True

    def run(self, ctx: CompilationContext) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
