"""Pass-manager architecture for the MacroSS driver (Algorithm 1).

The paper's driver is an ordered sequence of graph-rewriting passes; this
package makes that structure explicit:

* :class:`Pass` — the protocol every pass implements (``name``,
  ``applies(ctx)``, ``run(ctx)``);
* :class:`CompilationContext` — the state one compilation threads through
  its passes (work graph, report, machine, options, tracer, …);
* :class:`PassManager` — ordered execution with per-pass tracing,
  ``pass_hook`` dispatch, and optional inter-pass invariant verification;
* :mod:`repro.passes.algorithm1` — the paper's eight stages as pass
  classes, plus the name registry custom pipelines are built from.

``repro.simd.pipeline.compile_graph`` is a thin wrapper that compiles
:class:`MacroSSOptions` into one of these pipelines.
"""

from .algorithm1 import (
    DEFAULT_PASS_NAMES,
    PASS_REGISTRY,
    HorizontalApply,
    HorizontalSegments,
    PrepassAnalysis,
    RepetitionAdjust,
    SingleActorVectorize,
    TapeOptimize,
    VerticalFuse,
    VerticalSegments,
    default_pipeline,
)
from .base import (
    CompilationContext,
    Pass,
    PassBase,
    PassHook,
    PassVerificationError,
    PipelineError,
)
from .manager import PassManager, PipelineSpec

__all__ = [
    "CompilationContext", "Pass", "PassBase", "PassHook",
    "PassVerificationError", "PipelineError",
    "PassManager", "PipelineSpec",
    "DEFAULT_PASS_NAMES", "PASS_REGISTRY", "default_pipeline",
    "PrepassAnalysis", "HorizontalSegments", "VerticalSegments",
    "VerticalFuse", "RepetitionAdjust", "SingleActorVectorize",
    "HorizontalApply", "TapeOptimize",
]
