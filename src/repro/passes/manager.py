""":class:`PassManager`: ordered pass execution with tracing, hook
dispatch, and optional inter-pass verification.

Per pass, the manager

1. opens a trace span named after the pass (category ``"pass"``, with
   before/after actor and tape counts plus whatever the pass returns from
   ``run`` — identical to the spans the monolithic driver emitted);
2. invokes ``run`` when ``applies(ctx)`` holds (spans and hooks fire
   either way, so pass trails stay uniform across ablations);
3. dispatches ``ctx.pass_hook(name, work)``;
4. when ``verify_each_pass`` is set, re-validates the work graph with
   :func:`repro.graph.validate.invariant_problems` and raises
   :class:`PassVerificationError` naming the offending pass.
"""

from __future__ import annotations

import difflib
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

from .base import CompilationContext, Pass, PassVerificationError, \
    PipelineError

#: What :meth:`PassManager.coerce` accepts: a manager, pass instances, or
#: pass names resolved through the registry.
PipelineSpec = Union["PassManager", Sequence[Union[str, Pass]]]


class PassManager:
    """An ordered, duplicate-free pipeline of passes."""

    def __init__(self, passes: Sequence[Pass]) -> None:
        passes = list(passes)
        for p in passes:
            if not hasattr(p, "name") or not hasattr(p, "run"):
                raise PipelineError(
                    f"{p!r} does not implement the Pass protocol "
                    f"(name/applies/run)")
        duplicates = sorted(name for name, count in
                            Counter(p.name for p in passes).items()
                            if count > 1)
        if duplicates:
            raise PipelineError(
                f"duplicate pass(es) in pipeline: {', '.join(duplicates)}")
        self.passes: Tuple[Pass, ...] = tuple(passes)

    # --- construction -----------------------------------------------------

    @classmethod
    def from_names(cls, names: Sequence[str],
                   registry: Optional[Dict[str, Type]] = None
                   ) -> "PassManager":
        """Build a pipeline from pass names.

        ``registry`` defaults to the Algorithm-1 ``PASS_REGISTRY``;
        unknown names raise :class:`PipelineError` with a did-you-mean
        suggestion and the registered-name listing.
        """
        if registry is None:
            from .algorithm1 import PASS_REGISTRY
            registry = PASS_REGISTRY
        passes: List[Pass] = []
        for name in names:
            try:
                passes.append(registry[name]())
            except KeyError:
                close = difflib.get_close_matches(name, registry, n=1)
                hint = f" — did you mean {close[0]!r}?" if close else ""
                raise PipelineError(
                    f"unknown pass {name!r}{hint} (registered passes: "
                    f"{', '.join(registry)})") from None
        return cls(passes)

    @classmethod
    def default(cls) -> "PassManager":
        """The standard eight-pass Algorithm-1 pipeline."""
        from .algorithm1 import default_pipeline
        return cls(default_pipeline())

    @classmethod
    def coerce(cls, spec: PipelineSpec) -> "PassManager":
        """Normalize a pipeline spec: an existing manager passes through,
        a sequence may mix pass names and pass instances."""
        if isinstance(spec, PassManager):
            return spec
        if isinstance(spec, str):
            raise PipelineError(
                f"a bare string is ambiguous; pass a sequence of pass "
                f"names (got {spec!r})")
        passes: List[Pass] = []
        for item in spec:
            if isinstance(item, str):
                single = cls.from_names([item])
                passes.append(single.passes[0])
            else:
                passes.append(item)
        return cls(passes)

    # --- introspection ----------------------------------------------------

    @property
    def pass_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    def __len__(self) -> int:
        return len(self.passes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PassManager {' -> '.join(self.pass_names)}>"

    # --- execution --------------------------------------------------------

    def run(self, ctx: CompilationContext, *,
            verify_each_pass: bool = False) -> CompilationContext:
        """Execute every pass in order against ``ctx``; returns ``ctx``."""
        for p in self.passes:
            actors, tapes = ctx.stats()
            with ctx.tracer.span(p.name, cat="pass", actors_before=actors,
                                 tapes_before=tapes) as sp:
                if p.applies(ctx):
                    extra = p.run(ctx) or {}
                else:
                    extra = {"detail": "skipped (pass does not apply)"}
                actors_after, tapes_after = ctx.stats()
                sp.add(actors_after=actors_after, tapes_after=tapes_after,
                       **extra)
                if ctx.pass_hook is not None:
                    ctx.pass_hook(p.name, ctx.work)
                if verify_each_pass:
                    self._verify(p.name, ctx)
        return ctx

    @staticmethod
    def _verify(pass_name: str, ctx: CompilationContext) -> None:
        from ..graph.validate import invariant_problems
        problems = invariant_problems(ctx.work)
        if problems:
            raise PassVerificationError(pass_name, problems)
