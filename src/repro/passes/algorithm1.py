"""The eight Algorithm-1 stages as :class:`Pass` classes.

Each class is a faithful port of one phase of the former monolithic
``compile_graph`` driver (``repro.simd.pipeline``): same transformations,
same report entries, same trace-span details.  They communicate through
:class:`repro.passes.base.CompilationContext` fields instead of driver
locals, which is what makes reordering, ablating, and inserting custom
passes possible.

``PASS_REGISTRY`` maps pass names (the public, trace-stable
``PASS_NAMES`` strings) to classes; :func:`default_pipeline` instantiates
the standard ordered eight.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple, Type

from ..schedule.rates import repetition_vector
from ..schedule.scaling import simd_scaling_factor
from ..simd.analysis import Verdict, simdizable_filters
from ..simd.horizontal import MergeConflict, apply_horizontal
from ..simd.segments import find_horizontal_candidates, find_vertical_segments
from ..simd.single_actor import vectorize_actor
from ..simd.tape_opt import optimize_tapes
from ..simd.technique_choice import prefer_horizontal
from ..simd.vertical import fuse_segment
from .base import CompilationContext, PassBase


class PrepassAnalysis(PassBase):
    """Phase 1: per-filter SIMDizability verdicts (+ feedback-cycle veto)."""

    name = "prepass.analysis"

    def run(self, ctx: CompilationContext) -> Dict[str, Any]:
        work = ctx.work
        verdicts = simdizable_filters(work, ctx.machine)
        # Actors inside feedback cycles stay scalar: SIMDizing them would
        # multiply their blocking factor by SW and starve the loop's
        # delays.
        for actor_id in work.actors_on_cycles():
            if actor_id in verdicts and verdicts[actor_id].simdizable:
                verdicts[actor_id] = Verdict.no("inside a feedback loop")
        ctx.verdicts = verdicts
        ctx.report.verdicts = {work.actors[aid].name: verdict
                               for aid, verdict in verdicts.items()}
        simdizable = sum(1 for v in verdicts.values() if v.simdizable)
        return {"detail":
                f"{simdizable}/{len(verdicts)} filters SIMDizable"}


class HorizontalSegments(PassBase):
    """Phase 2a: find split-join candidates for horizontal SIMDization and
    arbitrate vertical/horizontal overlaps through the cost model (§3.5)."""

    name = "segments.horizontal"

    def run(self, ctx: CompilationContext) -> Dict[str, Any]:
        work, options, report = ctx.work, ctx.options, ctx.report
        candidates = []
        if options.horizontal:
            candidates = find_horizontal_candidates(work, ctx.machine)
            cyclic = work.actors_on_cycles()
            if cyclic:
                candidates = [c for c in candidates
                              if not (c.all_actor_ids() & cyclic)]
            if ctx.partition is not None:
                candidates = [
                    c for c in candidates
                    if len({ctx.partition[aid] for aid in
                            c.all_actor_ids()
                            | {c.splitter_id, c.joiner_id}}) == 1]
            if options.vertical:
                # §3.5: actors in both GV and GH — the cost model decides
                # which technique each overlapping split-join gets.
                base_reps = repetition_vector(work)
                arbitrated = []
                for candidate in candidates:
                    if prefer_horizontal(work, candidate, base_reps,
                                         ctx.machine):
                        arbitrated.append(candidate)
                    else:
                        names = [work.actors[a].name
                                 for b in candidate.branches for a in b]
                        report.skipped_horizontal.append(
                            f"{'/'.join(names)}: cost model chose "
                            f"vertical")
                candidates = arbitrated
            for candidate in candidates:
                ctx.claimed_by_horizontal |= candidate.all_actor_ids()
        ctx.candidates = candidates
        return {"detail": f"{len(candidates)} candidate(s), "
                          f"{len(report.skipped_horizontal)} skipped"}


class VerticalSegments(PassBase):
    """Phase 2b: maximal vertical pipelines over the unclaimed actors, and
    scalar-decision bookkeeping for non-SIMDizable filters."""

    name = "segments.vertical"

    def run(self, ctx: CompilationContext) -> Dict[str, Any]:
        work, options = ctx.work, ctx.options
        segments: List[List[int]] = []
        if options.single_actor:
            segments = find_vertical_segments(
                work, ctx.verdicts, exclude=ctx.claimed_by_horizontal,
                same_group=ctx.partition)
            if not options.vertical:
                segments = [[aid] for segment in segments
                            for aid in segment]
        ctx.segments = segments

        # Record why non-SIMDizable filters stay scalar.
        for aid, verdict in ctx.verdicts.items():
            if not verdict.simdizable and \
                    aid not in ctx.claimed_by_horizontal:
                name = work.actors[aid].name
                ctx.report.decisions[name] = \
                    "scalar:" + "; ".join(verdict.reasons)
        return {"detail": f"{len(segments)} segment(s)"}


class VerticalFuse(PassBase):
    """Phase 3a: fuse multi-actor vertical segments into coarse actors."""

    name = "vertical.fuse"

    def run(self, ctx: CompilationContext) -> Dict[str, Any]:
        work, report = ctx.work, ctx.report
        reps = repetition_vector(work)
        simdized_ids: List[Tuple[int, str]] = []
        for segment in ctx.segments:
            names = [work.actors[aid].name for aid in segment]
            if len(segment) >= 2:
                coarse_id = fuse_segment(work, segment, reps)
                if ctx.partition is not None:
                    ctx.core_of[coarse_id] = ctx.core_of[segment[0]]
                report.vertical_segments.append(names)
                coarse_name = work.actors[coarse_id].name
                for name in names:
                    report.decisions[name] = f"vertical:{coarse_name}"
                simdized_ids.append((coarse_id, "vertical"))
            else:
                report.decisions[names[0]] = "single"
                simdized_ids.append((segment[0], "single"))
        ctx.simdized_ids = simdized_ids
        return {"detail":
                f"{len(report.vertical_segments)} segment(s) fused"}


class RepetitionAdjust(PassBase):
    """Phase 3b: Equation (1) — the factor M the repetition vector must be
    scaled by so every SIMDizable actor's repetition is a multiple of SW.

    Recomputing the repetition vector after vectorization applies it
    implicitly (the vectorized rates force it); M is recorded for
    reporting and tests.
    """

    name = "repetition.adjust"

    def run(self, ctx: CompilationContext) -> Dict[str, Any]:
        reps_after_fusion = repetition_vector(ctx.work)
        ctx.report.scaling_factor = simd_scaling_factor(
            ctx.sw, reps_after_fusion,
            [aid for aid, _ in ctx.simdized_ids])
        return {"detail": f"M={ctx.report.scaling_factor}",
                "scaling_factor": ctx.report.scaling_factor,
                "steady_reps": sum(reps_after_fusion.values())}


class SingleActorVectorize(PassBase):
    """Phase 4: single-actor SIMDization of standalone and coarse actors."""

    name = "single_actor.vectorize"

    def run(self, ctx: CompilationContext) -> Dict[str, Any]:
        for actor_id, _kind in ctx.simdized_ids:
            actor = ctx.work.actors[actor_id]
            actor.spec = vectorize_actor(actor.spec, ctx.sw)
        return {"detail": f"{len(ctx.simdized_ids)} actor(s) vectorized"}


class HorizontalApply(PassBase):
    """Phase 5: horizontally SIMDize the surviving split-join candidates."""

    name = "horizontal.apply"

    def run(self, ctx: CompilationContext) -> Dict[str, Any]:
        work, report = ctx.work, ctx.report
        for candidate in ctx.candidates:
            level_names = [[work.actors[aid].name for aid in branch]
                           for branch in candidate.branches]
            flat_names = [name for branch in level_names
                          for name in branch]
            before = set(work.actors)
            try:
                apply_horizontal(work, candidate, ctx.machine)
            except MergeConflict as exc:
                report.skipped_horizontal.append(
                    f"{'/'.join(flat_names)}: {exc}")
                for name in flat_names:
                    report.decisions[name] = \
                        f"scalar:horizontal merge failed ({exc})"
                continue
            if ctx.partition is not None:
                region_core = ctx.core_of[candidate.splitter_id]
                for new_id in set(work.actors) - before:
                    ctx.core_of[new_id] = region_core
            report.horizontal_splitjoins.append(flat_names)
            for name in flat_names:
                report.decisions[name] = "horizontal"
        return {"detail": f"{len(report.horizontal_splitjoins)} "
                          f"split-join(s) merged"}


class TapeOptimize(PassBase):
    """Phase 6: per-boundary tape strategy selection (§3.4)."""

    name = "tape.optimize"

    def run(self, ctx: CompilationContext) -> Dict[str, Any]:
        if ctx.options.tape_optimization:
            ctx.report.tape_strategies = optimize_tapes(ctx.work,
                                                        ctx.machine)
        return {"detail":
                f"{len(ctx.report.tape_strategies)} tape(s) optimized"}


#: pass name -> class, for building pipelines from name lists.  Extend
#: this (or pass an explicit registry to ``PassManager.from_names``) to
#: make custom passes addressable by name.
PASS_REGISTRY: Dict[str, Type[PassBase]] = {
    cls.name: cls for cls in (
        PrepassAnalysis,
        HorizontalSegments,
        VerticalSegments,
        VerticalFuse,
        RepetitionAdjust,
        SingleActorVectorize,
        HorizontalApply,
        TapeOptimize,
    )
}

#: the standard Algorithm-1 order.
DEFAULT_PASS_NAMES: Tuple[str, ...] = tuple(PASS_REGISTRY)


def default_pipeline() -> List[PassBase]:
    """Fresh instances of the eight Algorithm-1 passes, in driver order."""
    return [PASS_REGISTRY[name]() for name in DEFAULT_PASS_NAMES]
