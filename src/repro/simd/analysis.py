"""SIMDizability analysis (§3.1, last paragraph).

An actor is excluded from single-actor / vertical SIMDization when it:

* has mutable state (writes a state variable in its work body) — parallel
  lane executions would race on it;
* is a splitter or joiner (pure tape movement, no computation) — handled by
  the caller, since those are not :class:`FilterSpec`;
* calls a math function the target SIMD engine does not implement;
* has input-tape-dependent control flow or memory accesses (an ``if``
  condition, loop bound, or array subscript computed from popped/peeked
  data).  The paper lets a cost model decide whether to vectorize such
  actors with unpack/repack bridges; this reproduction conservatively
  rejects them (documented deviation in DESIGN.md).

Sources (``pop == 0``) are rejected unless stateless — a stateless source
is a constant generator and vectorizes trivially, but real sources carry
counters/PRNG state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Set, Tuple

from ..graph.actor import FilterSpec
from ..ir import expr as E
from ..ir import lvalue as L
from ..ir import stmt as S
from ..ir.visitors import iter_expr
from .machine import MachineDescription


@dataclass(frozen=True)
class Verdict:
    """Outcome of analysing one actor."""

    simdizable: bool
    reasons: Tuple[str, ...] = ()

    @staticmethod
    def ok() -> "Verdict":
        return Verdict(True)

    @staticmethod
    def no(*reasons: str) -> "Verdict":
        return Verdict(False, tuple(reasons))


def written_state_vars(spec: FilterSpec) -> Set[str]:
    """Names of state variables assigned in the work body."""
    state_names = {var.name for var in spec.state}
    written: Set[str] = set()
    for stmt in _walk_stmts(spec.work_body):
        if isinstance(stmt, S.Assign):
            name = getattr(stmt.lhs, "name", None)
            if name in state_names:
                written.add(name)
    return written


def is_stateful(spec: FilterSpec) -> bool:
    """True when the work body mutates persistent state.

    Read-only state (e.g. coefficient tables filled by ``init``) does not
    make an actor stateful — every lane reads the same values.
    """
    return bool(written_state_vars(spec))


def tainted_vars(body: S.Body) -> Set[str]:
    """Variables (and arrays) whose values derive from input-tape data.

    Fixpoint dataflow: seeds are targets of assignments whose right-hand
    side reads the tape; taint propagates through assignments.
    """
    tainted: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for stmt in _walk_stmts(body):
            target: str | None = None
            sources: Tuple[E.Expr, ...] = ()
            if isinstance(stmt, S.Assign):
                target = getattr(stmt.lhs, "name", None)
                sources = (stmt.rhs,)
            elif isinstance(stmt, S.DeclVar) and stmt.init is not None:
                target = stmt.name
                sources = (stmt.init,)
            if target is None or target in tainted:
                continue
            if any(_expr_tainted(src, tainted) for src in sources):
                tainted.add(target)
                changed = True
    return tainted


def _expr_tainted(expr: E.Expr, tainted: Set[str]) -> bool:
    for node in iter_expr(expr):
        if isinstance(node, (E.Pop, E.Peek, E.VPop, E.VPeek,
                             E.GatherPop, E.GatherPeek,
                             E.InternalPop, E.InternalPeek)):
            return True
        if isinstance(node, (E.Var, E.ArrayRead)) and node.name in tainted:
            return True
    return False


def _control_positions(body: S.Body):
    """Yield (description, expr) pairs for every control-sensitive
    position: if conditions, loop bounds, array subscripts."""
    for stmt in _walk_stmts(body):
        if isinstance(stmt, S.If):
            yield "if condition", stmt.cond
        elif isinstance(stmt, S.For):
            yield "loop bound", stmt.start
            yield "loop bound", stmt.end
        elif isinstance(stmt, S.Assign):
            if isinstance(stmt.lhs, (L.ArrayLV, L.ArrayLaneLV)):
                yield "array subscript", stmt.lhs.index
        for top in _stmt_exprs(stmt):
            for node in iter_expr(top):
                if isinstance(node, E.ArrayRead):
                    yield "array subscript", node.index
                elif isinstance(node, (E.Peek, E.VPeek)):
                    yield "peek offset", node.offset


def analyze_filter(spec: FilterSpec, machine: MachineDescription) -> Verdict:
    """Decide single-actor SIMDizability of ``spec`` on ``machine``."""
    reasons = []
    written = written_state_vars(spec)
    if written:
        reasons.append(f"stateful: writes {sorted(written)}")
    if spec.pop == 0 and not spec.state:
        # Stateless source: vectorizable in principle, but pointless.
        reasons.append("source actor")
    elif spec.pop == 0:
        reasons.append("stateful source actor")

    unsupported = sorted(
        {node.func for stmt in _walk_stmts(spec.work_body)
         for top in _stmt_exprs(stmt)
         for node in iter_expr(top)
         if isinstance(node, E.Call)
         and not machine.supports_vector_call(node.func)})
    if unsupported:
        reasons.append(f"calls without SIMD support: {unsupported}")

    taint = tainted_vars(spec.work_body)
    for description, expr in _control_positions(spec.work_body):
        if _expr_tainted(expr, taint):
            reasons.append(f"input-tape-dependent {description}")
            break

    return Verdict(not reasons, tuple(reasons))


def simdizable_filters(graph, machine: MachineDescription) -> dict[int, Verdict]:
    """Analyse every filter of a flat graph; splitters/joiners are excluded
    implicitly (they are not filters)."""
    verdicts: dict[int, Verdict] = {}
    for actor in graph.filters():
        verdicts[actor.id] = analyze_filter(actor.spec, machine)
    return verdicts


# -- tiny local walkers (avoid importing visitors' heavier helpers) ------------

def _walk_stmts(body: S.Body):
    for stmt in body:
        yield stmt
        if isinstance(stmt, S.For):
            yield from _walk_stmts(stmt.body)
        elif isinstance(stmt, S.If):
            yield from _walk_stmts(stmt.then_body)
            yield from _walk_stmts(stmt.else_body)


def _stmt_exprs(stmt: S.Stmt):
    from ..ir.visitors import exprs_of_stmt
    return exprs_of_stmt(stmt)
