"""Streaming Address Generation Unit (§3.4, Figures 8 and 9).

When a vectorized actor replaces its strided scalar tape accesses with
plain vector accesses, the tape's memory layout becomes *lane-ordered*:
the producer's j-th vector group occupies addresses ``j*SW .. j*SW+SW-1``,
lane ``k`` holding the element of the k-th merged execution.  A scalar
neighbour that still wants elements in scalar order must translate each
sequential index ``i`` to::

    address(i) = (i mod X) * SW  +  (i div X) mod SW  +  (i div (X*SW)) * X*SW

where ``X`` is the vectorized actor's push (or pop) rate.  Figure 8's
software sequence costs ~6 cycles per access on a Core i7; the SAGU
(Figure 9) keeps three small counters in hardware and produces the same
stream for the cost of an address-register post-increment.

This module provides both the counter-accurate hardware model and the
closed-form software translation, so tests can prove them equivalent, and
the code generator can emit either form.
"""

from __future__ import annotations

from dataclasses import dataclass


def software_address(index: int, push_count: int, simd_width: int,
                     base: int = 0) -> int:
    """Closed-form translation of sequential index -> lane-ordered address
    (the effect of Figure 8's code)."""
    if push_count <= 0 or simd_width <= 0:
        raise ValueError("push_count and simd_width must be positive")
    block = push_count * simd_width
    within = index % block
    return (base
            + (index // block) * block
            + (within % push_count) * simd_width
            + within // push_count)


@dataclass
class SAGU:
    """Counter-accurate model of Figure 9's hardware.

    ``base_counter`` walks the rows of the current column (0..push_count-1),
    ``stride_counter`` the columns (0..simd_width-1), ``offset_address``
    jumps a full block when all columns are consumed.  Reading
    :meth:`next_address` both returns the current effective address and
    advances the unit — matching the post-increment addressing mode the
    paper proposes.
    """

    push_count: int
    simd_width: int
    base_address: int = 0

    def __post_init__(self) -> None:
        if self.push_count <= 0 or self.simd_width <= 0:
            raise ValueError("push_count and simd_width must be positive")
        self.base_counter = 0
        self.stride_counter = 0
        self.offset_address = 0

    def reset(self) -> None:
        """SAGU setup opcode: zero the internal counters."""
        self.base_counter = 0
        self.stride_counter = 0
        self.offset_address = 0

    def peek_address(self) -> int:
        # base_counter << LOG2_SIMD + stride_counter + offset + base (Fig. 8).
        return (self.base_address
                + self.offset_address
                + self.base_counter * self.simd_width
                + self.stride_counter)

    def next_address(self) -> int:
        address = self.peek_address()
        # Increment logic of Figure 9: each access bumps the base counter;
        # a full column bumps the stride counter; a full block bumps the
        # offset address.
        self.base_counter += 1
        if self.base_counter == self.push_count:
            self.base_counter = 0
            self.stride_counter += 1
            if self.stride_counter == self.simd_width:
                self.stride_counter = 0
                self.offset_address += self.push_count * self.simd_width
        return address

    def address_stream(self, count: int) -> list[int]:
        return [self.next_address() for _ in range(count)]


def lane_ordered_layout(items: list, push_count: int,
                        simd_width: int) -> list:
    """Arrange a scalar-order item sequence the way a vectorized producer's
    plain vector pushes would lay it out in memory.

    Used by tests: reading ``layout[software_address(i, ...)]`` must
    recover ``items[i]``.
    """
    total = len(items)
    block = push_count * simd_width
    if total % block:
        raise ValueError(f"item count {total} is not a multiple of {block}")
    layout: list = [None] * total
    for index, item in enumerate(items):
        layout[software_address(index, push_count, simd_width)] = item
    return layout
