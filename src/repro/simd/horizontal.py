"""Horizontal SIMDization (§3.3).

Replaces ``SW`` task-parallel isomorphic actors inside a split-join with a
single data-parallel actor working on *vector tapes*; lane ``k`` carries the
k-th original branch.  Stateful actors are eligible: state lives per lane
and updates exactly as before.  The splitter and joiner are replaced by
HSplitter/HJoiner, the only points where scalar<->vector packing happens.

When the split-join has ``k * SW`` branches, the transformation produces
``k`` SIMD chains behind a reduced round-robin splitter/joiner pair (each
group of SW adjacent branches merges into one chain).

The merge is a structural zip over the SW work/init bodies: identical
nodes stay as they are, constants that differ across branches fuse into
:class:`~repro.ir.expr.VectorConst` lanes (the ``{5, 6, 7, 8}`` constant of
Figure 6b), and tape operations become their vector forms.  Variables fed
by vector data are re-typed as vectors; variables whose values can never
diverge across lanes (Figure 6b's ``place_holder``) stay scalar so they can
keep indexing arrays and steering control flow.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence, Set, Tuple

from ..graph.actor import FilterSpec, StateVar
from ..graph.builtins import (
    HJoinerSpec,
    HSplitterSpec,
    JoinerSpec,
    SplitKind,
    SplitterSpec,
)
from ..graph.stream_graph import StreamGraph
from ..ir import expr as E
from ..ir import lvalue as L
from ..ir import stmt as S
from ..ir.stmt import Body
from ..ir.types import Scalar, Vector
from ..ir.visitors import iter_stmts
from .machine import MachineDescription
from .segments import HorizontalCandidate
from .single_actor import expr_is_vector


class MergeConflict(Exception):
    """The candidate actors cannot be merged into one SIMD actor (divergent
    structure, or divergence in a position that must stay scalar)."""


# --- expression merging --------------------------------------------------------

def merge_exprs(exprs: Sequence[E.Expr]) -> E.Expr:
    """Merge one expression position across the SW branches."""
    first = exprs[0]
    kind = type(first)
    if any(type(e) is not kind for e in exprs):
        raise MergeConflict(
            f"divergent expression kinds: {[type(e).__name__ for e in exprs]}")

    if kind in (E.IntConst, E.FloatConst, E.BoolConst):
        values = [e.value for e in exprs]
        if all(v == values[0] for v in values):
            return first
        return E.VectorConst(tuple(values))
    if kind is E.Var:
        _require(all(e.name == first.name for e in exprs), "variable names")
        return first
    if kind is E.ArrayRead:
        _require(all(e.name == first.name for e in exprs), "array names")
        return E.ArrayRead(first.name, merge_exprs([e.index for e in exprs]))
    if kind is E.BinaryOp:
        _require(all(e.op == first.op for e in exprs), "operators")
        return E.BinaryOp(first.op,
                          merge_exprs([e.left for e in exprs]),
                          merge_exprs([e.right for e in exprs]))
    if kind is E.UnaryOp:
        _require(all(e.op == first.op for e in exprs), "operators")
        return E.UnaryOp(first.op, merge_exprs([e.operand for e in exprs]))
    if kind is E.Call:
        _require(all(e.func == first.func for e in exprs), "call targets")
        args = [merge_exprs([e.args[i] for e in exprs])
                for i in range(len(first.args))]
        return E.Call(first.func, tuple(args))
    if kind is E.Select:
        return E.Select(merge_exprs([e.cond for e in exprs]),
                        merge_exprs([e.if_true for e in exprs]),
                        merge_exprs([e.if_false for e in exprs]))
    if kind is E.Pop:
        return E.VPop()
    if kind is E.Peek:
        return E.VPeek(merge_exprs([e.offset for e in exprs]))
    raise MergeConflict(f"cannot horizontally merge {kind.__name__}")


def _require(condition: bool, what: str) -> None:
    if not condition:
        raise MergeConflict(f"divergent {what}")


# --- statement merging -----------------------------------------------------------

def merge_bodies(bodies: Sequence[Body],
                 forced_vectors: Set[str]) -> Body:
    """Zip-merge SW statement bodies.  ``forced_vectors`` collects names of
    arrays whose initialisers diverge (they must become vector arrays)."""
    length = len(bodies[0])
    _require(all(len(b) == length for b in bodies), "body lengths")
    merged: List[S.Stmt] = []
    for index in range(length):
        merged.append(_merge_stmt([b[index] for b in bodies], forced_vectors))
    return tuple(merged)


def _merge_stmt(stmts: Sequence[S.Stmt], forced: Set[str]) -> S.Stmt:
    first = stmts[0]
    kind = type(first)
    if any(type(s) is not kind for s in stmts):
        raise MergeConflict(
            f"divergent statement kinds: {[type(s).__name__ for s in stmts]}")

    if kind is S.DeclVar:
        _require(all(s.name == first.name and s.type == first.type
                     for s in stmts), "declarations")
        if first.init is None:
            _require(all(s.init is None for s in stmts), "initialisers")
            return first
        return S.DeclVar(first.name, first.type,
                         merge_exprs([s.init for s in stmts]))
    if kind is S.DeclArray:
        _require(all(s.name == first.name and s.elem_type == first.elem_type
                     and s.size == first.size for s in stmts), "array decls")
        inits = [s.init for s in stmts]
        if all(init is None for init in inits):
            return first
        _require(all(init is not None for init in inits), "array initialisers")
        if all(init == inits[0] for init in inits):
            return first
        merged_init = tuple(
            inits[0][j] if all(init[j] == inits[0][j] for init in inits)
            else tuple(init[j] for init in inits)
            for j in range(first.size))
        forced.add(first.name)
        return S.DeclArray(first.name, first.elem_type, first.size, merged_init)
    if kind is S.Assign:
        lhs = _merge_lvalue([s.lhs for s in stmts])
        return S.Assign(lhs, merge_exprs([s.rhs for s in stmts]))
    if kind is S.Push:
        return S.VPush(merge_exprs([s.value for s in stmts]))
    if kind is S.ExprStmt:
        return S.ExprStmt(merge_exprs([s.expr for s in stmts]))
    if kind is S.For:
        _require(all(s.var == first.var for s in stmts), "loop variables")
        return S.For(first.var,
                     merge_exprs([s.start for s in stmts]),
                     merge_exprs([s.end for s in stmts]),
                     merge_bodies([s.body for s in stmts], forced))
    if kind is S.If:
        return S.If(merge_exprs([s.cond for s in stmts]),
                    merge_bodies([s.then_body for s in stmts], forced),
                    merge_bodies([s.else_body for s in stmts], forced))
    raise MergeConflict(f"cannot horizontally merge {kind.__name__}")


def _merge_lvalue(lvalues: Sequence[L.LValue]) -> L.LValue:
    first = lvalues[0]
    kind = type(first)
    _require(all(type(lv) is kind for lv in lvalues), "lvalue kinds")
    if kind is L.VarLV:
        _require(all(lv.name == first.name for lv in lvalues), "lvalue names")
        return first
    if kind is L.ArrayLV:
        _require(all(lv.name == first.name for lv in lvalues), "lvalue names")
        return L.ArrayLV(first.name,
                         merge_exprs([lv.index for lv in lvalues]))
    raise MergeConflict(f"cannot horizontally merge lvalue {kind.__name__}")


# --- marking and re-typing ------------------------------------------------------

def _mark_vector_vars(bodies: Sequence[Body], seeds: Set[str]) -> Set[str]:
    """Fixpoint: variables holding vector (lane-divergent) values."""
    marked = set(seeds)
    changed = True
    while changed:
        changed = False
        for body in bodies:
            for stmt in iter_stmts(body):
                name = None
                source = None
                if isinstance(stmt, S.Assign):
                    name = getattr(stmt.lhs, "name", None)
                    source = stmt.rhs
                elif isinstance(stmt, S.DeclVar) and stmt.init is not None:
                    name, source = stmt.name, stmt.init
                if name is None or name in marked or source is None:
                    continue
                if expr_is_vector(source, marked):
                    marked.add(name)
                    changed = True
    return marked


def _check_scalar_positions(bodies: Sequence[Body], marked: Set[str]) -> None:
    """Control-sensitive positions must remain lane-invariant."""
    from ..ir.visitors import exprs_of_stmt, iter_expr

    for body in bodies:
        for stmt in iter_stmts(body):
            checks: List[Tuple[str, E.Expr]] = []
            if isinstance(stmt, S.If):
                checks.append(("if condition", stmt.cond))
            elif isinstance(stmt, S.For):
                checks.append(("loop bound", stmt.start))
                checks.append(("loop bound", stmt.end))
            if isinstance(stmt, S.Assign) and isinstance(
                    stmt.lhs, (L.ArrayLV, L.ArrayLaneLV)):
                checks.append(("array subscript", stmt.lhs.index))
            for top in exprs_of_stmt(stmt):
                for node in iter_expr(top):
                    if isinstance(node, E.ArrayRead):
                        checks.append(("array subscript", node.index))
                    elif isinstance(node, E.VPeek):
                        checks.append(("peek offset", node.offset))
            for what, expr in checks:
                if expr_is_vector(expr, marked):
                    raise MergeConflict(f"lane-divergent {what}")


def _retype_decls(body: Body, marked: Set[str], sw: int) -> Body:
    from ..ir.visitors import rewrite_body_stmts

    def retype(stmt: S.Stmt) -> S.Stmt:
        if isinstance(stmt, S.DeclVar) and stmt.name in marked:
            if isinstance(stmt.type, Scalar):
                return replace(stmt, type=Vector(stmt.type, sw))
        if isinstance(stmt, S.DeclArray) and stmt.name in marked:
            if isinstance(stmt.elem_type, Scalar):
                return replace(stmt, elem_type=Vector(stmt.elem_type, sw))
        if isinstance(stmt, S.VPush) and not expr_is_vector(stmt.value, marked):
            return S.VPush(E.Broadcast(stmt.value, sw))
        return stmt

    return rewrite_body_stmts(body, retype)


# --- spec merging ---------------------------------------------------------------

def merge_specs(specs: Sequence[FilterSpec], sw: int) -> FilterSpec:
    """Merge ``sw`` isomorphic specs into one horizontal SIMD actor."""
    if len(specs) != sw:
        raise MergeConflict(f"expected {sw} specs, got {len(specs)}")
    forced: Set[str] = set()
    init_body = merge_bodies([s.init_body for s in specs], forced)
    work_body = merge_bodies([s.work_body for s in specs], forced)

    # State variables whose initial values diverge must be vectors.
    state_seeds: Set[str] = set(forced)
    base_state = specs[0].state
    for position, var in enumerate(base_state):
        inits = [s.state[position].init for s in specs]
        if any(init != inits[0] for init in inits):
            state_seeds.add(var.name)

    marked = _mark_vector_vars([init_body, work_body], state_seeds)
    _check_scalar_positions([init_body, work_body], marked)
    init_body = _retype_decls(init_body, marked, sw)
    work_body = _retype_decls(work_body, marked, sw)

    state: List[StateVar] = []
    for position, var in enumerate(base_state):
        inits = [s.state[position].init for s in specs]
        if var.name not in marked:
            state.append(var)
            continue
        new_type = Vector(var.type, sw) if isinstance(var.type, Scalar) else var.type
        if var.is_array:
            entries = tuple(
                _merge_array_entry([_entry(init, j, var) for init in inits])
                for j in range(var.size))
            state.append(StateVar(var.name, new_type, var.size, entries))
        else:
            if all(init == inits[0] for init in inits):
                state.append(StateVar(var.name, new_type, 0, inits[0]))
            else:
                state.append(StateVar(var.name, new_type, 0, tuple(inits)))

    return replace(
        specs[0],
        name=f"{_common_prefix([s.name for s in specs])}_h",
        state=tuple(state),
        init_body=init_body,
        work_body=work_body,
    )


def _entry(init, index: int, var: StateVar):
    if isinstance(init, tuple):
        return init[index]
    return init


def _merge_array_entry(values: Sequence) -> "float | tuple":
    if all(v == values[0] for v in values):
        return values[0]
    return tuple(values)


def _common_prefix(names: Sequence[str]) -> str:
    prefix = names[0]
    for name in names[1:]:
        while not name.startswith(prefix) and prefix:
            prefix = prefix[:-1]
    return prefix.rstrip("_") or names[0]


# --- graph transformation ----------------------------------------------------------

def apply_horizontal(graph: StreamGraph, candidate: HorizontalCandidate,
                     machine: MachineDescription) -> List[int]:
    """Rewrite the candidate split-join in place.

    Returns the ids of the new horizontal SIMD actors.
    """
    sw = machine.simd_width
    width = candidate.width
    groups = width // sw
    splitter_actor = graph.actors[candidate.splitter_id]
    joiner_actor = graph.actors[candidate.joiner_id]
    splitter: SplitterSpec = splitter_actor.spec
    joiner: JoinerSpec = joiner_actor.spec
    branch_weight = (1 if splitter.kind is SplitKind.DUPLICATE
                     else splitter.weights[0])
    joiner_weight = joiner.weights[0]
    data_type = splitter.data_type

    # Merge specs per level per group of SW adjacent branches.
    merged: List[List[FilterSpec]] = []
    for group in range(groups):
        level_specs: List[FilterSpec] = []
        for level_index in range(candidate.depth):
            ids = candidate.level(level_index)[group * sw:(group + 1) * sw]
            level_specs.append(
                merge_specs([graph.actors[aid].spec for aid in ids], sw))
        merged.append(level_specs)

    in_tape = graph.input_tape(candidate.splitter_id)
    out_tape = graph.output_tape(candidate.joiner_id)

    # Remove the old internal tapes (actors go last, once the boundary
    # tapes have been retargeted to the replacement structure).
    removed = candidate.all_actor_ids() | {candidate.splitter_id,
                                           candidate.joiner_id}
    for tape in list(graph.tapes.values()):
        if tape.src in removed and tape.dst in removed:
            graph.remove_tape(tape.id)

    # Build the replacement: (optional reduced splitter) -> groups of
    # [HSplitter -> SIMD chain -> HJoiner] -> (optional reduced joiner).
    new_actor_ids: List[int] = []
    hsplit_spec = HSplitterSpec(splitter.kind, branch_weight, sw, data_type)
    hjoin_spec = HJoinerSpec(joiner_weight, sw, data_type)

    group_entries: List[int] = []
    group_exits: List[int] = []
    for group in range(groups):
        hsplit = graph.add_actor(hsplit_spec)
        previous = hsplit.id
        for spec in merged[group]:
            actor = graph.add_actor(spec)
            new_actor_ids.append(actor.id)
            graph.add_tape(previous, actor.id, data_type=spec.data_type,
                           vector_width=sw)
            previous = actor.id
        hjoin = graph.add_actor(hjoin_spec)
        graph.add_tape(previous, hjoin.id,
                       data_type=merged[group][-1].out_type, vector_width=sw)
        group_entries.append(hsplit.id)
        group_exits.append(hjoin.id)

    if groups == 1:
        if in_tape is not None:
            in_tape.dst = group_entries[0]
            in_tape.dst_port = 0
        if out_tape is not None:
            out_tape.src = group_exits[0]
            out_tape.src_port = 0
    else:
        if splitter.kind is SplitKind.DUPLICATE:
            reduced_split = SplitterSpec(SplitKind.DUPLICATE, (1,) * groups,
                                         data_type, "splitter")
        else:
            reduced_split = SplitterSpec(
                SplitKind.ROUNDROBIN, (branch_weight * sw,) * groups,
                data_type, "splitter")
        reduced_join = JoinerSpec((joiner_weight * sw,) * groups,
                                  data_type, "joiner")
        new_split = graph.add_actor(reduced_split)
        new_join = graph.add_actor(reduced_join)
        for port, (entry, exit_) in enumerate(zip(group_entries, group_exits)):
            graph.add_tape(new_split.id, entry, src_port=port,
                           data_type=data_type)
            graph.add_tape(exit_, new_join.id, dst_port=port,
                           data_type=data_type)
        if in_tape is not None:
            in_tape.dst = new_split.id
            in_tape.dst_port = 0
        if out_tape is not None:
            out_tape.src = new_join.id
            out_tape.src_port = 0

    for actor_id in sorted(removed):
        graph.remove_actor(actor_id)
    return new_actor_ids
