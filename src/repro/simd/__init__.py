"""Macro-SIMDization: MacroSS's analyses, transformations, and driver."""

from .analysis import Verdict, analyze_filter, is_stateful, simdizable_filters
from .cost_model import (
    StrategyCost,
    best_gather_strategy,
    estimate_body_events,
    estimate_firing_cycles,
    gather_strategy_costs,
)
from .horizontal import MergeConflict, apply_horizontal, merge_specs
from .isomorphism import all_isomorphic, spec_signature, specs_isomorphic
from .machine import (
    CORE_I7,
    CORE_I7_SAGU,
    NEON_LIKE,
    SVE_LIKE,
    MachineDescription,
    UnknownTargetError,
    UnsupportedOperation,
    get_target,
    list_targets,
    register_target,
    target_aliases,
    wide_machine,
)
from .pipeline import (
    PASS_NAMES,
    PIPELINES,
    SCALAR_OPTIONS,
    SINGLE_ACTOR_ONLY,
    CompilationReport,
    CompiledGraph,
    MacroSSOptions,
    compile_graph,
    get_pipeline_options,
    list_pipelines,
)
from .sagu import SAGU, lane_ordered_layout, software_address
from .segments import (
    HorizontalCandidate,
    find_horizontal_candidates,
    find_vertical_segments,
    horizontal_verdict,
)
from .single_actor import expr_is_vector, vectorize_actor
from .tape_opt import optimize_tapes, uses_gather, uses_scatter
from .vertical import FusionError, fuse_segment, fuse_specs, inner_repetitions

__all__ = [
    "Verdict", "analyze_filter", "is_stateful", "simdizable_filters",
    "StrategyCost", "best_gather_strategy", "estimate_body_events",
    "estimate_firing_cycles", "gather_strategy_costs",
    "MergeConflict", "apply_horizontal", "merge_specs",
    "all_isomorphic", "spec_signature", "specs_isomorphic",
    "CORE_I7", "CORE_I7_SAGU", "NEON_LIKE", "SVE_LIKE",
    "MachineDescription", "UnknownTargetError", "UnsupportedOperation",
    "get_target", "list_targets", "register_target", "target_aliases",
    "wide_machine",
    "PASS_NAMES", "PIPELINES", "SCALAR_OPTIONS", "SINGLE_ACTOR_ONLY",
    "CompilationReport", "CompiledGraph", "MacroSSOptions", "compile_graph",
    "get_pipeline_options", "list_pipelines",
    "SAGU", "lane_ordered_layout", "software_address",
    "HorizontalCandidate", "find_horizontal_candidates",
    "find_vertical_segments", "horizontal_verdict",
    "expr_is_vector", "vectorize_actor",
    "optimize_tapes", "uses_gather", "uses_scatter",
    "FusionError", "fuse_segment", "fuse_specs", "inner_repetitions",
]
