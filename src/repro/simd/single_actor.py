"""Single-actor SIMDization (§3.1).

Transforms ``SW`` consecutive firings of a stateless actor into one
data-parallel firing:

* every ``pop()`` becomes a strided gather: lane ``k`` reads the element at
  offset ``k * pop_rate`` (the peek/peek/peek/pop idiom of Figure 3b);
* every ``peek(e)`` becomes a strided gather at ``e + k * pop_rate``;
* every ``push(v)`` becomes a strided scatter: lane ``k`` writes at offset
  ``k * push_rate`` (the rpush/rpush/rpush/push idiom);
* variables fed by tape data are re-typed as vectors (the paper's marking
  algorithm); untouched scalars are broadcast at use;
* a trailing reader/writer advance closes out the ``(SW-1) * rate`` items
  the strided groups covered beyond the per-group pointer bumps.

The same rewriter vectorizes vertically fused coarse actors: their internal
buffer operations (``InternalPush``/``InternalPop``) carry whole vectors
after the transformation, which is exactly the §3.2 pack/unpack
elimination (execution reordering makes lane ``k`` of each internal vector
belong to the ``k``-th parallel coarse execution — Figure 5e-g).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Set

from ..graph.actor import FilterSpec
from ..ir import expr as E
from ..ir import stmt as S
from ..ir.types import Scalar, Vector
from ..ir.visitors import iter_expr, rewrite_body_exprs, rewrite_body_stmts
from .analysis import tainted_vars


def expr_is_vector(expr: E.Expr, vector_vars: Set[str]) -> bool:
    """True when ``expr`` evaluates to a vector value.

    Scalar tape reads (``Pop``/``Peek``) produce scalars; the vector
    producers are the gather/vector-tape/internal-buffer reads, vector
    literals, broadcasts, and references to names in ``vector_vars``.
    """
    for node in iter_expr(expr):
        if isinstance(node, (E.VPop, E.VPeek,
                             E.GatherPop, E.GatherPeek,
                             E.InternalPop, E.InternalPeek,
                             E.VectorConst, E.Broadcast, E.ArrayVec)):
            return True
        if isinstance(node, (E.Var, E.ArrayRead)) and node.name in vector_vars:
            return True
    return False


def vectorize_actor(spec: FilterSpec, sw: int) -> FilterSpec:
    """Return the SIMDized version of ``spec`` for SIMD width ``sw``.

    The caller is responsible for having established SIMDizability
    (:func:`repro.simd.analysis.analyze_filter`).
    """
    if sw < 2:
        raise ValueError(f"SIMD width must be >= 2, got {sw}")
    pop_stride = spec.pop
    push_stride = spec.push
    vector_vars = tainted_vars(spec.work_body)

    def rewrite(e: E.Expr) -> E.Expr:
        if isinstance(e, E.Pop):
            return E.GatherPop(stride=pop_stride)
        if isinstance(e, E.Peek):
            return E.GatherPeek(e.offset, stride=pop_stride)
        return e

    body = rewrite_body_exprs(spec.work_body, rewrite)

    def vectorize_stmt(stmt: S.Stmt) -> S.Stmt:
        if isinstance(stmt, S.Push):
            return S.ScatterPush(_as_vector(stmt.value, vector_vars, sw),
                                 stride=push_stride)
        if isinstance(stmt, S.InternalPush):
            return S.InternalPush(stmt.buf,
                                  _as_vector(stmt.value, vector_vars, sw))
        if isinstance(stmt, S.DeclVar) and stmt.name in vector_vars:
            if isinstance(stmt.type, Scalar):
                return S.DeclVar(stmt.name, Vector(stmt.type, sw), stmt.init)
        if isinstance(stmt, S.DeclArray) and stmt.name in vector_vars:
            if isinstance(stmt.elem_type, Scalar):
                return S.DeclArray(stmt.name, Vector(stmt.elem_type, sw),
                                   stmt.size, stmt.init)
        return stmt

    body = rewrite_body_stmts(body, vectorize_stmt)

    trailer: list[S.Stmt] = []
    if pop_stride > 0:
        trailer.append(S.AdvanceReader((sw - 1) * pop_stride))
    if push_stride > 0:
        trailer.append(S.AdvanceWriter((sw - 1) * push_stride))

    return replace(
        spec,
        name=f"{spec.name}_v",
        pop=spec.pop * sw,
        push=spec.push * sw,
        # Availability requirement: lane SW-1 peeks up to
        # (SW-1)*pop + peek - 1, so peek' = (SW-1)*pop + peek; the residual
        # delta (peek' - pop') equals the scalar actor's peek - pop.
        peek=(sw - 1) * spec.pop + spec.peek,
        work_body=body + tuple(trailer),
    )


def _as_vector(value: E.Expr, vector_vars: Set[str], sw: int) -> E.Expr:
    """Wrap scalar-valued expressions so vector stores receive vectors.

    A push of a lane-invariant value (pure constant / untainted scalar) is
    identical across the SW merged executions — a broadcast.
    """
    if expr_is_vector(value, vector_vars):
        return value
    return E.Broadcast(value, sw)
