"""Vertical SIMDization (§3.2): pipeline fusion into coarse actors.

A pipeline of vectorizable actors is collapsed into one coarse actor whose
work body runs each *inner* actor its per-firing repetition count,
exchanging data through internal buffers instead of global tapes.  Fusing
reorders execution (Figure 5e) so that, once the coarse actor is
single-actor SIMDized, the internal buffers carry whole vectors and the
pack/unpack operations at every fused boundary disappear.

Inner repetition counts divide the segment's steady-state repetitions by
their gcd: for D (rep 12) and E (rep 8), the coarse actor ``3D_2E`` runs
D 3 times then E 2 times, and itself repeats 4 times per steady state.
"""

from __future__ import annotations

from dataclasses import replace
from math import gcd
from typing import Dict, List, Sequence

from ..graph.actor import FilterSpec, StateVar
from ..graph.stream_graph import GraphError, StreamGraph
from ..ir import expr as E
from ..ir import lvalue as L
from ..ir import stmt as S
from ..ir.stmt import Body
from ..ir.visitors import (
    iter_stmts,
    rewrite_body_exprs,
    rewrite_body_stmts,
)


class FusionError(GraphError):
    """Raised when a segment cannot legally be fused."""


def inner_repetitions(reps: Sequence[int]) -> List[int]:
    """Per-firing repetition of each inner actor: reps divided by their gcd."""
    divisor = 0
    for rep in reps:
        divisor = gcd(divisor, rep)
    return [rep // divisor for rep in reps]


def declared_names(spec: FilterSpec) -> set[str]:
    """All names an actor's bodies bind: locals, arrays, loop vars, state."""
    names = {var.name for var in spec.state}
    for body in (spec.init_body, spec.work_body):
        for stmt in iter_stmts(body):
            if isinstance(stmt, (S.DeclVar, S.DeclArray)):
                names.add(stmt.name)
            elif isinstance(stmt, S.For):
                names.add(stmt.var)
    return names


def rename_body(body: Body, mapping: Dict[str, str]) -> Body:
    """Alpha-rename every occurrence of the mapped names."""

    def rename_expr(e: E.Expr) -> E.Expr:
        if isinstance(e, E.Var) and e.name in mapping:
            return E.Var(mapping[e.name])
        if isinstance(e, E.ArrayRead) and e.name in mapping:
            return E.ArrayRead(mapping[e.name], e.index)
        return e

    body = rewrite_body_exprs(body, rename_expr)

    def rename_stmt(stmt: S.Stmt) -> S.Stmt:
        if isinstance(stmt, S.DeclVar) and stmt.name in mapping:
            return replace(stmt, name=mapping[stmt.name])
        if isinstance(stmt, S.DeclArray) and stmt.name in mapping:
            return replace(stmt, name=mapping[stmt.name])
        if isinstance(stmt, S.For) and stmt.var in mapping:
            return replace(stmt, var=mapping[stmt.var])
        if isinstance(stmt, S.Assign):
            lv = stmt.lhs
            if isinstance(lv, L.VarLV) and lv.name in mapping:
                return replace(stmt, lhs=L.VarLV(mapping[lv.name]))
            if isinstance(lv, L.ArrayLV) and lv.name in mapping:
                return replace(stmt, lhs=L.ArrayLV(mapping[lv.name], lv.index))
            if isinstance(lv, L.LaneLV) and lv.name in mapping:
                return replace(stmt, lhs=L.LaneLV(mapping[lv.name], lv.lane))
            if isinstance(lv, L.ArrayLaneLV) and lv.name in mapping:
                return replace(stmt, lhs=L.ArrayLaneLV(
                    mapping[lv.name], lv.index, lv.lane))
        return stmt

    return rewrite_body_stmts(body, rename_stmt)


def _remap_tapes(body: Body, in_buf: int | None, out_buf: int | None) -> Body:
    """Redirect tape accesses of an inner actor to internal buffers.

    ``in_buf is None`` keeps real input-tape reads (first inner actor);
    ``out_buf is None`` keeps real pushes (last inner actor).
    """

    def remap_expr(e: E.Expr) -> E.Expr:
        if in_buf is None:
            return e
        if isinstance(e, E.Pop):
            return E.InternalPop(in_buf)
        if isinstance(e, E.Peek):
            return E.InternalPeek(in_buf, e.offset)
        return e

    body = rewrite_body_exprs(body, remap_expr)
    if out_buf is None:
        return body

    def remap_stmt(stmt: S.Stmt) -> S.Stmt:
        if isinstance(stmt, S.Push):
            return S.InternalPush(out_buf, stmt.value)
        return stmt

    return rewrite_body_stmts(body, remap_stmt)


def fuse_specs(specs: Sequence[FilterSpec],
               reps: Sequence[int]) -> FilterSpec:
    """Fuse a pipeline of specs (with steady-state reps) into one coarse
    spec.  Callers must have verified vectorizability and the peek rule."""
    if len(specs) < 2:
        raise FusionError("fusion needs at least two actors")
    for index, spec in enumerate(specs):
        if index > 0 and spec.is_peeking:
            raise FusionError(
                f"{spec.name}: peek > pop inside a fused pipeline would "
                "leave residual state in an internal buffer")
    inner_reps = inner_repetitions(reps)

    state: List[StateVar] = []
    init_parts: List[S.Stmt] = []
    work_parts: List[S.Stmt] = []
    for index, (spec, inner_rep) in enumerate(zip(specs, inner_reps)):
        prefix = f"f{index}_"
        mapping = {name: prefix + name for name in declared_names(spec)}
        state.extend(replace(var, name=mapping[var.name])
                     for var in spec.state)
        init_parts.extend(rename_body(spec.init_body, mapping))
        body = rename_body(spec.work_body, mapping)
        body = _remap_tapes(
            body,
            in_buf=None if index == 0 else index - 1,
            out_buf=None if index == len(specs) - 1 else index,
        )
        if inner_rep == 1:
            work_parts.extend(body)
        else:
            work_parts.append(
                S.For(f"__rep{index}", E.IntConst(0), E.IntConst(inner_rep),
                      body))

    first, last = specs[0], specs[-1]
    name = "_".join(f"{r}{spec.name}" for r, spec in zip(inner_reps, specs))
    pop = inner_reps[0] * first.pop
    return FilterSpec(
        name=name,
        pop=pop,
        push=inner_reps[-1] * last.push,
        peek=pop + (first.peek - first.pop),
        data_type=first.data_type,
        output_type=last.out_type,
        state=tuple(state),
        init_body=tuple(init_parts),
        work_body=tuple(work_parts),
    )


def fuse_segment(graph: StreamGraph, segment: Sequence[int],
                 reps: Dict[int, int]) -> int:
    """Fuse the actors of ``segment`` (a pipeline, in order) in place.

    Returns the new coarse actor's id.
    """
    specs = []
    for actor_id in segment:
        actor = graph.actors[actor_id]
        if not isinstance(actor.spec, FilterSpec):
            raise FusionError(f"{actor.name} is not a filter")
        specs.append(actor.spec)
    coarse = fuse_specs(specs, [reps[aid] for aid in segment])
    coarse_actor = graph.add_actor(coarse)

    in_tape = graph.input_tape(segment[0])
    if in_tape is not None:
        in_tape.dst = coarse_actor.id
        in_tape.dst_port = 0
    out_tape = graph.output_tape(segment[-1])
    if out_tape is not None:
        out_tape.src = coarse_actor.id
        out_tape.src_port = 0
    for first_id, second_id in zip(segment, segment[1:]):
        internal = [t for t in graph.out_tapes(first_id)
                    if t.dst == second_id]
        if len(internal) != 1:
            raise FusionError("segment is not a simple pipeline")
        graph.remove_tape(internal[0].id)
    for actor_id in segment:
        graph.remove_actor(actor_id)
    return coarse_actor.id
