"""MacroSS's internal target-specific cost model.

Two jobs:

1. **Tape strategy selection** (§3.4): price the three realisations of a
   vectorized actor's strided tape boundary — scalar strided accesses,
   permutation-based vector accesses, and plain vector accesses with the
   scalar neighbour paying address translation (software, or SAGU).
2. **Static per-firing cost estimation** of a work body, used to compare
   vectorization alternatives and by the multicore partitioner when no
   profile is available.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..graph.actor import FilterSpec
from ..ir import expr as E
from ..ir import stmt as S
from ..ir.visitors import children_of_expr, exprs_of_stmt
from ..perf import events as ev
from ..perf.counters import PerfCounters
from .machine import MachineDescription, UnsupportedOperation, get_target

#: Public cost-model entry points accept either a description or a
#: registered target name ("core-i7", "sve-like", …) resolved through the
#: target registry.
MachineLike = Union[MachineDescription, str]


def _is_pow2(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class StrategyCost:
    """Per-group (SW elements) cost of one tape-access strategy."""

    strategy: str
    vector_side: float
    neighbour_side: float

    @property
    def total(self) -> float:
        return self.vector_side + self.neighbour_side


def gather_strategy_costs(stride: int, machine: MachineLike,
                          *, neighbour_is_scalar: bool
                          ) -> Dict[str, StrategyCost]:
    """Candidate costs for one strided gather/scatter group of SW lanes.

    ``machine`` may be a registered target name or a description.
    ``neighbour_is_scalar`` gates the lane-ordered ("sagu") strategy: it
    shifts work onto the scalar actor on the other side of the tape, which
    must exist and be scalar.
    """
    machine = get_target(machine)
    sw = machine.simd_width
    costs: Dict[str, StrategyCost] = {
        "scalar": StrategyCost(
            "scalar",
            sw * (machine.price(ev.SCALAR_LOAD) + machine.price(ev.PACK)),
            0.0),
    }
    if machine.has_extract_even_odd and _is_pow2(stride):
        permutes = int(math.log2(stride)) if stride > 1 else 0
        costs["permute"] = StrategyCost(
            "permute",
            machine.price(ev.VECTOR_LOAD_U)
            + permutes * machine.price(ev.PERMUTE),
            0.0)
    if neighbour_is_scalar:
        per_access = machine.price(ev.SAGU if machine.has_sagu else ev.ADDR)
        costs["sagu"] = StrategyCost(
            "sagu",
            machine.price(ev.VECTOR_LOAD),
            sw * per_access)
    return costs


def best_gather_strategy(stride: int, machine: MachineLike,
                         *, neighbour_is_scalar: bool) -> str:
    costs = gather_strategy_costs(stride, machine,
                                  neighbour_is_scalar=neighbour_is_scalar)
    return min(costs.values(), key=lambda c: (c.total, c.strategy)).strategy


# --- static body cost estimation ------------------------------------------------

#: Assumed trip count for loops whose bounds are not compile-time constants.
_DEFAULT_TRIP = 8


def estimate_body_events(body: S.Body, simd_width: int) -> PerfCounters:
    """Statically estimate the events of one execution of ``body``.

    Mirrors the interpreter's charging rules; constant-bound loops multiply
    their body, both branches of an ``if`` are averaged.
    """
    counters = PerfCounters()
    _estimate_into(body, 1.0, counters, simd_width)
    return counters


def estimate_firing_cycles(spec: FilterSpec, machine: MachineLike
                           ) -> float:
    machine = get_target(machine)
    counters = estimate_body_events(spec.work_body, machine.simd_width)
    counters.add(ev.FIRE)
    try:
        return counters.cycles(machine)
    except UnsupportedOperation:
        return math.inf


def _estimate_into(body: S.Body, weight: float, out: PerfCounters,
                   sw: int) -> None:
    for stmt in body:
        if isinstance(stmt, S.For):
            trip = _trip_count(stmt)
            out.add(ev.LOOP, round(weight * trip))
            _estimate_into(stmt.body, weight * trip, out, sw)
        elif isinstance(stmt, S.If):
            _estimate_expr(stmt.cond, weight, out, sw)
            _estimate_into(stmt.then_body, weight * 0.5, out, sw)
            _estimate_into(stmt.else_body, weight * 0.5, out, sw)
        else:
            _estimate_stmt(stmt, weight, out, sw)


def _trip_count(stmt: S.For) -> int:
    if isinstance(stmt.start, E.IntConst) and isinstance(stmt.end, E.IntConst):
        return max(0, stmt.end.value - stmt.start.value)
    return _DEFAULT_TRIP


def _estimate_stmt(stmt: S.Stmt, weight: float, out: PerfCounters,
                   sw: int) -> None:
    for top in exprs_of_stmt(stmt):
        _estimate_expr(top, weight, out, sw)
    if isinstance(stmt, S.Push):
        out.add(ev.SCALAR_STORE, round(weight))
    elif isinstance(stmt, S.RPush):
        out.add(ev.SCALAR_STORE, round(weight))
    elif isinstance(stmt, S.VPush):
        out.add(ev.VECTOR_STORE, round(weight))
    elif isinstance(stmt, S.InternalPush):
        out.add(ev.VECTOR_STORE, round(weight))
    elif isinstance(stmt, S.ScatterPush):
        _add_scatter(stmt.strategy, stmt.stride, weight, out, sw)
    elif isinstance(stmt, (S.AdvanceReader, S.AdvanceWriter)):
        out.add(ev.SCALAR_ALU, round(weight))
    elif isinstance(stmt, S.Assign):
        from ..ir import lvalue as L
        if isinstance(stmt.lhs, (L.ArrayLV,)):
            out.add(ev.SCALAR_STORE, round(weight))
        elif isinstance(stmt.lhs, (L.LaneLV, L.ArrayLaneLV)):
            out.add(ev.PACK, round(weight))


def _add_scatter(strategy: str, stride: int, weight: float,
                 out: PerfCounters, sw: int) -> None:
    if strategy == "scalar":
        out.add(ev.SCALAR_STORE, round(weight * sw))
        out.add(ev.UNPACK, round(weight * sw))
    elif strategy == "permute":
        out.add(ev.VECTOR_STORE_U, round(weight))
        if stride > 1:
            out.add(ev.PERMUTE, round(weight * math.log2(stride)))
    else:
        out.add(ev.VECTOR_STORE, round(weight))


def _estimate_expr(expr: E.Expr, weight: float, out: PerfCounters,
                   sw: int) -> None:
    count = round(weight) if weight >= 1 else 1
    stack = [expr]
    while stack:
        node = stack.pop()
        stack.extend(children_of_expr(node))
        if isinstance(node, E.BinaryOp):
            vec = _static_vector_guess(node)
            if node.op == "*":
                out.add(ev.VECTOR_MUL if vec else ev.SCALAR_MUL, count)
            elif node.op in ("/", "%"):
                out.add(ev.VECTOR_DIV if vec else ev.SCALAR_DIV, count)
            else:
                out.add(ev.VECTOR_ALU if vec else ev.SCALAR_ALU, count)
        elif isinstance(node, E.UnaryOp):
            out.add(ev.SCALAR_ALU, count)
        elif isinstance(node, E.Call):
            out.add(ev.scalar_math(node.func), count)
        elif isinstance(node, E.ArrayRead):
            out.add(ev.SCALAR_LOAD, count)
        elif isinstance(node, (E.Pop, E.Peek)):
            out.add(ev.SCALAR_LOAD, count)
        elif isinstance(node, (E.VPop, E.VPeek, E.InternalPop, E.InternalPeek)):
            out.add(ev.VECTOR_LOAD, count)
        elif isinstance(node, E.Lane):
            out.add(ev.UNPACK, count)
        elif isinstance(node, E.Broadcast):
            out.add(ev.SPLAT, count)
        elif isinstance(node, E.GatherPop):
            _add_gather(node.strategy, node.stride, count, out, sw)
        elif isinstance(node, E.GatherPeek):
            _add_gather(node.strategy, node.stride, count, out, sw)


def _add_gather(strategy: str, stride: int, count: int,
                out: PerfCounters, sw: int) -> None:
    if strategy == "scalar":
        out.add(ev.SCALAR_LOAD, count * sw)
        out.add(ev.PACK, count * sw)
    elif strategy == "permute":
        out.add(ev.VECTOR_LOAD_U, count)
        if stride > 1:
            out.add(ev.PERMUTE, round(count * math.log2(stride)))
    else:
        out.add(ev.VECTOR_LOAD, count)


def _static_vector_guess(node: E.BinaryOp) -> bool:
    """Cheap local guess whether a binary op is vectorial (static estimates
    only — the interpreter knows exactly at runtime)."""
    for child in (node.left, node.right):
        if isinstance(child, (E.VPop, E.VPeek, E.VectorConst, E.Broadcast,
                              E.GatherPop, E.GatherPeek,
                              E.InternalPop, E.InternalPeek)):
            return True
    return False
