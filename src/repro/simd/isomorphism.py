"""Isomorphic actor detection (§3.3).

Two actors are isomorphic when their work and init functions are identical
up to constant literals, their rates match, and their state variables have
identical structure (names, types, sizes — initial values may differ, they
become per-lane vector initialisers)."""

from __future__ import annotations

from typing import List, Sequence

from ..graph.actor import FilterSpec
from ..ir.structhash import canonicalize


def state_signature(spec: FilterSpec) -> tuple:
    return tuple((var.name, var.type, var.size) for var in spec.state)


def spec_signature(spec: FilterSpec) -> tuple:
    """Hashable key: equal signatures <=> isomorphic specs."""
    return (
        spec.pop, spec.push, spec.peek,
        spec.data_type, spec.out_type,
        state_signature(spec),
        canonicalize(spec.init_body).body,
        canonicalize(spec.work_body).body,
    )


def specs_isomorphic(a: FilterSpec, b: FilterSpec) -> bool:
    return spec_signature(a) == spec_signature(b)


def all_isomorphic(specs: Sequence[FilterSpec]) -> bool:
    if not specs:
        return False
    first = spec_signature(specs[0])
    return all(spec_signature(s) == first for s in specs[1:])
