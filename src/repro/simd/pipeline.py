"""The MacroSS compilation driver (Algorithm 1).

Phases, in the paper's order:

1. prepass scheduling (steady-state repetition vector);
2. identify vectorizable segments — horizontal split-join candidates first
   (they may contain stateful actors no other technique handles), then
   maximal vertical pipelines over the remaining actors;
3. adjust repetition numbers (Equation (1)) and vertically fuse;
4. single-actor SIMDize every fused/standalone SIMDizable actor;
5. horizontally SIMDize the candidate split-joins;
6. optimize tape boundaries (permutations / SAGU);
7. (code generation lives in :mod:`repro.codegen`).

``compile_graph`` returns the transformed graph plus a
:class:`CompilationReport` recording every decision, which the tests pin
against the paper's running example and the experiments dump for
inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..graph.stream_graph import StreamGraph
from ..obs.tracer import Tracer, ensure_tracer
from ..schedule.rates import repetition_vector
from ..schedule.scaling import simd_scaling_factor
from .analysis import Verdict, simdizable_filters
from .horizontal import MergeConflict, apply_horizontal
from .machine import CORE_I7, MachineDescription
from .segments import (
    HorizontalCandidate,
    find_horizontal_candidates,
    find_vertical_segments,
)
from .single_actor import vectorize_actor
from .tape_opt import optimize_tapes
from .vertical import fuse_segment


@dataclass(frozen=True)
class MacroSSOptions:
    """Feature toggles for ablation experiments.

    The default configuration is the full MacroSS of the paper; Figure 11
    disables ``vertical`` (single-actor only), Figure 12 toggles the
    machine's SAGU, the scalar baseline disables everything.
    """

    single_actor: bool = True
    vertical: bool = True
    horizontal: bool = True
    tape_optimization: bool = True


@dataclass
class CompilationReport:
    """What MacroSS decided, per actor and pass."""

    machine: str
    options: MacroSSOptions
    verdicts: Dict[str, Verdict] = field(default_factory=dict)
    #: actor name -> one of "vertical:<coarse>", "single", "horizontal",
    #: "scalar:<reason>"
    decisions: Dict[str, str] = field(default_factory=dict)
    vertical_segments: List[List[str]] = field(default_factory=list)
    horizontal_splitjoins: List[List[str]] = field(default_factory=list)
    skipped_horizontal: List[str] = field(default_factory=list)
    tape_strategies: Dict[str, str] = field(default_factory=dict)
    #: Equation (1) scaling factor applied to the repetition vector.
    scaling_factor: int = 1

    def summary(self) -> str:
        lines = [f"MacroSS report ({self.machine}):",
                 f"  Equation (1) scaling factor M = {self.scaling_factor}"]
        for name, decision in sorted(self.decisions.items()):
            lines.append(f"  {name}: {decision}")
        for boundary, strategy in sorted(self.tape_strategies.items()):
            lines.append(f"  tape {boundary}: {strategy}")
        return "\n".join(lines)


@dataclass
class CompiledGraph:
    graph: StreamGraph
    report: CompilationReport
    #: core assignment of every actor of the compiled graph, when a
    #: multicore partition constrained the compilation (else empty).
    core_assignment: Dict[int, int] = field(default_factory=dict)


#: Algorithm-1 pass names, in driver order.  Pass spans in a compile trace
#: use exactly these names (category ``"pass"``), and ``pass_hook`` is
#: invoked once per name with the work graph at that pass boundary.
PASS_NAMES: Tuple[str, ...] = (
    "prepass.analysis",
    "segments.horizontal",
    "segments.vertical",
    "vertical.fuse",
    "repetition.adjust",
    "single_actor.vectorize",
    "horizontal.apply",
    "tape.optimize",
)

#: Hook type: called as ``hook(pass_name, work_graph)`` after every
#: Algorithm-1 pass, with the (mutable, mid-compilation) work graph.
#: The pass-invariant tests re-validate the graph at every boundary.
PassHook = Callable[[str, StreamGraph], None]


def compile_graph(graph: StreamGraph,
                  machine: MachineDescription = CORE_I7,
                  options: MacroSSOptions = MacroSSOptions(),
                  partition: Optional[Dict[int, int]] = None,
                  *,
                  tracer: Optional[Tracer] = None,
                  pass_hook: Optional[PassHook] = None
                  ) -> CompiledGraph:
    """Run macro-SIMDization on a flat graph (non-destructive).

    ``partition`` maps actor ids to cores; when given, SIMDization is
    restricted to same-core segments/split-joins (the partition-first
    scheduler of §5) and the result carries the per-actor core assignment.

    ``tracer`` records one span per Algorithm-1 pass (wall time,
    before/after graph stats, decisions taken); ``pass_hook`` is called
    after every pass with the work graph — the hook the pass-invariant
    tests and debugging tools attach to.  Both default to no-ops.
    """
    tracer = ensure_tracer(tracer)
    work = graph.clone()
    report = CompilationReport(machine=machine.name, options=options)
    sw = machine.simd_width
    core_of: Dict[int, int] = dict(partition or {})

    def stats() -> Tuple[int, int]:
        return len(work.actors), len(work.tapes)

    def span(name: str):
        actors, tapes = stats()
        return tracer.span(name, cat="pass", actors_before=actors,
                           tapes_before=tapes)

    def close(sp, name: str, **detail) -> None:
        actors, tapes = stats()
        sp.add(actors_after=actors, tapes_after=tapes, **detail)
        if pass_hook is not None:
            pass_hook(name, work)

    with tracer.span("compile_graph", cat="driver", graph=graph.name,
                     machine=machine.name, simd_width=sw,
                     options={k: getattr(options, k) for k in
                              ("single_actor", "vertical", "horizontal",
                               "tape_optimization")}) as compile_span:
        # Phase 1-2: prepass scheduling + segment identification.
        with span("prepass.analysis") as sp:
            verdicts = simdizable_filters(work, machine)
            # Actors inside feedback cycles stay scalar: SIMDizing them
            # would multiply their blocking factor by SW and starve the
            # loop's delays.
            for actor_id in work.actors_on_cycles():
                if actor_id in verdicts and verdicts[actor_id].simdizable:
                    verdicts[actor_id] = Verdict.no("inside a feedback loop")
            report.verdicts = {work.actors[aid].name: verdict
                               for aid, verdict in verdicts.items()}
            simdizable = sum(1 for v in verdicts.values() if v.simdizable)
            close(sp, "prepass.analysis",
                  detail=f"{simdizable}/{len(verdicts)} filters SIMDizable")

        claimed_by_horizontal: set[int] = set()
        candidates: List[HorizontalCandidate] = []
        with span("segments.horizontal") as sp:
            if options.horizontal:
                candidates = find_horizontal_candidates(work, machine)
                cyclic = work.actors_on_cycles()
                if cyclic:
                    candidates = [c for c in candidates
                                  if not (c.all_actor_ids() & cyclic)]
                if partition is not None:
                    candidates = [
                        c for c in candidates
                        if len({partition[aid] for aid in
                                c.all_actor_ids()
                                | {c.splitter_id, c.joiner_id}}) == 1]
                if options.vertical:
                    # §3.5: actors in both GV and GH — the cost model
                    # decides which technique each overlapping split-join
                    # gets.
                    from .technique_choice import prefer_horizontal
                    base_reps = repetition_vector(work)
                    arbitrated = []
                    for candidate in candidates:
                        if prefer_horizontal(work, candidate, base_reps,
                                             machine):
                            arbitrated.append(candidate)
                        else:
                            names = [work.actors[a].name
                                     for b in candidate.branches for a in b]
                            report.skipped_horizontal.append(
                                f"{'/'.join(names)}: cost model chose "
                                f"vertical")
                    candidates = arbitrated
                for candidate in candidates:
                    claimed_by_horizontal |= candidate.all_actor_ids()
            close(sp, "segments.horizontal",
                  detail=f"{len(candidates)} candidate(s), "
                         f"{len(report.skipped_horizontal)} skipped")

        with span("segments.vertical") as sp:
            segments: List[List[int]] = []
            if options.single_actor:
                segments = find_vertical_segments(
                    work, verdicts, exclude=claimed_by_horizontal,
                    same_group=partition)
                if not options.vertical:
                    segments = [[aid] for segment in segments
                                for aid in segment]

            # Record why non-SIMDizable filters stay scalar.
            for aid, verdict in verdicts.items():
                if not verdict.simdizable and \
                        aid not in claimed_by_horizontal:
                    name = work.actors[aid].name
                    report.decisions[name] = \
                        "scalar:" + "; ".join(verdict.reasons)
            close(sp, "segments.vertical",
                  detail=f"{len(segments)} segment(s)")

        # Phase 3: repetition adjustment + vertical fusion.
        with span("vertical.fuse") as sp:
            reps = repetition_vector(work)
            simdized_ids: List[Tuple[int, str]] = []
            for segment in segments:
                names = [work.actors[aid].name for aid in segment]
                if len(segment) >= 2:
                    coarse_id = fuse_segment(work, segment, reps)
                    if partition is not None:
                        core_of[coarse_id] = core_of[segment[0]]
                    report.vertical_segments.append(names)
                    coarse_name = work.actors[coarse_id].name
                    for name in names:
                        report.decisions[name] = f"vertical:{coarse_name}"
                    simdized_ids.append((coarse_id, "vertical"))
                else:
                    report.decisions[names[0]] = "single"
                    simdized_ids.append((segment[0], "single"))
            close(sp, "vertical.fuse",
                  detail=f"{len(report.vertical_segments)} segment(s) fused")

        # Equation (1): the factor the repetition vector must be scaled by
        # so every SIMDizable actor's repetition is a multiple of SW.
        # Recomputing the repetition vector after vectorization applies it
        # implicitly (the vectorized rates force it); we record M for
        # reporting and tests.
        with span("repetition.adjust") as sp:
            reps_after_fusion = repetition_vector(work)
            report.scaling_factor = simd_scaling_factor(
                sw, reps_after_fusion, [aid for aid, _ in simdized_ids])
            close(sp, "repetition.adjust",
                  detail=f"M={report.scaling_factor}",
                  scaling_factor=report.scaling_factor,
                  steady_reps=sum(reps_after_fusion.values()))

        # Phase 4: single-actor SIMDization (standalone and coarse actors).
        with span("single_actor.vectorize") as sp:
            for actor_id, _kind in simdized_ids:
                actor = work.actors[actor_id]
                actor.spec = vectorize_actor(actor.spec, sw)
            close(sp, "single_actor.vectorize",
                  detail=f"{len(simdized_ids)} actor(s) vectorized")

        # Phase 5: horizontal SIMDization.
        with span("horizontal.apply") as sp:
            for candidate in candidates:
                level_names = [[work.actors[aid].name for aid in branch]
                               for branch in candidate.branches]
                flat_names = [name for branch in level_names
                              for name in branch]
                before = set(work.actors)
                try:
                    apply_horizontal(work, candidate, machine)
                except MergeConflict as exc:
                    report.skipped_horizontal.append(
                        f"{'/'.join(flat_names)}: {exc}")
                    for name in flat_names:
                        report.decisions[name] = \
                            f"scalar:horizontal merge failed ({exc})"
                    continue
                if partition is not None:
                    region_core = core_of[candidate.splitter_id]
                    for new_id in set(work.actors) - before:
                        core_of[new_id] = region_core
                report.horizontal_splitjoins.append(flat_names)
                for name in flat_names:
                    report.decisions[name] = "horizontal"
            close(sp, "horizontal.apply",
                  detail=f"{len(report.horizontal_splitjoins)} "
                         f"split-join(s) merged")

        # Phase 6: tape optimization.
        with span("tape.optimize") as sp:
            if options.tape_optimization:
                report.tape_strategies = optimize_tapes(work, machine)
            close(sp, "tape.optimize",
                  detail=f"{len(report.tape_strategies)} tape(s) optimized")

        if partition is not None:
            core_of = {aid: core for aid, core in core_of.items()
                       if aid in work.actors}
        compile_span.add(decisions=len(report.decisions),
                         scaling_factor=report.scaling_factor)
    return CompiledGraph(work, report, core_of)


#: Options preset for the plain (non-SIMDized) baseline.
SCALAR_OPTIONS = MacroSSOptions(single_actor=False, vertical=False,
                                horizontal=False, tape_optimization=False)

#: Options preset for Figure 11's single-actor-only configuration.
SINGLE_ACTOR_ONLY = MacroSSOptions(vertical=False)
