"""The MacroSS compilation driver (Algorithm 1).

Phases, in the paper's order:

1. prepass scheduling (steady-state repetition vector);
2. identify vectorizable segments — horizontal split-join candidates first
   (they may contain stateful actors no other technique handles), then
   maximal vertical pipelines over the remaining actors;
3. adjust repetition numbers (Equation (1)) and vertically fuse;
4. single-actor SIMDize every fused/standalone SIMDizable actor;
5. horizontally SIMDize the candidate split-joins;
6. optimize tape boundaries (permutations / SAGU);
7. (code generation lives in :mod:`repro.codegen`).

Since the pass-manager refactor the driver is *data*: each phase is a
:class:`repro.passes.Pass` class (see :mod:`repro.passes.algorithm1`) and
:func:`compile_graph` is a thin wrapper that compiles
:class:`MacroSSOptions` into a :class:`repro.passes.PassManager` pipeline
and runs it over a shared :class:`repro.passes.CompilationContext`.
Ablations are named pipelines (:data:`PIPELINES`): ``"single-only"`` is
Figure 11's configuration, ``"no-tape"`` Figure 12's baseline, and custom
pipelines can reorder, drop, or inject passes
(``compile_graph(..., pipeline=["prepass.analysis", "tape.optimize"])``).

``compile_graph`` returns the transformed graph plus a
:class:`CompilationReport` recording every decision, which the tests pin
against the paper's running example and the experiments dump for
inspection.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..graph.stream_graph import StreamGraph
from ..obs.tracer import Tracer, ensure_tracer
from .analysis import Verdict
from .machine import CORE_I7, MachineDescription

# Re-exported for API compatibility: the hook type predates the passes
# package and is part of the public driver surface.
from ..passes.base import PassHook  # noqa: F401  (re-export)


@dataclass(frozen=True)
class MacroSSOptions:
    """Feature toggles for ablation experiments.

    The default configuration is the full MacroSS of the paper; Figure 11
    disables ``vertical`` (single-actor only), Figure 12 toggles the
    machine's SAGU, the scalar baseline disables everything.  Each named
    entry of :data:`PIPELINES` is one of these presets.
    """

    single_actor: bool = True
    vertical: bool = True
    horizontal: bool = True
    tape_optimization: bool = True


@dataclass
class CompilationReport:
    """What MacroSS decided, per actor and pass."""

    machine: str
    options: MacroSSOptions
    verdicts: Dict[str, Verdict] = field(default_factory=dict)
    #: actor name -> one of "vertical:<coarse>", "single", "horizontal",
    #: "scalar:<reason>"
    decisions: Dict[str, str] = field(default_factory=dict)
    vertical_segments: List[List[str]] = field(default_factory=list)
    horizontal_splitjoins: List[List[str]] = field(default_factory=list)
    skipped_horizontal: List[str] = field(default_factory=list)
    tape_strategies: Dict[str, str] = field(default_factory=dict)
    #: Equation (1) scaling factor applied to the repetition vector.
    scaling_factor: int = 1

    def summary(self) -> str:
        lines = [f"MacroSS report ({self.machine}):",
                 f"  Equation (1) scaling factor M = {self.scaling_factor}"]
        for name, decision in sorted(self.decisions.items()):
            lines.append(f"  {name}: {decision}")
        for boundary, strategy in sorted(self.tape_strategies.items()):
            lines.append(f"  tape {boundary}: {strategy}")
        return "\n".join(lines)


@dataclass
class CompiledGraph:
    graph: StreamGraph
    report: CompilationReport
    #: core assignment of every actor of the compiled graph, when a
    #: multicore partition constrained the compilation (else empty).
    core_assignment: Dict[int, int] = field(default_factory=dict)


#: Algorithm-1 pass names, in driver order.  Pass spans in a compile trace
#: use exactly these names (category ``"pass"``), and ``pass_hook`` is
#: invoked once per name with the work graph at that pass boundary.
PASS_NAMES: Tuple[str, ...] = (
    "prepass.analysis",
    "segments.horizontal",
    "segments.vertical",
    "vertical.fuse",
    "repetition.adjust",
    "single_actor.vectorize",
    "horizontal.apply",
    "tape.optimize",
)


#: Options preset for the plain (non-SIMDized) baseline.
SCALAR_OPTIONS = MacroSSOptions(single_actor=False, vertical=False,
                                horizontal=False, tape_optimization=False)

#: Options preset for Figure 11's single-actor-only configuration.
SINGLE_ACTOR_ONLY = MacroSSOptions(vertical=False)


#: Named ablation pipelines: every figure configuration that used to be
#: boolean plumbing, addressable by name (``compile_graph(...,
#: pipeline="single-only")``, CLI ``--pipeline``, the CI ablation smoke).
PIPELINES: Dict[str, MacroSSOptions] = {
    # full MacroSS (the paper's default).
    "full": MacroSSOptions(),
    # no SIMDization at all — the scalar baseline.
    "scalar": SCALAR_OPTIONS,
    # Figure 11: single-actor only (vertical fusion disabled).
    "single-only": SINGLE_ACTOR_ONLY,
    # Figure 12 baseline: SIMDized with §3.1 scalar strided tape accesses.
    "no-tape": MacroSSOptions(tape_optimization=False),
    # Figure 11's measured baseline (single-actor, raw tape accesses);
    # its comparison side is "no-tape" with vertical fusion on.
    "single-only/no-tape": MacroSSOptions(vertical=False,
                                          tape_optimization=False),
    # technique isolation, mirroring the fuzz harness's option axis.
    "vertical-only": MacroSSOptions(horizontal=False),
    "horizontal-only": MacroSSOptions(single_actor=False, vertical=False),
}


def get_pipeline_options(name: str) -> MacroSSOptions:
    """Resolve a named pipeline to its options preset (did-you-mean on
    unknown names)."""
    try:
        return PIPELINES[name]
    except KeyError:
        close = difflib.get_close_matches(name, PIPELINES, n=1)
        hint = f" — did you mean {close[0]!r}?" if close else ""
        raise KeyError(
            f"unknown pipeline {name!r}{hint} (named pipelines: "
            f"{', '.join(PIPELINES)})") from None


def list_pipelines() -> List[str]:
    """Names of the registered ablation pipelines, in definition order."""
    return list(PIPELINES)


def compile_graph(graph: StreamGraph,
                  machine: MachineDescription = CORE_I7,
                  options: Optional[MacroSSOptions] = None,
                  partition: Optional[Dict[int, int]] = None,
                  *,
                  tracer: Optional[Tracer] = None,
                  pass_hook: Optional[PassHook] = None,
                  pipeline=None,
                  verify_each_pass: bool = False
                  ) -> CompiledGraph:
    """Run macro-SIMDization on a flat graph (non-destructive).

    ``partition`` maps actor ids to cores; when given, SIMDization is
    restricted to same-core segments/split-joins (the partition-first
    scheduler of §5) and the result carries the per-actor core assignment.

    ``tracer`` records one span per Algorithm-1 pass (wall time,
    before/after graph stats, decisions taken); ``pass_hook`` is called
    after every pass with the work graph — the hook the pass-invariant
    tests and debugging tools attach to.  Both default to no-ops.

    ``pipeline`` selects what runs:

    * ``None`` — the standard eight Algorithm-1 passes gated by
      ``options`` (the pre-refactor behaviour);
    * a **name** from :data:`PIPELINES` (``"scalar"``, ``"single-only"``,
      ``"no-tape"``, ``"full"``, …) — the named ablation preset
      *overrides* ``options``;
    * a **sequence** of pass names and/or :class:`repro.passes.Pass`
      instances — a custom pipeline, run in the given order;
    * a :class:`repro.passes.PassManager` — used as-is.

    ``verify_each_pass`` re-validates the work graph (structure, balanced
    positive repetition vector, live tape endpoints) after every pass and
    raises :class:`repro.passes.PassVerificationError` naming the pass
    that broke it.
    """
    # Lazy import: repro.passes imports this module's types for context
    # annotations; deferring breaks the cycle for either import order.
    from ..passes.base import CompilationContext
    from ..passes.manager import PassManager

    if isinstance(pipeline, str):
        options = get_pipeline_options(pipeline)
        manager = PassManager.default()
    elif pipeline is None:
        manager = PassManager.default()
    else:
        manager = PassManager.coerce(pipeline)
    if options is None:
        # ``MacroSSOptions`` is a frozen preset, so a shared default would
        # be harmless today — but a ``None`` default keeps the signature
        # honest (no instance shared across calls) and is pinned by the
        # mutable-default regression tests.
        options = MacroSSOptions()

    tracer = ensure_tracer(tracer)
    work = graph.clone()
    report = CompilationReport(machine=machine.name, options=options)
    ctx = CompilationContext(
        source=graph, work=work, machine=machine, options=options,
        report=report, tracer=tracer, partition=partition,
        core_of=dict(partition or {}), pass_hook=pass_hook)

    with tracer.span("compile_graph", cat="driver", graph=graph.name,
                     machine=machine.name, simd_width=machine.simd_width,
                     options={k: getattr(options, k) for k in
                              ("single_actor", "vertical", "horizontal",
                               "tape_optimization")}) as compile_span:
        manager.run(ctx, verify_each_pass=verify_each_pass)
        if partition is not None:
            ctx.core_of = {aid: core for aid, core in ctx.core_of.items()
                           if aid in work.actors}
        compile_span.add(decisions=len(report.decisions),
                         scaling_factor=report.scaling_factor)
    return CompiledGraph(work, report, ctx.core_of)
