"""Cost-model arbitration between horizontal and vertical SIMDization.

An actor may be a member of both GV (a fusable pipeline) and GH (an
isomorphic split-join level).  §3.5: "Since MacroSS applies one form of
SIMDization to any actor, it uses its cost model to choose what type of
SIMDization (vertical or horizontal) is more effective for the actors that
are in both GV and GH" — guaranteeing the two sets end up disjoint.

The comparison builds both candidate forms *speculatively* (spec-level
only, no graph surgery) and prices one steady state of the region with the
static estimator; the estimators themselves live in
:mod:`repro.plan.costs` so partition/buffer planning and SIMD technique
choice read one price table per target (``horizontal_cost`` and
``vertical_cost`` are re-exported here for the historical import path).

Horizontal is forced (no comparison) when any level is stateful or any
branch cannot legally be fused — the cases §3.3 motivates it with.
"""

from __future__ import annotations

from typing import Dict

from ..graph.stream_graph import StreamGraph
from ..plan.costs import horizontal_cost, vertical_cost
from .analysis import is_stateful
from .horizontal import MergeConflict
from .machine import MachineDescription, UnsupportedOperation
from .segments import HorizontalCandidate
from .vertical import FusionError

__all__ = ["horizontal_cost", "prefer_horizontal", "vertical_cost"]


def prefer_horizontal(graph: StreamGraph, candidate: HorizontalCandidate,
                      reps: Dict[int, int],
                      machine: MachineDescription) -> bool:
    """True when the candidate should be SIMDized horizontally."""
    # Horizontal is the only option for stateful levels or unfusable
    # branches (vertical cannot touch them).
    for level_index in range(candidate.depth):
        for actor_id in candidate.level(level_index):
            spec = graph.actors[actor_id].spec
            if is_stateful(spec):
                return True
            if level_index > 0 and spec.is_peeking:
                return True  # peeking inner actor blocks fusion
    try:
        cost_h = horizontal_cost(graph, candidate, reps, machine)
        cost_v = vertical_cost(graph, candidate, reps, machine)
    except (MergeConflict, FusionError, UnsupportedOperation):
        return True  # one side impossible -> the other will be attempted
    return cost_h <= cost_v
