"""Cost-model arbitration between horizontal and vertical SIMDization.

An actor may be a member of both GV (a fusable pipeline) and GH (an
isomorphic split-join level).  §3.5: "Since MacroSS applies one form of
SIMDization to any actor, it uses its cost model to choose what type of
SIMDization (vertical or horizontal) is more effective for the actors that
are in both GV and GH" — guaranteeing the two sets end up disjoint.

The comparison builds both candidate forms *speculatively* (spec-level
only, no graph surgery) and prices one steady state of the region with the
static estimator:

* horizontal: each level merged into one SIMD actor firing ``rep`` times,
  plus the HSplitter/HJoiner packing work;
* vertical: each branch fused into a coarse actor, single-actor SIMDized,
  firing ``rep / SW`` times, plus the plain splitter/joiner moves.

Horizontal is forced (no comparison) when any level is stateful or any
branch cannot legally be fused — the cases §3.3 motivates it with.
"""

from __future__ import annotations

from typing import Dict

from ..graph.actor import FilterSpec
from ..graph.builtins import SplitKind, SplitterSpec
from ..graph.stream_graph import StreamGraph
from ..perf import events as ev
from ..perf.counters import PerfCounters
from .analysis import is_stateful
from .cost_model import estimate_body_events
from .horizontal import MergeConflict, merge_specs
from .machine import MachineDescription, UnsupportedOperation
from .segments import HorizontalCandidate
from .single_actor import vectorize_actor
from .vertical import FusionError, fuse_specs


def _firing_cost(spec: FilterSpec, machine: MachineDescription) -> float:
    counters = estimate_body_events(spec.work_body, machine.simd_width)
    counters.add(ev.FIRE)
    return counters.cycles(machine)


def _mover_cost(items: int, machine: MachineDescription, *,
                packs: bool) -> float:
    """Per-steady-state cost of moving ``items`` elements through a
    splitter/joiner (scalar copy) or HSplitter/HJoiner (pack/unpack)."""
    per_item = machine.price(ev.SCALAR_LOAD) + (
        machine.price(ev.PACK) if packs else machine.price(ev.SCALAR_STORE))
    return items * per_item


def horizontal_cost(graph: StreamGraph, candidate: HorizontalCandidate,
                    reps: Dict[int, int],
                    machine: MachineDescription) -> float:
    sw = machine.simd_width
    groups = candidate.width // sw
    total = 0.0
    for level_index in range(candidate.depth):
        level = candidate.level(level_index)
        rep = reps[level[0]]
        for group in range(groups):
            ids = level[group * sw:(group + 1) * sw]
            merged = merge_specs([graph.actors[a].spec for a in ids], sw)
            total += _firing_cost(merged, machine) * rep
    items = (reps[candidate.splitter_id]
             * graph.pop_rate(candidate.splitter_id))
    total += 2 * _mover_cost(items, machine, packs=True)
    return total


def vertical_cost(graph: StreamGraph, candidate: HorizontalCandidate,
                  reps: Dict[int, int],
                  machine: MachineDescription) -> float:
    sw = machine.simd_width
    total = 0.0
    for branch in candidate.branches:
        specs = [graph.actors[a].spec for a in branch]
        branch_reps = [reps[a] for a in branch]
        if len(specs) == 1:
            coarse = specs[0]
            coarse_rep = branch_reps[0]
        else:
            coarse = fuse_specs(specs, branch_reps)
            from math import gcd
            coarse_rep = 0
            for rep in branch_reps:
                coarse_rep = gcd(coarse_rep, rep)
        vectorized = vectorize_actor(coarse, sw)
        total += _firing_cost(vectorized, machine) * coarse_rep / sw
    items = (reps[candidate.splitter_id]
             * graph.pop_rate(candidate.splitter_id))
    total += 2 * _mover_cost(items, machine, packs=False)
    return total


def prefer_horizontal(graph: StreamGraph, candidate: HorizontalCandidate,
                      reps: Dict[int, int],
                      machine: MachineDescription) -> bool:
    """True when the candidate should be SIMDized horizontally."""
    # Horizontal is the only option for stateful levels or unfusable
    # branches (vertical cannot touch them).
    for level_index in range(candidate.depth):
        for actor_id in candidate.level(level_index):
            spec = graph.actors[actor_id].spec
            if is_stateful(spec):
                return True
            if level_index > 0 and spec.is_peeking:
                return True  # peeking inner actor blocks fusion
    try:
        cost_h = horizontal_cost(graph, candidate, reps, machine)
        cost_v = vertical_cost(graph, candidate, reps, machine)
    except (MergeConflict, FusionError, UnsupportedOperation):
        return True  # one side impossible -> the other will be attempted
    return cost_h <= cost_v
