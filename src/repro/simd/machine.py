"""Target machine descriptions (architecture description ``A`` of
Algorithm 1).

A machine fixes the SIMD width, which vector operations exist (math
intrinsics, extract_even/extract_odd permutations, SAGU), and a price table
mapping performance events to cycles.  Prices approximate reciprocal
throughputs of a Core-i7-class core with SSE 4.2; absolute values matter far
less than ratios (scalar vs vector, compute vs pack/unpack), which is what
the paper's evaluation shapes depend on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Mapping

from ..perf import events as ev


class UnsupportedOperation(Exception):
    """Raised when pricing an event the machine cannot execute."""


#: Baseline per-event prices (cycles).  Vector events cover SW lanes.
_CORE_I7_PRICES: Mapping[str, float] = {
    ev.SCALAR_ALU: 1.0,
    ev.SCALAR_MUL: 2.0,
    ev.SCALAR_DIV: 14.0,
    ev.VECTOR_ALU: 1.0,
    ev.VECTOR_MUL: 2.0,
    ev.VECTOR_DIV: 16.0,
    ev.SCALAR_LOAD: 1.5,
    ev.SCALAR_STORE: 1.5,
    ev.VECTOR_LOAD: 2.0,
    ev.VECTOR_STORE: 2.0,
    ev.VECTOR_LOAD_U: 3.0,
    ev.VECTOR_STORE_U: 3.0,
    # Insert/extract of one lane: movss/insertps (or pextrd) plus the
    # address arithmetic of the strided access it implements.
    ev.PACK: 3.0,
    ev.UNPACK: 3.0,
    ev.PERMUTE: 1.0,
    ev.SPLAT: 1.0,
    ev.LOOP: 1.5,
    ev.FIRE: 6.0,
    ev.ADDR: 6.0,   # Figure 8: software lane-order address translation
    ev.SAGU: 0.5,   # Figure 9: one extra increment instruction at most
    ev.COMM: 24.0,  # inter-core transfer per element (cache-line ping-pong)
    # scalar math (libm-style)
    "m_sin": 22.0, "m_cos": 22.0, "m_tan": 28.0,
    "m_asin": 26.0, "m_acos": 26.0, "m_atan": 26.0, "m_atan2": 32.0,
    "m_sqrt": 12.0, "m_exp": 18.0, "m_log": 18.0, "m_pow": 36.0,
    "m_abs": 1.0, "m_min": 1.0, "m_max": 1.0,
    "m_floor": 1.5, "m_ceil": 1.5, "m_round": 1.5, "m_rint": 1.5,
    "m_float": 1.0, "m_int": 1.0,
    # vector math (SVML-style, one event covers SW lanes)
    "vm_sin": 28.0, "vm_cos": 28.0,
    "vm_asin": 34.0, "vm_acos": 34.0, "vm_atan": 34.0,
    "vm_sqrt": 14.0, "vm_exp": 24.0, "vm_log": 24.0, "vm_pow": 44.0,
    "vm_abs": 1.0, "vm_min": 1.0, "vm_max": 1.0,
    "vm_floor": 2.0, "vm_ceil": 2.0, "vm_round": 2.0, "vm_rint": 2.0,
    "vm_float": 1.0, "vm_int": 1.0,
}

#: Math intrinsics with a vector implementation on SSE-class hardware
#: (everything priced above with a ``vm_`` entry).
_SSE_VECTOR_FUNCS: FrozenSet[str] = frozenset(
    name[3:] for name in _CORE_I7_PRICES if name.startswith("vm_"))


@dataclass(frozen=True)
class MachineDescription:
    """Everything MacroSS needs to know about the SIMD target."""

    name: str
    simd_width: int
    prices: Mapping[str, float]
    vector_math_funcs: FrozenSet[str] = _SSE_VECTOR_FUNCS
    has_extract_even_odd: bool = True
    has_sagu: bool = False

    def price(self, event: str) -> float:
        try:
            return self.prices[event]
        except KeyError:
            raise UnsupportedOperation(
                f"{self.name}: no price for event {event!r}") from None

    def supports_vector_call(self, func: str) -> bool:
        return func in self.vector_math_funcs

    def with_sagu(self, enabled: bool = True) -> "MachineDescription":
        suffix = "+sagu" if enabled else ""
        base = self.name.removesuffix("+sagu")
        return replace(self, name=base + suffix, has_sagu=enabled)

    def with_simd_width(self, sw: int) -> "MachineDescription":
        return replace(self, name=f"{self.name}@sw{sw}", simd_width=sw)


#: 3.26 GHz Core i7 with SSE 4.2 — the paper's evaluation platform.
CORE_I7 = MachineDescription(
    name="core-i7-sse4",
    simd_width=4,
    prices=dict(_CORE_I7_PRICES),
)

#: Core i7 augmented with the streaming address generation unit (§3.4).
CORE_I7_SAGU = CORE_I7.with_sagu()

#: A Neon-like embedded target: same width, no vector transcendentals,
#: costlier unaligned access.  Used by the ablation benches.
NEON_LIKE = MachineDescription(
    name="neon-like",
    simd_width=4,
    prices={**_CORE_I7_PRICES,
            ev.VECTOR_LOAD_U: 4.0, ev.VECTOR_STORE_U: 4.0},
    vector_math_funcs=frozenset(
        {"abs", "min", "max", "sqrt", "floor", "ceil", "round", "rint",
         "float", "int"}),
)


def wide_machine(sw: int) -> MachineDescription:
    """An AVX/Larrabee-style widening of the Core i7 model (SW ∈ {8, 16}).

    Wider vectors keep per-event prices but each vector event covers more
    lanes; pack/unpack chains get proportionally longer, which is the
    under-utilisation effect the paper's introduction warns about.
    """
    if sw < 4 or sw & (sw - 1):
        raise ValueError("wide_machine expects a power-of-two width >= 4")
    return CORE_I7.with_simd_width(sw)
