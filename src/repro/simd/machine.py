"""Target machine descriptions (architecture description ``A`` of
Algorithm 1).

A machine fixes the SIMD width, which vector operations exist (math
intrinsics, extract_even/extract_odd permutations, SAGU), and a price table
mapping performance events to cycles.  Prices approximate reciprocal
throughputs of a Core-i7-class core with SSE 4.2; absolute values matter far
less than ratios (scalar vs vector, compute vs pack/unpack), which is what
the paper's evaluation shapes depend on.

The module also hosts the **target registry**: every machine the toolchain
knows about is registered by name (with aliases) via
:func:`register_target`, and every layer that needs a name→machine mapping
(CLI ``--machine`` flags, the fuzz harness's machine axis, the experiment
harness, the cost model) resolves through :func:`get_target` instead of
keeping its own table.  Registering a new target here carries it through
compilation, both execution backends, code generation, fuzzing, and the
CLI with zero driver edits.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Mapping, Sequence, Tuple, Union


from ..perf import events as ev


class UnsupportedOperation(Exception):
    """Raised when pricing an event the machine cannot execute."""


class UnknownTargetError(KeyError):
    """Raised by :func:`get_target` for unregistered target names.

    The message carries a did-you-mean suggestion and the full list of
    registered names, so callers can surface it verbatim.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


#: Baseline per-event prices (cycles).  Vector events cover SW lanes.
_CORE_I7_PRICES: Mapping[str, float] = {
    ev.SCALAR_ALU: 1.0,
    ev.SCALAR_MUL: 2.0,
    ev.SCALAR_DIV: 14.0,
    ev.VECTOR_ALU: 1.0,
    ev.VECTOR_MUL: 2.0,
    ev.VECTOR_DIV: 16.0,
    ev.SCALAR_LOAD: 1.5,
    ev.SCALAR_STORE: 1.5,
    ev.VECTOR_LOAD: 2.0,
    ev.VECTOR_STORE: 2.0,
    ev.VECTOR_LOAD_U: 3.0,
    ev.VECTOR_STORE_U: 3.0,
    # Insert/extract of one lane: movss/insertps (or pextrd) plus the
    # address arithmetic of the strided access it implements.
    ev.PACK: 3.0,
    ev.UNPACK: 3.0,
    ev.PERMUTE: 1.0,
    ev.SPLAT: 1.0,
    ev.LOOP: 1.5,
    ev.FIRE: 6.0,
    ev.ADDR: 6.0,   # Figure 8: software lane-order address translation
    ev.SAGU: 0.5,   # Figure 9: one extra increment instruction at most
    ev.COMM: 24.0,  # inter-core transfer per element (cache-line ping-pong)
    # scalar math (libm-style)
    "m_sin": 22.0, "m_cos": 22.0, "m_tan": 28.0,
    "m_asin": 26.0, "m_acos": 26.0, "m_atan": 26.0, "m_atan2": 32.0,
    "m_sqrt": 12.0, "m_exp": 18.0, "m_log": 18.0, "m_pow": 36.0,
    "m_abs": 1.0, "m_min": 1.0, "m_max": 1.0,
    "m_floor": 1.5, "m_ceil": 1.5, "m_round": 1.5, "m_rint": 1.5,
    "m_float": 1.0, "m_int": 1.0,
    # vector math (SVML-style, one event covers SW lanes)
    "vm_sin": 28.0, "vm_cos": 28.0,
    "vm_asin": 34.0, "vm_acos": 34.0, "vm_atan": 34.0,
    "vm_sqrt": 14.0, "vm_exp": 24.0, "vm_log": 24.0, "vm_pow": 44.0,
    "vm_abs": 1.0, "vm_min": 1.0, "vm_max": 1.0,
    "vm_floor": 2.0, "vm_ceil": 2.0, "vm_round": 2.0, "vm_rint": 2.0,
    "vm_float": 1.0, "vm_int": 1.0,
}

#: Math intrinsics with a vector implementation on SSE-class hardware
#: (everything priced above with a ``vm_`` entry).
_SSE_VECTOR_FUNCS: FrozenSet[str] = frozenset(
    name[3:] for name in _CORE_I7_PRICES if name.startswith("vm_"))


@dataclass(frozen=True)
class MachineDescription:
    """Everything MacroSS needs to know about the SIMD target."""

    name: str
    simd_width: int
    prices: Mapping[str, float]
    vector_math_funcs: FrozenSet[str] = _SSE_VECTOR_FUNCS
    has_extract_even_odd: bool = True
    has_sagu: bool = False

    def price(self, event: str) -> float:
        try:
            return self.prices[event]
        except KeyError:
            raise UnsupportedOperation(
                f"{self.name}: no price for event {event!r}") from None

    def supports_vector_call(self, func: str) -> bool:
        return func in self.vector_math_funcs

    def with_sagu(self, enabled: bool = True) -> "MachineDescription":
        suffix = "+sagu" if enabled else ""
        base = self.name.removesuffix("+sagu")
        return replace(self, name=base + suffix, has_sagu=enabled)

    def with_simd_width(self, sw: int) -> "MachineDescription":
        """A copy of this machine widened (or narrowed) to ``sw`` lanes.

        The name carries a single ``@sw<N>`` suffix on the *base* name:
        repeated widening re-derives from the base instead of stacking
        suffixes (``core-i7-sse4@sw8`` widened to 16 lanes is
        ``core-i7-sse4@sw16``, never ``core-i7-sse4@sw8@sw16``).
        """
        base = re.sub(r"@sw\d+", "", self.name)
        return replace(self, name=f"{base}@sw{sw}", simd_width=sw)


#: 3.26 GHz Core i7 with SSE 4.2 — the paper's evaluation platform.
CORE_I7 = MachineDescription(
    name="core-i7-sse4",
    simd_width=4,
    prices=dict(_CORE_I7_PRICES),
)

#: Core i7 augmented with the streaming address generation unit (§3.4).
CORE_I7_SAGU = CORE_I7.with_sagu()

#: A Neon-like embedded target: same width, no vector transcendentals,
#: costlier unaligned access.  Used by the ablation benches.
NEON_LIKE = MachineDescription(
    name="neon-like",
    simd_width=4,
    prices={**_CORE_I7_PRICES,
            ev.VECTOR_LOAD_U: 4.0, ev.VECTOR_STORE_U: 4.0},
    vector_math_funcs=frozenset(
        {"abs", "min", "max", "sqrt", "floor", "ceil", "round", "rint",
         "float", "int"}),
)


#: An SVE-like scalable-vector target.  Vector-length agnostic: the base
#: registration models a 128-bit vector length (4 × f32 lanes); widening to
#: a 256/512-bit implementation is ``SVE_LIKE.with_simd_width(8 | 16)`` —
#: same description, wider vectors (the "scalable" in Scalable Vector
#: Extension).  Predicated ld1/st1 make unaligned access free relative to
#: aligned access, uzp1/uzp2 provide extract-even/odd, and insert/extract
#: (INSR/LASTB-style) is cheaper than SSE's memory-round-trip lane moves.
SVE_LIKE = MachineDescription(
    name="sve-like",
    simd_width=4,
    prices={**_CORE_I7_PRICES,
            # predication absorbs alignment: unaligned == aligned
            ev.VECTOR_LOAD_U: 2.0, ev.VECTOR_STORE_U: 2.0,
            # INSR/LASTB lane insert/extract vs SSE insertps round-trips
            ev.PACK: 2.0, ev.UNPACK: 2.0},
)


#: A GPU-like throughput target for the planning subsystem: very wide
#: vectors (16 f32 lanes per "warp-slice"), cheap coalesced vector
#: memory, but *expensive* cross-core traffic and lane shuffling.  The
#: point of this target is the planner, not codegen fidelity: COMM is
#: priced an order of magnitude above the Core i7's cache-line
#: ping-pong (PCIe-ish per-element cost), so the branch-and-bound
#: optimizer visibly changes partition shape (fewer, coarser cuts) and
#: the vectorization planner changes technique mix versus ``i7``.
GPU_LIKE = MachineDescription(
    name="gpu-like",
    simd_width=16,
    prices={**_CORE_I7_PRICES,
            # coalesced wide loads/stores are the native access mode
            ev.VECTOR_LOAD: 1.0, ev.VECTOR_STORE: 1.0,
            ev.VECTOR_LOAD_U: 1.5, ev.VECTOR_STORE_U: 1.5,
            # wide ALU throughput is the whole point of the machine
            ev.VECTOR_ALU: 0.5, ev.VECTOR_MUL: 1.0, ev.VECTOR_DIV: 12.0,
            # per-lane insert/extract serialises a 16-wide unit
            ev.PACK: 8.0, ev.UNPACK: 8.0,
            # host<->device-ish per-element transfer cost
            ev.COMM: 160.0},
)


def wide_machine(sw: int) -> MachineDescription:
    """An AVX/Larrabee-style widening of the Core i7 model (SW ∈ {8, 16}).

    Wider vectors keep per-event prices but each vector event covers more
    lanes; pack/unpack chains get proportionally longer, which is the
    under-utilisation effect the paper's introduction warns about.
    """
    if sw < 4 or sw & (sw - 1):
        raise ValueError("wide_machine expects a power-of-two width >= 4")
    return CORE_I7.with_simd_width(sw)


# --- target registry -----------------------------------------------------

#: canonical lowercase name -> machine.
_TARGETS: Dict[str, MachineDescription] = {}
#: lowercase alias -> canonical lowercase name.
_TARGET_ALIASES: Dict[str, str] = {}


def register_target(machine: MachineDescription,
                    *,
                    aliases: Sequence[str] = (),
                    overwrite: bool = False) -> MachineDescription:
    """Register ``machine`` under its (case-insensitive) name + aliases.

    Returns the machine so registration can wrap the constructor::

        MY_TARGET = register_target(MachineDescription(...), aliases=("mt",))

    Raises :class:`ValueError` on name/alias collisions unless
    ``overwrite`` is set.
    """
    key = machine.name.lower()
    if not overwrite and key in _TARGETS:
        raise ValueError(f"target {machine.name!r} is already registered")
    if not overwrite and key in _TARGET_ALIASES:
        raise ValueError(
            f"target name {machine.name!r} collides with an alias of "
            f"{_TARGET_ALIASES[key]!r}")
    _TARGETS[key] = machine
    for alias in aliases:
        akey = alias.lower()
        if not overwrite and _TARGET_ALIASES.get(akey, key) != key:
            raise ValueError(
                f"alias {alias!r} is already bound to "
                f"{_TARGET_ALIASES[akey]!r}")
        if not overwrite and akey in _TARGETS and akey != key:
            raise ValueError(
                f"alias {alias!r} collides with registered target "
                f"{_TARGETS[akey].name!r}")
        _TARGET_ALIASES[akey] = key
    return machine


def get_target(name: Union[str, MachineDescription]) -> MachineDescription:
    """Resolve a target name (case-insensitive, aliases allowed).

    Passing a :class:`MachineDescription` returns it unchanged, so APIs can
    accept either form.  Unknown names raise :class:`UnknownTargetError`
    with a did-you-mean suggestion and the registered-name listing.
    """
    if isinstance(name, MachineDescription):
        return name
    key = name.lower()
    key = _TARGET_ALIASES.get(key, key)
    try:
        return _TARGETS[key]
    except KeyError:
        known = list_targets()
        candidates = known + sorted(_TARGET_ALIASES)
        close = difflib.get_close_matches(name.lower(), candidates, n=1)
        hint = f" — did you mean {close[0]!r}?" if close else ""
        raise UnknownTargetError(
            f"unknown target {name!r}{hint} (registered targets: "
            f"{', '.join(known)})") from None


def list_targets() -> List[str]:
    """Sorted canonical names of every registered target."""
    return sorted(_TARGETS)


def target_aliases(name: Union[str, MachineDescription]) -> Tuple[str, ...]:
    """Sorted aliases registered for one target (canonical name excluded)."""
    canonical = get_target(name).name.lower()
    return tuple(sorted(alias for alias, key in _TARGET_ALIASES.items()
                        if key == canonical and alias != canonical))


register_target(CORE_I7, aliases=("core-i7", "i7", "sse4"))
register_target(CORE_I7_SAGU, aliases=("core-i7+sagu", "i7+sagu", "sagu"))
register_target(NEON_LIKE, aliases=("neon",))
register_target(SVE_LIKE, aliases=("sve",))
register_target(GPU_LIKE, aliases=("gpu",))
