"""Identification of vectorizable graph segments (Algorithm 1, step 3).

* **Vertical segments**: maximal pipelines of SIMDizable filters.  A chain
  grows downstream while the next actor is a SIMDizable filter whose only
  input is the chain tail; a peeking actor (``peek > pop``) may only start
  a chain, never extend one (fusing it inward would introduce state).
* **Horizontal candidates**: split-joins whose branches are equal-length
  linear chains of filters, level-wise isomorphic, with uniform splitter
  and joiner weights and a branch count that is a multiple of the SIMD
  width.  Stateful actors are allowed (that is horizontal SIMDization's
  selling point), but every actor must pass the non-state SIMDizability
  checks (supported calls, no tape-dependent control flow).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..graph.actor import FilterSpec
from ..graph.builtins import JoinerSpec, SplitKind, SplitterSpec
from ..graph.stream_graph import StreamGraph
from .analysis import Verdict, analyze_filter
from .isomorphism import all_isomorphic
from .machine import MachineDescription


@dataclass(frozen=True)
class HorizontalCandidate:
    """A split-join eligible for horizontal SIMDization."""

    splitter_id: int
    joiner_id: int
    #: branches[b] = actor ids of branch b, in pipeline order.
    branches: Tuple[Tuple[int, ...], ...]

    @property
    def width(self) -> int:
        return len(self.branches)

    @property
    def depth(self) -> int:
        return len(self.branches[0])

    def level(self, index: int) -> Tuple[int, ...]:
        return tuple(branch[index] for branch in self.branches)

    def all_actor_ids(self) -> set[int]:
        return {aid for branch in self.branches for aid in branch}


def find_vertical_segments(graph: StreamGraph,
                           verdicts: Dict[int, Verdict],
                           *,
                           exclude: Optional[set[int]] = None,
                           same_group: Optional[Dict[int, int]] = None
                           ) -> List[List[int]]:
    """Maximal SIMDizable pipelines, in topological order.

    Segments of length 1 degenerate to single-actor SIMDization (§3.1 is
    the special case of §3.2 with one inner actor).  ``same_group`` (e.g. a
    multicore partition) restricts fusion to actors in the same group —
    the paper's partition-first, SIMDize-second scheduler (§5, Figure 13)
    loses exactly these cross-core fusion opportunities.
    """
    exclude = exclude or set()
    assigned: set[int] = set()
    segments: List[List[int]] = []

    def eligible(actor_id: int) -> bool:
        actor = graph.actors[actor_id]
        return (actor.is_filter
                and actor_id not in exclude
                and actor_id not in assigned
                and actor_id in verdicts
                and verdicts[actor_id].simdizable)

    for actor_id in graph.ordered_actors():
        if not eligible(actor_id):
            continue
        chain = [actor_id]
        current = actor_id
        while True:
            outs = graph.out_tapes(current)
            if len(outs) != 1:
                break
            nxt = outs[0].dst
            if nxt in chain:
                break  # feedback cycle: never chase a chain into itself
            if not eligible(nxt):
                break
            spec = graph.actors[nxt].spec
            if isinstance(spec, FilterSpec) and spec.is_peeking:
                break  # peeking actors may only head a chain (DESIGN.md)
            if len(graph.in_tapes(nxt)) != 1:
                break
            if same_group is not None and \
                    same_group.get(nxt) != same_group.get(current):
                break
            chain.append(nxt)
            current = nxt
        assigned.update(chain)
        segments.append(chain)
    return segments


def horizontal_verdict(spec: FilterSpec, machine: MachineDescription) -> Verdict:
    """SIMDizability for horizontal merging: statefulness is permitted
    (state is kept per lane), every other restriction stands."""
    verdict = analyze_filter(spec, machine)
    if verdict.simdizable:
        return verdict
    remaining = tuple(r for r in verdict.reasons
                      if not r.startswith("stateful"))
    return Verdict(not remaining, remaining)


def find_horizontal_candidates(graph: StreamGraph,
                               machine: MachineDescription
                               ) -> List[HorizontalCandidate]:
    candidates: List[HorizontalCandidate] = []
    for actor in list(graph.actors.values()):
        if not isinstance(actor.spec, SplitterSpec):
            continue
        candidate = _inspect_splitjoin(graph, actor.id, actor.spec, machine)
        if candidate is not None:
            candidates.append(candidate)
    return candidates


def _inspect_splitjoin(graph: StreamGraph, splitter_id: int,
                       splitter: SplitterSpec,
                       machine: MachineDescription
                       ) -> Optional[HorizontalCandidate]:
    sw = machine.simd_width
    out_tapes = graph.out_tapes(splitter_id)
    width = len(out_tapes)
    if width < sw or width % sw != 0:
        return None
    if (splitter.kind is SplitKind.ROUNDROBIN
            and len(set(splitter.weights)) != 1):
        return None

    branches: List[Tuple[int, ...]] = []
    joiner_id: Optional[int] = None
    for tape in out_tapes:
        branch: List[int] = []
        current = tape.dst
        while True:
            node = graph.actors[current]
            if node.is_joiner:
                break
            if not node.is_filter:
                return None  # nested split-join: not a linear chain
            if len(graph.in_tapes(current)) != 1:
                return None
            branch.append(current)
            outs = graph.out_tapes(current)
            if len(outs) != 1:
                return None
            current = outs[0].dst
        if not branch:
            return None
        if joiner_id is None:
            joiner_id = current
        elif joiner_id != current:
            return None
        branches.append(tuple(branch))

    if joiner_id is None:
        return None
    joiner = graph.actors[joiner_id].spec
    if not isinstance(joiner, JoinerSpec) or len(set(joiner.weights)) != 1:
        return None
    depth = len(branches[0])
    if any(len(branch) != depth for branch in branches):
        return None

    candidate = HorizontalCandidate(splitter_id, joiner_id, tuple(branches))
    for level_index in range(depth):
        specs = [graph.actors[aid].spec for aid in candidate.level(level_index)]
        if not all(isinstance(s, FilterSpec) for s in specs):
            return None
        if not all_isomorphic(specs):
            return None
        if not all(horizontal_verdict(s, machine).simdizable for s in specs):
            return None
    return candidate
