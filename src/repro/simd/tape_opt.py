"""Tape-access optimization (§3.4, Algorithm 1 step "Optimize-Tapes").

After vectorization, a SIMDized actor's boundary tapes are accessed with
strided scalar groups (``strategy="scalar"``).  This pass prices the
alternatives per boundary and rewrites the gather/scatter strategies:

* ``permute`` — vector loads/stores plus an ``extract_even``/``extract_odd``
  network, available when the access stride is a power of two
  (``X·lg2(X)`` permutations for ``X`` groups, Figure 7);
* ``sagu`` — plain vector accesses that leave the tape lane-ordered, with
  the *scalar* neighbour translating addresses (6-cycle software sequence,
  or ~free with the SAGU).  Only applicable when the other endpoint is a
  scalar (non-vectorized) actor, splitter, or joiner.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..graph.actor import FilterSpec
from ..graph.stream_graph import StreamGraph, TapeEdge
from ..ir import expr as E
from ..ir import stmt as S
from ..ir.visitors import (
    iter_all_exprs,
    iter_stmts,
    rewrite_body_exprs,
    rewrite_body_stmts,
)
from .cost_model import best_gather_strategy
from .machine import MachineDescription


def uses_gather(spec: FilterSpec) -> bool:
    """True when the actor reads its input tape with strided vector gathers
    (i.e. it has been single-actor/vertically SIMDized)."""
    return any(isinstance(e, (E.GatherPop, E.GatherPeek))
               for e in iter_all_exprs(spec.work_body))


def uses_scatter(spec: FilterSpec) -> bool:
    return any(isinstance(s, S.ScatterPush)
               for s in iter_stmts(spec.work_body))


def _gather_stride(spec: FilterSpec) -> Optional[int]:
    for e in iter_all_exprs(spec.work_body):
        if isinstance(e, (E.GatherPop, E.GatherPeek)):
            return e.stride
    return None


def _scatter_stride(spec: FilterSpec) -> Optional[int]:
    for s in iter_stmts(spec.work_body):
        if isinstance(s, S.ScatterPush):
            return s.stride
    return None


def _neighbour_is_scalar(graph: StreamGraph, tape: Optional[TapeEdge],
                         endpoint: str) -> bool:
    """True when the actor on the given end of ``tape`` accesses it with
    plain scalar operations (so it can absorb address translation)."""
    if tape is None:
        return False
    actor_id = tape.src if endpoint == "src" else tape.dst
    actor = graph.actors[actor_id]
    if actor.is_splitter or actor.is_joiner:
        # H-variants move vectors; plain splitters/joiners move scalars.
        from ..graph.builtins import HJoinerSpec, HSplitterSpec
        return not isinstance(actor.spec, (HSplitterSpec, HJoinerSpec))
    spec = actor.spec
    if not isinstance(spec, FilterSpec):
        return False
    if endpoint == "src":
        return not uses_scatter(spec)
    return not uses_gather(spec)


def _set_gather_strategy(spec: FilterSpec, strategy: str) -> FilterSpec:
    def rewrite(e: E.Expr) -> E.Expr:
        if isinstance(e, E.GatherPop):
            return replace(e, strategy=strategy)
        if isinstance(e, E.GatherPeek):
            return replace(e, strategy=strategy)
        return e

    return replace(spec, work_body=rewrite_body_exprs(spec.work_body, rewrite))


def _set_scatter_strategy(spec: FilterSpec, strategy: str) -> FilterSpec:
    def rewrite(stmt: S.Stmt) -> S.Stmt:
        if isinstance(stmt, S.ScatterPush):
            return replace(stmt, strategy=strategy)
        return stmt

    return replace(spec, work_body=rewrite_body_stmts(spec.work_body, rewrite))


def optimize_tapes(graph: StreamGraph, machine: MachineDescription
                   ) -> Dict[str, str]:
    """Choose and apply the cheapest strategy per vectorized tape boundary.

    Returns {``actor_name.in`` / ``actor_name.out``: strategy} decisions for
    the compilation report.
    """
    decisions: Dict[str, str] = {}
    for actor in list(graph.filters()):
        spec = actor.spec

        if uses_gather(spec):
            stride = _gather_stride(spec)
            in_tape = graph.input_tape(actor.id)
            neighbour_scalar = _neighbour_is_scalar(graph, in_tape, "src")
            strategy = best_gather_strategy(
                stride, machine, neighbour_is_scalar=neighbour_scalar)
            if strategy != "scalar":
                spec = _set_gather_strategy(spec, strategy)
                if strategy == "sagu" and in_tape is not None:
                    in_tape.lane_ordered = True
            decisions[f"{actor.name}.in"] = strategy

        if uses_scatter(spec):
            stride = _scatter_stride(spec)
            out_tape = graph.output_tape(actor.id)
            neighbour_scalar = _neighbour_is_scalar(graph, out_tape, "dst")
            strategy = best_gather_strategy(
                stride, machine, neighbour_is_scalar=neighbour_scalar)
            if strategy != "scalar":
                spec = _set_scatter_strategy(spec, strategy)
                if strategy == "sagu" and out_tape is not None:
                    out_tape.lane_ordered = True
            decisions[f"{actor.name}.out"] = strategy

        if spec is not actor.spec:
            actor.spec = spec
    return decisions
