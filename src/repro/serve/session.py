"""Session layer of the serving runtime: specs, results, wire format.

A *session* is one complete stream-graph execution served by a worker
process: a program (a registry benchmark name or a serialized fuzz
:class:`~repro.fuzz.descriptions.ProgramDesc`), a compilation pipeline, a
target machine, a backend, and an iteration count go in; the outputs,
init outputs, per-actor performance-counter bags, and cache statistics
come back.  Everything that crosses the process boundary is kept to
plain picklable builtins (strings, ints, floats, lists, dicts) so the
pool is spawn-safe and the wire format is stable regardless of how the
dataclasses in this module evolve.

The explicit :func:`encode_result` / :func:`decode_result` pair is the
*only* path a session result takes across the boundary — the fuzz serve
oracle mutation-tests exactly this seam (corrupt the serializer, the
parity oracle must notice).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from ..perf.counters import PerActorCounters
from ..runtime.errors import StreamRuntimeError
from ..simd.machine import CORE_I7

__all__ = [
    "ERROR_KIND_WORKER_DIED", "ServeError", "ServeOverload", "SessionSpec",
    "SessionResult", "WorkerDied", "counter_bags", "decode_result",
    "encode_result", "worker_died_result",
]

#: Wire-format version; bumped on incompatible changes so a mixed-version
#: pool fails loudly instead of silently misdecoding.  v2: ``retried`` /
#: ``error_kind`` supervision fields and the optional ``shm`` envelope of
#: the shared-memory transport.
WIRE_VERSION = 2

#: ``SessionResult.error_kind`` of a session whose worker lane died and
#: which could not be (or had already been) re-dispatched.
ERROR_KIND_WORKER_DIED = "worker-died"


class ServeError(StreamRuntimeError):
    """Base class for serving-runtime failures (pool misuse, timeouts)."""


@dataclass(frozen=True)
class ServeOverload:
    """Typed admission-control rejection returned by ``ServePool.submit``.

    Not an exception: overload is an expected steady-state outcome under
    load, and load generators record it rather than unwind.  ``worker``
    is the worker the policy chose, or ``-1`` when every worker was at
    its high-water mark.
    """

    worker: int
    queue_depth: int
    limit: int
    reason: str = "queue-high-water"

    def __str__(self) -> str:
        where = f"worker {self.worker}" if self.worker >= 0 else "all workers"
        return (f"overloaded ({self.reason}): {where} at depth "
                f"{self.queue_depth}/{self.limit}")


@dataclass(frozen=True)
class SessionSpec:
    """One serving request (picklable, spawn-safe).

    Exactly one of ``benchmark`` (app-registry name) or ``program`` (a
    fuzz ``ProgramDesc`` as the plain dict from
    :func:`repro.fuzz.desc_to_dict`) must be set.  ``pipeline`` names a
    compilation preset from :data:`repro.simd.pipeline.PIPELINES`
    (``None`` runs the scalar graph untransformed); ``machine`` is a
    target-registry name resolved inside the worker.
    """

    benchmark: Optional[str] = None
    program: Optional[Dict[str, Any]] = None
    pipeline: Optional[str] = "full"
    machine: str = CORE_I7.name
    backend: str = "compiled"
    iterations: int = 4
    #: worker-local thread cores (>1 routes through the parallel runtime
    #: *inside* the worker process).
    cores: int = 1
    #: service-time emulation (the Figure-13 calibrated-pace idiom lifted
    #: to whole sessions): when > 0, the worker pays the session's
    #: *modeled* steady-state cycles in wall clock at this rate
    #: (``sleep(steady_cycles * seconds_per_cycle)`` after executing).
    #: Sleeping frees the CPU, so cross-process throughput scaling is
    #: measurable even on a single-CPU container — this is what
    #: ``BENCH_serve.json`` runs with.  ``0.0`` (default) disables it.
    seconds_per_cycle: float = 0.0
    #: client correlation label, echoed back on the result.
    tag: str = ""

    def __post_init__(self) -> None:
        if (self.benchmark is None) == (self.program is None):
            raise ServeError(
                "SessionSpec needs exactly one of benchmark= or program=")
        if self.iterations < 1:
            raise ServeError(
                f"iterations must be >= 1, got {self.iterations}")
        if self.cores < 1:
            raise ServeError(f"cores must be >= 1, got {self.cores}")
        if self.seconds_per_cycle < 0.0:
            raise ServeError(
                f"seconds_per_cycle must be >= 0, "
                f"got {self.seconds_per_cycle}")

    def graph_key(self) -> str:
        """Content-addressed identity of the *compiled graph* this spec
        needs: (program identity, machine, pipeline).  Two specs with the
        same key share one compiled graph + schedule in a worker's graph
        cache (iterations/backend/cores vary per session, not per
        graph)."""
        if self.benchmark is not None:
            source = f"bench:{self.benchmark}"
        else:
            blob = json.dumps(self.program, sort_keys=True,
                              separators=(",", ":"))
            source = "desc:" + hashlib.sha256(
                blob.encode()).hexdigest()[:16]
        return f"{source}|{self.machine}|{self.pipeline or 'scalar-asis'}"

    def to_wire(self) -> Dict[str, Any]:
        return asdict(self)

    @staticmethod
    def from_wire(wire: Dict[str, Any]) -> "SessionSpec":
        return SessionSpec(**wire)


@dataclass
class SessionResult:
    """Everything a served session hands back to the client.

    Counter state crosses the process boundary as plain *bags* —
    ``actor id -> {event name -> count}`` with zero counts dropped, the
    same normal form the fuzz backend oracle compares — so a served
    result is directly comparable to a direct
    :func:`repro.runtime.executor.execute` run.
    """

    seq: int = 0
    worker: int = -1
    tag: str = ""
    graph_name: str = ""
    backend: str = ""
    iterations: int = 0
    outputs: List[Any] = field(default_factory=list)
    init_outputs: List[Any] = field(default_factory=list)
    steady_bags: Dict[int, Dict[str, int]] = field(default_factory=dict)
    init_bags: Dict[int, Dict[str, int]] = field(default_factory=dict)
    #: kernel-cache counter deltas of this session (compiled backend).
    kernel_cache: Optional[Dict[str, int]] = None
    #: True when the worker reused a previously compiled graph+schedule.
    graph_cache_hit: bool = False
    #: in-worker service time (compile + execute), seconds.
    busy_s: float = 0.0
    #: True when the session was re-dispatched after its original lane
    #: died (stamped by the pool's supervisor, at most once per session).
    retried: bool = False
    #: ``"ExcType: message"`` when the session failed; outputs are empty.
    error: Optional[str] = None
    #: machine-readable failure class (``""`` for ordinary in-session
    #: exceptions; :data:`ERROR_KIND_WORKER_DIED` when the lane died).
    error_kind: str = ""

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def worker_died(self) -> bool:
        """True for the typed :class:`WorkerDied` outcome: the session
        was accepted but its worker process died (and at-most-once
        re-dispatch was exhausted or impossible)."""
        return self.error_kind == ERROR_KIND_WORKER_DIED


@dataclass
class WorkerDied(SessionResult):
    """Typed terminal outcome for a session stranded by a dead lane.

    Produced parent-side by the pool's supervisor (it never crosses the
    wire): the session was *accepted* but its worker process died before
    answering, and at-most-once re-dispatch was either already spent
    (``retried=True``) or impossible (no lane left to restart).  Checks
    work both by type (``isinstance(result, WorkerDied)``) and — for
    results that did cross a process boundary — by the
    :attr:`SessionResult.worker_died` property.
    """


def worker_died_result(seq: int, worker: int, *,
                       exitcode: Optional[int] = None,
                       retried: bool = False,
                       detail: str = "") -> WorkerDied:
    """Build the canonical :class:`WorkerDied` result for one session."""
    reason = f"worker {worker} died"
    if exitcode is not None:
        reason += f" (exit code {exitcode})"
    if retried:
        reason += " after one re-dispatch"
    if detail:
        reason += f": {detail}"
    return WorkerDied(seq=seq, worker=worker, retried=retried,
                      error=reason, error_kind=ERROR_KIND_WORKER_DIED)


def counter_bags(per_actor: PerActorCounters) -> Dict[int, Dict[str, int]]:
    """Normalize counters to comparable bags (drop zero counts and
    actors that charged nothing)."""
    return {
        actor_id: {event: count
                   for event, count in counters.events.items() if count}
        for actor_id, counters in per_actor.by_actor.items()
        if any(counters.events.values())
    }


def encode_result(result: SessionResult) -> Dict[str, Any]:
    """Serialize a result for the cross-process result queue.

    Counter-bag keys become strings (dict keys survive JSON round-trips
    too, should a transport ever want text); :func:`decode_result`
    restores the int keys.
    """
    wire = asdict(result)
    wire["v"] = WIRE_VERSION
    wire["steady_bags"] = {str(aid): dict(bag)
                           for aid, bag in result.steady_bags.items()}
    wire["init_bags"] = {str(aid): dict(bag)
                         for aid, bag in result.init_bags.items()}
    return wire


def decode_result(wire: Dict[str, Any]) -> SessionResult:
    """Inverse of :func:`encode_result` (parent-process side)."""
    version = wire.get("v")
    if version != WIRE_VERSION:
        raise ServeError(
            f"session result wire version {version!r} != {WIRE_VERSION}")
    fields = dict(wire)
    fields.pop("v")
    fields["steady_bags"] = {int(aid): dict(bag)
                             for aid, bag in wire["steady_bags"].items()}
    fields["init_bags"] = {int(aid): dict(bag)
                           for aid, bag in wire["init_bags"].items()}
    return SessionResult(**fields)
