"""Load generator for the serving runtime (``repro.serve.loadgen``).

Two canonical request-stream shapes drive a :class:`~.pool.ServePool`
over a mix of session specs:

* **closed loop** (:func:`run_closed_loop`) — a fixed number of client
  threads, each keeping exactly one session in flight: measures the
  system's sustainable throughput at a given concurrency, latency never
  includes un-admitted queueing.  Overloads are retried after a small
  backoff (a closed-loop client has nothing better to do) and counted.
* **open loop** (:func:`run_open_loop`) — requests arrive on a fixed
  schedule (``rate`` per second) regardless of completions: measures
  behaviour *under* offered load, including queueing delay.  Latency is
  measured from the request's *intended arrival time* (so scheduler lag
  is charged to the system, not hidden), and overloads are shed, not
  retried — exactly the admission-control contract under stress.

Both return a :class:`LoadReport` with per-request records, p50/p99
latency, throughput, and the overload/error tallies — the numbers
``BENCH_serve.json`` and ``macross loadgen`` publish.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .pool import ServePool, SessionTicket
from .session import ServeError, ServeOverload, SessionSpec

__all__ = ["LoadReport", "RequestRecord", "kill_worker_after", "percentile",
           "run_closed_loop", "run_open_loop"]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of ``values``.

    Pinned semantics (property-tested in ``tests/serve/test_loadgen``):
    the returned value is ``sorted(values)[rank - 1]`` with
    ``rank = clamp(ceil(q * n / 100), 1, n)`` computed *exactly* — a
    naive float ``ceil(q / 100 * n)`` overshoots whenever the product
    lands epsilon above an integer (e.g. ``q=7, n=100`` gave rank 8),
    so the rank is evaluated in rational arithmetic over the binary
    value of ``q``.  A one-element sample returns that element for
    every valid ``q``; an empty sample raises :class:`ServeError`
    (there is no nearest rank to return).
    """
    if not values:
        raise ServeError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ServeError(f"percentile q must be in [0, 100], got {q}")
    from fractions import Fraction
    ordered = sorted(values)
    rank = math.ceil(Fraction(q) * len(ordered) / 100)  # exact nearest rank
    rank = min(len(ordered), max(1, rank))
    return ordered[rank - 1]


def kill_worker_after(pool: ServePool, completed: int, *,
                      poll_s: float = 0.005) -> threading.Thread:
    """Arm fault injection: SIGKILL one live worker once the pool has
    completed ``completed`` sessions (``macross loadgen
    --kill-worker-after N``).  Returns the (daemon) trigger thread; join
    it after the run to learn that the kill actually fired.  With
    supervision on, throughput degrades gracefully — the lane restarts,
    stranded sessions re-dispatch once — instead of hanging clients."""
    if completed < 0:
        raise ServeError(
            f"kill_worker_after needs a count >= 0, got {completed}")

    def trigger() -> None:
        while True:
            done = sum(s.completed for s in pool.stats)
            if done >= completed:
                pool.kill_worker()
                return
            if pool._stopped:  # pool gone before the threshold was hit
                return
            time.sleep(poll_s)

    thread = threading.Thread(target=trigger, name="loadgen-fault",
                              daemon=True)
    thread.start()
    return thread


@dataclass
class RequestRecord:
    """One load-generated request, successful or not."""

    index: int
    spec_tag: str
    worker: int = -1
    ok: bool = False
    overloads: int = 0          # rejections observed for this request
    error: Optional[str] = None
    latency_s: float = 0.0      # arrival (intended) -> completion
    service_s: float = 0.0      # in-worker busy time


@dataclass
class LoadReport:
    """Aggregate outcome of one load-generation run."""

    mode: str
    workers: int
    requested: int
    completed: int = 0
    overloads: int = 0
    shed: int = 0               # open-loop requests dropped on overload
    errors: int = 0
    duration_s: float = 0.0
    records: List[RequestRecord] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s else 0.0

    def latencies_s(self) -> List[float]:
        return [r.latency_s for r in self.records if r.ok]

    def latency_ms(self, q: float) -> float:
        return percentile(self.latencies_s(), q) * 1e3

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (schema of ``BENCH_serve.json`` runs)."""
        lat = self.latencies_s()
        return {
            "mode": self.mode, "workers": self.workers,
            "requested": self.requested, "completed": self.completed,
            "overloads": self.overloads, "shed": self.shed,
            "errors": self.errors,
            "duration_s": round(self.duration_s, 6),
            "throughput_rps": round(self.throughput_rps, 3),
            "p50_ms": round(percentile(lat, 50) * 1e3, 3) if lat else None,
            "p99_ms": round(percentile(lat, 99) * 1e3, 3) if lat else None,
            "mean_ms": round(sum(lat) / len(lat) * 1e3, 3) if lat else None,
        }

    def summary(self) -> str:
        head = (f"{self.mode} loadgen: {self.completed}/{self.requested} "
                f"ok, {self.overloads} overload(s), {self.errors} "
                f"error(s), {self.duration_s:.2f}s "
                f"-> {self.throughput_rps:.1f} req/s")
        lat = self.latencies_s()
        if lat:
            head += (f"\n  latency p50 {percentile(lat, 50) * 1e3:.1f} ms"
                     f"  p99 {percentile(lat, 99) * 1e3:.1f} ms"
                     f"  max {max(lat) * 1e3:.1f} ms")
        return head


def _spec_for(specs: Sequence[SessionSpec], index: int) -> SessionSpec:
    return specs[index % len(specs)]


def run_closed_loop(pool: ServePool, specs: Sequence[SessionSpec], *,
                    concurrency: int, requests: int,
                    overload_backoff_s: float = 0.002,
                    timeout_s: float = 300.0) -> LoadReport:
    """Fixed-concurrency request stream: ``concurrency`` clients pull the
    next request index from a shared counter until ``requests`` have been
    issued, each waiting for its session before issuing the next."""
    if not specs:
        raise ServeError("closed loop needs at least one SessionSpec")
    if concurrency < 1 or requests < 1:
        raise ServeError("concurrency and requests must be >= 1")
    report = LoadReport(mode="closed", workers=pool.workers,
                        requested=requests)
    counter = iter(range(requests))
    lock = threading.Lock()
    records: List[RequestRecord] = []

    def client() -> None:
        while True:
            with lock:
                index = next(counter, None)
            if index is None:
                return
            spec = _spec_for(specs, index)
            record = RequestRecord(index=index, spec_tag=spec.tag
                                   or spec.benchmark or "program")
            arrival = time.perf_counter()
            while True:
                ticket = pool.submit(spec)
                if isinstance(ticket, ServeOverload):
                    record.overloads += 1
                    time.sleep(overload_backoff_s)
                    continue
                break
            result = ticket.result(timeout=timeout_s)
            record.worker = result.worker
            record.latency_s = time.perf_counter() - arrival
            record.service_s = result.busy_s
            record.ok = result.ok
            record.error = result.error
            with lock:
                records.append(record)

    start = time.perf_counter()
    clients = [threading.Thread(target=client, name=f"loadgen-c{i}",
                                daemon=True)
               for i in range(concurrency)]
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join()
    report.duration_s = time.perf_counter() - start
    report.records = sorted(records, key=lambda r: r.index)
    report.completed = sum(1 for r in report.records if r.ok)
    report.errors = sum(1 for r in report.records
                        if not r.ok and r.error is not None)
    report.overloads = sum(r.overloads for r in report.records)
    return report


def run_open_loop(pool: ServePool, specs: Sequence[SessionSpec], *,
                  rate: float, requests: int,
                  timeout_s: float = 300.0) -> LoadReport:
    """Fixed-arrival-rate request stream: request ``i`` is offered at
    ``start + i/rate`` whether or not earlier ones finished; overloaded
    arrivals are shed (recorded, not retried)."""
    if not specs:
        raise ServeError("open loop needs at least one SessionSpec")
    if rate <= 0 or requests < 1:
        raise ServeError("rate must be > 0 and requests >= 1")
    report = LoadReport(mode="open", workers=pool.workers,
                        requested=requests)
    inflight: List[tuple] = []  # (record, intended_arrival, ticket)
    start = time.perf_counter()
    for index in range(requests):
        intended = start + index / rate
        now = time.perf_counter()
        if intended > now:
            time.sleep(intended - now)
        spec = _spec_for(specs, index)
        record = RequestRecord(index=index, spec_tag=spec.tag
                               or spec.benchmark or "program")
        ticket = pool.submit(spec)
        if isinstance(ticket, ServeOverload):
            record.overloads = 1
            report.shed += 1
            report.records.append(record)
            continue
        inflight.append((record, intended, ticket))
        report.records.append(record)
    for record, intended, ticket in inflight:
        result = ticket.result(timeout=timeout_s)
        record.worker = result.worker
        # Open-loop convention: latency from *intended* arrival, so
        # coordinated omission cannot flatter the tail.
        record.latency_s = (ticket.done_at or time.perf_counter()) - intended
        record.service_s = result.busy_s
        record.ok = result.ok
        record.error = result.error
    report.duration_s = time.perf_counter() - start
    report.completed = sum(1 for r in report.records if r.ok)
    report.errors = sum(1 for r in report.records
                        if not r.ok and r.error is not None and
                        not r.overloads)
    report.overloads = sum(r.overloads for r in report.records)
    return report
