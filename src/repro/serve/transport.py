"""Shared-memory result transport for the serving runtime.

The stock wire path pickles every :class:`~.session.SessionResult`
through the pool's ``mp.Queue`` — fine for counter bags, painful for
sessions whose output streams run to thousands of values (the queue
feeder thread serializes, copies, and re-materializes every element).
This module gives large output arrays a zero-copy lane: the worker packs
them into a :class:`multiprocessing.shared_memory.SharedMemory` segment
(NdTape-backed outputs are already contiguous int64/float64, so the pack
is a straight ``memoryview`` blit) and ships only the segment *name* on
the queue; the parent attaches, reads, and unlinks.

Three invariants keep the segments from leaking:

* **Deterministic names** — a segment serving session ``seq`` on worker
  ``wid`` of pool ``uid`` is called ``mx<uid>w<wid>s<seq><o|i>``, so the
  parent can find (and destroy) a crashed worker's segments without
  ever having seen the result that announced them.
* **Single-consumer refcounting** — the parent-side
  :class:`SegmentRegistry` tracks every session whose result may own
  segments from dispatch until the result is drained (or the lane
  dies); ``resolve``/``scavenge`` unlink whatever exists and the
  registry must be empty after ``shutdown()``.
* **Parent-owned lifetime** — the creating worker unregisters the
  segment from its own ``resource_tracker`` (it closes but never
  unlinks), so a worker exiting cannot tear the segment down while the
  parent still reads it, and cannot spam tracker warnings either.

Small results stay on the queue: :data:`SHM_THRESHOLD_DEFAULT` (values
per result, overridable per pool and via ``MACROSS_SHM_THRESHOLD``)
keeps the segment setup cost off the fast path for tiny sessions.  The
``wire_transport`` seam — ``"queue"`` (never touch shm) vs ``"shm"``
(threshold-gated) — is exactly what the serve-parity fuzz oracle sweeps.
"""

from __future__ import annotations

import contextlib
import os
import threading
from array import array
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .session import ServeError

__all__ = [
    "SHM_THRESHOLD_DEFAULT", "WIRE_TRANSPORTS", "SegmentRegistry",
    "load_result_shm", "segment_names", "shm_threshold_default",
    "stage_result_shm",
]

#: The two wire transports the pool (and the fuzz oracle) support.
WIRE_TRANSPORTS: Tuple[str, ...] = ("queue", "shm")

#: Minimum number of output values before a result's arrays move via
#: shared memory (<= 0 forces every packable result through shm).
SHM_THRESHOLD_DEFAULT = 256

#: Output-list fields of a result wire that may travel via shm, with the
#: single-character suffix used in the segment name.
_SHM_FIELDS: Tuple[Tuple[str, str], ...] = (("outputs", "o"),
                                            ("init_outputs", "i"))

#: array typecodes used on the wire: int64 / float64, the NdTape dtypes.
_TYPECODES = ("q", "d")


def shm_threshold_default() -> int:
    """Default threshold, honouring ``MACROSS_SHM_THRESHOLD``."""
    raw = os.environ.get("MACROSS_SHM_THRESHOLD")
    if raw is None:
        return SHM_THRESHOLD_DEFAULT
    try:
        return int(raw)
    except ValueError:
        raise ServeError(
            f"MACROSS_SHM_THRESHOLD must be an integer, got {raw!r}")


def segment_names(uid: str, worker: int, seq: int) -> Tuple[str, ...]:
    """Every segment name session ``seq`` on ``worker`` may have created
    (deterministic, so crashes can be cleaned up blindly)."""
    return tuple(f"mx{uid}w{worker}s{seq}{suffix}"
                 for _field, suffix in _SHM_FIELDS)


def _pack(values: Sequence[Any]) -> Optional[array]:
    """Pack homogeneous numeric outputs into a typed array.

    Returns ``None`` when the values are not representable (mixed
    int/float stays on the queue path; bools are *ints* to ``array`` but
    not to the parity oracle, so they disqualify too)."""
    if not values:
        return None
    if all(type(v) is int for v in values):
        try:
            return array("q", values)
        except OverflowError:  # huge ints: queue path handles them fine
            return None
    if all(type(v) is float for v in values):
        return array("d", values)
    return None


def _unregister_tracked(shm: Any) -> None:
    """Detach a freshly created segment from this process's resource
    tracker: the *parent* owns the unlink (Python 3.13's ``track=False``,
    done by hand for older runtimes)."""
    from multiprocessing import resource_tracker
    with contextlib.suppress(Exception):
        resource_tracker.unregister(shm._name, "shared_memory")


def stage_result_shm(wire: Dict[str, Any], *, uid: str, worker: int,
                     seq: int, threshold: int) -> Dict[str, Any]:
    """Worker side: move large output lists out of ``wire`` into shared
    memory.  Mutates and returns ``wire``; on any shm failure the result
    simply stays on the queue path (transport must never fail a
    session)."""
    from multiprocessing import shared_memory

    names = dict(zip((f for f, _s in _SHM_FIELDS),
                     segment_names(uid, worker, seq)))
    segments: Dict[str, Dict[str, Any]] = {}
    created: List[Any] = []
    try:
        for fld, _suffix in _SHM_FIELDS:
            values = wire.get(fld)
            if not values:
                continue
            if threshold > 0 and len(values) < threshold:
                continue
            packed = _pack(values)
            if packed is None:
                continue
            name = names[fld]
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=packed.itemsize * len(packed))
            except FileExistsError:
                # A stale segment from a killed predecessor of this seq:
                # destroy it and take the name over.
                stale = shared_memory.SharedMemory(name=name)
                stale.close()
                with contextlib.suppress(FileNotFoundError):
                    stale.unlink()
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=packed.itemsize * len(packed))
            created.append(shm)
            shm.buf[:packed.itemsize * len(packed)] = packed.tobytes()
            _unregister_tracked(shm)
            shm.close()
            segments[fld] = {"name": name, "typecode": packed.typecode,
                             "count": len(packed)}
            wire[fld] = []
    except Exception:  # noqa: BLE001 - degrade to the queue path
        for fld in list(segments):
            with contextlib.suppress(Exception):
                shared_memory.SharedMemory(name=segments[fld]["name"]).unlink()
        return wire
    if segments:
        wire["shm"] = segments
    return wire


def load_result_shm(wire: Dict[str, Any]) -> Dict[str, Any]:
    """Parent side: materialize shm-borne fields back into ``wire`` and
    destroy the segments.  Raises :class:`ServeError` on a malformed
    envelope (the oracle's mutation tests corrupt exactly this)."""
    from multiprocessing import shared_memory

    segments = wire.pop("shm", None)
    if not segments:
        return wire
    for fld, meta in segments.items():
        if fld not in {f for f, _s in _SHM_FIELDS}:
            raise ServeError(f"unknown shm-borne field {fld!r}")
        typecode, count = meta["typecode"], meta["count"]
        if typecode not in _TYPECODES or count < 0:
            raise ServeError(f"malformed shm envelope for {fld!r}: {meta}")
        try:
            shm = shared_memory.SharedMemory(name=meta["name"])
        except FileNotFoundError:
            raise ServeError(
                f"shm segment {meta['name']!r} for {fld!r} vanished "
                f"before the result was drained")
        try:
            values = array(typecode)
            expected = values.itemsize * count
            if expected > len(shm.buf):
                raise ServeError(
                    f"shm envelope for {fld!r} claims {count} values "
                    f"({expected} bytes) but segment holds "
                    f"{len(shm.buf)}")
            values.frombytes(bytes(shm.buf[:expected]))
            wire[fld] = values.tolist()
        finally:
            shm.close()
            with contextlib.suppress(FileNotFoundError):
                shm.unlink()
    return wire


class SegmentRegistry:
    """Parent-side ledger of sessions that may own shm segments.

    One *expectation* (seq -> candidate segment names) is opened per
    dispatched session and closed exactly once — by ``resolve`` when the
    result is drained, or by ``scavenge`` when the owning lane dies or
    the pool shuts down.  Closing an expectation unlinks any of its
    segments that still exist, so no code path (drain, crash, shutdown)
    can leak a segment.  ``outstanding()`` must be empty after
    ``ServePool.shutdown()`` — the shutdown-idempotency tests assert it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._expected: Dict[int, Tuple[str, ...]] = {}

    def expect(self, seq: int, names: Sequence[str]) -> None:
        with self._lock:
            self._expected[seq] = tuple(names)

    def outstanding(self) -> Dict[int, Tuple[str, ...]]:
        with self._lock:
            return dict(self._expected)

    def __len__(self) -> int:
        with self._lock:
            return len(self._expected)

    def _close(self, seq: int) -> int:
        from multiprocessing import shared_memory
        with self._lock:
            names = self._expected.pop(seq, ())
        destroyed = 0
        for name in names:
            try:
                shm = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue
            shm.close()
            with contextlib.suppress(FileNotFoundError):
                shm.unlink()
            destroyed += 1
        return destroyed

    def resolve(self, seq: int) -> None:
        """Result for ``seq`` drained: drop the expectation and destroy
        any segment the consumer did not already unlink (e.g. a result
        that errored after creating its segments)."""
        self._close(seq)

    def scavenge(self, seq: int) -> int:
        """The session's lane died (or the pool is shutting down):
        destroy whatever the worker managed to create.  Returns the
        number of segments destroyed (observable in tests)."""
        return self._close(seq)

    def scavenge_all(self) -> int:
        destroyed = 0
        for seq in list(self.outstanding()):
            destroyed += self.scavenge(seq)
        return destroyed
