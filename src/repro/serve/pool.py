"""Process-sharded worker pool with admission control, supervision, and
zero-copy result transport.

:class:`ServePool` owns ``workers`` long-lived processes (default start
method ``spawn`` — the strictest, therefore portable one), one bounded
request lane per worker, and a shared result queue drained by a
collector thread in the parent.  The flow of one session:

1. :meth:`submit` asks the placement policy for a worker.  Admission
   control: a worker whose in-flight depth (queued + running) is at
   ``max_queue_depth`` is not eligible (dead lanes awaiting restart are
   never eligible); if no worker is eligible the submit returns a typed
   :class:`~repro.serve.session.ServeOverload` instead of queueing
   unboundedly — load-shedding at the front door is the serving
   analogue of the multicore runtime's bounded channels.
2. The spec crosses to the worker as plain builtins; the worker runs it
   against its persistent caches and answers on the result queue —
   large output arrays via a named shared-memory segment when
   ``wire_transport="shm"`` (see :mod:`.transport`), everything else
   inline.
3. The collector resolves the :class:`SessionTicket`, stamps the
   completion time, and charges the worker's
   :class:`WorkerStats` blame bag (requests, busy time, cache hits,
   queue-depth high-water — the gem5 stream-engine per-lane statistics
   idiom).

A **supervisor thread** watches every worker's process *sentinel*: when
a lane dies it scavenges the lane's shared-memory segments, re-dispatches
the lane's in-flight sessions **at most once** (results carry a
``retried`` flag; a twice-stranded session resolves to a typed
:class:`~repro.serve.session.WorkerDied` result instead), and restarts
the lane with bounded exponential backoff.  Restart/requeue counts land
in the per-lane blame table, so churn is observable, not silent.

``drain()`` waits for in-flight work without accepting more;
``shutdown()`` drains (optionally), sends each worker its shutdown
sentinel, merges the workers' lifetime stats, joins the processes, and
destroys any shared-memory segment still registered.  The pool is a
context manager; exiting shuts down gracefully.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection
import os
import queue as thread_queue
import signal
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..obs.tracer import Tracer, ensure_tracer
from .scheduler import PlacementPolicy, get_policy
from .session import (ServeError, ServeOverload, SessionResult, SessionSpec,
                      decode_result, worker_died_result)
from .store import default_store_dir
from .transport import (WIRE_TRANSPORTS, SegmentRegistry, load_result_shm,
                        segment_names, shm_threshold_default)
from .worker import MSG_BYE, MSG_READY, MSG_RESULT, worker_main

__all__ = ["ServePool", "ServeTimeout", "SessionTicket", "WorkerStats"]

#: Collector poll interval; bounds shutdown latency, not throughput.
_POLL_S = 0.05

#: Supervisor sentinel-wait slice; bounds death-detection latency.
_SENTINEL_WAIT_S = 0.1

#: Restart backoff is capped here regardless of the attempt count.
_BACKOFF_CAP_S = 2.0


class ServeTimeout(ServeError):
    """A ticket wait or pool startup/drain exceeded its deadline."""


@dataclass
class WorkerStats:
    """Parent-side blame bag for one worker lane."""

    worker: int
    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    errors: int = 0
    #: current in-flight depth (queued + running).
    queue_depth: int = 0
    max_queue_depth: int = 0
    #: accumulated in-worker service time.
    busy_s: float = 0.0
    #: kernel-cache counters accumulated over this lane's sessions.
    cache: Dict[str, int] = field(default_factory=dict)
    graph_cache_hits: int = 0
    #: supervision: times this lane's process was restarted after dying.
    restarts: int = 0
    #: supervision: sessions this lane stranded that were re-dispatched.
    requeued: int = 0
    #: supervision: sessions terminally failed as ``WorkerDied``.
    worker_died: int = 0
    #: worker-reported lifetime stats, filled at shutdown (MSG_BYE).
    env: Dict[str, Any] = field(default_factory=dict)

    def charge(self, result: SessionResult) -> None:
        self.completed += 1
        self.queue_depth -= 1
        self.busy_s += result.busy_s
        if result.error is not None:
            self.errors += 1
        if result.worker_died:
            self.worker_died += 1
        if result.graph_cache_hit:
            self.graph_cache_hits += 1
        if result.kernel_cache:
            for key, value in result.kernel_cache.items():
                if key == "size":
                    self.cache["size"] = value  # resident count, not a delta
                else:
                    self.cache[key] = self.cache.get(key, 0) + value

    def snapshot(self) -> Dict[str, Any]:
        return {"worker": self.worker, "submitted": self.submitted,
                "completed": self.completed, "rejected": self.rejected,
                "errors": self.errors, "queue_depth": self.queue_depth,
                "max_queue_depth": self.max_queue_depth,
                "busy_s": self.busy_s, "cache": dict(self.cache),
                "graph_cache_hits": self.graph_cache_hits,
                "restarts": self.restarts, "requeued": self.requeued,
                "worker_died": self.worker_died,
                "env": dict(self.env)}


class SessionTicket:
    """Handle for one admitted session; resolved by the collector."""

    __slots__ = ("seq", "worker", "spec", "submitted_at", "done_at",
                 "retried", "_event", "_result")

    def __init__(self, seq: int, worker: int, spec: SessionSpec) -> None:
        self.seq = seq
        self.worker = worker
        self.spec = spec
        self.submitted_at = time.perf_counter()
        self.done_at: Optional[float] = None
        #: set by the supervisor when the session is re-dispatched after
        #: its original lane died (at most once).
        self.retried = False
        self._event = threading.Event()
        self._result: Optional[SessionResult] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> SessionResult:
        """Block until the session completes (or ``timeout`` seconds)."""
        if not self._event.wait(timeout):
            raise ServeTimeout(
                f"session {self.seq} (worker {self.worker}) still pending "
                f"after {timeout}s")
        assert self._result is not None
        return self._result

    @property
    def latency_s(self) -> float:
        """Submit-to-completion wall time (queueing + service)."""
        if self.done_at is None:
            raise ServeError(f"session {self.seq} not finished")
        return self.done_at - self.submitted_at

    def _resolve(self, result: SessionResult) -> None:
        self._result = result
        self.done_at = time.perf_counter()
        self._event.set()


class ServePool:
    """A fixed-size pool of worker processes serving stream sessions."""

    def __init__(self, workers: int = 2, *,
                 policy: Union[str, PlacementPolicy] = "round-robin",
                 backend: str = "compiled",
                 max_queue_depth: int = 8,
                 max_kernels: Optional[int] = None,
                 max_graphs: Optional[int] = None,
                 start_method: str = "spawn",
                 start_timeout: float = 120.0,
                 wire_transport: str = "shm",
                 shm_threshold: Optional[int] = None,
                 store_dir: Optional[str] = None,
                 supervise: bool = True,
                 max_restarts: int = 3,
                 restart_backoff_s: float = 0.05,
                 tracer: Optional[Tracer] = None) -> None:
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        if max_queue_depth < 1:
            raise ServeError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if wire_transport not in WIRE_TRANSPORTS:
            raise ServeError(
                f"wire_transport must be one of {WIRE_TRANSPORTS}, "
                f"got {wire_transport!r}")
        if max_restarts < 0:
            raise ServeError(
                f"max_restarts must be >= 0, got {max_restarts}")
        self.workers = workers
        self.backend = backend
        self.max_queue_depth = max_queue_depth
        self.policy = get_policy(policy) if isinstance(policy, str) \
            else policy
        self.tracer = ensure_tracer(tracer)
        self.wire_transport = wire_transport
        self.shm_threshold = shm_threshold_default() \
            if shm_threshold is None else shm_threshold
        if store_dir is None:
            env_dir = default_store_dir()
            store_dir = str(env_dir) if env_dir is not None else None
        self.store_dir = store_dir
        self.supervise = supervise
        self.max_restarts = max_restarts
        self.restart_backoff_s = restart_backoff_s
        self.uid = uuid.uuid4().hex[:8]
        self.registry = SegmentRegistry()
        self._max_kernels = max_kernels
        self._max_graphs = max_graphs
        self._lock = threading.Lock()
        self._seq = 0
        self._closed = False
        self._stopping = False   # teardown started: no more restarts
        self._stopped = False
        self._pending: Dict[int, SessionTicket] = {}
        self.stats: List[WorkerStats] = [WorkerStats(w)
                                         for w in range(workers)]
        self._ctx = mp.get_context(start_method)
        # One result queue per lane, pumped into an in-process inbox: a
        # SIGKILLed worker can die holding its queue's shared write lock
        # (or mid-write, tearing a frame), and a private channel confines
        # that damage to a queue nobody will ever write to again.  A
        # single shared result queue would be poisoned for every lane.
        self._inbox: "thread_queue.Queue[Any]" = thread_queue.Queue()
        self._result_queues: List[Any] = [None] * workers
        self._pumps: List[Any] = [None] * workers
        self._requests: List[Any] = [None] * workers
        self._procs: List[Any] = [None] * workers
        self._alive: List[bool] = [False] * workers
        for wid in range(workers):
            self._spawn_worker(wid)
        self._byes = 0
        self._await_ready(start_timeout)
        self._collector = threading.Thread(target=self._collect,
                                           name="macross-serve-collector",
                                           daemon=True)
        self._collector.start()
        self._supervisor: Optional[threading.Thread] = None
        if supervise:
            self._supervisor = threading.Thread(
                target=self._supervise, name="macross-serve-supervisor",
                daemon=True)
            self._supervisor.start()

    # -- lifecycle -------------------------------------------------------------
    def _spawn_worker(self, wid: int) -> None:
        """(Re)create lane ``wid``: fresh request/result queues and a
        process.  A dead lane's old queues are abandoned wholesale — the
        request queue's undelivered messages correspond exactly to the
        tickets the supervisor re-dispatches, and the result queue may
        be unusable outright: a SIGKILL that lands inside the worker's
        feeder thread leaves the queue's cross-process write lock
        permanently held (or a frame half-written in the pipe), so a
        restarted lane must never inherit it."""
        old = self._requests[wid]
        if old is not None:
            old.cancel_join_thread()
            old.close()
        old_results = self._result_queues[wid]
        if old_results is not None:
            self._retire_results(old_results)
        requests = self._ctx.Queue()
        results = self._ctx.Queue()
        proc = self._ctx.Process(
            target=worker_main,
            args=(wid, requests, results, self.backend,
                  self._max_kernels, self._max_graphs,
                  self.wire_transport, self.shm_threshold, self.uid,
                  self.store_dir),
            name=f"macross-serve-w{wid}", daemon=True)
        self._requests[wid] = requests
        self._result_queues[wid] = results
        self._procs[wid] = proc
        proc.start()
        pump = threading.Thread(target=self._pump, args=(wid, results),
                                name=f"macross-serve-pump-w{wid}",
                                daemon=True)
        self._pumps[wid] = pump
        pump.start()
        self._alive[wid] = True

    @staticmethod
    def _retire_results(results: Any) -> None:
        """Close the parent's copy of a lane result queue's write end.
        With the worker process gone this leaves no writer at all, so
        the lane's pump thread sees EOF (after draining anything the
        worker did manage to send) and exits instead of blocking on a
        channel that can never speak again."""
        try:
            results._writer.close()
        except (OSError, ValueError):  # pragma: no cover - double close
            pass

    def _pump(self, wid: int, results: Any) -> None:
        """Forward one lane's results into the in-process inbox until
        the channel reaches EOF (worker exited and the parent's write
        end retired) or dies mid-frame under a SIGKILL."""
        while True:
            try:
                item = results.get()
            except (EOFError, OSError):
                return  # channel closed: lane is done for good
            except Exception:  # noqa: BLE001 - frame torn by a dying
                continue       # writer; EOF follows on the next read
            self._inbox.put(item)

    def _await_ready(self, timeout: float) -> None:
        """Consume one MSG_READY per worker before serving (keeps process
        startup out of every latency measurement)."""
        ready = 0
        deadline = time.monotonic() + timeout
        while ready < self.workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._kill()
                raise ServeTimeout(
                    f"only {ready}/{self.workers} workers ready after "
                    f"{timeout:.0f}s")
            dead = [p for p in self._procs
                    if not p.is_alive() and p.exitcode is not None]
            if dead:
                self._kill()
                raise ServeError(
                    f"{len(dead)} worker(s) died during startup (exit "
                    f"codes {[p.exitcode for p in dead]}) — with the "
                    f"'spawn' start method the entry script must be "
                    f"importable (guard it with __main__)")
            try:
                kind, wid, payload = self._inbox.get(
                    timeout=min(remaining, 0.5))
            except thread_queue.Empty:
                continue
            if kind == MSG_READY:
                ready += 1
            elif kind == MSG_BYE:  # worker died during startup
                self._kill()
                raise ServeError(
                    f"worker {wid} failed to start: "
                    f"{payload.get('error', 'unknown')}")

    def __enter__(self) -> "ServePool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def _kill(self) -> None:
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=5.0)
        for results in self._result_queues:
            if results is not None:
                self._retire_results(results)

    # -- fault injection -------------------------------------------------------
    def kill_worker(self, wid: Optional[int] = None) -> int:
        """SIGKILL one live worker process (fault injection: tests and
        ``macross loadgen --kill-worker-after``).  Returns the lane id,
        or ``-1`` when no lane is alive to kill."""
        with self._lock:
            candidates = [w for w in range(self.workers)
                          if self._alive[w] and self._procs[w].is_alive()]
            if wid is not None:
                candidates = [w for w in candidates if w == wid]
            if not candidates:
                return -1
            victim = candidates[0]
            pid = self._procs[victim].pid
        os.kill(pid, signal.SIGKILL)
        return victim

    # -- supervision -----------------------------------------------------------
    def _supervise(self) -> None:
        """Watch worker sentinels; on death, requeue + restart."""
        while not self._stopped:
            with self._lock:
                watched = [(wid, self._procs[wid])
                           for wid in range(self.workers)
                           if self._alive[wid]]
            if not watched:
                time.sleep(_SENTINEL_WAIT_S)
                continue
            try:
                fired = mp.connection.wait(
                    [proc.sentinel for _wid, proc in watched],
                    timeout=_SENTINEL_WAIT_S)
            except OSError:  # a sentinel closed under us mid-wait
                fired = []
            if not fired:
                continue
            for wid, proc in watched:
                if proc.sentinel in fired and not proc.is_alive():
                    if self._stopping:
                        continue  # orderly shutdown, not a crash
                    self._on_worker_death(wid, proc)

    def _on_worker_death(self, wid: int, proc: Any) -> None:
        """One lane died: scavenge its segments, re-dispatch its
        in-flight sessions (at most once each), restart it with bounded
        exponential backoff."""
        with self._lock:
            if self._procs[wid] is not proc or not self._alive[wid]:
                return  # stale notification (lane already replaced)
            self._alive[wid] = False
            exitcode = proc.exitcode
            stranded = sorted(
                (t for t in self._pending.values() if t.worker == wid),
                key=lambda t: t.seq)
            stats = self.stats[wid]
        if self.tracer.enabled:
            self.tracer.event("serve.worker_died", cat="serve",
                              worker=wid, exitcode=exitcode,
                              stranded=len(stranded))
        # The dead worker may have created segments for results it never
        # (fully) announced: destroy them before any retry reuses the
        # deterministic names.
        for ticket in stranded:
            self.registry.scavenge(ticket.seq)
        restarted = False
        with self._lock:
            attempts = stats.restarts
            can_restart = (not self._stopping
                           and attempts < self.max_restarts)
        if can_restart:
            backoff = min(self.restart_backoff_s * (2 ** attempts),
                          _BACKOFF_CAP_S)
            time.sleep(backoff)
            with self._lock:
                if not self._stopping:
                    self._spawn_worker(wid)
                    stats.restarts += 1
                    restarted = True
            if restarted and self.tracer.enabled:
                self.tracer.event("serve.worker_restarted", cat="serve",
                                  worker=wid, attempt=attempts + 1,
                                  backoff_s=backoff)
        if not restarted:
            # The lane stays dead: let its pump drain and exit on EOF.
            self._retire_results(self._result_queues[wid])
        for ticket in stranded:
            self._redispatch_or_fail(ticket, wid, exitcode)

    def _redispatch_or_fail(self, ticket: SessionTicket, dead_wid: int,
                            exitcode: Optional[int]) -> None:
        """At-most-once re-dispatch of one stranded session."""
        with self._lock:
            if ticket.seq not in self._pending:
                return  # resolved concurrently (its result was in flight)
            if ticket.retried:
                target = -1  # the one retry is spent
            else:
                # Prefer the restarted home lane, else the shallowest
                # other live lane.
                live = [w for w in range(self.workers) if self._alive[w]]
                if dead_wid in live:
                    target = dead_wid
                elif live:
                    target = min(live,
                                 key=lambda w: self.stats[w].queue_depth)
                else:
                    target = -1
            if target < 0:
                self._pending.pop(ticket.seq, None)
                self.stats[ticket.worker].charge(
                    result := worker_died_result(
                        ticket.seq, dead_wid, exitcode=exitcode,
                        retried=ticket.retried))
            else:
                self.stats[ticket.worker].queue_depth -= 1
                self.stats[dead_wid].requeued += 1
                ticket.retried = True
                ticket.worker = target
                stats = self.stats[target]
                stats.queue_depth += 1
                if stats.queue_depth > stats.max_queue_depth:
                    stats.max_queue_depth = stats.queue_depth
        if target < 0:
            ticket._resolve(result)
            return
        self._dispatch(ticket)
        if self.tracer.enabled:
            self.tracer.event("serve.session_requeued", cat="serve",
                              seq=ticket.seq, from_worker=dead_wid,
                              to_worker=target)

    # -- collector -------------------------------------------------------------
    def _collect(self) -> None:
        while not self._stopped:
            try:
                kind, wid, payload = self._inbox.get(timeout=_POLL_S)
            except thread_queue.Empty:
                continue
            if kind == MSG_RESULT:
                try:
                    payload = load_result_shm(payload)
                    result = decode_result(payload)
                except Exception as exc:  # noqa: BLE001 - corrupt wire
                    result = SessionResult(
                        seq=payload.get("seq", -1) if isinstance(
                            payload, dict) else -1,
                        worker=wid,
                        error=f"decode failed: {type(exc).__name__}: {exc}")
                self._finish(wid, result)
                self.registry.resolve(result.seq)
            elif kind == MSG_BYE:
                with self._lock:
                    self.stats[wid].env = dict(payload or {})
                    self._byes += 1
            # MSG_READY from a supervisor-restarted lane needs no action:
            # its requeued work is already sitting in the lane's queue.

    def _finish(self, wid: int, result: SessionResult) -> None:
        with self._lock:
            ticket = self._pending.pop(result.seq, None)
            if ticket is not None:
                # Charge the lane the ticket is *currently* placed on:
                # re-dispatch may have moved it, and a result a dying
                # lane managed to send must release the depth slot its
                # ticket now occupies, not the dead lane's.
                result.retried = ticket.retried
                self.stats[ticket.worker].charge(result)
        if ticket is not None:
            ticket._resolve(result)
            if self.tracer.enabled:
                self.tracer.event(
                    "serve.session", cat="serve", worker=wid,
                    seq=result.seq, graph=result.graph_name,
                    ok=result.ok, retried=result.retried,
                    latency_ms=round(ticket.latency_s * 1e3, 3),
                    busy_ms=round(result.busy_s * 1e3, 3),
                    graph_cache_hit=result.graph_cache_hit)

    # -- submission ------------------------------------------------------------
    def _dispatch(self, ticket: SessionTicket) -> None:
        """Hand one admitted session to its lane (registering the
        session's possible shm segments first, so even a lane that dies
        mid-write cannot leak them)."""
        if self.wire_transport == "shm":
            self.registry.expect(
                ticket.seq,
                segment_names(self.uid, ticket.worker, ticket.seq))
        self._requests[ticket.worker].put(
            (ticket.seq, ticket.spec.to_wire()))

    def submit(self, spec: SessionSpec) -> Union[SessionTicket,
                                                 ServeOverload]:
        """Admit and place one session, or return :class:`ServeOverload`.

        Never blocks: backpressure is surfaced to the caller as data, so
        clients (and the load generator) decide whether to retry, shed,
        or slow down.  A dead lane (awaiting supervised restart) is
        simply ineligible — with every lane dead, submits shed rather
        than hang.
        """
        with self._lock:
            if self._closed:
                raise ServeError("pool is shut down (or draining)")
            # A dead lane reports itself saturated so no policy picks it.
            depths = [s.queue_depth if self._alive[s.worker]
                      else self.max_queue_depth
                      for s in self.stats]
            wid = self.policy.choose(depths, self.max_queue_depth)
            if wid < 0:
                busiest = max(range(self.workers),
                              key=lambda w: depths[w])
                self.stats[busiest].rejected += 1
                overload = ServeOverload(worker=-1,
                                         queue_depth=depths[busiest],
                                         limit=self.max_queue_depth)
                if self.tracer.enabled:
                    self.tracer.event("serve.overload", cat="serve",
                                      queue_depth=overload.queue_depth,
                                      limit=overload.limit)
                return overload
            self._seq += 1
            ticket = SessionTicket(self._seq, wid, spec)
            self._pending[ticket.seq] = ticket
            stats = self.stats[wid]
            stats.submitted += 1
            stats.queue_depth += 1
            if stats.queue_depth > stats.max_queue_depth:
                stats.max_queue_depth = stats.queue_depth
        self._dispatch(ticket)
        return ticket

    def run(self, spec: SessionSpec, *,
            timeout: Optional[float] = None) -> SessionResult:
        """Synchronous convenience: submit and wait (raises
        :class:`ServeError` on overload instead of returning it)."""
        ticket = self.submit(spec)
        if isinstance(ticket, ServeOverload):
            raise ServeError(str(ticket))
        return ticket.result(timeout)

    # -- draining / shutdown ---------------------------------------------------
    def in_flight(self) -> int:
        with self._lock:
            return len(self._pending)

    def drain(self, timeout: Optional[float] = None) -> None:
        """Wait until every admitted session has completed.

        Sentinel-aware: with supervision on, the supervisor thread
        requeues or fails a dead lane's sessions, so this wait always
        makes progress; without it, this loop itself converts a dead
        lane's in-flight tickets into typed ``WorkerDied`` results
        instead of blocking forever."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                if not self._pending:
                    return
                pending = list(self._pending.values())
                lanes = [(wid, self._procs[wid], self._alive[wid])
                         for wid in range(self.workers)]
            if not self.supervise:
                for wid, proc, alive in lanes:
                    if alive and not proc.is_alive():
                        for ticket in pending:
                            if ticket.worker == wid \
                                    and not ticket.done():
                                self._finish(wid, worker_died_result(
                                    ticket.seq, wid,
                                    exitcode=proc.exitcode))
                                self.registry.scavenge(ticket.seq)
            if deadline is not None and time.monotonic() > deadline:
                raise ServeTimeout(
                    f"{self.in_flight()} session(s) still in flight after "
                    f"{timeout}s drain")
            time.sleep(_POLL_S)

    def shutdown(self, *, drain: bool = True,
                 timeout: float = 60.0) -> List[Dict[str, Any]]:
        """Gracefully stop: close the front door, optionally drain, send
        each worker its sentinel, merge lifetime stats, join.  Returns
        the final per-worker stats snapshots (idempotent)."""
        with self._lock:
            if self._closed and self._stopped:
                return [s.snapshot() for s in self.stats]
            self._closed = True
        if drain:
            try:
                self.drain(timeout=timeout)
            except ServeTimeout:
                pass  # fall through to teardown; tickets fail below
        with self._lock:
            self._stopping = True  # supervisor: stop restarting lanes
            expected_byes = self._byes + sum(
                1 for wid in range(self.workers)
                if self._alive[wid] and self._procs[wid].is_alive())
        for wid in range(self.workers):
            if self._alive[wid]:
                try:
                    self._requests[wid].put(None)
                except (ValueError, OSError):  # pragma: no cover
                    pass
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()) + 1.0)
        # Give the collector a beat to drain the workers' MSG_BYE stats
        # (they may still sit in the result queue after the join).
        grace = time.monotonic() + 2.0
        while self._byes < expected_byes and time.monotonic() < grace:
            time.sleep(_POLL_S)
        self._stopped = True
        if self._collector.is_alive():
            self._collector.join(timeout=5.0)
        if self._supervisor is not None and self._supervisor.is_alive():
            self._supervisor.join(timeout=5.0)
        self._kill()
        for pump in self._pumps:
            if pump is not None and pump.is_alive():
                pump.join(timeout=5.0)
        with self._lock:
            orphans = list(self._pending.values())
            self._pending.clear()
        for ticket in orphans:
            self.registry.scavenge(ticket.seq)
            ticket._resolve(SessionResult(
                seq=ticket.seq, worker=ticket.worker,
                error="pool shut down before completion"))
        # No segment may outlive the pool, whatever path got us here.
        self.registry.scavenge_all()
        for requests in self._requests:
            if requests is not None:
                requests.cancel_join_thread()
                requests.close()
        for results in self._result_queues:
            if results is not None:
                try:
                    results._reader.close()
                except (OSError, ValueError):  # pragma: no cover
                    pass
        if self.tracer.enabled:
            for stats in self.stats:
                self.tracer.event(f"serve.worker{stats.worker}",
                                  cat="serve", **{
                                      k: v for k, v in
                                      stats.snapshot().items()
                                      if k not in ("cache", "env")})
        return [s.snapshot() for s in self.stats]

    def stats_snapshot(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [s.snapshot() for s in self.stats]
