"""Process-sharded worker pool with admission control and backpressure.

:class:`ServePool` owns ``workers`` long-lived processes (default start
method ``spawn`` — the strictest, therefore portable one), one bounded
request lane per worker, and a shared result queue drained by a
collector thread in the parent.  The flow of one session:

1. :meth:`submit` asks the placement policy for a worker.  Admission
   control: a worker whose in-flight depth (queued + running) is at
   ``max_queue_depth`` is not eligible; if no worker is eligible the
   submit returns a typed :class:`~repro.serve.session.ServeOverload`
   instead of queueing unboundedly — load-shedding at the front door is
   the serving analogue of the multicore runtime's bounded channels.
2. The spec crosses to the worker as plain builtins; the worker runs it
   against its persistent caches and answers on the result queue.
3. The collector resolves the :class:`SessionTicket`, stamps the
   completion time, and charges the worker's
   :class:`WorkerStats` blame bag (requests, busy time, cache hits,
   queue-depth high-water — the gem5 stream-engine per-lane statistics
   idiom).

``drain()`` waits for in-flight work without accepting more;
``shutdown()`` drains (optionally), sends each worker its shutdown
sentinel, merges the workers' lifetime stats, and joins the processes.
The pool is a context manager; exiting shuts down gracefully.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..obs.tracer import Tracer, ensure_tracer
from .scheduler import PlacementPolicy, get_policy
from .session import (ServeError, ServeOverload, SessionResult, SessionSpec,
                      decode_result)
from .worker import MSG_BYE, MSG_READY, MSG_RESULT, worker_main

__all__ = ["ServePool", "ServeTimeout", "SessionTicket", "WorkerStats"]

#: Collector poll interval; bounds shutdown latency, not throughput.
_POLL_S = 0.05


class ServeTimeout(ServeError):
    """A ticket wait or pool startup/drain exceeded its deadline."""


@dataclass
class WorkerStats:
    """Parent-side blame bag for one worker lane."""

    worker: int
    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    errors: int = 0
    #: current in-flight depth (queued + running).
    queue_depth: int = 0
    max_queue_depth: int = 0
    #: accumulated in-worker service time.
    busy_s: float = 0.0
    #: kernel-cache counters accumulated over this lane's sessions.
    cache: Dict[str, int] = field(default_factory=dict)
    graph_cache_hits: int = 0
    #: worker-reported lifetime stats, filled at shutdown (MSG_BYE).
    env: Dict[str, Any] = field(default_factory=dict)

    def charge(self, result: SessionResult) -> None:
        self.completed += 1
        self.queue_depth -= 1
        self.busy_s += result.busy_s
        if result.error is not None:
            self.errors += 1
        if result.graph_cache_hit:
            self.graph_cache_hits += 1
        if result.kernel_cache:
            for key, value in result.kernel_cache.items():
                if key == "size":
                    self.cache["size"] = value  # resident count, not a delta
                else:
                    self.cache[key] = self.cache.get(key, 0) + value

    def snapshot(self) -> Dict[str, Any]:
        return {"worker": self.worker, "submitted": self.submitted,
                "completed": self.completed, "rejected": self.rejected,
                "errors": self.errors, "queue_depth": self.queue_depth,
                "max_queue_depth": self.max_queue_depth,
                "busy_s": self.busy_s, "cache": dict(self.cache),
                "graph_cache_hits": self.graph_cache_hits,
                "env": dict(self.env)}


class SessionTicket:
    """Handle for one admitted session; resolved by the collector."""

    __slots__ = ("seq", "worker", "spec", "submitted_at", "done_at",
                 "_event", "_result")

    def __init__(self, seq: int, worker: int, spec: SessionSpec) -> None:
        self.seq = seq
        self.worker = worker
        self.spec = spec
        self.submitted_at = time.perf_counter()
        self.done_at: Optional[float] = None
        self._event = threading.Event()
        self._result: Optional[SessionResult] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> SessionResult:
        """Block until the session completes (or ``timeout`` seconds)."""
        if not self._event.wait(timeout):
            raise ServeTimeout(
                f"session {self.seq} (worker {self.worker}) still pending "
                f"after {timeout}s")
        assert self._result is not None
        return self._result

    @property
    def latency_s(self) -> float:
        """Submit-to-completion wall time (queueing + service)."""
        if self.done_at is None:
            raise ServeError(f"session {self.seq} not finished")
        return self.done_at - self.submitted_at

    def _resolve(self, result: SessionResult) -> None:
        self._result = result
        self.done_at = time.perf_counter()
        self._event.set()


class ServePool:
    """A fixed-size pool of worker processes serving stream sessions."""

    def __init__(self, workers: int = 2, *,
                 policy: Union[str, PlacementPolicy] = "round-robin",
                 backend: str = "compiled",
                 max_queue_depth: int = 8,
                 max_kernels: Optional[int] = None,
                 max_graphs: Optional[int] = None,
                 start_method: str = "spawn",
                 start_timeout: float = 120.0,
                 tracer: Optional[Tracer] = None) -> None:
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        if max_queue_depth < 1:
            raise ServeError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}")
        self.workers = workers
        self.backend = backend
        self.max_queue_depth = max_queue_depth
        self.policy = get_policy(policy) if isinstance(policy, str) \
            else policy
        self.tracer = ensure_tracer(tracer)
        self._lock = threading.Lock()
        self._seq = 0
        self._closed = False
        self._stopped = False
        self._pending: Dict[int, SessionTicket] = {}
        self.stats: List[WorkerStats] = [WorkerStats(w)
                                         for w in range(workers)]
        ctx = mp.get_context(start_method)
        self._requests = [ctx.Queue() for _ in range(workers)]
        self._results = ctx.Queue()
        self._procs = [
            ctx.Process(target=worker_main,
                        args=(wid, self._requests[wid], self._results,
                              backend, max_kernels, max_graphs),
                        name=f"macross-serve-w{wid}", daemon=True)
            for wid in range(workers)]
        for proc in self._procs:
            proc.start()
        self._byes = 0
        self._await_ready(start_timeout)
        self._collector = threading.Thread(target=self._collect,
                                           name="macross-serve-collector",
                                           daemon=True)
        self._collector.start()

    # -- lifecycle -------------------------------------------------------------
    def _await_ready(self, timeout: float) -> None:
        """Consume one MSG_READY per worker before serving (keeps process
        startup out of every latency measurement)."""
        ready = 0
        deadline = time.monotonic() + timeout
        while ready < self.workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._kill()
                raise ServeTimeout(
                    f"only {ready}/{self.workers} workers ready after "
                    f"{timeout:.0f}s")
            dead = [p for p in self._procs
                    if not p.is_alive() and p.exitcode is not None]
            if dead:
                self._kill()
                raise ServeError(
                    f"{len(dead)} worker(s) died during startup (exit "
                    f"codes {[p.exitcode for p in dead]}) — with the "
                    f"'spawn' start method the entry script must be "
                    f"importable (guard it with __main__)")
            try:
                kind, wid, payload = self._results.get(
                    timeout=min(remaining, 0.5))
            except Exception:  # queue.Empty
                continue
            if kind == MSG_READY:
                ready += 1
            elif kind == MSG_BYE:  # worker died during startup
                self._kill()
                raise ServeError(
                    f"worker {wid} failed to start: "
                    f"{payload.get('error', 'unknown')}")

    def __enter__(self) -> "ServePool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def _kill(self) -> None:
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5.0)

    # -- collector -------------------------------------------------------------
    def _collect(self) -> None:
        while not self._stopped:
            try:
                kind, wid, payload = self._results.get(timeout=_POLL_S)
            except Exception:  # queue.Empty
                continue
            if kind == MSG_RESULT:
                try:
                    result = decode_result(payload)
                except Exception as exc:  # noqa: BLE001 - corrupt wire
                    result = SessionResult(
                        seq=payload.get("seq", -1) if isinstance(
                            payload, dict) else -1,
                        worker=wid,
                        error=f"decode failed: {type(exc).__name__}: {exc}")
                self._finish(wid, result)
            elif kind == MSG_BYE:
                with self._lock:
                    self.stats[wid].env = dict(payload or {})
                    self._byes += 1

    def _finish(self, wid: int, result: SessionResult) -> None:
        with self._lock:
            ticket = self._pending.pop(result.seq, None)
            self.stats[wid].charge(result)
        if ticket is not None:
            ticket._resolve(result)
            if self.tracer.enabled:
                self.tracer.event(
                    "serve.session", cat="serve", worker=wid,
                    seq=result.seq, graph=result.graph_name,
                    ok=result.ok,
                    latency_ms=round(ticket.latency_s * 1e3, 3),
                    busy_ms=round(result.busy_s * 1e3, 3),
                    graph_cache_hit=result.graph_cache_hit)

    # -- submission ------------------------------------------------------------
    def submit(self, spec: SessionSpec) -> Union[SessionTicket,
                                                 ServeOverload]:
        """Admit and place one session, or return :class:`ServeOverload`.

        Never blocks: backpressure is surfaced to the caller as data, so
        clients (and the load generator) decide whether to retry, shed,
        or slow down.
        """
        with self._lock:
            if self._closed:
                raise ServeError("pool is shut down (or draining)")
            depths = [s.queue_depth for s in self.stats]
            wid = self.policy.choose(depths, self.max_queue_depth)
            if wid < 0:
                busiest = max(range(self.workers),
                              key=lambda w: depths[w])
                self.stats[busiest].rejected += 1
                overload = ServeOverload(worker=-1,
                                         queue_depth=depths[busiest],
                                         limit=self.max_queue_depth)
                if self.tracer.enabled:
                    self.tracer.event("serve.overload", cat="serve",
                                      queue_depth=overload.queue_depth,
                                      limit=overload.limit)
                return overload
            self._seq += 1
            ticket = SessionTicket(self._seq, wid, spec)
            self._pending[ticket.seq] = ticket
            stats = self.stats[wid]
            stats.submitted += 1
            stats.queue_depth += 1
            if stats.queue_depth > stats.max_queue_depth:
                stats.max_queue_depth = stats.queue_depth
        self._requests[wid].put((ticket.seq, spec.to_wire()))
        return ticket

    def run(self, spec: SessionSpec, *,
            timeout: Optional[float] = None) -> SessionResult:
        """Synchronous convenience: submit and wait (raises
        :class:`ServeError` on overload instead of returning it)."""
        ticket = self.submit(spec)
        if isinstance(ticket, ServeOverload):
            raise ServeError(str(ticket))
        return ticket.result(timeout)

    # -- draining / shutdown ---------------------------------------------------
    def in_flight(self) -> int:
        with self._lock:
            return len(self._pending)

    def drain(self, timeout: Optional[float] = None) -> None:
        """Wait until every admitted session has completed.

        Detects dead workers and fails their in-flight tickets instead
        of hanging forever."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                if not self._pending:
                    return
                pending = list(self._pending.values())
            for wid, proc in enumerate(self._procs):
                if not proc.is_alive():
                    for ticket in pending:
                        if ticket.worker == wid:
                            self._finish(wid, SessionResult(
                                seq=ticket.seq, worker=wid,
                                error=f"worker {wid} died (exit code "
                                      f"{proc.exitcode})"))
            if deadline is not None and time.monotonic() > deadline:
                raise ServeTimeout(
                    f"{self.in_flight()} session(s) still in flight after "
                    f"{timeout}s drain")
            time.sleep(_POLL_S)

    def shutdown(self, *, drain: bool = True,
                 timeout: float = 60.0) -> List[Dict[str, Any]]:
        """Gracefully stop: close the front door, optionally drain, send
        each worker its sentinel, merge lifetime stats, join.  Returns
        the final per-worker stats snapshots (idempotent)."""
        with self._lock:
            if self._closed and self._stopped:
                return [s.snapshot() for s in self.stats]
            self._closed = True
        if drain:
            try:
                self.drain(timeout=timeout)
            except ServeTimeout:
                pass  # fall through to teardown; tickets fail below
        for queue in self._requests:
            queue.put(None)
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()) + 1.0)
        # Give the collector a beat to drain the workers' MSG_BYE stats
        # (they may still sit in the result queue after the join).
        grace = time.monotonic() + 2.0
        while self._byes < self.workers and time.monotonic() < grace:
            time.sleep(_POLL_S)
        self._stopped = True
        if self._collector.is_alive():
            self._collector.join(timeout=5.0)
        self._kill()
        with self._lock:
            orphans = list(self._pending.values())
            self._pending.clear()
        for ticket in orphans:
            ticket._resolve(SessionResult(
                seq=ticket.seq, worker=ticket.worker,
                error="pool shut down before completion"))
        if self.tracer.enabled:
            for stats in self.stats:
                self.tracer.event(f"serve.worker{stats.worker}",
                                  cat="serve", **{
                                      k: v for k, v in
                                      stats.snapshot().items()
                                      if k not in ("cache", "env")})
        return [s.snapshot() for s in self.stats]

    def stats_snapshot(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [s.snapshot() for s in self.stats]
