"""Worker side of the serving runtime.

Each worker process owns one :class:`WorkerEnv`: a persistent
compiled-backend environment (the content-addressed
:class:`~repro.runtime.compiled.cache.KernelCache`, keyed by the
structhash-induced canonical bodies) plus a *graph cache* mapping
:meth:`SessionSpec.graph_key` to an already-SIMDized graph and schedule.
Repeated sessions for the same (app, target, pipeline) therefore
recompile nothing — neither the MacroSS pipeline nor the closure
kernels — which is what makes a long-lived pool worth its processes.

:func:`worker_main` is the process entry point.  It is a module-level
function taking only picklable arguments, so the pool works under the
``spawn`` start method (the strictest one) as well as ``fork``.
``WorkerEnv`` is equally usable in-process — the fuzz serve oracle and
the unit tests drive it directly for speed, through the very same
encode/decode wire path the processes use.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from .session import (SessionResult, SessionSpec, counter_bags,
                      encode_result)

__all__ = ["WorkerEnv", "worker_main"]

#: Control-message kinds on the result queue (worker -> pool).
MSG_READY = "ready"
MSG_RESULT = "result"
MSG_BYE = "bye"


@dataclass
class _CachedGraph:
    """One compiled session shape resident in a worker."""

    graph: Any
    schedule: Any
    hits: int = 0


@dataclass
class WorkerEnvStats:
    """Worker-side lifetime statistics (the per-lane "blame" bag)."""

    sessions: int = 0
    errors: int = 0
    busy_s: float = 0.0
    graph_cache_hits: int = 0
    graph_cache_misses: int = 0
    #: on-disk kernel-store counters (hits/misses/stores/quarantined/
    #: errors), zero when no store is configured.
    store: Dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> Dict[str, Any]:
        return {"sessions": self.sessions, "errors": self.errors,
                "busy_s": self.busy_s,
                "graph_cache_hits": self.graph_cache_hits,
                "graph_cache_misses": self.graph_cache_misses,
                "store": dict(self.store)}


class WorkerEnv:
    """Persistent per-worker execution environment.

    ``backend="compiled"`` builds a private
    :class:`~repro.runtime.compiled.CompiledBackend` whose kernel cache
    (optionally bounded by ``max_kernels``) lives as long as the worker;
    ``backend="vector"`` builds a private
    :class:`~repro.runtime.vector.VectorBackend` the same way (numpy
    batch kernels with per-actor fallback, same bounded kernel cache);
    ``backend="interp"`` serves through the reference interpreter (no
    kernel cache, still graph-cached).  ``max_graphs`` bounds the graph
    cache the same FIFO way the kernel cache is bounded.

    ``store`` (a :class:`~repro.serve.store.KernelStore`, a directory
    path, or ``None``) plugs in the per-machine on-disk artifact store:
    graph-cache misses consult it before compiling, and cold compiles
    publish back, so a freshly (re)started worker warms from what its
    siblings already paid for.
    """

    def __init__(self, backend: str = "compiled", *,
                 max_kernels: Optional[int] = None,
                 max_graphs: Optional[int] = None,
                 store: Any = None) -> None:
        if max_graphs is not None and max_graphs < 1:
            raise ValueError("max_graphs must be >= 1 (or None)")
        self.backend_name = backend
        if backend == "compiled":
            from ..runtime.compiled import CompiledBackend
            from ..runtime.compiled.cache import KernelCache
            self.backend: Any = CompiledBackend(KernelCache(max_kernels))
        elif backend == "vector":
            from ..runtime.compiled.cache import KernelCache
            from ..runtime.vector import VectorBackend
            self.backend = VectorBackend(KernelCache(max_kernels))
        else:
            from ..runtime.backends import resolve_backend
            self.backend = resolve_backend(backend)
        self.max_graphs = max_graphs
        if store is not None and not hasattr(store, "load"):
            from .store import KernelStore
            store = KernelStore(store)
        self.store = store
        self._graphs: Dict[str, _CachedGraph] = {}
        self.stats = WorkerEnvStats()

    # -- graph materialization -------------------------------------------------
    def _build_graph(self, spec: SessionSpec) -> Tuple[Any, Any]:
        from ..schedule.steady_state import build_schedule
        from ..simd.machine import get_target
        from ..simd.pipeline import compile_graph

        if spec.benchmark is not None:
            from ..apps import get_benchmark
            from ..graph.flatten import flatten
            graph = flatten(get_benchmark(spec.benchmark))
        else:
            from ..fuzz.descriptions import desc_from_dict, materialize
            from ..graph.flatten import flatten
            graph = flatten(materialize(desc_from_dict(spec.program)))
        if spec.pipeline is not None:
            machine = get_target(spec.machine)
            graph = compile_graph(graph, machine,
                                  pipeline=spec.pipeline).graph
        return graph, build_schedule(graph)

    def _resolve_graph(self, spec: SessionSpec) -> Tuple[_CachedGraph, bool]:
        key = spec.graph_key()
        entry = self._graphs.get(key)
        if entry is not None:
            entry.hits += 1
            self.stats.graph_cache_hits += 1
            return entry, True
        artifact = self.store.load(key) if self.store is not None else None
        if artifact is not None:
            graph, schedule = artifact
        else:
            graph, schedule = self._build_graph(spec)
            if self.store is not None:
                self.store.store(key, graph, schedule)
        if self.store is not None:
            self.stats.store = self.store.stats.snapshot()
        if self.max_graphs is not None and \
                len(self._graphs) >= self.max_graphs:
            # FIFO eviction, mirroring the kernel cache's policy.
            del self._graphs[next(iter(self._graphs))]
        entry = _CachedGraph(graph, schedule)
        self._graphs[key] = entry
        self.stats.graph_cache_misses += 1
        return entry, False

    def graph_cache_size(self) -> int:
        return len(self._graphs)

    # -- serving ---------------------------------------------------------------
    def run_session(self, spec: SessionSpec, *, seq: int = 0,
                    worker: int = -1) -> SessionResult:
        """Serve one session; never raises (failures come back as
        ``result.error``, so a bad request cannot kill the worker)."""
        from ..simd.machine import get_target
        from ..runtime.executor import execute

        start = time.perf_counter()
        self.stats.sessions += 1
        try:
            machine = get_target(spec.machine)
            entry, cache_hit = self._resolve_graph(spec)
            result = execute(entry.graph, entry.schedule, machine=machine,
                             iterations=spec.iterations,
                             backend=self.backend, cores=spec.cores)
            if spec.seconds_per_cycle > 0.0:
                # Service-time emulation: pay the modeled compute cost in
                # wall clock.  The sleep frees the CPU, so paced sessions
                # overlap across worker processes even on one core.
                time.sleep(result.steady_cycles(machine)
                           * spec.seconds_per_cycle)
            busy = time.perf_counter() - start
            self.stats.busy_s += busy
            return SessionResult(
                seq=seq, worker=worker, tag=spec.tag,
                graph_name=entry.graph.name,
                backend=result.backend,
                iterations=spec.iterations,
                outputs=list(result.outputs),
                init_outputs=list(result.init_outputs),
                steady_bags=counter_bags(result.steady_counters),
                init_bags=counter_bags(result.init_counters),
                kernel_cache=result.kernel_cache,
                graph_cache_hit=cache_hit,
                busy_s=busy,
            )
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            busy = time.perf_counter() - start
            self.stats.busy_s += busy
            self.stats.errors += 1
            return SessionResult(
                seq=seq, worker=worker, tag=spec.tag,
                busy_s=busy,
                error=f"{type(exc).__name__}: {exc}")


def worker_main(worker_id: int, request_queue: Any, result_queue: Any,
                backend: str, max_kernels: Optional[int],
                max_graphs: Optional[int],
                wire_transport: str = "queue",
                shm_threshold: int = 0,
                pool_uid: str = "",
                store_dir: Optional[str] = None) -> None:
    """Process entry point: build the environment, announce readiness,
    then serve requests until the ``None`` shutdown sentinel arrives.

    Requests arrive as ``(seq, spec_wire)`` tuples; every response is a
    ``(kind, worker_id, payload)`` tuple on the shared result queue.
    With ``wire_transport="shm"``, results whose output arrays reach
    ``shm_threshold`` values travel as named shared-memory segments
    (``pool_uid`` keys the deterministic segment names) and only the
    envelope crosses the queue.  ``store_dir`` plugs in the per-machine
    on-disk artifact store.
    """
    try:
        env = WorkerEnv(backend, max_kernels=max_kernels,
                        max_graphs=max_graphs, store=store_dir)
    except Exception:  # pragma: no cover - only on broken installs
        result_queue.put((MSG_BYE, worker_id,
                          {"error": traceback.format_exc()}))
        return
    result_queue.put((MSG_READY, worker_id, None))
    while True:
        message = request_queue.get()
        if message is None:
            break
        seq, wire = message
        try:
            spec = SessionSpec.from_wire(wire)
            result = env.run_session(spec, seq=seq, worker=worker_id)
        except Exception as exc:  # noqa: BLE001 - malformed spec
            result = SessionResult(seq=seq, worker=worker_id,
                                   error=f"{type(exc).__name__}: {exc}")
        out = encode_result(result)
        if wire_transport == "shm":
            from .transport import stage_result_shm
            out = stage_result_shm(out, uid=pool_uid, worker=worker_id,
                                   seq=seq, threshold=shm_threshold)
        result_queue.put((MSG_RESULT, worker_id, out))
    result_queue.put((MSG_BYE, worker_id, env.stats.snapshot()))
