"""Structhash-keyed on-disk store of compiled graph artifacts.

A compiled session shape — the MacroSS-transformed graph plus its
steady-state schedule — is a deterministic function of
:meth:`~repro.serve.session.SessionSpec.graph_key` (program identity ×
target × pipeline; the program half is the structhash-style content
address of the description).  The paper's whole-program argument
("compile once, amortize over steady state") therefore extends from one
process to the whole machine: the first worker to compile a shape
publishes it here, and every new or restarted worker warms instantly
instead of re-running the pipeline.

Layout and invalidation rules (DESIGN §6j):

* one entry per key at ``<root>/<sha256(version|key)>.pkl`` — a pickle
  of ``{"v": STORE_VERSION, "key": key, "graph": ..., "schedule": ...}``;
* **atomic writes** — entries are written to a ``.tmp-<pid>-<n>``
  sibling and ``os.replace``d into place, so concurrent workers can
  race on the same key and readers can never observe a torn file;
* **version stamps** — ``STORE_VERSION`` (and the key echoed inside the
  payload) gate every load; a mismatch is a *miss* (the entry is
  silently replaced on the next publish), never an error;
* **quarantine, not crash** — an entry that fails to unpickle or fails
  its stamp checks is renamed to ``*.quarantined`` (kept for autopsy)
  and counted; a corrupt cache must never take a worker down.

The store is deliberately dependency-free and fail-soft: every
filesystem error degrades to "no store" for that operation and the
worker compiles as if cold.  Counters (hits / misses / stores /
quarantined / errors) surface through ``WorkerEnv.stats`` and the
``macross serve`` summary.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

__all__ = ["STORE_ENV_VAR", "STORE_VERSION", "KernelStore", "StoreStats",
           "default_store_dir"]

#: Bumped whenever the pickled artifact layout (or anything that feeds
#: it: IR, schedule format) changes incompatibly.
STORE_VERSION = 1

#: Environment variable naming the per-machine store directory.
STORE_ENV_VAR = "MACROSS_KERNEL_STORE"


def default_store_dir() -> Optional[Path]:
    """The per-machine store directory from :data:`STORE_ENV_VAR`, or
    ``None`` when the store is disabled."""
    raw = os.environ.get(STORE_ENV_VAR)
    return Path(raw) if raw else None


@dataclass
class StoreStats:
    """Observable store behaviour (mutated in place by the store)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    quarantined: int = 0
    #: filesystem-level failures that degraded to cold compiles.
    errors: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "quarantined": self.quarantined,
                "errors": self.errors}


class KernelStore:
    """One per-machine directory of compiled (graph, schedule) entries."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()

    # -- paths -----------------------------------------------------------------
    def entry_path(self, key: str) -> Path:
        digest = hashlib.sha256(
            f"{STORE_VERSION}|{key}".encode()).hexdigest()[:32]
        return self.root / f"{digest}.pkl"

    # -- load ------------------------------------------------------------------
    def load(self, key: str) -> Optional[Tuple[Any, Any]]:
        """Return ``(graph, schedule)`` for ``key``, or ``None`` on miss.

        A corrupt or mis-stamped entry is quarantined and reported as a
        miss — the caller compiles cold and republishes."""
        path = self.entry_path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.errors += 1
            return None
        try:
            payload = pickle.loads(blob)
            if not isinstance(payload, dict):
                raise ValueError("store entry is not a dict payload")
            if payload.get("v") != STORE_VERSION \
                    or payload.get("key") != key:
                raise ValueError(
                    f"store entry stamp mismatch: v={payload.get('v')!r} "
                    f"key={payload.get('key')!r}")
            graph, schedule = payload["graph"], payload["schedule"]
        except Exception:  # noqa: BLE001 - quarantine, never crash
            self._quarantine(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return graph, schedule

    def _quarantine(self, path: Path) -> None:
        self.stats.quarantined += 1
        try:
            os.replace(path, path.with_suffix(
                f".quarantined-{os.getpid()}"))
        except OSError:
            # Last resort: try to remove it so the poison is not sticky.
            try:
                path.unlink(missing_ok=True)
            except OSError:
                self.stats.errors += 1

    # -- store -----------------------------------------------------------------
    def store(self, key: str, graph: Any, schedule: Any) -> bool:
        """Publish an artifact (atomic; last writer wins).  Returns
        ``False`` (and counts an error) when anything fails — callers
        keep serving from their in-process copy regardless."""
        path = self.entry_path(key)
        payload = {"v": STORE_VERSION, "key": key,
                   "graph": graph, "schedule": schedule}
        try:
            blob = pickle.dumps(payload)
            fd, tmp = tempfile.mkstemp(prefix=f".tmp-{os.getpid()}-",
                                       dir=str(self.root))
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:  # pragma: no cover - cleanup best effort
                    pass
                raise
        except Exception:  # noqa: BLE001 - fail-soft
            self.stats.errors += 1
            return False
        self.stats.stores += 1
        return True

    # -- introspection ---------------------------------------------------------
    def entries(self) -> int:
        return sum(1 for p in self.root.glob("*.pkl"))

    def quarantined_entries(self) -> int:
        return sum(1 for p in self.root.iterdir()
                   if ".quarantined" in p.name)
