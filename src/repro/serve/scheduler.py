"""Session placement policies.

The pool asks a policy where to place each admitted session.  A policy
sees only the per-worker *in-flight depths* (queued + running sessions)
and the admission limit, and returns a worker index — or ``-1`` when it
declines to place (every candidate at the high-water mark), which the
pool turns into a typed :class:`~repro.serve.session.ServeOverload`.

Policies live in a registry (`register_policy` / `get_policy` /
`list_policies`) so experiments can add placement strategies — e.g. the
throughput-vs-latency axis of Arslan et al.'s SIMD-pipeline scheduling
study — without touching the pool.  Two ship by default:

* ``round-robin`` — cyclic placement, skipping saturated workers: fair
  warm-up of every worker's caches, predictable spread;
* ``least-loaded`` — minimum in-flight depth (lowest index wins ties):
  better tail latency under heterogeneous session costs.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, List

from .session import ServeError

__all__ = ["PlacementPolicy", "RoundRobin", "LeastLoaded",
           "UnknownPolicyError", "get_policy", "list_policies",
           "register_policy"]


class UnknownPolicyError(ServeError):
    """Raised for a policy name missing from the registry."""


class PlacementPolicy:
    """Interface: ``choose(depths, limit)`` -> worker index or ``-1``."""

    name = "abstract"

    def choose(self, depths: List[int], limit: int) -> int:
        raise NotImplementedError


class RoundRobin(PlacementPolicy):
    """Cyclic placement over workers with remaining queue capacity."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, depths: List[int], limit: int) -> int:
        n = len(depths)
        for step in range(n):
            wid = (self._next + step) % n
            if depths[wid] < limit:
                self._next = (wid + 1) % n
                return wid
        return -1


class LeastLoaded(PlacementPolicy):
    """Minimum in-flight depth; ties break to the lowest worker index."""

    name = "least-loaded"

    def choose(self, depths: List[int], limit: int) -> int:
        wid = min(range(len(depths)), key=lambda w: (depths[w], w))
        return wid if depths[wid] < limit else -1


#: name -> zero-argument factory (policies may be stateful per pool).
_POLICIES: Dict[str, Callable[[], PlacementPolicy]] = {}


def register_policy(name: str,
                    factory: Callable[[], PlacementPolicy]) -> None:
    """Register a placement policy under ``name`` (lower-cased)."""
    key = name.lower()
    if key in _POLICIES:
        raise ServeError(f"placement policy {name!r} already registered")
    _POLICIES[key] = factory


def get_policy(name: str) -> PlacementPolicy:
    """Instantiate a registered policy (case-insensitive, did-you-mean)."""
    factory = _POLICIES.get(name.lower())
    if factory is None:
        close = difflib.get_close_matches(name.lower(), _POLICIES, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise UnknownPolicyError(
            f"unknown placement policy {name!r}{hint}; registered: "
            f"{', '.join(sorted(_POLICIES))}")
    return factory()


def list_policies() -> List[str]:
    return sorted(_POLICIES)


register_policy(RoundRobin.name, RoundRobin)
register_policy(LeastLoaded.name, LeastLoaded)
