"""``repro.serve`` — process-sharded stream-serving runtime.

PR 5's thread runtime executes one graph across cores; this package
serves *many independent stream-graph sessions* across long-lived worker
processes (escaping the GIL), with:

* a **session layer** (:mod:`.session`) — picklable specs/results and
  the explicit wire-format seam the fuzz serve oracle mutation-tests;
* a **worker environment** (:mod:`.worker`) — per-process persistent
  compiled backend + content-addressed kernel cache + graph cache, so
  repeated sessions for the same (app, target, pipeline) recompile
  nothing;
* a **pool** (:mod:`.pool`) — placement policies, admission control
  (queue-depth high-water → typed :class:`ServeOverload`), per-lane
  blame statistics, graceful drain/shutdown;
* a **scheduler registry** (:mod:`.scheduler`) — ``round-robin`` and
  ``least-loaded`` placement, extensible;
* a **load generator** (:mod:`.loadgen`) — open-loop (fixed arrival
  rate) and closed-loop (fixed concurrency) request streams with
  p50/p99 latency reporting.

CLI surface: ``macross serve`` and ``macross loadgen``.
"""

from .loadgen import (LoadReport, RequestRecord, percentile,
                      run_closed_loop, run_open_loop)
from .pool import ServePool, ServeTimeout, SessionTicket, WorkerStats
from .scheduler import (LeastLoaded, PlacementPolicy, RoundRobin,
                        UnknownPolicyError, get_policy, list_policies,
                        register_policy)
from .session import (ServeError, ServeOverload, SessionResult, SessionSpec,
                      counter_bags, decode_result, encode_result)
from .worker import WorkerEnv, worker_main

__all__ = [
    "LeastLoaded", "LoadReport", "PlacementPolicy", "RequestRecord",
    "RoundRobin", "ServeError", "ServeOverload", "ServePool",
    "ServeTimeout", "SessionResult", "SessionSpec", "SessionTicket",
    "UnknownPolicyError", "WorkerEnv", "WorkerStats", "counter_bags",
    "decode_result", "encode_result", "get_policy", "list_policies",
    "percentile", "register_policy", "run_closed_loop", "run_open_loop",
    "worker_main",
]
