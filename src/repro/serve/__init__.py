"""``repro.serve`` — process-sharded stream-serving runtime.

PR 5's thread runtime executes one graph across cores; this package
serves *many independent stream-graph sessions* across long-lived worker
processes (escaping the GIL), with:

* a **session layer** (:mod:`.session`) — picklable specs/results and
  the explicit wire-format seam the fuzz serve oracle mutation-tests;
* a **worker environment** (:mod:`.worker`) — per-process persistent
  compiled backend + content-addressed kernel cache + graph cache, so
  repeated sessions for the same (app, target, pipeline) recompile
  nothing;
* a **shared-memory transport** (:mod:`.transport`) — large result
  arrays travel as named shm segments (threshold-gated, refcounted by a
  parent-side registry, unlinked on drain/crash/shutdown) instead of
  pickling through the result queue;
* an **on-disk kernel store** (:mod:`.store`) — structhash-keyed
  per-machine artifact cache (atomic writes, version stamps, corrupt
  entries quarantined) that warms new or restarted workers instantly;
* a **pool** (:mod:`.pool`) — placement policies, admission control
  (queue-depth high-water → typed :class:`ServeOverload`), per-lane
  blame statistics, graceful drain/shutdown, and **supervision**: a
  sentinel watcher that requeues a dead lane's sessions (at-most-once,
  ``retried`` flag; typed :class:`WorkerDied` when the retry is spent)
  and restarts the lane with bounded exponential backoff;
* a **scheduler registry** (:mod:`.scheduler`) — ``round-robin`` and
  ``least-loaded`` placement, extensible;
* a **load generator** (:mod:`.loadgen`) — open-loop (fixed arrival
  rate) and closed-loop (fixed concurrency) request streams with
  p50/p99 latency reporting, plus ``kill_worker_after`` fault
  injection.

CLI surface: ``macross serve`` and ``macross loadgen``.
"""

from .loadgen import (LoadReport, RequestRecord, kill_worker_after,
                      percentile, run_closed_loop, run_open_loop)
from .pool import ServePool, ServeTimeout, SessionTicket, WorkerStats
from .scheduler import (LeastLoaded, PlacementPolicy, RoundRobin,
                        UnknownPolicyError, get_policy, list_policies,
                        register_policy)
from .session import (ERROR_KIND_WORKER_DIED, ServeError, ServeOverload,
                      SessionResult, SessionSpec, WorkerDied, counter_bags,
                      decode_result, encode_result, worker_died_result)
from .store import (STORE_ENV_VAR, STORE_VERSION, KernelStore, StoreStats,
                    default_store_dir)
from .transport import (SHM_THRESHOLD_DEFAULT, WIRE_TRANSPORTS,
                        SegmentRegistry, load_result_shm, segment_names,
                        shm_threshold_default, stage_result_shm)
from .worker import WorkerEnv, worker_main

__all__ = [
    "ERROR_KIND_WORKER_DIED", "KernelStore", "LeastLoaded", "LoadReport",
    "PlacementPolicy", "RequestRecord", "RoundRobin", "STORE_ENV_VAR",
    "STORE_VERSION", "SHM_THRESHOLD_DEFAULT", "SegmentRegistry",
    "ServeError", "ServeOverload", "ServePool", "ServeTimeout",
    "SessionResult", "SessionSpec", "SessionTicket", "StoreStats",
    "UnknownPolicyError", "WIRE_TRANSPORTS", "WorkerDied", "WorkerEnv",
    "WorkerStats", "counter_bags", "decode_result", "default_store_dir",
    "encode_result", "get_policy", "kill_worker_after", "list_policies",
    "load_result_shm", "percentile", "register_policy", "run_closed_loop",
    "run_open_loop", "segment_names", "shm_threshold_default",
    "stage_result_shm", "worker_died_result", "worker_main",
]
