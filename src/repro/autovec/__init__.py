"""Traditional auto-vectorization baselines (GCC 4.3 / ICC 11.1 models)."""

from .loop_model import LoopVecStats, vectorize_inner_loops
from .profiles import GCC43, ICC111, CompilerProfile
from .vectorizer import AutoVecReport, auto_vectorize

__all__ = [
    "LoopVecStats", "vectorize_inner_loops",
    "GCC43", "ICC111", "CompilerProfile",
    "AutoVecReport", "auto_vectorize",
]
