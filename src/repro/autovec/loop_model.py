"""Inner-loop auto-vectorization model.

A small but *functional* loop vectorizer recognising the two loop idioms
that dominate the StreamIt suite's work functions and rewriting them the
way GCC/ICC would:

* **Reduction**: ``for (i: 0..N) acc = acc + f(peek(i+c), arr[i+c], inv)``
  becomes a vector accumulator updated ``N/SW`` times from unit-stride
  vector loads, followed by a horizontal sum.  (Reassociates the sum —
  which is precisely why real compilers need ``-ffast-math`` here, and why
  auto-vectorized outputs differ in the last ulps.)
* **Streaming map**: ``for (i: 0..N) push(f(pop(), arr[i+c], inv))``
  becomes ``N/SW`` iterations of vector-load / compute / vector-store.

Only unit strides are recognised; ``N`` must be a compile-time constant
multiple of the SIMD width; the loop body must be a single statement of
the right shape.  Everything else is left scalar — exactly the brittleness
the paper attributes to traditional auto-vectorization.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Set

from ..ir import expr as E
from ..ir import lvalue as L
from ..ir import stmt as S
from ..ir.types import FLOAT, Vector
from ..ir.visitors import iter_expr, rewrite_body_stmts, rewrite_expr
from ..simd.machine import MachineDescription
from .profiles import CompilerProfile


@dataclass
class LoopVecStats:
    """How many loops the inner-loop vectorizer transformed."""

    reductions: int = 0
    maps: int = 0

    @property
    def total(self) -> int:
        return self.reductions + self.maps


def _affine_unit(expr: E.Expr, var: str) -> Optional[E.Expr]:
    """If ``expr`` is ``var`` or ``var + c`` / ``c + var`` (unit stride in
    ``var``), return the additive-constant expression (IntConst 0 for bare
    ``var``); otherwise None."""
    if isinstance(expr, E.Var) and expr.name == var:
        return E.IntConst(0)
    if isinstance(expr, E.BinaryOp) and expr.op == "+":
        if isinstance(expr.left, E.Var) and expr.left.name == var \
                and _is_invariant(expr.right, var):
            return expr.right
        if isinstance(expr.right, E.Var) and expr.right.name == var \
                and _is_invariant(expr.left, var):
            return expr.left
    return None


def _is_invariant(expr: E.Expr, var: str) -> bool:
    return all(not (isinstance(node, E.Var) and node.name == var)
               for node in iter_expr(expr))


def _body_supported(expr: E.Expr, var: str, profile: CompilerProfile,
                    machine: MachineDescription, *, allow_pop: bool) -> bool:
    """Check every node of the candidate loop body expression."""
    pops = 0
    for node in iter_expr(expr):
        if isinstance(node, E.Call):
            if not profile.vectorizes_math_calls:
                return False
            if not machine.supports_vector_call(node.func):
                return False
        elif isinstance(node, E.Peek):
            if not profile.handles_peeking:
                return False
            if _affine_unit(node.offset, var) is None:
                return False
        elif isinstance(node, E.Pop):
            pops += 1
            if not allow_pop or pops > 1:
                return False
        elif isinstance(node, E.ArrayRead):
            index = node.index
            if not _is_invariant(index, var) \
                    and _affine_unit(index, var) is None:
                return False
        elif isinstance(node, E.Select):
            if not profile.if_conversion:
                return False
        elif isinstance(node, (E.VPop, E.VPeek, E.GatherPop, E.GatherPeek,
                               E.InternalPop, E.InternalPeek, E.Broadcast,
                               E.VectorConst, E.ArrayVec, E.Lane)):
            return False  # already-vectorized code: leave alone
    return True


def _widen_index(expr: E.Expr, var: str, sw: int) -> E.Expr:
    """Rewrite index/offset expressions for the strip-mined loop: the loop
    variable now counts vectors, so ``var`` becomes ``var * SW``."""

    def widen(e: E.Expr) -> E.Expr:
        if isinstance(e, E.Var) and e.name == var:
            return E.BinaryOp("*", e, E.IntConst(sw))
        return e

    return rewrite_expr(expr, widen)


def _vectorize_value(expr: E.Expr, var: str, sw: int) -> E.Expr:
    """Rewrite the loop-body value expression into its vector form."""

    def vectorize(e: E.Expr) -> E.Expr:
        if isinstance(e, E.Peek):
            offset = _affine_unit(e.offset, var)
            if offset is not None:
                return E.GatherPeek(_widen_index(e.offset, var, sw), stride=1,
                                    strategy="permute")
            return e
        if isinstance(e, E.Pop):
            return E.GatherPop(stride=1, advance=sw, strategy="permute")
        if isinstance(e, E.ArrayRead):
            if _affine_unit(e.index, var) is not None:
                return E.ArrayVec(e.name, _widen_index(e.index, var, sw))
            return e
        return e

    return rewrite_expr(expr, vectorize)


def _match_reduction(stmt: S.For) -> Optional[tuple[str, E.Expr]]:
    """Match ``for(i) acc = acc + term``; return (acc, term)."""
    if len(stmt.body) != 1:
        return None
    inner = stmt.body[0]
    if not isinstance(inner, S.Assign) or not isinstance(inner.lhs, L.VarLV):
        return None
    acc = inner.lhs.name
    rhs = inner.rhs
    if not (isinstance(rhs, E.BinaryOp) and rhs.op == "+"):
        return None
    if isinstance(rhs.left, E.Var) and rhs.left.name == acc:
        return acc, rhs.right
    if isinstance(rhs.right, E.Var) and rhs.right.name == acc:
        return acc, rhs.left
    return None


def _match_map(stmt: S.For) -> Optional[E.Expr]:
    """Match ``for(i) push(term)``; return the term."""
    if len(stmt.body) != 1:
        return None
    inner = stmt.body[0]
    if isinstance(inner, S.Push):
        return inner.value
    return None


def _cheaper(original: S.Stmt, replacement: "tuple[S.Stmt, ...]",
             machine: MachineDescription) -> bool:
    """The compiler's profitability check: keep the vectorized loop only if
    the static cost model says it wins (short reductions lose to the
    horizontal-sum epilogue)."""
    from ..simd.cost_model import estimate_body_events
    try:
        before = estimate_body_events((original,), machine.simd_width)
        after = estimate_body_events(replacement, machine.simd_width)
        return after.cycles(machine) < before.cycles(machine)
    except Exception:
        return False


def vectorize_inner_loops(body: S.Body, profile: CompilerProfile,
                          machine: MachineDescription,
                          stats: LoopVecStats) -> S.Body:
    """Rewrite every vectorizable innermost loop in ``body``."""
    sw = machine.simd_width
    counter = [0]

    def transform(stmt: S.Stmt) -> "S.Stmt | tuple[S.Stmt, ...]":
        if not isinstance(stmt, S.For):
            return stmt
        if not (isinstance(stmt.start, E.IntConst)
                and isinstance(stmt.end, E.IntConst)):
            return stmt
        if stmt.start.value != 0:
            return stmt
        trip = stmt.end.value
        if trip < sw or trip % sw != 0:
            return stmt

        reduction = _match_reduction(stmt)
        if reduction is not None:
            acc, term = reduction
            # A single pop() in the reduction term is a unit-stride buffer
            # read (StreamIt lowers pops to buf[idx++]): vectorizable.
            if not _body_supported(term, stmt.var, profile, machine,
                                   allow_pop=True):
                return stmt
            if any(isinstance(n, E.Var) and n.name == acc
                   for n in iter_expr(term)):
                return stmt
            counter[0] += 1
            vacc = f"__av{counter[0]}_{acc}"
            hsum: E.Expr = E.Lane(E.Var(vacc), 0)
            for lane in range(1, sw):
                hsum = hsum + E.Lane(E.Var(vacc), lane)
            replacement = (
                S.DeclVar(vacc, Vector(FLOAT, sw),
                          E.Broadcast(E.FloatConst(0.0), sw)),
                S.For(stmt.var, E.IntConst(0), E.IntConst(trip // sw),
                      (S.Assign(L.VarLV(vacc),
                                E.Var(vacc)
                                + _vectorize_value(term, stmt.var, sw)),)),
                S.Assign(L.VarLV(acc), E.Var(acc) + hsum),
            )
            if not _cheaper(stmt, replacement, machine):
                return stmt
            stats.reductions += 1
            return replacement

        term = _match_map(stmt)
        if term is not None:
            if not _body_supported(term, stmt.var, profile, machine,
                                   allow_pop=True):
                return stmt
            replacement = (
                S.For(stmt.var, E.IntConst(0), E.IntConst(trip // sw),
                      (S.ScatterPush(_vectorize_value(term, stmt.var, sw),
                                     stride=1, strategy="permute"),
                       S.AdvanceWriter(sw - 1))),
            )
            if not _cheaper(stmt, replacement, machine):
                return stmt
            stats.maps += 1
            return replacement
        return stmt

    return rewrite_body_stmts(body, transform)
