"""Whole-graph auto-vectorization baseline (traditional SIMDization, §4/§5).

Applies a compiler profile to every filter of a (scalar or partially
macro-SIMDized) graph:

1. **Actor-loop vectorization** (ICC-class only): if the actor passes the
   same legality checks as single-actor SIMDization *and* its steady-state
   repetition count is already a multiple of the SIMD width (auto-
   vectorizers cannot rescale the schedule) *and* the compiler's cost model
   predicts a win, the repetition loop is vectorized — the same transform
   as MacroSS's single-actor pass, but with compiler-grade tape handling
   (scalar packing, or shuffle sequences for power-of-two strides) and a
   per-firing versioning/alignment overhead.
2. **Inner-loop vectorization** (both compilers): the reduction / map loop
   idioms inside remaining scalar actors (see
   :mod:`repro.autovec.loop_model`).

Vertical fusion and horizontal SIMDization have no analogue here — that is
the structural advantage the paper claims for macro-SIMDization.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List

from ..graph.actor import FilterSpec
from ..graph.stream_graph import StreamGraph
from ..ir import stmt as S
from ..perf import events as ev
from ..schedule.rates import repetition_vector
from ..simd.analysis import analyze_filter
from ..simd.cost_model import estimate_body_events
from ..simd.machine import MachineDescription, UnsupportedOperation
from ..simd.single_actor import vectorize_actor
from ..simd.tape_opt import (
    _set_gather_strategy,
    _set_scatter_strategy,
    uses_gather,
    uses_scatter,
)
from .loop_model import LoopVecStats, vectorize_inner_loops
from .profiles import CompilerProfile


def _is_pow2(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


@dataclass
class AutoVecReport:
    compiler: str
    actor_vectorized: List[str] = field(default_factory=list)
    inner_vectorized: Dict[str, int] = field(default_factory=dict)
    rejected: Dict[str, str] = field(default_factory=dict)


def _estimate_cycles(body: S.Body, machine: MachineDescription) -> float:
    try:
        return estimate_body_events(body, machine.simd_width).cycles(machine)
    except UnsupportedOperation:
        return float("inf")


def _profitable(scalar: FilterSpec, vectorized: FilterSpec,
                machine: MachineDescription) -> bool:
    """The compiler's own cost model: vectorize only when one SIMD firing
    beats SW scalar firings."""
    scalar_cost = _estimate_cycles(scalar.work_body, machine)
    vector_cost = _estimate_cycles(vectorized.work_body, machine)
    return vector_cost < scalar_cost * machine.simd_width


def auto_vectorize(graph: StreamGraph, profile: CompilerProfile,
                   machine: MachineDescription) -> AutoVecReport:
    """Auto-vectorize ``graph`` in place; returns a report."""
    report = AutoVecReport(compiler=profile.name)
    reps = repetition_vector(graph)
    sw = machine.simd_width

    for actor in list(graph.filters()):
        spec = actor.spec
        if uses_gather(spec) or uses_scatter(spec) or _already_vector(spec):
            continue  # macro-SIMDized actors: the host compiler keeps them

        if profile.vectorizes_actor_loops:
            verdict = analyze_filter(spec, machine)
            reasons = list(verdict.reasons)
            if not profile.handles_peeking and spec.is_peeking:
                reasons.append("peeking window")
            if profile.requires_rep_multiple and reps[actor.id] % sw != 0:
                reasons.append(
                    f"repetition {reps[actor.id]} not a multiple of {sw} "
                    "(auto-vectorizers cannot rescale the schedule)")
            if not profile.handles_strided_pow2:
                if spec.pop > 1 or spec.push > 1:
                    reasons.append("strided (interleaved) tape access")
            elif (spec.pop > 1 and not _is_pow2(spec.pop)) \
                    or (spec.push > 1 and not _is_pow2(spec.push)):
                # Non-power-of-two strides fall back to scalar packing —
                # allowed, just costed as such.
                pass
            if not reasons:
                candidate = vectorize_actor(spec, sw)
                if profile.handles_strided_pow2:
                    if _is_pow2(max(1, spec.pop)):
                        candidate = _set_gather_strategy(candidate, "permute")
                    if _is_pow2(max(1, spec.push)):
                        candidate = _set_scatter_strategy(candidate, "permute")
                candidate = replace(
                    candidate,
                    work_body=(S.CostAnnotation(
                        ev.SCALAR_ALU, profile.overhead_per_firing),)
                    + candidate.work_body)
                if _profitable(spec, candidate, machine):
                    actor.spec = candidate
                    report.actor_vectorized.append(actor.name)
                    continue
                report.rejected[actor.name] = "cost model: not profitable"
            else:
                report.rejected[actor.name] = "; ".join(reasons)

        if profile.vectorizes_inner_loops:
            stats = LoopVecStats()
            new_body = vectorize_inner_loops(spec.work_body, profile,
                                             machine, stats)
            if stats.total:
                overhead = (S.CostAnnotation(
                    ev.SCALAR_ALU, profile.overhead_per_firing),)
                actor.spec = replace(spec, work_body=overhead + new_body)
                report.inner_vectorized[actor.name] = stats.total
    return report


def _already_vector(spec: FilterSpec) -> bool:
    """Horizontally SIMDized actors operate on vector tapes."""
    from ..ir import expr as E
    from ..ir.visitors import iter_all_exprs, iter_stmts
    for e in iter_all_exprs(spec.work_body):
        if isinstance(e, (E.VPop, E.VPeek)):
            return True
    for stmt in iter_stmts(spec.work_body):
        if isinstance(stmt, S.VPush):
            return True
    return False
