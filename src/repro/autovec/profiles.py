"""Capability profiles of the baseline auto-vectorizing compilers.

The paper evaluates against GCC 4.3 and ICC 11.1 applied to the scalar
intermediate C++.  We model each compiler by what loops it can vectorize —
the axes along which the two differed in 2010:

* **actor-loop (outer-loop) vectorization** — vectorizing the repetition
  loop around a work function, the closest analogue of single-actor
  SIMDization.  ICC 11.1's outer-loop vectorizer could; GCC 4.3's could
  not.  Crucially, *neither* can rescale the schedule: the repetition count
  must already be a multiple of the SIMD width (the paper's §4 argument
  about adjusting repetition numbers).
* **inner-loop vectorization** — classic innermost-loop vectorization of
  reduction and streaming-map loops inside a work function.  Both have it,
  with different restrictions.
* **math calls** — ICC vectorizes sin/cos/pow via SVML; GCC 4.3 does not.
* **strided access** — ICC emits shuffle sequences for power-of-two
  interleaved accesses; GCC 4.3 gives up.
* **peeking windows** — unaligned sliding-window loads (FIR loops):
  ICC handles them with unaligned loads; GCC 4.3 rejects them.
* **if-conversion** — ICC blends; GCC 4.3's vectorizer bails out.

Each profile also carries a per-firing overhead (loop versioning, runtime
alignment checks) charged to every auto-vectorized actor.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CompilerProfile:
    name: str
    vectorizes_actor_loops: bool
    vectorizes_inner_loops: bool
    vectorizes_math_calls: bool
    handles_strided_pow2: bool
    handles_peeking: bool
    if_conversion: bool
    #: s_alu events charged per firing of an auto-vectorized actor.
    overhead_per_firing: int
    #: The compiler cannot change the steady-state schedule, so the
    #: repetition loop is vectorizable only if its trip count is already a
    #: multiple of the SIMD width.
    requires_rep_multiple: bool = True


GCC43 = CompilerProfile(
    name="gcc-4.3",
    vectorizes_actor_loops=False,
    vectorizes_inner_loops=True,
    vectorizes_math_calls=False,
    handles_strided_pow2=False,
    handles_peeking=False,
    if_conversion=False,
    overhead_per_firing=4,
)

ICC111 = CompilerProfile(
    name="icc-11.1",
    vectorizes_actor_loops=True,
    vectorizes_inner_loops=True,
    vectorizes_math_calls=True,
    handles_strided_pow2=True,
    handles_peeking=True,
    if_conversion=True,
    overhead_per_firing=2,
)
