"""Actor work-function intermediate representation.

This package defines the imperative IR in which actor ``init``/``work``
bodies are expressed: a small typed expression/statement language with
explicit tape operations (``pop``/``peek``/``push``/``rpush`` and their
vector forms).  MacroSS's SIMDization passes are source-to-source rewrites
over this IR.
"""

from .builder import ArrayHandle, WorkBuilder, call
from .expr import (
    ArrayRead,
    ArrayVec,
    BinaryOp,
    BoolConst,
    Broadcast,
    Call,
    Expr,
    FloatConst,
    GatherPeek,
    GatherPop,
    IntConst,
    InternalPeek,
    InternalPop,
    Lane,
    Param,
    Peek,
    Pop,
    Select,
    UnaryOp,
    Var,
    VectorConst,
    VPeek,
    VPop,
    as_expr,
    vector_const,
)
from .lvalue import ArrayLaneLV, ArrayLV, LaneLV, LValue, VarLV
from .printer import format_body, format_expr
from .stmt import (
    AdvanceReader,
    AdvanceWriter,
    Assign,
    Body,
    CostAnnotation,
    DeclArray,
    DeclVar,
    ExprStmt,
    For,
    If,
    InternalPush,
    Push,
    RPush,
    ScatterPush,
    Stmt,
    VPush,
)
from .structhash import CanonicalForm, canonicalize, isomorphic
from .typecheck import TypeIssue, check_graph, check_spec
from .types import BOOL, FLOAT, INT, IRType, Scalar, ScalarKind, Vector, vector_of

__all__ = [
    "ArrayHandle", "WorkBuilder", "call",
    "ArrayRead", "ArrayVec", "BinaryOp", "BoolConst", "Call", "Expr",
    "FloatConst",
    "Broadcast", "GatherPeek",
    "GatherPop", "IntConst", "InternalPeek", "InternalPop", "Lane",
    "Param", "Peek", "Pop", "Select",
    "UnaryOp", "Var", "VectorConst", "VPeek", "VPop", "as_expr",
    "vector_const",
    "ArrayLaneLV", "ArrayLV", "LaneLV", "LValue", "VarLV",
    "format_body", "format_expr",
    "AdvanceReader", "AdvanceWriter", "CostAnnotation",
    "Assign", "Body", "DeclArray", "DeclVar", "ExprStmt", "For", "If",
    "InternalPush", "Push", "RPush", "ScatterPush", "Stmt", "VPush",
    "CanonicalForm", "canonicalize", "isomorphic",
    "TypeIssue", "check_graph", "check_spec",
    "BOOL", "FLOAT", "INT", "IRType", "Scalar", "ScalarKind", "Vector",
    "vector_of",
]
