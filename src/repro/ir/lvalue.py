"""Assignable locations (lvalues) of the work-function IR."""

from __future__ import annotations

from dataclasses import dataclass

from .expr import Expr


class LValue:
    """Base class for assignable locations."""

    __slots__ = ()


@dataclass(frozen=True)
class VarLV(LValue):
    """A scalar or vector variable."""

    name: str


@dataclass(frozen=True)
class ArrayLV(LValue):
    """An element of a declared array: ``name[index]``."""

    name: str
    index: Expr


@dataclass(frozen=True)
class LaneLV(LValue):
    """Lane ``lane`` of a vector variable: ``name.{lane}`` (Figure 3b)."""

    name: str
    lane: int


@dataclass(frozen=True)
class ArrayLaneLV(LValue):
    """Lane ``lane`` of a vector array element: ``name[index].{lane}``."""

    name: str
    index: Expr
    lane: int
