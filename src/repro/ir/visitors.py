"""Generic traversal and rewriting utilities for the work-function IR.

Two families of helpers:

* ``iter_*`` — read-only generators over sub-expressions / sub-statements,
  used by analyses (statefulness, taint, rate counting).
* ``rewrite_*`` — bottom-up functional rewriters used by the SIMDization
  passes; they rebuild only the nodes whose children changed.
"""

from __future__ import annotations

from typing import Callable, Iterator

from . import expr as E
from . import lvalue as L
from . import stmt as S

ExprFn = Callable[[E.Expr], E.Expr]
StmtFn = Callable[[S.Stmt], "S.Stmt | tuple[S.Stmt, ...] | None"]


# --- iteration ---------------------------------------------------------------

def children_of_expr(e: E.Expr) -> tuple[E.Expr, ...]:
    """Return the direct sub-expressions of ``e``."""
    if isinstance(e, E.BinaryOp):
        return (e.left, e.right)
    if isinstance(e, E.UnaryOp):
        return (e.operand,)
    if isinstance(e, E.Call):
        return e.args
    if isinstance(e, E.Select):
        return (e.cond, e.if_true, e.if_false)
    if isinstance(e, E.ArrayRead):
        return (e.index,)
    if isinstance(e, E.Lane):
        return (e.base,)
    if isinstance(e, (E.Peek, E.VPeek, E.InternalPeek, E.GatherPeek)):
        return (e.offset,)
    if isinstance(e, E.Broadcast):
        return (e.value,)
    if isinstance(e, E.ArrayVec):
        return (e.index,)
    return ()


def iter_expr(e: E.Expr) -> Iterator[E.Expr]:
    """Yield ``e`` and every sub-expression, pre-order."""
    yield e
    for child in children_of_expr(e):
        yield from iter_expr(child)


def exprs_of_stmt(stmt: S.Stmt) -> tuple[E.Expr, ...]:
    """Return the top-level expressions appearing directly in ``stmt``
    (not descending into nested statement bodies)."""
    if isinstance(stmt, S.DeclVar):
        return (stmt.init,) if stmt.init is not None else ()
    if isinstance(stmt, S.Assign):
        lv = stmt.lhs
        index = (lv.index,) if isinstance(lv, (L.ArrayLV, L.ArrayLaneLV)) else ()
        return index + (stmt.rhs,)
    if isinstance(stmt, (S.Push, S.VPush, S.InternalPush)):
        return (stmt.value,)
    if isinstance(stmt, S.RPush):
        return (stmt.value, stmt.offset)
    if isinstance(stmt, S.ScatterPush):
        return (stmt.value,)
    if isinstance(stmt, S.ExprStmt):
        return (stmt.expr,)
    if isinstance(stmt, S.For):
        return (stmt.start, stmt.end)
    if isinstance(stmt, S.If):
        return (stmt.cond,)
    return ()


def iter_stmts(body: S.Body) -> Iterator[S.Stmt]:
    """Yield every statement in ``body``, descending into loops and ifs."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, S.For):
            yield from iter_stmts(stmt.body)
        elif isinstance(stmt, S.If):
            yield from iter_stmts(stmt.then_body)
            yield from iter_stmts(stmt.else_body)


def iter_all_exprs(body: S.Body) -> Iterator[E.Expr]:
    """Yield every expression anywhere in ``body`` (all nesting levels)."""
    for stmt in iter_stmts(body):
        for top in exprs_of_stmt(stmt):
            yield from iter_expr(top)


# --- rewriting ---------------------------------------------------------------

def rewrite_expr(e: E.Expr, fn: ExprFn) -> E.Expr:
    """Rewrite ``e`` bottom-up: children first, then ``fn`` on the rebuilt
    node.  ``fn`` must return an expression (possibly the same object)."""
    if isinstance(e, E.BinaryOp):
        rebuilt: E.Expr = E.BinaryOp(
            e.op, rewrite_expr(e.left, fn), rewrite_expr(e.right, fn))
    elif isinstance(e, E.UnaryOp):
        rebuilt = E.UnaryOp(e.op, rewrite_expr(e.operand, fn))
    elif isinstance(e, E.Call):
        rebuilt = E.Call(e.func, tuple(rewrite_expr(a, fn) for a in e.args))
    elif isinstance(e, E.Select):
        rebuilt = E.Select(rewrite_expr(e.cond, fn),
                           rewrite_expr(e.if_true, fn),
                           rewrite_expr(e.if_false, fn))
    elif isinstance(e, E.ArrayRead):
        rebuilt = E.ArrayRead(e.name, rewrite_expr(e.index, fn))
    elif isinstance(e, E.Lane):
        rebuilt = E.Lane(rewrite_expr(e.base, fn), e.index)
    elif isinstance(e, E.Peek):
        rebuilt = E.Peek(rewrite_expr(e.offset, fn))
    elif isinstance(e, E.VPeek):
        rebuilt = E.VPeek(rewrite_expr(e.offset, fn))
    elif isinstance(e, E.InternalPeek):
        rebuilt = E.InternalPeek(e.buf, rewrite_expr(e.offset, fn))
    elif isinstance(e, E.GatherPeek):
        rebuilt = E.GatherPeek(rewrite_expr(e.offset, fn), e.stride, e.strategy)
    elif isinstance(e, E.Broadcast):
        rebuilt = E.Broadcast(rewrite_expr(e.value, fn), e.width)
    elif isinstance(e, E.ArrayVec):
        rebuilt = E.ArrayVec(e.name, rewrite_expr(e.index, fn))
    else:
        rebuilt = e
    return fn(rebuilt)


def _rewrite_lvalue(lv: L.LValue, fn: ExprFn) -> L.LValue:
    if isinstance(lv, L.ArrayLV):
        return L.ArrayLV(lv.name, rewrite_expr(lv.index, fn))
    if isinstance(lv, L.ArrayLaneLV):
        return L.ArrayLaneLV(lv.name, rewrite_expr(lv.index, fn), lv.lane)
    return lv


def rewrite_body_exprs(body: S.Body, fn: ExprFn) -> S.Body:
    """Apply :func:`rewrite_expr` to every expression in ``body``."""
    out: list[S.Stmt] = []
    for stmt in body:
        out.append(_rewrite_stmt_exprs(stmt, fn))
    return tuple(out)


def _rewrite_stmt_exprs(stmt: S.Stmt, fn: ExprFn) -> S.Stmt:
    if isinstance(stmt, S.DeclVar):
        init = rewrite_expr(stmt.init, fn) if stmt.init is not None else None
        return S.DeclVar(stmt.name, stmt.type, init)
    if isinstance(stmt, S.Assign):
        return S.Assign(_rewrite_lvalue(stmt.lhs, fn),
                        rewrite_expr(stmt.rhs, fn))
    if isinstance(stmt, S.Push):
        return S.Push(rewrite_expr(stmt.value, fn))
    if isinstance(stmt, S.VPush):
        return S.VPush(rewrite_expr(stmt.value, fn))
    if isinstance(stmt, S.InternalPush):
        return S.InternalPush(stmt.buf, rewrite_expr(stmt.value, fn))
    if isinstance(stmt, S.RPush):
        return S.RPush(rewrite_expr(stmt.value, fn),
                       rewrite_expr(stmt.offset, fn))
    if isinstance(stmt, S.ScatterPush):
        return S.ScatterPush(rewrite_expr(stmt.value, fn), stmt.stride,
                             stmt.advance, stmt.strategy)
    if isinstance(stmt, S.ExprStmt):
        return S.ExprStmt(rewrite_expr(stmt.expr, fn))
    if isinstance(stmt, S.For):
        return S.For(stmt.var, rewrite_expr(stmt.start, fn),
                     rewrite_expr(stmt.end, fn),
                     rewrite_body_exprs(stmt.body, fn))
    if isinstance(stmt, S.If):
        return S.If(rewrite_expr(stmt.cond, fn),
                    rewrite_body_exprs(stmt.then_body, fn),
                    rewrite_body_exprs(stmt.else_body, fn))
    return stmt


def rewrite_body_stmts(body: S.Body, fn: StmtFn) -> S.Body:
    """Rewrite statements bottom-up.

    ``fn`` receives each statement (with already-rewritten children) and may
    return a replacement statement, a tuple of statements (splice), or
    ``None`` to delete the statement.
    """
    out: list[S.Stmt] = []
    for stmt in body:
        if isinstance(stmt, S.For):
            stmt = S.For(stmt.var, stmt.start, stmt.end,
                         rewrite_body_stmts(stmt.body, fn))
        elif isinstance(stmt, S.If):
            stmt = S.If(stmt.cond,
                        rewrite_body_stmts(stmt.then_body, fn),
                        rewrite_body_stmts(stmt.else_body, fn))
        result = fn(stmt)
        if result is None:
            continue
        if isinstance(result, tuple):
            out.extend(result)
        else:
            out.append(result)
    return tuple(out)
