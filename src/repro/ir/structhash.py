"""Structural hashing of work functions with constants abstracted.

Horizontal SIMDization (§3.3) treats two actors as *isomorphic* when their
work and init functions are identical up to constant literals and parameter
bindings.  We canonicalise each body by replacing every numeric constant and
``Param`` with a positional placeholder; two bodies are isomorphic iff their
canonical forms are equal.  The sequence of abstracted constants (one per
actor) is exactly the data horizontal SIMDization packs into
:class:`~repro.ir.expr.VectorConst` vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from . import expr as E
from . import stmt as S
from .visitors import rewrite_body_exprs, rewrite_body_stmts

#: Marker name used for abstracted constant slots.
_SLOT = "__const_slot__"


@dataclass(frozen=True)
class CanonicalForm:
    """A constant-abstracted body plus the extracted constant sequence."""

    body: S.Body
    constants: Tuple[float, ...]

    @property
    def shape_key(self) -> int:
        """Hash identifying the structure (constants excluded)."""
        return hash(self.body)


def canonicalize(body: S.Body) -> CanonicalForm:
    """Return the canonical form of ``body``.

    Every ``IntConst``/``FloatConst``/``Param`` is replaced by a ``Var`` whose
    name encodes its abstraction index, and its value is recorded.  ``Param``
    values are recorded as ``float('nan')`` placeholders — callers instantiate
    params before canonicalising real actor instances, so a ``Param`` here
    simply means "template slot".
    """
    constants: list[float] = []

    def abstract(e: E.Expr) -> E.Expr:
        if isinstance(e, (E.IntConst, E.FloatConst)):
            constants.append(float(e.value))
            return E.Var(f"{_SLOT}{len(constants) - 1}")
        if isinstance(e, E.Param):
            constants.append(float("nan"))
            return E.Var(f"{_SLOT}{len(constants) - 1}")
        return e

    canon = rewrite_body_exprs(body, abstract)

    def abstract_array_inits(stmt: S.Stmt) -> S.Stmt:
        # Coefficient tables (DeclArray initialisers) are data constants:
        # two FIR filters differing only in their taps are isomorphic.
        if isinstance(stmt, S.DeclArray) and stmt.init is not None:
            constants.extend(float(v) for v in stmt.init)
            return S.DeclArray(stmt.name, stmt.elem_type, stmt.size,
                               (_SLOT,) * stmt.size)
        return stmt

    canon = rewrite_body_stmts(canon, abstract_array_inits)
    return CanonicalForm(canon, tuple(constants))


def isomorphic(body_a: S.Body, body_b: S.Body) -> bool:
    """True when the two bodies are identical up to constant literals."""
    return canonicalize(body_a).body == canonicalize(body_b).body
