"""Human-readable pretty printer for the work-function IR.

The output mirrors the paper's pseudo-code (Figures 3, 4, 6): lane accesses
print as ``v.{i}``, strided reads as ``peek(k)``/``pop()``, random-access
writes as ``rpush(value, offset)``.
"""

from __future__ import annotations

from . import expr as E
from . import lvalue as L
from . import stmt as S

#: Precedence table for minimal parenthesisation.
_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6, "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8, "+": 9, "-": 9, "*": 10, "/": 10, "%": 10,
}


def format_expr(e: E.Expr, parent_prec: int = 0) -> str:
    if isinstance(e, E.IntConst):
        return str(e.value)
    if isinstance(e, E.FloatConst):
        return repr(e.value)
    if isinstance(e, E.BoolConst):
        return "true" if e.value else "false"
    if isinstance(e, E.VectorConst):
        return "{" + ", ".join(repr(v) for v in e.values) + "}"
    if isinstance(e, E.Param):
        return f"${e.name}"
    if isinstance(e, E.Var):
        return e.name
    if isinstance(e, E.ArrayRead):
        return f"{e.name}[{format_expr(e.index)}]"
    if isinstance(e, E.Lane):
        return f"{format_expr(e.base, 11)}.{{{e.index}}}"
    if isinstance(e, E.BinaryOp):
        prec = _PREC[e.op]
        text = (f"{format_expr(e.left, prec)} {e.op} "
                f"{format_expr(e.right, prec + 1)}")
        return f"({text})" if prec < parent_prec else text
    if isinstance(e, E.UnaryOp):
        return f"{e.op}{format_expr(e.operand, 11)}"
    if isinstance(e, E.Call):
        return f"{e.func}({', '.join(format_expr(a) for a in e.args)})"
    if isinstance(e, E.Select):
        return (f"({format_expr(e.cond)} ? {format_expr(e.if_true)}"
                f" : {format_expr(e.if_false)})")
    if isinstance(e, E.Pop):
        return "pop()"
    if isinstance(e, E.Peek):
        return f"peek({format_expr(e.offset)})"
    if isinstance(e, E.VPop):
        return "vpop()"
    if isinstance(e, E.VPeek):
        return f"vpeek({format_expr(e.offset)})"
    if isinstance(e, E.GatherPop):
        return f"gather_pop(stride={e.stride}, {e.strategy})"
    if isinstance(e, E.GatherPeek):
        return (f"gather_peek({format_expr(e.offset)}, stride={e.stride}, "
                f"{e.strategy})")
    if isinstance(e, E.Broadcast):
        return f"splat({format_expr(e.value)})"
    if isinstance(e, E.ArrayVec):
        return f"vload({e.name}[{format_expr(e.index)}])"
    if isinstance(e, E.InternalPop):
        return f"buf{e.buf}.pop()"
    if isinstance(e, E.InternalPeek):
        return f"buf{e.buf}.peek({format_expr(e.offset)})"
    raise TypeError(f"unknown expression {e!r}")


def _format_lvalue(lv: L.LValue) -> str:
    if isinstance(lv, L.VarLV):
        return lv.name
    if isinstance(lv, L.ArrayLV):
        return f"{lv.name}[{format_expr(lv.index)}]"
    if isinstance(lv, L.LaneLV):
        return f"{lv.name}.{{{lv.lane}}}"
    if isinstance(lv, L.ArrayLaneLV):
        return f"{lv.name}[{format_expr(lv.index)}].{{{lv.lane}}}"
    raise TypeError(f"unknown lvalue {lv!r}")


def format_body(body: S.Body, indent: int = 0) -> str:
    """Format a statement body as indented pseudo-code."""
    lines: list[str] = []
    _format_into(body, indent, lines)
    return "\n".join(lines)


def _format_into(body: S.Body, indent: int, lines: list[str]) -> None:
    pad = "  " * indent
    for stmt in body:
        if isinstance(stmt, S.DeclVar):
            init = f" = {format_expr(stmt.init)}" if stmt.init is not None else ""
            lines.append(f"{pad}{stmt.type} {stmt.name}{init};")
        elif isinstance(stmt, S.DeclArray):
            init = ""
            if stmt.init is not None:
                init = " = {" + ", ".join(repr(v) for v in stmt.init) + "}"
            lines.append(f"{pad}{stmt.elem_type} {stmt.name}[{stmt.size}]{init};")
        elif isinstance(stmt, S.Assign):
            lines.append(f"{pad}{_format_lvalue(stmt.lhs)} = "
                         f"{format_expr(stmt.rhs)};")
        elif isinstance(stmt, S.Push):
            lines.append(f"{pad}push({format_expr(stmt.value)});")
        elif isinstance(stmt, S.RPush):
            lines.append(f"{pad}rpush({format_expr(stmt.value)}, "
                         f"{format_expr(stmt.offset)});")
        elif isinstance(stmt, S.VPush):
            lines.append(f"{pad}vpush({format_expr(stmt.value)});")
        elif isinstance(stmt, S.InternalPush):
            lines.append(f"{pad}buf{stmt.buf}.push({format_expr(stmt.value)});")
        elif isinstance(stmt, S.ScatterPush):
            lines.append(f"{pad}scatter_push({format_expr(stmt.value)}, "
                         f"stride={stmt.stride}, {stmt.strategy});")
        elif isinstance(stmt, S.CostAnnotation):
            lines.append(f"{pad}/* cost: {stmt.count} x {stmt.event} */")
        elif isinstance(stmt, S.AdvanceReader):
            lines.append(f"{pad}advance_reader({stmt.count});")
        elif isinstance(stmt, S.AdvanceWriter):
            lines.append(f"{pad}advance_writer({stmt.count});")
        elif isinstance(stmt, S.ExprStmt):
            lines.append(f"{pad}{format_expr(stmt.expr)};")
        elif isinstance(stmt, S.For):
            lines.append(f"{pad}for ({stmt.var} : {format_expr(stmt.start)}"
                         f" to {format_expr(stmt.end)}) {{")
            _format_into(stmt.body, indent + 1, lines)
            lines.append(f"{pad}}}")
        elif isinstance(stmt, S.If):
            lines.append(f"{pad}if ({format_expr(stmt.cond)}) {{")
            _format_into(stmt.then_body, indent + 1, lines)
            if stmt.else_body:
                lines.append(f"{pad}}} else {{")
                _format_into(stmt.else_body, indent + 1, lines)
            lines.append(f"{pad}}}")
        else:
            raise TypeError(f"unknown statement {stmt!r}")
