"""Fluent builder for actor work/init function bodies.

Work functions are written in Python using :class:`WorkBuilder`::

    b = WorkBuilder()
    tmp = b.array("tmp", FLOAT, 2)
    coeff = b.array("coeff", FLOAT, 2, init=(0.5, 1.5))
    with b.loop("i", 0, 2) as i:
        t = b.let(f"t", b.pop())
        b.set(tmp[i], t * coeff[i])
    b.push(call("sqrt", tmp[0] + tmp[1]))
    body = b.build()

The builder produces plain immutable IR (tuples of statements), so the
result can be hashed, compared, and rewritten by the compiler passes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

from . import expr as E
from . import lvalue as L
from . import stmt as S
from .expr import ExprLike, as_expr, call  # re-exported for convenience
from .types import FLOAT, INT, IRType, Scalar

__all__ = ["WorkBuilder", "ArrayHandle", "call", "as_expr"]


class ArrayHandle:
    """Handle returned by :meth:`WorkBuilder.array`; indexes to IR reads."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __getitem__(self, index: ExprLike) -> E.ArrayRead:
        return E.ArrayRead(self.name, as_expr(index))


def _as_lvalue(target: "E.Expr | L.LValue | ArrayHandle") -> L.LValue:
    """Convert an expression-form target into its lvalue form."""
    if isinstance(target, L.LValue):
        return target
    if isinstance(target, E.Var):
        return L.VarLV(target.name)
    if isinstance(target, E.ArrayRead):
        return L.ArrayLV(target.name, target.index)
    if isinstance(target, E.Lane):
        base = target.base
        if isinstance(base, E.Var):
            return L.LaneLV(base.name, target.index)
        if isinstance(base, E.ArrayRead):
            return L.ArrayLaneLV(base.name, base.index, target.index)
    raise TypeError(f"{target!r} is not assignable")


class WorkBuilder:
    """Accumulates statements; nested blocks via context managers."""

    def __init__(self) -> None:
        self._stack: list[list[S.Stmt]] = [[]]
        self._pending_if: Optional[S.If] = None

    # -- emission helpers ---------------------------------------------------
    def _emit(self, stmt: S.Stmt) -> None:
        self._pending_if = None
        self._stack[-1].append(stmt)

    def build(self) -> S.Body:
        if len(self._stack) != 1:
            raise RuntimeError("unclosed block in WorkBuilder")
        return tuple(self._stack[0])

    # -- declarations ---------------------------------------------------------
    def let(self, name: str, init: ExprLike, ty: IRType = FLOAT) -> E.Var:
        """Declare and initialise a variable; returns a reference to it."""
        self._emit(S.DeclVar(name, ty, as_expr(init)))
        return E.Var(name)

    def declare(self, name: str, ty: IRType = FLOAT) -> E.Var:
        """Declare an uninitialised variable."""
        self._emit(S.DeclVar(name, ty, None))
        return E.Var(name)

    def array(self, name: str, elem: Scalar = FLOAT, size: int = 0,
              init: Optional[Sequence[float]] = None) -> ArrayHandle:
        """Declare a local array and return an indexable handle."""
        if size <= 0:
            raise ValueError("array size must be positive")
        if init is not None and len(init) != size:
            raise ValueError("array initialiser length mismatch")
        self._emit(S.DeclArray(name, elem, size,
                               tuple(init) if init is not None else None))
        return ArrayHandle(name)

    # -- statements ------------------------------------------------------------
    def set(self, target: "E.Expr | L.LValue | ArrayHandle",
            value: ExprLike) -> None:
        self._emit(S.Assign(_as_lvalue(target), as_expr(value)))

    def push(self, value: ExprLike) -> None:
        self._emit(S.Push(as_expr(value)))

    def rpush(self, value: ExprLike, offset: ExprLike) -> None:
        self._emit(S.RPush(as_expr(value), as_expr(offset)))

    def vpush(self, value: ExprLike) -> None:
        self._emit(S.VPush(as_expr(value)))

    def stmt(self, expr: ExprLike) -> None:
        """Evaluate ``expr`` for side effects (e.g. a discarded ``pop()``)."""
        self._emit(S.ExprStmt(as_expr(expr)))

    # -- expressions -----------------------------------------------------------
    def pop(self) -> E.Pop:
        return E.Pop()

    def peek(self, offset: ExprLike) -> E.Peek:
        return E.Peek(as_expr(offset))

    def vpop(self) -> E.VPop:
        return E.VPop()

    def param(self, name: str) -> E.Param:
        return E.Param(name)

    def var(self, name: str) -> E.Var:
        """Reference an existing variable (e.g. a state variable)."""
        return E.Var(name)

    # -- control flow ------------------------------------------------------------
    @contextmanager
    def loop(self, var: str, start: ExprLike, end: ExprLike) -> Iterator[E.Var]:
        """``for (var = start; var < end; var++)``; yields the loop variable."""
        self._stack.append([])
        try:
            yield E.Var(var)
        finally:
            body = tuple(self._stack.pop())
            self._emit(S.For(var, as_expr(start), as_expr(end), body))

    @contextmanager
    def if_(self, cond: ExprLike) -> Iterator[None]:
        self._stack.append([])
        try:
            yield
        finally:
            body = tuple(self._stack.pop())
            stmt = S.If(as_expr(cond), body, ())
            self._stack[-1].append(stmt)
            self._pending_if = stmt

    @contextmanager
    def orelse(self) -> Iterator[None]:
        """Attach an else branch to the immediately preceding ``if_``."""
        if self._pending_if is None:
            raise RuntimeError("orelse() must directly follow if_()")
        preceding = self._pending_if
        self._stack.append([])
        try:
            yield
        finally:
            else_body = tuple(self._stack.pop())
            block = self._stack[-1]
            assert block and block[-1] is preceding
            block[-1] = S.If(preceding.cond, preceding.then_body, else_body)
            self._pending_if = None
