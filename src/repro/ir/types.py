"""Type system for the actor work-function IR.

The IR distinguishes scalar element types (32-bit conceptual int / float /
bool, matching StreamIt's primitive types) from vector types produced by
macro-SIMDization.  Vector widths always come from the target machine's SIMD
width; the IR stores the width explicitly so a lowered program is
self-describing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ScalarKind(enum.Enum):
    """Primitive element kinds supported by actors."""

    INT = "int"
    FLOAT = "float"
    BOOL = "bool"


@dataclass(frozen=True)
class Scalar:
    """A scalar IR type (e.g. ``int`` or ``float``)."""

    kind: ScalarKind

    def __str__(self) -> str:
        return self.kind.value

    @property
    def is_numeric(self) -> bool:
        return self.kind in (ScalarKind.INT, ScalarKind.FLOAT)


@dataclass(frozen=True)
class Vector:
    """A SIMD vector of ``width`` elements of scalar type ``elem``."""

    elem: Scalar
    width: int

    def __post_init__(self) -> None:
        if self.width < 2:
            raise ValueError(f"vector width must be >= 2, got {self.width}")

    def __str__(self) -> str:
        return f"vector<{self.elem}, {self.width}>"


#: Singletons used throughout the code base.
INT = Scalar(ScalarKind.INT)
FLOAT = Scalar(ScalarKind.FLOAT)
BOOL = Scalar(ScalarKind.BOOL)

IRType = Scalar | Vector


def vector_of(elem: Scalar, width: int) -> Vector:
    """Return the vector type of ``elem`` with ``width`` lanes."""
    return Vector(elem, width)


def element_type(ty: IRType) -> Scalar:
    """Return the scalar element type of ``ty`` (identity for scalars)."""
    return ty.elem if isinstance(ty, Vector) else ty


def is_vector(ty: IRType) -> bool:
    return isinstance(ty, Vector)
