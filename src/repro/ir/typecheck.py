"""Static type checking of actor bodies.

Catches, before anything runs, the mistakes the dynamic interpreter would
only hit on a reachable path: undeclared variables, scalar/array confusion,
lane access on scalars, tape operations in ``init`` bodies, wrong intrinsic
arity, float-to-int narrowing, and branch conditions that are vectors.

The checker is deliberately permissive where C is (int widens to float
implicitly) and strict where streaming semantics demand it (init bodies
must not touch tapes — they run before any data exists).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from . import expr as E
from . import lvalue as L
from . import stmt as S
from .types import BOOL, FLOAT, INT, IRType, Scalar, ScalarKind, Vector

#: Intrinsic arities (everything else is unary).
_ARITY = {"atan2": 2, "pow": 2, "min": 2, "max": 2}


@dataclass(frozen=True)
class TypeIssue:
    message: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.message


@dataclass
class _Binding:
    type: IRType
    is_array: bool


class TypeChecker:
    """Checks one actor spec's init and work bodies."""

    def __init__(self, spec) -> None:
        self.spec = spec
        self.issues: List[TypeIssue] = []

    def check(self) -> List[TypeIssue]:
        state: Dict[str, _Binding] = {
            var.name: _Binding(var.type, var.is_array)
            for var in self.spec.state}
        self._check_body(self.spec.init_body, dict(state), in_init=True)
        self._check_body(self.spec.work_body, dict(state), in_init=False)
        return self.issues

    # -- helpers ---------------------------------------------------------------
    def _issue(self, message: str) -> None:
        self.issues.append(TypeIssue(f"{self.spec.name}: {message}"))

    def _elem(self, ty: IRType) -> Scalar:
        return ty.elem if isinstance(ty, Vector) else ty

    def _assignable(self, target: IRType, value: Optional[IRType]) -> bool:
        if value is None:
            return True  # an earlier error already fired
        t, v = self._elem(target), self._elem(value)
        if t == v:
            return True
        if t.kind is ScalarKind.FLOAT and v.kind in (ScalarKind.INT,
                                                     ScalarKind.BOOL):
            return True  # implicit widening
        if t.kind is ScalarKind.INT and v.kind is ScalarKind.BOOL:
            return True
        return False

    # -- statements -------------------------------------------------------------
    def _check_body(self, body: S.Body, scope: Dict[str, _Binding],
                    *, in_init: bool) -> None:
        for stmt in body:
            self._check_stmt(stmt, scope, in_init=in_init)

    def _check_stmt(self, stmt: S.Stmt, scope: Dict[str, _Binding],
                    *, in_init: bool) -> None:
        if isinstance(stmt, S.DeclVar):
            if stmt.name in scope:
                self._issue(f"redeclaration of {stmt.name!r}")
            value = (self._check_expr(stmt.init, scope, in_init=in_init)
                     if stmt.init is not None else None)
            if stmt.init is not None \
                    and not self._assignable(stmt.type, value):
                self._issue(
                    f"cannot initialise {stmt.type} {stmt.name!r} "
                    f"from {value}")
            scope[stmt.name] = _Binding(stmt.type, False)
        elif isinstance(stmt, S.DeclArray):
            if stmt.name in scope:
                self._issue(f"redeclaration of {stmt.name!r}")
            scope[stmt.name] = _Binding(stmt.elem_type, True)
        elif isinstance(stmt, S.Assign):
            value = self._check_expr(stmt.rhs, scope, in_init=in_init)
            target = self._check_lvalue(stmt.lhs, scope, in_init=in_init)
            if target is not None and not self._assignable(target, value):
                self._issue(
                    f"cannot assign {value} to {target} "
                    f"({_lvalue_name(stmt.lhs)!r})")
        elif isinstance(stmt, (S.Push, S.VPush)):
            if in_init:
                self._issue("tape push in init body")
            self._check_expr(stmt.value, scope, in_init=in_init)
        elif isinstance(stmt, S.RPush):
            if in_init:
                self._issue("tape push in init body")
            self._check_expr(stmt.value, scope, in_init=in_init)
            self._check_expr(stmt.offset, scope, in_init=in_init)
        elif isinstance(stmt, S.ScatterPush):
            self._check_expr(stmt.value, scope, in_init=in_init)
        elif isinstance(stmt, S.InternalPush):
            self._check_expr(stmt.value, scope, in_init=in_init)
        elif isinstance(stmt, S.ExprStmt):
            self._check_expr(stmt.expr, scope, in_init=in_init)
        elif isinstance(stmt, S.For):
            start = self._check_expr(stmt.start, scope, in_init=in_init)
            end = self._check_expr(stmt.end, scope, in_init=in_init)
            for bound, label in ((start, "start"), (end, "end")):
                if isinstance(bound, Vector):
                    self._issue(f"vector loop {label} bound")
            inner = dict(scope)
            inner[stmt.var] = _Binding(INT, False)
            self._check_body(stmt.body, inner, in_init=in_init)
        elif isinstance(stmt, S.If):
            cond = self._check_expr(stmt.cond, scope, in_init=in_init)
            if isinstance(cond, Vector):
                self._issue("vector-valued branch condition")
            self._check_body(stmt.then_body, dict(scope), in_init=in_init)
            self._check_body(stmt.else_body, dict(scope), in_init=in_init)
        elif isinstance(stmt, (S.AdvanceReader, S.AdvanceWriter,
                               S.CostAnnotation)):
            pass
        else:  # pragma: no cover - future statements
            self._issue(f"unknown statement {type(stmt).__name__}")

    def _check_lvalue(self, lhs: L.LValue, scope: Dict[str, _Binding],
                      *, in_init: bool) -> Optional[IRType]:
        if isinstance(lhs, L.VarLV):
            binding = scope.get(lhs.name)
            if binding is None:
                self._issue(f"assignment to undeclared {lhs.name!r}")
                return None
            if binding.is_array:
                self._issue(f"array {lhs.name!r} assigned without index")
                return None
            return binding.type
        if isinstance(lhs, (L.ArrayLV, L.ArrayLaneLV)):
            binding = scope.get(lhs.name)
            if binding is None:
                self._issue(f"assignment to undeclared array {lhs.name!r}")
                return None
            if not binding.is_array:
                self._issue(f"{lhs.name!r} indexed but is not an array")
                return None
            index = self._check_expr(lhs.index, scope, in_init=in_init)
            if isinstance(index, Vector):
                self._issue(f"vector index into array {lhs.name!r}")
            if isinstance(lhs, L.ArrayLaneLV):
                return self._lane_target(binding.type, lhs.name)
            return binding.type
        if isinstance(lhs, L.LaneLV):
            binding = scope.get(lhs.name)
            if binding is None:
                self._issue(f"lane assignment to undeclared {lhs.name!r}")
                return None
            return self._lane_target(binding.type, lhs.name)
        return None  # pragma: no cover

    def _lane_target(self, ty: IRType, name: str) -> Optional[Scalar]:
        if not isinstance(ty, Vector):
            self._issue(f"lane access on scalar {name!r}")
            return None
        return ty.elem

    # -- expressions --------------------------------------------------------------
    def _check_expr(self, expr: E.Expr, scope: Dict[str, _Binding],
                    *, in_init: bool) -> Optional[IRType]:
        if isinstance(expr, E.IntConst):
            return INT
        if isinstance(expr, E.FloatConst):
            return FLOAT
        if isinstance(expr, E.BoolConst):
            return BOOL
        if isinstance(expr, E.VectorConst):
            elem = INT if all(isinstance(v, int) and not isinstance(v, bool)
                              for v in expr.values) else FLOAT
            return Vector(elem, max(2, len(expr.values)))
        if isinstance(expr, E.Param):
            self._issue(f"unbound parameter {expr.name!r} "
                        "(bind_params before checking)")
            return None
        if isinstance(expr, E.Var):
            binding = scope.get(expr.name)
            if binding is None:
                self._issue(f"use of undeclared variable {expr.name!r}")
                return None
            if binding.is_array:
                self._issue(f"array {expr.name!r} used without index")
                return None
            return binding.type
        if isinstance(expr, (E.ArrayRead, E.ArrayVec)):
            binding = scope.get(expr.name)
            if binding is None:
                self._issue(f"use of undeclared array {expr.name!r}")
                return None
            if not binding.is_array:
                self._issue(f"{expr.name!r} indexed but is not an array")
                return None
            index = self._check_expr(expr.index, scope, in_init=in_init)
            if isinstance(index, Vector):
                self._issue(f"vector index into array {expr.name!r}")
            if isinstance(expr, E.ArrayVec):
                elem = self._elem(binding.type)
                return Vector(elem, 4)
            return binding.type
        if isinstance(expr, E.Lane):
            base = self._check_expr(expr.base, scope, in_init=in_init)
            if base is None:
                return None
            if not isinstance(base, Vector):
                self._issue("lane access on a scalar value")
                return None
            if not 0 <= expr.index < base.width:
                self._issue(f"lane {expr.index} out of range for {base}")
            return base.elem
        if isinstance(expr, E.Broadcast):
            value = self._check_expr(expr.value, scope, in_init=in_init)
            if isinstance(value, Vector):
                self._issue("broadcast of a vector value")
                return value
            elem = value if isinstance(value, Scalar) else FLOAT
            return Vector(elem, expr.width)
        if isinstance(expr, E.BinaryOp):
            return self._check_binary(expr, scope, in_init=in_init)
        if isinstance(expr, E.UnaryOp):
            operand = self._check_expr(expr.operand, scope, in_init=in_init)
            if expr.op == "~" and operand is not None \
                    and self._elem(operand).kind is ScalarKind.FLOAT:
                self._issue("bitwise complement of a float")
            return operand
        if isinstance(expr, E.Call):
            return self._check_call(expr, scope, in_init=in_init)
        if isinstance(expr, E.Select):
            cond = self._check_expr(expr.cond, scope, in_init=in_init)
            a = self._check_expr(expr.if_true, scope, in_init=in_init)
            b = self._check_expr(expr.if_false, scope, in_init=in_init)
            if isinstance(cond, Vector) and not (isinstance(a, Vector)
                                                 or isinstance(b, Vector)):
                self._issue("vector select over scalar arms")
            return a or b
        if isinstance(expr, (E.Pop, E.Peek)):
            if in_init:
                self._issue("tape read in init body")
            if isinstance(expr, E.Peek):
                offset = self._check_expr(expr.offset, scope,
                                          in_init=in_init)
                if isinstance(offset, Vector):
                    self._issue("vector peek offset")
            return self.spec.data_type
        if isinstance(expr, (E.VPop, E.VPeek, E.GatherPop, E.GatherPeek)):
            if in_init:
                self._issue("tape read in init body")
            if isinstance(expr, (E.VPeek, E.GatherPeek)):
                self._check_expr(expr.offset, scope, in_init=in_init)
            return Vector(self.spec.data_type, 4)
        if isinstance(expr, (E.InternalPop, E.InternalPeek)):
            if isinstance(expr, E.InternalPeek):
                self._check_expr(expr.offset, scope, in_init=in_init)
            return None  # buffer element types are caller-defined
        self._issue(f"unknown expression {type(expr).__name__}")
        return None

    def _check_binary(self, expr: E.BinaryOp, scope, *, in_init: bool
                      ) -> Optional[IRType]:
        left = self._check_expr(expr.left, scope, in_init=in_init)
        right = self._check_expr(expr.right, scope, in_init=in_init)
        if left is None or right is None:
            return None
        if expr.op in ("<<", ">>", "&", "|", "^", "%"):
            for side, ty in (("left", left), ("right", right)):
                if self._elem(ty).kind is ScalarKind.FLOAT \
                        and expr.op != "%":
                    self._issue(
                        f"bitwise {expr.op!r} on float ({side} operand)")
        width = None
        for ty in (left, right):
            if isinstance(ty, Vector):
                if width is not None and ty.width != width:
                    self._issue(
                        f"vector width mismatch: {width} vs {ty.width}")
                width = ty.width
        if expr.op in E.COMPARISON_OPS:
            result_elem = BOOL
        else:
            kinds = {self._elem(left).kind, self._elem(right).kind}
            result_elem = FLOAT if ScalarKind.FLOAT in kinds else INT
        return Vector(result_elem if result_elem != BOOL else INT, width) \
            if width else result_elem

    def _check_call(self, expr: E.Call, scope, *, in_init: bool
                    ) -> Optional[IRType]:
        expected = _ARITY.get(expr.func, 1)
        if len(expr.args) != expected:
            self._issue(f"{expr.func} expects {expected} argument(s), "
                        f"got {len(expr.args)}")
        width = None
        for arg in expr.args:
            ty = self._check_expr(arg, scope, in_init=in_init)
            if isinstance(ty, Vector):
                width = ty.width
        result = INT if expr.func == "int" else FLOAT
        return Vector(result, width) if width else result


def check_spec(spec) -> List[TypeIssue]:
    """Type-check one actor; returns (possibly empty) issue list."""
    return TypeChecker(spec).check()


def check_graph(graph) -> List[TypeIssue]:
    """Type-check every filter in a flat graph."""
    from ..graph.actor import FilterSpec
    issues: List[TypeIssue] = []
    for actor in graph.actors.values():
        if isinstance(actor.spec, FilterSpec):
            issues.extend(check_spec(actor.spec))
    return issues


def _lvalue_name(lhs: L.LValue) -> str:
    return getattr(lhs, "name", "?")
