"""Statement nodes of the actor work-function IR.

Bodies are tuples of statements, so that whole work functions are hashable
and can be structurally compared (isomorphism detection, §3.3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .expr import Expr
from .lvalue import LValue
from .types import IRType

Body = Tuple["Stmt", ...]


class Stmt:
    """Base class for all statements."""

    __slots__ = ()


@dataclass(frozen=True)
class DeclVar(Stmt):
    """Declare a local variable, optionally with an initialiser."""

    name: str
    type: IRType
    init: Optional[Expr] = None


@dataclass(frozen=True)
class DeclArray(Stmt):
    """Declare a local array of ``size`` elements of ``elem_type``."""

    name: str
    elem_type: IRType
    size: int
    init: Optional[Tuple[float, ...]] = None


@dataclass(frozen=True)
class Assign(Stmt):
    lhs: LValue
    rhs: Expr


@dataclass(frozen=True)
class Push(Stmt):
    """Write one element to the output tape and advance the write pointer."""

    value: Expr


@dataclass(frozen=True)
class RPush(Stmt):
    """Random-access push: write ``value`` at ``offset`` elements past the
    write pointer *without* advancing it (paper §3.1)."""

    value: Expr
    offset: Expr


@dataclass(frozen=True)
class VPush(Stmt):
    """Write one full vector to a vector tape / internal vector buffer."""

    value: Expr


@dataclass(frozen=True)
class ScatterPush(Stmt):
    """Strided scatter of a vector's lanes to a *scalar* output tape.

    Lane ``k`` is written at offset ``k * stride`` from the write pointer;
    afterwards the pointer advances by ``advance`` elements.  ``strategy``
    records the realisation ("scalar", "permute", "sagu") for costing.
    """

    value: Expr
    stride: int
    advance: int = 1
    strategy: str = "scalar"


@dataclass(frozen=True)
class CostAnnotation(Stmt):
    """Charge ``count`` occurrences of performance event ``event`` without
    any functional effect.  Used by baseline models (e.g. auto-vectorizer
    loop-versioning / alignment-peeling overhead) that have a cycle cost but
    no IR-visible behaviour."""

    event: str
    count: int = 1


@dataclass(frozen=True)
class AdvanceReader(Stmt):
    """Advance the input-tape read pointer by ``count`` items without
    reading.  Emitted at the end of a vectorized work body: the strided
    ``peek``/``pop`` groups of Figure 3b advance the pointer by only one item
    per group, leaving ``(SW - 1) * pop_rate`` consumed-but-unacknowledged
    items to skip.
    """

    count: int


@dataclass(frozen=True)
class AdvanceWriter(Stmt):
    """Advance the output-tape write pointer by ``count`` items (the already
    ``rpush``-ed lanes of the strided write groups)."""

    count: int


@dataclass(frozen=True)
class InternalPush(Stmt):
    """Push ``value`` (scalar, or a vector after SIMDization) onto internal
    buffer ``buf`` of a fused coarse actor."""

    buf: int
    value: Expr


@dataclass(frozen=True)
class ExprStmt(Stmt):
    """Evaluate an expression for its side effects (e.g. a bare ``pop()``)."""

    expr: Expr


@dataclass(frozen=True)
class For(Stmt):
    """``for (var = start; var < end; var++) body`` — a counted loop."""

    var: str
    start: Expr
    end: Expr
    body: Body


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then_body: Body
    else_body: Body = ()
