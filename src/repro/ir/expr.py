"""Expression nodes of the actor work-function IR.

Expressions are immutable dataclasses.  Arithmetic operators are overloaded
so that work functions can be written naturally in the builder DSL::

    out = (a * coeff + b) / 2.0

Tape accesses (:class:`Pop`, :class:`Peek`, :class:`VPop`, :class:`VPeek`)
are expressions because StreamIt treats them as value-producing operations;
the interpreter gives them their side effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple

#: Binary operators understood by the interpreter and code generator.
BINARY_OPS = frozenset(
    {"+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^",
     "==", "!=", "<", "<=", ">", ">=", "&&", "||"}
)

#: Operators whose result is a boolean.
COMPARISON_OPS = frozenset({"==", "!=", "<", "<=", ">", ">=", "&&", "||"})

UNARY_OPS = frozenset({"-", "!", "~"})

#: Pure math intrinsics callable from work functions.
MATH_FUNCS = frozenset(
    {"sin", "cos", "tan", "asin", "acos", "atan", "atan2", "sqrt", "exp",
     "log", "pow", "abs", "min", "max", "floor", "ceil", "round", "rint",
     "float", "int"}
)


class Expr:
    """Base class for all expressions (supports operator overloading)."""

    __slots__ = ()

    # -- arithmetic sugar ---------------------------------------------------
    def __add__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("+", self, as_expr(other))

    def __radd__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("+", as_expr(other), self)

    def __sub__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("-", self, as_expr(other))

    def __rsub__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("-", as_expr(other), self)

    def __mul__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("*", self, as_expr(other))

    def __rmul__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("*", as_expr(other), self)

    def __truediv__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("/", self, as_expr(other))

    def __rtruediv__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("/", as_expr(other), self)

    def __mod__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("%", self, as_expr(other))

    def __rmod__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("%", as_expr(other), self)

    def __lshift__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("<<", self, as_expr(other))

    def __rshift__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp(">>", self, as_expr(other))

    def __and__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("&", self, as_expr(other))

    def __or__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("|", self, as_expr(other))

    def __xor__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("^", self, as_expr(other))

    def __neg__(self) -> "UnaryOp":
        return UnaryOp("-", self)

    # Comparisons intentionally build IR instead of returning bool.  They
    # must only be used inside work-function bodies.
    def eq(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("==", self, as_expr(other))

    def ne(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("!=", self, as_expr(other))

    def lt(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("<", self, as_expr(other))

    def le(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("<=", self, as_expr(other))

    def gt(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp(">", self, as_expr(other))

    def ge(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp(">=", self, as_expr(other))

    def logical_and(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("&&", self, as_expr(other))

    def logical_or(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("||", self, as_expr(other))

    def lane(self, index: int) -> "Lane":
        """Read lane ``index`` of a vector expression (``v.{i}``)."""
        return Lane(self, index)


ExprLike = Expr | int | float | bool


def as_expr(value: ExprLike) -> Expr:
    """Coerce a Python literal into an IR constant expression."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return BoolConst(value)
    if isinstance(value, int):
        return IntConst(value)
    if isinstance(value, float):
        return FloatConst(value)
    raise TypeError(f"cannot convert {value!r} to an IR expression")


@dataclass(frozen=True)
class IntConst(Expr):
    value: int


@dataclass(frozen=True)
class FloatConst(Expr):
    value: float


@dataclass(frozen=True)
class BoolConst(Expr):
    value: bool


@dataclass(frozen=True)
class VectorConst(Expr):
    """A literal vector, one value per lane (horizontal SIMDization uses
    these to merge differing constants of isomorphic actors)."""

    values: Tuple[float, ...]


@dataclass(frozen=True)
class Param(Expr):
    """A per-instance compile-time parameter, resolved when an actor spec is
    instantiated.  Two actors differing only in ``Param`` bindings are
    isomorphic by construction."""

    name: str


@dataclass(frozen=True)
class Var(Expr):
    """Read of a local, state, or loop variable."""

    name: str


@dataclass(frozen=True)
class ArrayRead(Expr):
    name: str
    index: Expr


@dataclass(frozen=True)
class Lane(Expr):
    """Read lane ``index`` of vector expression ``base`` (``base.{index}``)."""

    base: Expr
    index: int


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary operator {self.op!r}")


@dataclass(frozen=True)
class Call(Expr):
    """Call of a pure math intrinsic (``sin``, ``sqrt``, ``min``, ...)."""

    func: str
    args: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.func not in MATH_FUNCS:
            raise ValueError(f"unknown intrinsic {self.func!r}")


@dataclass(frozen=True)
class Select(Expr):
    """Ternary ``cond ? if_true : if_false`` (vectorizable as a blend)."""

    cond: Expr
    if_true: Expr
    if_false: Expr


# --- tape access expressions -------------------------------------------------

@dataclass(frozen=True)
class Pop(Expr):
    """Destructively read one element from the input tape."""


@dataclass(frozen=True)
class Peek(Expr):
    """Non-destructively read the element ``offset`` items ahead of the read
    pointer of the input tape."""

    offset: Expr


@dataclass(frozen=True)
class VPop(Expr):
    """Read one full vector from a vector tape / internal vector buffer."""


@dataclass(frozen=True)
class VPeek(Expr):
    """Non-destructive vector read ``offset`` vectors ahead."""

    offset: Expr


@dataclass(frozen=True)
class ArrayVec(Expr):
    """Contiguous vector load of ``width``-of-SIMD elements starting at
    ``name[index]`` (unit-stride — what a loop auto-vectorizer emits for
    ``a[i]`` inside a vectorized loop)."""

    name: str
    index: Expr


@dataclass(frozen=True)
class Broadcast(Expr):
    """Splat a scalar expression across ``width`` lanes."""

    value: Expr
    width: int


@dataclass(frozen=True)
class GatherPeek(Expr):
    """Strided non-destructive gather from a *scalar* tape.

    Lane ``k`` receives the element at ``offset + k * stride`` ahead of the
    read pointer; the pointer does not move.  See :class:`GatherPop` for the
    ``strategy`` field.
    """

    offset: Expr
    stride: int
    strategy: str = "scalar"


@dataclass(frozen=True)
class GatherPop(Expr):
    """Strided gather producing a vector from a *scalar* tape.

    Lane ``k`` receives the element at offset ``k * stride`` from the current
    read pointer; afterwards the read pointer advances by ``advance``
    elements (1 for the paper's peek/peek/peek/pop idiom).  The ``strategy``
    field records how the access is realised ("scalar", "permute", "sagu")
    and drives the cost model; semantics are identical for all strategies.
    """

    stride: int
    advance: int = 1
    strategy: str = "scalar"


@dataclass(frozen=True)
class InternalPop(Expr):
    """Pop one item from internal buffer ``buf`` of a fused coarse actor.

    Items are scalars before SIMDization of the coarse actor and whole
    vectors afterwards (§3.2: inner actors communicate through internal
    vector buffers, eliminating pack/unpack at fused boundaries).
    """

    buf: int


@dataclass(frozen=True)
class InternalPeek(Expr):
    """Non-destructive read ``offset`` items ahead in internal buffer ``buf``."""

    buf: int
    offset: Expr


def call(func: str, *args: ExprLike) -> Call:
    """Convenience constructor: ``call("sin", x)``."""
    return Call(func, tuple(as_expr(a) for a in args))


def vector_const(values: Iterable[float]) -> VectorConst:
    return VectorConst(tuple(values))
