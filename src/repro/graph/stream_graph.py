"""Flat stream-graph representation.

The hierarchy (:mod:`repro.graph.structure`) is flattened into actors
connected by tapes.  All compiler passes — scheduling, the three
SIMDizations, tape optimization, partitioning — operate on this graph, and
the runtime executes it directly.

The graph is deliberately mutable: MacroSS passes rewrite it in place
(fusing pipelines, replacing split-joins) exactly as the paper's Figure 2a →
Figure 2b transformation does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..ir.types import FLOAT, Scalar
from .actor import FilterSpec
from .builtins import (
    BuiltinSpec,
    HJoinerSpec,
    HSplitterSpec,
    JoinerSpec,
    SplitterSpec,
)

AnySpec = FilterSpec | BuiltinSpec


class GraphError(Exception):
    """Raised on malformed stream graphs."""


@dataclass
class ActorInstance:
    """A node of the flat graph."""

    id: int
    name: str
    spec: AnySpec

    @property
    def is_filter(self) -> bool:
        return isinstance(self.spec, FilterSpec)

    @property
    def is_splitter(self) -> bool:
        return isinstance(self.spec, (SplitterSpec, HSplitterSpec))

    @property
    def is_joiner(self) -> bool:
        return isinstance(self.spec, (JoinerSpec, HJoinerSpec))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ActorInstance({self.id}, {self.name!r})"


@dataclass
class TapeEdge:
    """A FIFO channel between two actor ports.

    ``vector_width > 1`` marks a vector tape (horizontal SIMDization);
    ``lane_ordered`` marks a scalar-element tape whose contents were written
    in vector-lane order by a vectorized producer or will be read that way by
    a vectorized consumer (the SAGU case, §3.4).
    """

    id: int
    src: int
    src_port: int
    dst: int
    dst_port: int
    data_type: Scalar = FLOAT
    vector_width: int = 1
    lane_ordered: bool = False
    #: items pre-loaded before execution starts (feedback-loop ``enqueue``;
    #: these delays are what make a cyclic SDF graph deadlock-free).
    initial: Tuple = ()

    @property
    def is_vector(self) -> bool:
        return self.vector_width > 1


class StreamGraph:
    """Mutable flat SDF graph: actors + tapes, with port bookkeeping."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.actors: Dict[int, ActorInstance] = {}
        self.tapes: Dict[int, TapeEdge] = {}
        self._next_actor = 0
        self._next_tape = 0
        self._names: set[str] = set()

    # -- construction -------------------------------------------------------
    def add_actor(self, spec: AnySpec, name: Optional[str] = None) -> ActorInstance:
        base = name or getattr(spec, "name", "actor")
        unique = base
        counter = 1
        while unique in self._names:
            unique = f"{base}_{counter}"
            counter += 1
        actor = ActorInstance(self._next_actor, unique, spec)
        self.actors[actor.id] = actor
        self._names.add(unique)
        self._next_actor += 1
        return actor

    def add_tape(self, src: int, dst: int, *, src_port: int = 0,
                 dst_port: int = 0, data_type: Scalar = FLOAT,
                 vector_width: int = 1) -> TapeEdge:
        if src not in self.actors or dst not in self.actors:
            raise GraphError("tape endpoints must be existing actors")
        tape = TapeEdge(self._next_tape, src, src_port, dst, dst_port,
                        data_type, vector_width)
        self.tapes[tape.id] = tape
        self._next_tape += 1
        return tape

    def remove_actor(self, actor_id: int) -> None:
        if any(t.src == actor_id or t.dst == actor_id
               for t in self.tapes.values()):
            raise GraphError("cannot remove actor with attached tapes")
        actor = self.actors.pop(actor_id)
        self._names.discard(actor.name)

    def remove_tape(self, tape_id: int) -> None:
        del self.tapes[tape_id]

    # -- queries ------------------------------------------------------------
    def in_tapes(self, actor_id: int) -> List[TapeEdge]:
        tapes = [t for t in self.tapes.values() if t.dst == actor_id]
        tapes.sort(key=lambda t: t.dst_port)
        return tapes

    def out_tapes(self, actor_id: int) -> List[TapeEdge]:
        tapes = [t for t in self.tapes.values() if t.src == actor_id]
        tapes.sort(key=lambda t: t.src_port)
        return tapes

    def input_tape(self, actor_id: int) -> Optional[TapeEdge]:
        """The single input tape of a filter (None for sources)."""
        tapes = self.in_tapes(actor_id)
        if len(tapes) > 1:
            raise GraphError(f"actor {actor_id} has multiple inputs")
        return tapes[0] if tapes else None

    def output_tape(self, actor_id: int) -> Optional[TapeEdge]:
        """The single output tape of a filter (None for terminal actors)."""
        tapes = self.out_tapes(actor_id)
        if len(tapes) > 1:
            raise GraphError(f"actor {actor_id} has multiple outputs")
        return tapes[0] if tapes else None

    def predecessors(self, actor_id: int) -> List[int]:
        return [t.src for t in self.in_tapes(actor_id)]

    def successors(self, actor_id: int) -> List[int]:
        return [t.dst for t in self.out_tapes(actor_id)]

    def sources(self) -> List[ActorInstance]:
        return [a for a in self.actors.values() if not self.in_tapes(a.id)]

    def terminals(self) -> List[ActorInstance]:
        return [a for a in self.actors.values() if not self.out_tapes(a.id)]

    def actors_on_cycles(self) -> set:
        """Actors belonging to some directed cycle (feedback loops).

        MacroSS excludes them from SIMDization: vectorization multiplies an
        actor's blocking factor by SW, which starves a feedback path primed
        with only its scalar-rate delays.
        """
        on_cycle: set[int] = set()
        for start in self.actors:
            stack = [t.dst for t in self.out_tapes(start)]
            seen: set[int] = set()
            while stack:
                node = stack.pop()
                if node == start:
                    on_cycle.add(start)
                    break
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(t.dst for t in self.out_tapes(node))
        return on_cycle

    def has_cycle(self) -> bool:
        try:
            self.topological_order()
            return False
        except GraphError:
            return True

    def ordered_actors(self) -> List[int]:
        """Topological order when acyclic; a feedback-tolerant order (back
        edges with initial tokens ignored) otherwise.  For display, code
        generation, and pass iteration — *not* for scheduling feasibility,
        which :func:`repro.schedule.steady_state.build_schedule` establishes
        by simulation on cyclic graphs."""
        try:
            return self.topological_order()
        except GraphError:
            indegree = {aid: 0 for aid in self.actors}
            for tape in self.tapes.values():
                if not tape.initial:
                    indegree[tape.dst] += 1
            ready = sorted(aid for aid, deg in indegree.items() if deg == 0)
            order: List[int] = []
            while ready:
                aid = ready.pop(0)
                order.append(aid)
                for tape in self.out_tapes(aid):
                    if tape.initial:
                        continue
                    indegree[tape.dst] -= 1
                    if indegree[tape.dst] == 0:
                        ready.append(tape.dst)
                ready.sort()
            if len(order) != len(self.actors):
                raise GraphError(
                    "cyclic graph has a cycle without initial tokens")
            return order

    def topological_order(self) -> List[int]:
        """Topological order of actor ids; raises on cycles (use
        :meth:`ordered_actors` for feedback graphs)."""
        indegree = {aid: 0 for aid in self.actors}
        for tape in self.tapes.values():
            indegree[tape.dst] += 1
        # Deterministic order: seed with lowest ids first.
        ready = sorted(aid for aid, deg in indegree.items() if deg == 0)
        order: List[int] = []
        while ready:
            aid = ready.pop(0)
            order.append(aid)
            for tape in self.out_tapes(aid):
                indegree[tape.dst] -= 1
                if indegree[tape.dst] == 0:
                    ready.append(tape.dst)
            ready.sort()
        if len(order) != len(self.actors):
            raise GraphError("stream graph contains a cycle")
        return order

    # -- rate helpers ---------------------------------------------------------
    def pop_rate(self, actor_id: int, port: int = 0) -> int:
        """Elements consumed from input ``port`` per firing (in tape items:
        one vector counts as one item on a vector tape)."""
        spec = self.actors[actor_id].spec
        if isinstance(spec, FilterSpec):
            return spec.pop
        if isinstance(spec, SplitterSpec):
            return spec.pop_per_exec
        if isinstance(spec, HSplitterSpec):
            return spec.pop_per_exec
        if isinstance(spec, JoinerSpec):
            return spec.pop_per_exec(port)
        if isinstance(spec, HJoinerSpec):
            return spec.pop_per_exec
        raise TypeError(f"unknown spec {spec!r}")

    def peek_rate(self, actor_id: int, port: int = 0) -> int:
        spec = self.actors[actor_id].spec
        if isinstance(spec, FilterSpec):
            return spec.peek
        return self.pop_rate(actor_id, port)

    def push_rate(self, actor_id: int, port: int = 0) -> int:
        """Elements produced on output ``port`` per firing (in tape items)."""
        spec = self.actors[actor_id].spec
        if isinstance(spec, FilterSpec):
            return spec.push
        if isinstance(spec, SplitterSpec):
            return spec.push_per_exec(port)
        if isinstance(spec, HSplitterSpec):
            return spec.push_per_exec
        if isinstance(spec, JoinerSpec):
            return spec.push_per_exec
        if isinstance(spec, HJoinerSpec):
            return spec.push_per_exec
        raise TypeError(f"unknown spec {spec!r}")

    def clone(self) -> "StreamGraph":
        """Deep-copy the graph structure (specs are immutable and shared).

        Actor and tape ids are preserved, so analyses performed on the
        original remain valid on the clone.
        """
        other = StreamGraph(self.name)
        other._next_actor = self._next_actor
        other._next_tape = self._next_tape
        other._names = set(self._names)
        for aid, actor in self.actors.items():
            other.actors[aid] = ActorInstance(actor.id, actor.name, actor.spec)
        for tid, tape in self.tapes.items():
            other.tapes[tid] = TapeEdge(
                tape.id, tape.src, tape.src_port, tape.dst, tape.dst_port,
                tape.data_type, tape.vector_width, tape.lane_ordered,
                tape.initial)
        return other

    # -- misc -----------------------------------------------------------------
    def filters(self) -> Iterator[ActorInstance]:
        return (a for a in self.actors.values() if a.is_filter)

    def actor_by_name(self, name: str) -> ActorInstance:
        for actor in self.actors.values():
            if actor.name == name:
                return actor
        raise KeyError(name)

    def __len__(self) -> int:
        return len(self.actors)

    def summary(self) -> str:
        """One-line-per-actor description (debugging/documentation)."""
        lines = [f"StreamGraph {self.name!r}: {len(self.actors)} actors, "
                 f"{len(self.tapes)} tapes"]
        for aid in self.ordered_actors():
            actor = self.actors[aid]
            succ = ", ".join(self.actors[s].name for s in self.successors(aid))
            lines.append(f"  {actor.name} -> [{succ}]")
        return "\n".join(lines)
