"""Built-in split/join actors.

Splitters and joiners are pure data movers: the paper (§3.1) excludes them
from single-actor and vertical SIMDization and replaces them with
*horizontal* variants (HSplitter / HJoiner, §3.3) when the split-join they
bound is horizontally vectorized.  They are executed natively by the runtime
rather than through the work-function interpreter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from ..ir.types import FLOAT, Scalar


class SplitKind(enum.Enum):
    DUPLICATE = "duplicate"
    ROUNDROBIN = "roundrobin"


@dataclass(frozen=True)
class SplitterSpec:
    """Distributes an input tape across ``len(weights)`` output tapes.

    * ``DUPLICATE``: every popped element is copied to all outputs
      (weights are all 1 and ignored).
    * ``ROUNDROBIN``: per execution, ``weights[i]`` consecutive elements go
      to output ``i``; total pop per execution is ``sum(weights)``.
    """

    kind: SplitKind
    weights: Tuple[int, ...]
    data_type: Scalar = FLOAT
    name: str = "splitter"

    @property
    def pop_per_exec(self) -> int:
        if self.kind is SplitKind.DUPLICATE:
            return 1
        return sum(self.weights)

    def push_per_exec(self, port: int) -> int:
        if self.kind is SplitKind.DUPLICATE:
            return 1
        return self.weights[port]

    @property
    def fanout(self) -> int:
        return len(self.weights)


@dataclass(frozen=True)
class JoinerSpec:
    """Round-robin merges ``len(weights)`` input tapes into one output.

    Per execution, ``weights[i]`` consecutive elements are taken from input
    ``i``; total push per execution is ``sum(weights)``.
    """

    weights: Tuple[int, ...]
    data_type: Scalar = FLOAT
    name: str = "joiner"

    def pop_per_exec(self, port: int) -> int:
        return self.weights[port]

    @property
    def push_per_exec(self) -> int:
        return sum(self.weights)

    @property
    def fanin(self) -> int:
        return len(self.weights)


@dataclass(frozen=True)
class HSplitterSpec:
    """Horizontal splitter (§3.3): reads ``width * weight`` scalars per
    execution and emits ``weight`` vectors of ``width`` lanes, lane ``k``
    holding the element destined for the k-th original child.

    For a DUPLICATE parent the packing degenerates to a splat.
    """

    kind: SplitKind
    weight: int
    width: int
    data_type: Scalar = FLOAT
    name: str = "hsplitter"

    @property
    def pop_per_exec(self) -> int:
        if self.kind is SplitKind.DUPLICATE:
            return self.weight
        return self.weight * self.width

    @property
    def push_per_exec(self) -> int:
        """Vector items pushed per execution."""
        return self.weight


@dataclass(frozen=True)
class HJoinerSpec:
    """Horizontal joiner (§3.3): reads ``weight`` vectors per execution and
    unpacks them to ``width * weight`` scalars in round-robin order."""

    weight: int
    width: int
    data_type: Scalar = FLOAT
    name: str = "hjoiner"

    @property
    def pop_per_exec(self) -> int:
        """Vector items popped per execution."""
        return self.weight

    @property
    def push_per_exec(self) -> int:
        return self.weight * self.width


BuiltinSpec = SplitterSpec | JoinerSpec | HSplitterSpec | HJoinerSpec


def roundrobin_splitter(weights: Tuple[int, ...] | list[int],
                        data_type: Scalar = FLOAT) -> SplitterSpec:
    return SplitterSpec(SplitKind.ROUNDROBIN, tuple(weights), data_type)


def duplicate_splitter(fanout: int, data_type: Scalar = FLOAT) -> SplitterSpec:
    return SplitterSpec(SplitKind.DUPLICATE, (1,) * fanout, data_type)


def roundrobin_joiner(weights: Tuple[int, ...] | list[int],
                      data_type: Scalar = FLOAT) -> JoinerSpec:
    return JoinerSpec(tuple(weights), data_type)
