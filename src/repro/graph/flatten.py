"""Flattening of the hierarchical program tree into a :class:`StreamGraph`."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .builtins import (
    duplicate_splitter,
    roundrobin_joiner,
    roundrobin_splitter,
)
from .structure import (
    FeedbackLoop,
    FilterNode,
    Pipeline,
    Program,
    SplitJoin,
    StreamNode,
)
from .stream_graph import ActorInstance, GraphError, StreamGraph


@dataclass(frozen=True)
class _Port:
    """An (actor id, port index) endpoint produced while flattening."""

    actor: int
    port: int = 0


def flatten(program: Program) -> StreamGraph:
    """Flatten ``program`` into a fresh flat graph.

    Returns the graph; the program's single entry must be a source filter
    (``pop == 0``) and dangling outputs are allowed only for the final actor
    (the executor collects them).
    """
    graph = StreamGraph(program.name)
    inlet, outlet = _flatten_node(graph, program.top)
    if inlet is not None:
        raise GraphError(
            f"{program.name}: top-level program consumes external input; "
            "wrap it with a source filter (pop == 0)")
    # ``outlet`` may be None (sink filter) or a dangling port the executor
    # attaches an output-collection tape to.
    return graph


def _flatten_node(graph: StreamGraph, node: StreamNode
                  ) -> Tuple[Optional[_Port], Optional[_Port]]:
    """Recursively instantiate ``node``.

    Returns ``(input_port, output_port)`` where either may be ``None`` when
    the subgraph does not consume / produce data (source / sink).
    """
    if isinstance(node, FilterNode):
        actor = graph.add_actor(node.spec)
        inlet = _Port(actor.id) if node.spec.pop > 0 or node.spec.peek > 0 else None
        outlet = _Port(actor.id) if node.spec.push > 0 else None
        return inlet, outlet

    if isinstance(node, Pipeline):
        first_inlet: Optional[_Port] = None
        prev_outlet: Optional[_Port] = None
        for index, child in enumerate(node.children):
            inlet, outlet = _flatten_node(graph, child)
            if index == 0:
                first_inlet = inlet
            else:
                if prev_outlet is None or inlet is None:
                    raise GraphError(
                        "pipeline stage boundary has no data flow: "
                        f"stage {index} of a pipeline")
                _connect(graph, prev_outlet, inlet)
            prev_outlet = outlet
        return first_inlet, prev_outlet

    if isinstance(node, SplitJoin):
        splitter = graph.add_actor(node.splitter)
        joiner = graph.add_actor(node.joiner)
        for port, child in enumerate(node.children):
            inlet, outlet = _flatten_node(graph, child)
            if inlet is None or outlet is None:
                raise GraphError("split-join branches must consume and produce")
            _connect(graph, _Port(splitter.id, port), inlet)
            _connect(graph, outlet, _Port(joiner.id, port))
        return _Port(splitter.id), _Port(joiner.id)

    if isinstance(node, FeedbackLoop):
        joiner = graph.add_actor(
            roundrobin_joiner(list(node.join_weights)), name="fb_joiner")
        split_spec = (duplicate_splitter(2) if node.duplicate_split
                      else roundrobin_splitter(list(node.split_weights)))
        splitter = graph.add_actor(split_spec, name="fb_splitter")
        body_in, body_out = _flatten_node(graph, node.body)
        loop_in, loop_out = _flatten_node(graph, node.loop)
        if None in (body_in, body_out, loop_in, loop_out):
            raise GraphError("feedback body and loop must consume and produce")
        _connect(graph, _Port(joiner.id), body_in)
        _connect(graph, body_out, _Port(splitter.id))
        _connect(graph, _Port(splitter.id, 1), loop_in)
        # The feedback edge back into joiner port 1 carries the enqueued
        # delay items that break the scheduling cycle.
        loop_actor = graph.actors[loop_out.actor]
        feedback = graph.add_tape(
            loop_out.actor, joiner.id, src_port=loop_out.port, dst_port=1,
            data_type=getattr(loop_actor.spec, "out_type",
                              loop_actor.spec.data_type))
        feedback.initial = tuple(node.enqueue)
        return _Port(joiner.id, 0), _Port(splitter.id, 0)

    raise TypeError(f"unknown stream node {node!r}")


def _connect(graph: StreamGraph, src: _Port, dst: _Port) -> None:
    src_actor = graph.actors[src.actor]
    data_type = (src_actor.spec.out_type
                 if hasattr(src_actor.spec, "out_type")
                 else src_actor.spec.data_type)
    graph.add_tape(src.actor, dst.actor, src_port=src.port,
                   dst_port=dst.port, data_type=data_type)
