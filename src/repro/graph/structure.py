"""Hierarchical stream-program structure (StreamIt's composition forms).

Programs are trees of :class:`FilterNode`, :class:`Pipeline` (sequential
composition) and :class:`SplitJoin` (parallel composition).  The tree is
flattened into a :class:`~repro.graph.stream_graph.StreamGraph` before
scheduling and SIMDization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple  # noqa: F401 (Sequence used in feedbackloop)

from .actor import FilterSpec
from .builtins import JoinerSpec, SplitterSpec


class StreamNode:
    """Base class for hierarchy nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class FilterNode(StreamNode):
    spec: FilterSpec

    @property
    def name(self) -> str:
        return self.spec.name


@dataclass(frozen=True)
class Pipeline(StreamNode):
    children: Tuple[StreamNode, ...]

    def __post_init__(self) -> None:
        if not self.children:
            raise ValueError("pipeline must have at least one child")


@dataclass(frozen=True)
class SplitJoin(StreamNode):
    splitter: SplitterSpec
    children: Tuple[StreamNode, ...]
    joiner: JoinerSpec

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise ValueError("split-join needs at least two branches")
        if self.splitter.fanout != len(self.children):
            raise ValueError("splitter weight count != number of branches")
        if self.joiner.fanin != len(self.children):
            raise ValueError("joiner weight count != number of branches")


@dataclass(frozen=True)
class FeedbackLoop(StreamNode):
    """StreamIt's cyclic composition.

    External input and the feedback stream merge at a 2-way round-robin
    joiner (weights ``join_weights``: input, feedback), flow through
    ``body``, and split at a 2-way splitter (weights ``split_weights``:
    output, feedback); the feedback path runs through ``loop`` back to the
    joiner.  ``enqueue`` pre-loads the feedback channel with delay items —
    without them a cyclic SDF graph deadlocks.
    """

    body: StreamNode
    loop: StreamNode
    join_weights: Tuple[int, int]
    split_weights: Tuple[int, int]
    enqueue: Tuple[float, ...]
    #: duplicate split: every body output goes to both the external output
    #: and the feedback path (StreamIt's ``split duplicate`` — the common
    #: IIR/echo form); round-robin otherwise.
    duplicate_split: bool = False

    def __post_init__(self) -> None:
        if len(self.join_weights) != 2 or len(self.split_weights) != 2:
            raise ValueError("feedback loop join/split take exactly 2 weights")
        if not self.enqueue:
            raise ValueError(
                "feedback loop needs enqueued initial items (delays)")


def feedbackloop(body: "StreamNode | FilterSpec",
                 loop: "StreamNode | FilterSpec",
                 *,
                 join_weights: Tuple[int, int],
                 split_weights: Tuple[int, int] = (1, 1),
                 duplicate_split: bool = False,
                 enqueue: Sequence[float]) -> FeedbackLoop:
    return FeedbackLoop(_as_node(body), _as_node(loop),
                        tuple(join_weights), tuple(split_weights),
                        tuple(enqueue), duplicate_split)


def _as_node(item: "StreamNode | FilterSpec") -> StreamNode:
    if isinstance(item, StreamNode):
        return item
    if isinstance(item, FilterSpec):
        return FilterNode(item)
    raise TypeError(f"not a stream node: {item!r}")


def pipeline(*children: "StreamNode | FilterSpec") -> Pipeline:
    """Sequential composition; accepts specs or nodes."""
    return Pipeline(tuple(_as_node(c) for c in children))


def splitjoin(splitter: SplitterSpec,
              children: Sequence["StreamNode | FilterSpec"],
              joiner: JoinerSpec) -> SplitJoin:
    """Parallel composition between ``splitter`` and ``joiner``."""
    return SplitJoin(splitter, tuple(_as_node(c) for c in children), joiner)


@dataclass(frozen=True)
class Program:
    """A complete stream program: a name plus the top-level node.

    The first filter in topological order must be a source (``pop == 0``)
    and the last a regular filter; the executor collects whatever the final
    filter pushes as the program output.
    """

    name: str
    top: StreamNode
