"""Graphviz DOT export of stream graphs.

Renders the Figure-2-style pictures: one box per actor annotated with its
rates, shaded for stateful actors, double-bordered for SIMDized ones;
edges labelled with per-firing item counts, vector tapes drawn bold,
feedback tapes dashed with their initial-token count.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir import expr as E
from ..ir import stmt as S
from ..ir.visitors import iter_all_exprs, iter_stmts
from .actor import FilterSpec
from .builtins import HJoinerSpec, HSplitterSpec, JoinerSpec, SplitterSpec
from .stream_graph import StreamGraph


def _is_simdized(spec: FilterSpec) -> bool:
    for expr in iter_all_exprs(spec.work_body):
        if isinstance(expr, (E.GatherPop, E.GatherPeek, E.VPop, E.VPeek)):
            return True
    for stmt in iter_stmts(spec.work_body):
        if isinstance(stmt, (S.ScatterPush, S.VPush)):
            return True
    return False


def _actor_label(graph: StreamGraph, actor_id: int) -> str:
    actor = graph.actors[actor_id]
    spec = actor.spec
    if isinstance(spec, FilterSpec):
        rates = f"peek={spec.peek}, pop={spec.pop}, push={spec.push}"
        return f"{actor.name}\\n{rates}"
    if isinstance(spec, SplitterSpec):
        weights = ", ".join(str(w) for w in spec.weights)
        return f"{actor.name}\\n{spec.kind.value}({weights})"
    if isinstance(spec, JoinerSpec):
        weights = ", ".join(str(w) for w in spec.weights)
        return f"{actor.name}\\nroundrobin({weights})"
    if isinstance(spec, (HSplitterSpec, HJoinerSpec)):
        return f"{actor.name}\\nwidth={spec.width}, weight={spec.weight}"
    return actor.name


def to_dot(graph: StreamGraph,
           reps: Optional[Dict[int, int]] = None) -> str:
    """Render ``graph`` as a DOT digraph string."""
    lines = [f'digraph "{graph.name}" {{',
             "  rankdir=TB;",
             '  node [shape=box, fontname="Helvetica"];']
    from ..simd.analysis import is_stateful

    for actor_id, actor in sorted(graph.actors.items()):
        label = _actor_label(graph, actor_id)
        if reps is not None and actor_id in reps:
            label += f"\\nx{reps[actor_id]}"
        attrs = [f'label="{label}"']
        spec = actor.spec
        if isinstance(spec, FilterSpec):
            if is_stateful(spec):
                attrs.append('style=filled, fillcolor="#d0d0d0"')
            if _is_simdized(spec):
                attrs.append("peripheries=2")
        elif isinstance(spec, (HSplitterSpec, HJoinerSpec)):
            attrs.append('style=filled, fillcolor="#cfe8ff"')
            attrs.append("peripheries=2")
        else:
            attrs.append("shape=trapezium"
                         if actor.is_splitter else "shape=invtrapezium")
        lines.append(f"  n{actor_id} [{', '.join(attrs)}];")

    for tape in sorted(graph.tapes.values(), key=lambda t: t.id):
        attrs = []
        label = str(graph.push_rate(tape.src, tape.src_port))
        if tape.is_vector:
            attrs.append("penwidth=2.5")
            label += f" x<{tape.vector_width}>"
        if tape.lane_ordered:
            attrs.append('color="#b06000"')
            label += " (lane-ordered)"
        if tape.initial:
            attrs.append("style=dashed")
            label += f" [{len(tape.initial)} delay]"
        attrs.append(f'label="{label}"')
        lines.append(f"  n{tape.src} -> n{tape.dst} [{', '.join(attrs)}];")
    lines.append("}")
    return "\n".join(lines)
