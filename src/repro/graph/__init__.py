"""Stream graphs: actor specs, hierarchy, flattening, validation."""

from .actor import FilterSpec, StateVar, bind_params
from .builtins import (
    HJoinerSpec,
    HSplitterSpec,
    JoinerSpec,
    SplitKind,
    SplitterSpec,
    duplicate_splitter,
    roundrobin_joiner,
    roundrobin_splitter,
)
from .dot import to_dot
from .flatten import flatten
from .stream_graph import ActorInstance, GraphError, StreamGraph, TapeEdge
from .structure import (
    FeedbackLoop,
    FilterNode,
    Pipeline,
    Program,
    SplitJoin,
    StreamNode,
    feedbackloop,
    pipeline,
    splitjoin,
)
from .validate import collect_problems, count_tape_accesses, validate

__all__ = [
    "FilterSpec", "StateVar", "bind_params",
    "HJoinerSpec", "HSplitterSpec", "JoinerSpec", "SplitKind", "SplitterSpec",
    "duplicate_splitter", "roundrobin_joiner", "roundrobin_splitter",
    "flatten", "to_dot",
    "ActorInstance", "GraphError", "StreamGraph", "TapeEdge",
    "FeedbackLoop", "FilterNode", "Pipeline", "Program", "SplitJoin",
    "StreamNode", "feedbackloop", "pipeline", "splitjoin",
    "collect_problems", "count_tape_accesses", "validate",
]
