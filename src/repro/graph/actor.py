"""Actor (filter) specifications.

A :class:`FilterSpec` is the StreamIt *filter*: declared I/O rates
(``peek``/``pop``/``push``), optional persistent state variables, an ``init``
body run once, and a ``work`` body run every firing.  Specs are immutable
value objects; the same spec may be instantiated many times in a graph
(that is what makes horizontal SIMDization's isomorphic sets common).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Tuple

from ..ir import expr as ir_expr
from ..ir.stmt import Body
from ..ir.types import FLOAT, IRType, Scalar
from ..ir.visitors import rewrite_body_exprs


@dataclass(frozen=True)
class StateVar:
    """A persistent per-instance variable (scalar if ``size == 0``).

    ``type`` becomes a :class:`~repro.ir.types.Vector` after horizontal
    SIMDization (state is kept per lane, §3.3).  ``init`` may be a scalar
    (splatted), a tuple of ``size`` values for arrays, or nested tuples for
    per-lane initialisation of vector state.
    """

    name: str
    type: IRType = FLOAT
    size: int = 0
    init: "float | Tuple" = 0.0

    @property
    def is_array(self) -> bool:
        return self.size > 0


@dataclass(frozen=True)
class FilterSpec:
    """An actor definition: rates, state, and init/work bodies."""

    name: str
    pop: int
    push: int
    peek: int = 0
    data_type: Scalar = FLOAT
    output_type: Optional[Scalar] = None
    state: Tuple[StateVar, ...] = ()
    init_body: Body = ()
    work_body: Body = ()

    def __post_init__(self) -> None:
        if self.pop < 0 or self.push < 0:
            raise ValueError(f"{self.name}: rates must be non-negative")
        # StreamIt convention: peek is at least pop (a filter can always
        # inspect what it is about to consume).
        if self.peek < self.pop:
            object.__setattr__(self, "peek", self.pop)

    @property
    def out_type(self) -> Scalar:
        return self.output_type if self.output_type is not None else self.data_type

    @property
    def is_source(self) -> bool:
        return self.pop == 0

    @property
    def is_sink(self) -> bool:
        return self.push == 0

    @property
    def is_peeking(self) -> bool:
        """True when the filter inspects more than it consumes."""
        return self.peek > self.pop

    def with_name(self, name: str) -> "FilterSpec":
        return replace(self, name=name)


def bind_params(spec: FilterSpec, params: Mapping[str, float | int]) -> FilterSpec:
    """Substitute :class:`~repro.ir.expr.Param` placeholders with literals.

    Integer values become ``IntConst`` and floats ``FloatConst``; unknown
    parameter names raise so typos do not silently survive to runtime.
    """
    seen: set[str] = set()

    def substitute(e: ir_expr.Expr) -> ir_expr.Expr:
        if isinstance(e, ir_expr.Param):
            if e.name not in params:
                raise KeyError(f"{spec.name}: unbound parameter {e.name!r}")
            seen.add(e.name)
            value = params[e.name]
            if isinstance(value, bool):
                return ir_expr.BoolConst(value)
            if isinstance(value, int):
                return ir_expr.IntConst(value)
            return ir_expr.FloatConst(float(value))
        return e

    new_init = rewrite_body_exprs(spec.init_body, substitute)
    new_work = rewrite_body_exprs(spec.work_body, substitute)
    unused = set(params) - seen
    if unused:
        raise KeyError(f"{spec.name}: unknown parameters {sorted(unused)}")
    return replace(spec, init_body=new_init, work_body=new_work)
