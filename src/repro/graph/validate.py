"""Static validation of flat stream graphs.

Checks run after flattening and after every SIMDization pass; a graph that
passes validation can be scheduled and executed.
"""

from __future__ import annotations

from typing import List

from ..ir import expr as E
from ..ir import stmt as S
from ..ir.visitors import iter_all_exprs, iter_stmts
from .actor import FilterSpec
from .builtins import HJoinerSpec, HSplitterSpec, JoinerSpec, SplitterSpec
from .stream_graph import GraphError, StreamGraph


def validate(graph: StreamGraph) -> None:
    """Raise :class:`GraphError` on the first structural problem found."""
    problems = collect_problems(graph)
    if problems:
        raise GraphError("; ".join(problems))


def invariant_problems(graph: StreamGraph) -> List[str]:
    """Full mid-compilation invariant check (structure + rates + tapes).

    The superset of :func:`collect_problems` that the pass-invariant tests
    pin after every Algorithm-1 pass, promoted here so production code can
    run it too (``compile_graph(..., verify_each_pass=True)``):

    * the graph validates structurally (ports, rates, body/rate agreement);
    * it admits a balanced repetition vector with positive repetitions
      covering every actor;
    * every tape references live actors (no dangling endpoints).
    """
    # Tape liveness first: every later analysis (ports, rates, scheduling)
    # dereferences tape endpoints and would crash on a dangling one.
    dangling = [f"tape {tape.id} references a removed actor"
                for tape in graph.tapes.values()
                if tape.src not in graph.actors
                or tape.dst not in graph.actors]
    if dangling:
        return dangling
    problems = collect_problems(graph)
    # Rate checks import lazily: ``repro.schedule`` depends on this package.
    from ..schedule.rates import RateError, check_balanced, repetition_vector
    try:
        reps = repetition_vector(graph)
        check_balanced(graph, reps)
    except RateError as exc:
        problems.append(f"inconsistent rates: {exc}")
    else:
        if set(reps) != set(graph.actors):
            problems.append("repetition vector does not cover all actors")
        bad = {aid: rep for aid, rep in reps.items() if rep < 1}
        if bad:
            problems.append(f"non-positive repetitions: {bad}")
    return problems


def verify_invariants(graph: StreamGraph, context: str = "graph") -> None:
    """Raise :class:`GraphError` when :func:`invariant_problems` finds any,
    prefixing ``context`` (e.g. the pass name that just ran)."""
    problems = invariant_problems(graph)
    if problems:
        raise GraphError(f"{context}: " + "; ".join(problems))


def collect_problems(graph: StreamGraph) -> List[str]:
    problems: List[str] = []
    problems.extend(_check_ports(graph))
    problems.extend(_check_rates(graph))
    problems.extend(_check_bodies(graph))
    try:
        # Tolerates feedback cycles whose back edges carry initial tokens;
        # complains about token-free cycles (they deadlock).
        graph.ordered_actors()
    except GraphError as exc:
        problems.append(str(exc))
    return problems


def _check_ports(graph: StreamGraph) -> List[str]:
    problems: List[str] = []
    for actor in graph.actors.values():
        ins = graph.in_tapes(actor.id)
        outs = graph.out_tapes(actor.id)
        spec = actor.spec
        if isinstance(spec, FilterSpec):
            if spec.pop > 0 and len(ins) != 1:
                problems.append(f"{actor.name}: consumes but has {len(ins)} inputs")
            if spec.pop == 0 and ins:
                problems.append(f"{actor.name}: source with inputs")
            if len(outs) > 1:
                problems.append(f"{actor.name}: filter with multiple outputs")
        elif isinstance(spec, (SplitterSpec, HSplitterSpec)):
            if len(ins) != 1:
                problems.append(f"{actor.name}: splitter needs exactly 1 input")
            expected = spec.fanout if isinstance(spec, SplitterSpec) else 1
            if len(outs) != expected:
                problems.append(
                    f"{actor.name}: splitter has {len(outs)} outputs, "
                    f"expected {expected}")
            ports = sorted(t.src_port for t in outs)
            if ports != list(range(len(outs))):
                problems.append(f"{actor.name}: non-contiguous output ports")
        elif isinstance(spec, (JoinerSpec, HJoinerSpec)):
            expected = spec.fanin if isinstance(spec, JoinerSpec) else 1
            if len(ins) != expected:
                problems.append(
                    f"{actor.name}: joiner has {len(ins)} inputs, "
                    f"expected {expected}")
            if len(outs) > 1:
                problems.append(f"{actor.name}: joiner with multiple outputs")
            ports = sorted(t.dst_port for t in ins)
            if ports != list(range(len(ins))):
                problems.append(f"{actor.name}: non-contiguous input ports")
    return problems


def _check_rates(graph: StreamGraph) -> List[str]:
    problems: List[str] = []
    for actor in graph.actors.values():
        spec = actor.spec
        if isinstance(spec, FilterSpec) and spec.peek < spec.pop:
            problems.append(f"{actor.name}: peek < pop")
    return problems


def _check_bodies(graph: StreamGraph) -> List[str]:
    """Verify static tape-access counts in work bodies match declared rates.

    Counting unrolls constant-bound loops; filters with data-dependent tape
    access counts are rejected (SDF requires static rates).
    """
    problems: List[str] = []
    for actor in graph.actors.values():
        spec = actor.spec
        if not isinstance(spec, FilterSpec):
            continue
        try:
            pops, pushes = count_tape_accesses(spec.work_body)
        except ValueError as exc:
            problems.append(f"{actor.name}: {exc}")
            continue
        # Vectorized bodies access tapes in vector units; the rates of a
        # vectorized spec are stored in tape items so they still match.
        if pops != spec.pop:
            problems.append(
                f"{actor.name}: work body pops {pops}, declared {spec.pop}")
        if pushes != spec.push:
            problems.append(
                f"{actor.name}: work body pushes {pushes}, declared {spec.push}")
    return problems


def count_tape_accesses(body: S.Body) -> tuple[int, int]:
    """Return (pop count, push count) per firing, in tape items.

    Raises ``ValueError`` when a loop bound is not a compile-time constant or
    tape accesses appear under a data-dependent ``if``.
    """
    return _count_body(body)


def _count_body(body: S.Body) -> tuple[int, int]:
    pops = 0
    pushes = 0
    for stmt in body:
        if isinstance(stmt, S.For):
            inner_pops, inner_pushes = _count_body(stmt.body)
            if inner_pops == 0 and inner_pushes == 0:
                continue
            trip = _const_trip_count(stmt)
            pops += inner_pops * trip
            pushes += inner_pushes * trip
        elif isinstance(stmt, S.If):
            then_counts = _count_body(stmt.then_body)
            else_counts = _count_body(stmt.else_body)
            if then_counts != else_counts:
                raise ValueError("tape accesses differ across if branches")
            pops += then_counts[0]
            pushes += then_counts[1]
        elif isinstance(stmt, S.AdvanceReader):
            pops += stmt.count
        elif isinstance(stmt, S.AdvanceWriter):
            pushes += stmt.count
        else:
            pops += _count_stmt_pops(stmt)
            pushes += _count_stmt_pushes(stmt)
    return pops, pushes


def _count_stmt_pops(stmt: S.Stmt) -> int:
    count = 0
    for expr in iter_all_exprs((stmt,)):
        if isinstance(expr, (E.Pop, E.VPop)):
            count += 1
        elif isinstance(expr, E.GatherPop):
            count += expr.advance
    return count


def _count_stmt_pushes(stmt: S.Stmt) -> int:
    if isinstance(stmt, (S.Push, S.VPush)):
        return 1
    if isinstance(stmt, S.ScatterPush):
        return stmt.advance
    return 0


def _const_trip_count(stmt: S.For) -> int:
    if not isinstance(stmt.start, E.IntConst) or not isinstance(stmt.end, E.IntConst):
        raise ValueError(
            f"loop over {stmt.var!r} containing tape accesses has "
            "non-constant bounds")
    return max(0, stmt.end.value - stmt.start.value)
