"""Human-readable views over captured traces (``macross trace``).

Renders the per-pass table of an Algorithm-1 compile span, the top-N
hottest actors of an execution, and the kernel-cache statistics line —
the textual counterpart of loading the Chrome trace in a viewer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Mapping, Optional, Sequence

from .tracer import TraceEvent, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from ..graph.stream_graph import StreamGraph
    from ..runtime.executor import ExecutionResult
    from ..simd.machine import MachineDescription

__all__ = ["pass_rows", "pass_table", "hottest_actors_table",
           "kernel_cache_summary", "pass_trail", "serve_table"]

#: Span category used by the Algorithm-1 driver for its passes.
PASS_CATEGORY = "pass"
#: Span category used by the runtime executor for its phases.
RUNTIME_CATEGORY = "runtime"


def _span_range(value_before, value_after) -> str:
    if value_before is None or value_after is None:
        return "?"
    if value_before == value_after:
        return str(value_before)
    return f"{value_before}→{value_after}"


def pass_rows(source) -> List[Sequence[object]]:
    """Table rows (pass, ms, actors, tapes, detail) for every pass span."""
    tracer = source if isinstance(source, Tracer) else None
    if tracer is not None:
        spans = tracer.spans(PASS_CATEGORY)
    else:
        spans = sorted((e for e in source
                        if e.ph == "X" and e.cat == PASS_CATEGORY),
                       key=lambda e: e.ts)
    rows: List[Sequence[object]] = []
    for span in spans:
        args = span.args
        rows.append((
            span.name,
            f"{span.dur / 1000.0:.3f}",
            _span_range(args.get("actors_before"), args.get("actors_after")),
            _span_range(args.get("tapes_before"), args.get("tapes_after")),
            str(args.get("detail", "")),
        ))
    return rows


def pass_table(source) -> str:
    """Per-pass table of an Algorithm-1 compile trace."""
    from ..experiments.tables import format_table
    rows = pass_rows(source)
    if not rows:
        return "(no pass spans captured)"
    return format_table(["pass", "ms", "actors", "tapes", "detail"], rows)


def hottest_actors_table(graph: "StreamGraph", result: "ExecutionResult",
                         machine: "MachineDescription", top: int = 10) -> str:
    """Top-N actors by modeled steady-state cycles, with firing counts."""
    from ..experiments.tables import format_table
    from ..perf.report import classify_cycles

    counters = result.steady_counters
    per_actor = counters.cycles_by_actor(machine)
    total = sum(per_actor.values()) or 1.0
    ranked = sorted(per_actor.items(), key=lambda kv: -kv[1])
    if top:
        ranked = ranked[:top]
    rows: List[Sequence[object]] = []
    for actor_id, cycles in ranked:
        bag = counters.by_actor[actor_id]
        buckets = classify_cycles(bag, machine)
        dominant = max(buckets.items(), key=lambda kv: kv[1])
        name = (graph.actors[actor_id].name if actor_id in graph.actors
                else f"actor{actor_id}")
        rows.append((name, bag["fire"], cycles,
                     f"{100 * cycles / total:.1f}%", dominant[0]))
    return format_table(
        ["actor", "firings", "cycles", "share", "dominant class"], rows)


def kernel_cache_summary(stats: Optional[Mapping[str, int]]) -> str:
    """One-line kernel-cache statistics (compiled backend only)."""
    if not stats:
        return "kernel cache: n/a (interp backend)"
    return ("kernel cache: {lookups} lookups, {hits} hits, "
            "{misses} misses ({compiled} compiled), {evictions} evicted, "
            "{size} resident".format(
                lookups=stats.get("lookups", 0),
                hits=stats.get("hits", 0),
                misses=stats.get("misses", stats.get("compiled", 0)),
                compiled=stats.get("compiled", 0),
                evictions=stats.get("evictions", 0),
                size=stats.get("size", 0)))


def serve_table(stats: Sequence[Mapping[str, object]]) -> str:
    """Per-worker blame table for a serving pool.

    ``stats`` is the list of :meth:`repro.serve.pool.WorkerStats.snapshot`
    dicts (``ServePool.stats_snapshot()`` / ``shutdown()``) — requests,
    rejections, errors, supervision activity (lane restarts, requeued
    sessions), queue high-water, busy time, and kernel-/graph-cache
    behaviour per worker lane, the gem5 stream-engine "per-lane
    statistics" idiom rendered as text.
    """
    from ..experiments.tables import format_table
    rows: List[Sequence[object]] = []
    for entry in stats:
        cache = entry.get("cache") or {}
        rows.append((
            f"w{entry.get('worker')}",
            entry.get("submitted", 0),
            entry.get("completed", 0),
            entry.get("rejected", 0),
            entry.get("errors", 0),
            entry.get("restarts", 0),
            entry.get("requeued", 0),
            entry.get("max_queue_depth", 0),
            f"{float(entry.get('busy_s', 0.0)) * 1e3:.1f}",
            f"{cache.get('hits', 0)}/{cache.get('lookups', 0)}",
            entry.get("graph_cache_hits", 0),
        ))
    return format_table(
        ["worker", "submitted", "completed", "rejected", "errors",
         "restarts", "requeued", "max depth", "busy ms", "kcache hit",
         "gcache hit"], rows)


def pass_trail(source) -> tuple:
    """Compact '(pass detail)' trail of a compile trace — what the fuzz
    harness attaches to a divergence so a miscompile names the passes
    that produced it."""
    trail = []
    for row in pass_rows(source):
        name, _ms, _actors, _tapes, detail = row
        trail.append(f"{name}[{detail}]" if detail else str(name))
    return tuple(trail)
