"""Observability: pass-level tracing and runtime profiling hooks.

``repro.obs`` is the measurement substrate under every performance PR:
the Algorithm-1 driver (:func:`repro.simd.pipeline.compile_graph`), the
runtime executor (:func:`repro.runtime.executor.execute`), and the fuzz
harness all accept an optional :class:`Tracer` and record spans/events
into it; exporters turn a capture into a Chrome-loadable trace or JSON
lines; :mod:`repro.obs.report` renders per-pass and hottest-actor tables
(``macross trace``).

Everything is zero-dependency and free when no tracer is supplied.
"""

from .export import (chrome_trace, events_of, read_jsonl, to_jsonl,
                     write_chrome, write_jsonl, write_trace)
from .report import (hottest_actors_table, kernel_cache_summary, pass_rows,
                     pass_table, pass_trail, serve_table)
from .tracer import NULL_TRACER, Span, TraceEvent, Tracer, ensure_tracer

__all__ = [
    "Tracer", "Span", "TraceEvent", "NULL_TRACER", "ensure_tracer",
    "chrome_trace", "events_of", "read_jsonl", "to_jsonl",
    "write_chrome", "write_jsonl", "write_trace",
    "pass_rows", "pass_table", "pass_trail",
    "hottest_actors_table", "kernel_cache_summary", "serve_table",
]
