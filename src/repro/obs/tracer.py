"""Zero-dependency span/event tracer for the MacroSS pipeline.

The tracer records two kinds of entries:

* **spans** — timed regions opened with :meth:`Tracer.span` (a context
  manager).  Spans carry a start timestamp, a duration, and an ``args``
  dict the body can enrich while the span is open (pass decisions, graph
  stats, counters).  Spans close LIFO per thread, so on any one thread
  two spans are either disjoint or properly nested — exactly the
  containment the Chrome ``trace_event`` viewer expects of complete
  (``"X"``) events.
* **instants** — point-in-time events recorded with :meth:`Tracer.event`
  (divergences, cache evictions, findings).

Design constraints (this module is on the hot path of every compile and
every execution):

* **no dependencies** — stdlib only (``time``, ``threading``);
* **thread-safe** — appends are guarded by a lock; timestamps come from
  one shared monotonic epoch so spans from different threads interleave
  correctly;
* **free when disabled** — a disabled tracer (or the shared
  :data:`NULL_TRACER`) returns a singleton no-op span and records
  nothing; instrumented code can call it unconditionally.

Exporters (Chrome ``trace_event`` JSON and JSON-lines) live in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["TraceEvent", "Span", "Tracer", "NULL_TRACER", "ensure_tracer"]

#: Chrome trace_event phase codes used by this tracer.
PHASE_SPAN = "X"      # complete event (ts + dur)
PHASE_INSTANT = "i"   # instant event


@dataclass(frozen=True)
class TraceEvent:
    """One finished trace record (immutable once recorded)."""

    name: str
    cat: str
    ph: str                    # PHASE_SPAN or PHASE_INSTANT
    ts: float                  # microseconds since the tracer's epoch
    dur: float                 # microseconds (0.0 for instants)
    tid: int                   # OS thread ident that recorded the event
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.ts + self.dur


class Span:
    """An open span; closes (and records itself) on ``__exit__``.

    The body may attach arguments while the span is open::

        with tracer.span("tape.optimize", cat="pass") as sp:
            strategies = optimize_tapes(work, machine)
            sp.add(strategies=len(strategies))
    """

    __slots__ = ("_tracer", "name", "cat", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._start = 0.0

    def add(self, **kwargs: Any) -> "Span":
        """Attach (or overwrite) argument values on the open span."""
        self.args.update(kwargs)
        return self

    def __setitem__(self, key: str, value: Any) -> None:
        self.args[key] = value

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self._tracer._record_span(self, self._start, time.perf_counter())
        return False


class _NullSpan:
    """Shared no-op span: accepts the full :class:`Span` API, keeps nothing.

    Stateless, hence safe to share across threads and reenter."""

    __slots__ = ()

    #: args sink shared by every user; intentionally never read.
    args: Dict[str, Any] = {}

    def add(self, **kwargs: Any) -> "_NullSpan":
        return self

    def __setitem__(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects :class:`TraceEvent` records; thread-safe; no-op when
    ``enabled=False``."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[TraceEvent] = []
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()

    # -- recording ----------------------------------------------------------
    def span(self, name: str, cat: str = "", **args: Any):
        """Open a timed span (use as a context manager)."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, cat, dict(args))

    def event(self, name: str, cat: str = "", **args: Any) -> None:
        """Record an instant event."""
        if not self.enabled:
            return
        now = (time.perf_counter() - self._epoch) * 1e6
        record = TraceEvent(name=name, cat=cat, ph=PHASE_INSTANT, ts=now,
                            dur=0.0, tid=threading.get_ident(), args=dict(args))
        with self._lock:
            self._events.append(record)

    def _record_span(self, span: Span, start: float, end: float) -> None:
        record = TraceEvent(
            name=span.name, cat=span.cat, ph=PHASE_SPAN,
            ts=(start - self._epoch) * 1e6,
            dur=(end - start) * 1e6,
            tid=threading.get_ident(), args=span.args)
        with self._lock:
            self._events.append(record)

    # -- inspection ---------------------------------------------------------
    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        """Snapshot of everything recorded so far (record order)."""
        with self._lock:
            return tuple(self._events)

    def spans(self, cat: Optional[str] = None) -> List[TraceEvent]:
        """Completed spans, optionally filtered by category.

        Spans are returned in *start-time* order (they are recorded at
        close time, so parents land after their children in record
        order)."""
        found = [e for e in self.events
                 if e.ph == PHASE_SPAN and (cat is None or e.cat == cat)]
        return sorted(found, key=lambda e: e.ts)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


#: Shared disabled tracer: instrument unconditionally, pay (almost) nothing.
NULL_TRACER = Tracer(enabled=False)


def ensure_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Map ``None`` to the shared disabled tracer (instrumentation helper)."""
    return tracer if tracer is not None else NULL_TRACER
