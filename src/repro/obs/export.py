"""Trace exporters and readers: Chrome ``trace_event`` JSON and JSON-lines.

Two on-disk formats, chosen by file suffix in :func:`write_trace`:

* ``*.jsonl`` — one JSON object per line, schema identical to
  :class:`~repro.obs.tracer.TraceEvent` field-for-field.  Round-trips
  losslessly through :func:`read_jsonl`; greppable; append-friendly.
* anything else (``*.json`` conventionally) — the Chrome trace_event
  "JSON Object Format": ``{"traceEvents": [...], ...}``, loadable in
  ``chrome://tracing`` / Perfetto.  Spans are complete (``"X"``) events
  with microsecond ``ts``/``dur``; instants are ``"i"`` events.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Union

from .tracer import PHASE_SPAN, TraceEvent, Tracer

__all__ = ["chrome_trace", "events_of", "read_jsonl", "to_jsonl",
           "write_chrome", "write_jsonl", "write_trace"]

#: Single-process tracer: one pid for every event.
_PID = 1

EventSource = Union[Tracer, Sequence[TraceEvent]]


def events_of(source: EventSource) -> List[TraceEvent]:
    """Normalise a tracer-or-event-list argument to a list of events."""
    if isinstance(source, Tracer):
        return list(source.events)
    return list(source)


# -- Chrome trace_event ------------------------------------------------------

def chrome_trace(source: EventSource,
                 metadata: Dict[str, Any] | None = None) -> Dict[str, Any]:
    """Build the Chrome trace_event JSON-object-format dict."""
    trace_events: List[Dict[str, Any]] = []
    tids = sorted({e.tid for e in events_of(source)})
    # Compact thread ids (raw idents are huge and unstable across runs).
    tid_of = {tid: index for index, tid in enumerate(tids)}
    for event in events_of(source):
        record: Dict[str, Any] = {
            "name": event.name,
            "cat": event.cat or "default",
            "ph": event.ph,
            "ts": round(event.ts, 3),
            "pid": _PID,
            "tid": tid_of[event.tid],
            "args": _jsonable(event.args),
        }
        if event.ph == PHASE_SPAN:
            record["dur"] = round(event.dur, 3)
        else:
            record["s"] = "t"  # thread-scoped instant
        trace_events.append(record)
    doc: Dict[str, Any] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        doc["otherData"] = _jsonable(metadata)
    return doc


def write_chrome(source: EventSource, path: Union[str, Path],
                 metadata: Dict[str, Any] | None = None) -> Path:
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(source, metadata), indent=1)
                    + "\n", encoding="utf-8")
    return path


# -- JSON lines --------------------------------------------------------------

def to_jsonl(source: EventSource) -> Iterable[str]:
    """One JSON line per event (lossless TraceEvent serialisation)."""
    for event in events_of(source):
        yield json.dumps({
            "name": event.name, "cat": event.cat, "ph": event.ph,
            "ts": event.ts, "dur": event.dur, "tid": event.tid,
            "args": _jsonable(event.args),
        }, sort_keys=True)


def write_jsonl(source: EventSource, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text("".join(line + "\n" for line in to_jsonl(source)),
                    encoding="utf-8")
    return path


def read_jsonl(path: Union[str, Path]) -> List[TraceEvent]:
    """Read a ``*.jsonl`` trace back into :class:`TraceEvent` records."""
    events: List[TraceEvent] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        raw = json.loads(line)
        events.append(TraceEvent(
            name=raw["name"], cat=raw["cat"], ph=raw["ph"],
            ts=float(raw["ts"]), dur=float(raw["dur"]),
            tid=int(raw["tid"]), args=dict(raw.get("args") or {})))
    return events


def write_trace(source: EventSource, path: Union[str, Path],
                metadata: Dict[str, Any] | None = None) -> Path:
    """Write ``source`` to ``path``; ``*.jsonl`` selects the JSON-lines
    format, everything else the Chrome trace_event format."""
    path = Path(path)
    if path.suffix == ".jsonl":
        return write_jsonl(source, path)
    return write_chrome(source, path, metadata)


# -- helpers -----------------------------------------------------------------

def _jsonable(value: Any) -> Any:
    """Best-effort conversion of span args to JSON-serialisable values."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
