"""Branch-and-bound partition optimizer.

The paper's Figure 13 scheduler is deliberately naive: greedy LPT over
compute costs, blind to communication and buffer memory.  This module
inverts that (ROADMAP item 3, after Lin/Wu/Bhattacharyya's
memory-constrained vectorization/scheduling formulation): an exact
ILP-style search over actor->core assignments that

* **minimizes total channel buffer memory subject to a makespan bound**
  (``objective="memory"``, the default; the bound defaults to greedy
  LPT's own communication-aware makespan, so the result is never slower
  than the status quo *and* never buys that speed with more memory), or
* **minimizes makespan subject to a memory budget** (the dual,
  ``objective="makespan"``).

Both prices come from the shared :class:`~repro.plan.context.PlanContext`
— compute cycles per steady iteration, cut-edge traffic priced at the
target's ``COMM`` cost, and the deadlock-free channel capacity each cut
tape would need — so a ``gpu-like`` target (wide vectors, expensive
transfers) visibly reshapes the chosen partition versus an ``i7``.

The search is plain depth-first branch and bound: actors are branched in
descending cost order, core indices are interchangeable so at most one
fresh core is opened per step (symmetry breaking), partial assignments
are pruned against a makespan lower bound (max of current busiest core
and remaining-work average) and a memory lower bound (cut capacity is
committed the moment both endpoints are placed, and never decreases).
The incumbent is seeded with the greedy plans (LPT, contiguous, and the
all-on-one-core serial plan when feasible), so even when ``node_budget``
exhausts the search on large graphs the result is proven no worse than
every greedy baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..runtime.errors import StreamRuntimeError
from .context import PlanContext
from .evaluate import PlanEvaluation, evaluate_partition
from .partitioners import Partition, partition_contiguous, partition_lpt

__all__ = ["InfeasiblePlanError", "PlanError", "PlanResult",
           "optimize_partition"]

#: Relative float tolerance for bound comparisons.
_REL_EPS = 1e-9


class PlanError(StreamRuntimeError):
    """Base class for planning failures."""


class InfeasiblePlanError(PlanError):
    """No partition satisfies the requested bound/budget.

    ``bound`` carries the violated constraint value; ``proven`` is True
    when the search ran to completion (infeasibility is exact) and False
    when the node budget exhausted first (no feasible point was *found*).
    """

    def __init__(self, message: str, *, bound: float,
                 proven: bool = True) -> None:
        super().__init__(message)
        self.bound = bound
        self.proven = proven


@dataclass(frozen=True)
class PlanResult:
    """An optimized partition plus the search's audit trail."""

    partition: Partition
    evaluation: PlanEvaluation
    objective: str
    makespan_bound: Optional[float]
    memory_budget: Optional[int]
    #: branch-and-bound nodes expanded.
    nodes: int
    #: True when ``node_budget`` stopped the search early (the result is
    #: then best-found — still no worse than the greedy incumbents).
    exhausted: bool
    #: greedy LPT priced on the same context (the status-quo baseline).
    baseline: PlanEvaluation


class _Exhausted(Exception):
    """Internal: node budget ran out."""


def _serial_partition(ctx: PlanContext, cores: int) -> Partition:
    return Partition({aid: 0 for aid in ctx.graph.actors}, cores)


def optimize_partition(ctx: PlanContext, cores: int, *,
                       objective: str = "memory",
                       makespan_bound: Optional[float] = None,
                       memory_budget: Optional[int] = None,
                       node_budget: int = 200_000) -> PlanResult:
    """Branch-and-bound over actor->core assignments (see module doc).

    ``objective="memory"`` minimizes buffer memory subject to
    ``makespan_bound`` (default: LPT's communication-aware makespan);
    ``objective="makespan"`` minimizes makespan subject to
    ``memory_budget`` (default: unlimited).  Ties break toward the other
    axis, then deterministically.  Raises :class:`InfeasiblePlanError`
    when no assignment meets the constraint.
    """
    if cores < 1:
        raise PlanError(f"need at least one core, got {cores}")
    if objective not in ("memory", "makespan"):
        raise PlanError(f"unknown objective {objective!r} "
                        "(expected 'memory' or 'makespan')")

    graph = ctx.graph
    lpt = partition_lpt(graph, ctx.costs, cores)
    lpt_eval = evaluate_partition(ctx, lpt)

    if objective == "memory" and makespan_bound is None:
        makespan_bound = lpt_eval.makespan
    if memory_budget is not None and memory_budget < 0:
        raise InfeasiblePlanError(
            f"memory budget {memory_budget} is negative — even a "
            "single-core plan needs 0 items", bound=memory_budget)

    eps = _REL_EPS * max(1.0, ctx.total_work)
    # Trivial infeasibility: no assignment beats the perfect-balance,
    # zero-communication lower bound.
    root_lb = ctx.total_work / cores
    if makespan_bound is not None and makespan_bound < root_lb - eps:
        raise InfeasiblePlanError(
            f"makespan bound {makespan_bound:.1f} is below the "
            f"zero-communication balance bound {root_lb:.1f} "
            f"cycles/iteration", bound=makespan_bound)

    # -- incumbent seeding -------------------------------------------------
    candidates: List[Tuple[Partition, PlanEvaluation]] = [(lpt, lpt_eval)]
    for seed in (partition_contiguous(graph, ctx.costs, cores),
                 _serial_partition(ctx, cores)):
        candidates.append((seed, evaluate_partition(ctx, seed)))

    def feasible(ev: PlanEvaluation) -> bool:
        if makespan_bound is not None and ev.makespan > makespan_bound + eps:
            return False
        if memory_budget is not None and ev.memory_items > memory_budget:
            return False
        return True

    def score(ev: PlanEvaluation) -> Tuple[float, float]:
        if objective == "memory":
            return (ev.memory_items, ev.makespan)
        return (ev.makespan, ev.memory_items)

    best: Optional[Partition] = None
    best_eval: Optional[PlanEvaluation] = None
    for part, ev in candidates:
        if feasible(ev) and (best_eval is None
                             or score(ev) < score(best_eval)):
            best, best_eval = part, ev

    # -- search state ------------------------------------------------------
    order = sorted(graph.actors, key=lambda aid: (-ctx.costs.get(aid, 0.0),
                                                  aid))
    n = len(order)
    #: actor -> [(tape id, neighbour actor, neighbour-is-dst)]
    edges: Dict[int, List[Tuple[int, int, bool]]] = {aid: []
                                                    for aid in graph.actors}
    for tid, edge in graph.tapes.items():
        if edge.src == edge.dst:
            continue  # self-loop: never cut
        edges[edge.src].append((tid, edge.dst, True))
        edges[edge.dst].append((tid, edge.src, False))
    suffix_work = [0.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix_work[i] = suffix_work[i + 1] + ctx.costs.get(order[i], 0.0)

    assignment: Dict[int, int] = {}
    loads = [0.0] * cores
    state = {"mem": 0, "nodes": 0, "exhausted": False}

    def consider_leaf() -> None:
        nonlocal best, best_eval
        part = Partition(dict(assignment), cores)
        ev = evaluate_partition(ctx, part)
        if feasible(ev) and (best_eval is None
                             or score(ev) < score(best_eval)):
            best, best_eval = part, ev

    def prune(depth: int) -> bool:
        lb_makespan = max(max(loads),
                          (sum(loads) + suffix_work[depth]) / cores)
        if makespan_bound is not None and lb_makespan > makespan_bound + eps:
            return True
        if memory_budget is not None and state["mem"] > memory_budget:
            return True
        if best_eval is None:
            return False
        if objective == "memory":
            if state["mem"] > best_eval.memory_items:
                return True
            if (state["mem"] == best_eval.memory_items
                    and lb_makespan >= best_eval.makespan - eps):
                return True
        else:
            if lb_makespan > best_eval.makespan + eps:
                return True
            if (lb_makespan >= best_eval.makespan - eps
                    and state["mem"] >= best_eval.memory_items):
                return True
        return False

    def descend(depth: int, used: int) -> None:
        if depth == n:
            consider_leaf()
            return
        actor = order[depth]
        cost = ctx.costs.get(actor, 0.0)
        # Cores are interchangeable: open at most one fresh index.
        for core in range(min(used + 1, cores)):
            state["nodes"] += 1
            if state["nodes"] > node_budget:
                raise _Exhausted
            assignment[actor] = core
            loads[core] += cost
            added_mem = 0
            comm_charges: List[Tuple[int, float]] = []
            for tid, other, other_is_dst in edges[actor]:
                other_core = assignment.get(other)
                if other_core is None or other_core == core:
                    continue
                added_mem += ctx.capacities[tid]
                dst_core = other_core if other_is_dst else core
                charge = ctx.comm_cycles(tid)
                loads[dst_core] += charge
                comm_charges.append((dst_core, charge))
            state["mem"] += added_mem
            if not prune(depth + 1):
                descend(depth + 1, max(used, core + 1))
            state["mem"] -= added_mem
            for dst_core, charge in comm_charges:
                loads[dst_core] -= charge
            loads[core] -= cost
            del assignment[actor]

    try:
        if not prune(0):
            descend(0, 0)
    except _Exhausted:
        state["exhausted"] = True

    if best is None or best_eval is None:
        constraint = (f"makespan bound {makespan_bound:.1f}"
                      if makespan_bound is not None
                      else f"memory budget {memory_budget}")
        raise InfeasiblePlanError(
            f"no {cores}-core partition of {graph.name!r} satisfies "
            f"{constraint}"
            + (" (search budget exhausted before a feasible point "
               "was found)" if state["exhausted"] else ""),
            bound=(makespan_bound if makespan_bound is not None
                   else float(memory_budget or 0)),
            proven=not state["exhausted"])

    return PlanResult(
        partition=best,
        evaluation=best_eval,
        objective=objective,
        makespan_bound=makespan_bound,
        memory_budget=memory_budget,
        nodes=state["nodes"],
        exhausted=state["exhausted"],
        baseline=lpt_eval,
    )
