"""Communication-aware plan evaluation.

The Figure 13 model in :mod:`repro.multicore.simulate` prices a
partition per produced *output* (a throughput metric for the paper's
speedup plots); the planner needs the same quantity per steady
*iteration* and without re-executing the graph — every branch-and-bound
node evaluates one candidate, so evaluation must be pure arithmetic over
the :class:`~repro.plan.context.PlanContext`.

The accounting matches the runtime and the Figure 13 model exactly:

* each core's load is the compute cycles of its actors plus a
  ``traffic x COMM-price`` charge for every cut tape it *receives* (the
  paper's "the receiving core stalls on the transfer", §5);
* a partition's buffer memory is the sum of the deadlock-free channel
  capacities (:mod:`repro.plan.capacity`) over its cut tapes — exactly
  what :func:`repro.multicore.parallel.parallel_execute` will allocate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .context import PlanContext
from .partitioners import Partition

__all__ = ["PlanEvaluation", "evaluate_partition"]


@dataclass(frozen=True)
class PlanEvaluation:
    """One candidate partition, priced.

    ``makespan`` is modeled cycles per steady iteration of the busiest
    core (compute + received communication); ``memory_items`` is the
    total planned channel capacity over cut tapes, in items.
    """

    makespan: float
    memory_items: int
    core_loads: Tuple[float, ...]
    comm_cycles: float
    cut_tapes: Tuple[int, ...]

    def dominates(self, other: "PlanEvaluation",
                  eps: float = 1e-9) -> bool:
        """True when this plan is at least as good on both axes and
        strictly better on one (the Pareto order)."""
        no_worse = (self.makespan <= other.makespan + eps
                    and self.memory_items <= other.memory_items)
        better = (self.makespan < other.makespan - eps
                  or self.memory_items < other.memory_items)
        return no_worse and better


def evaluate_partition(ctx: PlanContext,
                       partition: Partition) -> PlanEvaluation:
    """Price ``partition`` on ``ctx`` (pure arithmetic, no execution)."""
    assignment = partition.assignment
    loads = [0.0] * partition.cores
    for actor_id, core in assignment.items():
        loads[core] += ctx.costs.get(actor_id, 0.0)
    comm_total = 0.0
    memory = 0
    cut = []
    for tid, edge in ctx.graph.tapes.items():
        if assignment[edge.src] == assignment[edge.dst]:
            continue
        cut.append(tid)
        cost = ctx.comm_cycles(tid)
        loads[assignment[edge.dst]] += cost
        comm_total += cost
        memory += ctx.capacities[tid]
    return PlanEvaluation(
        makespan=max(loads) if loads else 0.0,
        memory_items=memory,
        core_loads=tuple(loads),
        comm_cycles=comm_total,
        cut_tapes=tuple(sorted(cut)),
    )
