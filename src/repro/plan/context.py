"""Shared planning context.

Partitioning, buffer sizing, and vectorization choice all consume the
same facts about a program: its graph, its schedule, per-actor compute
costs, per-edge steady-state traffic, and the target machine's price
table.  Before the planning subsystem existed those facts were
re-derived ad hoc in four unrelated modules (``multicore/partition``,
``multicore/channels``, ``multicore/simulate``, ``simd/technique_choice``)
that could not see each other's costs; :class:`PlanContext` bundles them
once so every planner prices candidates identically:

* ``costs`` — modeled compute cycles per actor per steady iteration
  (profiled through the ordinary executor, so they reflect whatever
  SIMDization the graph carries);
* ``traffic`` — items each tape carries per steady iteration (the
  communication volume a cut edge would move across cores);
* ``capacities`` — the deadlock-free channel capacity each tape would
  need *if cut* (sequential max occupancy + double-buffer slack), i.e.
  the buffer memory a partition pays per cut edge;
* ``comm_price`` — the target's per-element transfer cost
  (:data:`repro.perf.events.COMM`), the knob that makes a ``gpu-like``
  target favour different cuts than an ``i7``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..graph.stream_graph import StreamGraph
from ..perf import events as ev
from ..schedule.steady_state import Schedule, build_schedule
from ..simd.machine import (CORE_I7, MachineDescription,
                            UnsupportedOperation, get_target)
from .capacity import plan_capacities, steady_crossings

__all__ = ["PlanContext", "build_plan_context", "profile_actor_costs"]


def profile_actor_costs(graph: StreamGraph, machine: MachineDescription,
                        iterations: int = 2) -> Dict[int, float]:
    """Measured per-actor steady-state cycles *per iteration* (the
    partitioners' and optimizer's compute input).

    Normalizing by the measured iteration count keeps compute loads
    commensurable with per-iteration communication charges
    (``traffic x comm_price``), so the optimizer's makespan bound means
    the same thing regardless of how long the profile ran.
    """
    from ..runtime.executor import execute
    result = execute(graph, machine=machine, iterations=iterations)
    return {actor_id: cycles / max(1, iterations)
            for actor_id, cycles in result.actor_cycles(machine).items()}


@dataclass(frozen=True)
class PlanContext:
    """Everything a planner needs to price one candidate partition."""

    graph: StreamGraph
    schedule: Schedule
    machine: MachineDescription
    #: actor id -> modeled compute cycles per steady iteration.
    costs: Dict[int, float]
    #: tape id -> items crossing per steady iteration.
    traffic: Dict[int, int]
    #: tape id -> deadlock-free channel capacity (items) if the tape is
    #: cut (sequential max occupancy + ``slack_iterations`` headroom).
    capacities: Dict[int, int]
    #: cycles to move one element across cores on this target.
    comm_price: float
    #: double-buffer headroom baked into ``capacities``.
    slack_iterations: int = 1

    @property
    def total_work(self) -> float:
        """Total compute cycles per steady iteration (cores=1 makespan)."""
        return sum(self.costs.values())

    def comm_cycles(self, tape_id: int) -> float:
        """Cycles the receiving core pays per steady iteration if
        ``tape_id`` is cut."""
        return self.traffic[tape_id] * self.comm_price


def build_plan_context(graph: StreamGraph,
                       target: Union[str, MachineDescription, None] = None,
                       *,
                       schedule: Optional[Schedule] = None,
                       costs: Optional[Dict[int, float]] = None,
                       iterations: int = 2,
                       slack_iterations: int = 1) -> PlanContext:
    """Profile ``graph`` on ``target`` and assemble a :class:`PlanContext`.

    ``target`` may be a registered name (``"i7"``, ``"gpu-like"``, …), a
    :class:`MachineDescription`, or ``None`` (Core i7).  ``costs``
    short-circuits profiling when the caller already holds per-iteration
    actor costs (e.g. :func:`profile_actor_costs` output).
    """
    machine = get_target(target) if target is not None else CORE_I7
    if schedule is None:
        schedule = build_schedule(graph)
    if costs is None:
        costs = profile_actor_costs(graph, machine, iterations=iterations)
    try:
        comm_price = machine.price(ev.COMM)
    except UnsupportedOperation:
        comm_price = 0.0
    return PlanContext(
        graph=graph,
        schedule=schedule,
        machine=machine,
        costs=dict(costs),
        traffic=steady_crossings(graph, schedule),
        capacities=plan_capacities(graph, schedule, graph.tapes,
                                   slack_iterations=slack_iterations),
        comm_price=comm_price,
        slack_iterations=slack_iterations,
    )
