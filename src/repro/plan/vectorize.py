"""Target-aware vectorization choice.

The per-actor horizontal/vertical arbitration (§3.5, priced through
:mod:`repro.plan.costs`) happens inside compilation; this module lifts
the remaining *whole-program* decision into the planning subsystem:
given a target, is the macro-SIMDized build actually faster than the
scalar one, and which technique did each actor end up with?  On an
``i7`` the answer is nearly always "macross"; a ``gpu-like`` target
(expensive lane insert/extract, wide vectors) flips individual actors
from horizontal to vertical and can flip pack/unpack-dominated programs
back to scalar — the co-optimization signal ``macross plan`` reports
next to the partition choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..graph.stream_graph import StreamGraph
from ..simd.machine import MachineDescription, get_target

__all__ = ["VectorizationPlan", "plan_vectorization"]


@dataclass(frozen=True)
class VectorizationPlan:
    """The chosen whole-program vectorization for one target."""

    machine: str
    #: ``"macross"`` or ``"scalar"`` — whichever models faster.
    mode: str
    #: actor name -> technique verdict ("vertical:<coarse>", "single",
    #: "horizontal", "scalar:<reason>") from the compilation report.
    decisions: Dict[str, str]
    #: modeled steady cycles per produced output item (throughput metric
    #: of the figures — invariant under repetition rescaling).
    scalar_cycles: float
    macross_cycles: float

    @property
    def speedup(self) -> float:
        return (self.scalar_cycles / self.macross_cycles
                if self.macross_cycles else 1.0)

    def technique_counts(self) -> Dict[str, int]:
        """Decisions bucketed by technique family (report summary)."""
        counts: Dict[str, int] = {}
        for verdict in self.decisions.values():
            family = verdict.split(":", 1)[0]
            counts[family] = counts.get(family, 0) + 1
        return counts


def plan_vectorization(graph: StreamGraph,
                       target: Union[str, MachineDescription],
                       *,
                       iterations: int = 2,
                       options=None) -> VectorizationPlan:
    """Compile ``graph`` for ``target`` and pick scalar vs macro-SIMD by
    modeled steady cycles per output item (ties go to macross).

    Cycles are normalized per *output item*, not per steady iteration:
    SIMDization changes the repetition vector (a vertical actor fires
    ``rep / SW`` times), so one steady iteration of the macro graph can
    cover a different amount of work than one scalar iteration — per-item
    throughput is the comparison the paper's figures use.
    """
    # Deferred: repro.simd.pipeline imports repro.plan.costs.
    from ..runtime.executor import execute
    from ..simd.pipeline import compile_graph

    machine = get_target(target)
    compiled = compile_graph(graph, machine, options)
    scalar_run = execute(graph, machine=machine, iterations=iterations)
    macro_run = execute(compiled.graph, machine=machine,
                        iterations=iterations)
    scalar_cycles = scalar_run.cycles_per_output(machine)
    macro_cycles = macro_run.cycles_per_output(machine)
    mode = "macross" if macro_cycles <= scalar_cycles else "scalar"
    return VectorizationPlan(
        machine=machine.name,
        mode=mode,
        decisions=dict(compiled.report.decisions),
        scalar_cycles=scalar_cycles,
        macross_cycles=macro_cycles,
    )
