"""Partitioners and the partitioner registry.

A partitioner maps ``(graph, costs, cores)`` to a
:class:`Partition` — a total assignment of actors to cores with every
core index in ``range(cores)``.  Two greedy strategies ship from the
original multicore layer (LPT and contiguous topological slicing), plus
the branch-and-bound optimizer of :mod:`repro.plan.optimizer` exposed
under the names ``"opt"``/``"bb"``/``"ilp"``.

Like the target and placement-policy registries, partitioners are looked
up by (case-insensitive) name via :func:`get_partitioner`, unknown names
raise a typed :class:`UnknownPartitionerError` with a did-you-mean
suggestion and the registered-name listing, and registering a new
strategy here carries it through ``parallel_execute``/``execute(...,
partitioner=)``, ``simulate_multicore``, the ``macross
multicore``/``plan`` CLI, and the fuzz parallel-parity oracle's
partitioner axis with zero driver edits.

Registered entries are *factories* taking the target machine (or
``None``): communication-aware strategies close over the machine to
price cut-edge traffic; machine-oblivious ones ignore it.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..graph.stream_graph import StreamGraph
from ..runtime.errors import StreamRuntimeError
from ..simd.machine import MachineDescription

__all__ = [
    "Partition", "PartitionFn", "UnknownPartitionerError",
    "get_partitioner", "list_partitioners", "partition_contiguous",
    "partition_lpt", "register_partitioner",
]


class UnknownPartitionerError(StreamRuntimeError):
    """Raised by :func:`get_partitioner` for unregistered names.

    The message carries a did-you-mean suggestion and the full list of
    registered names, so callers (the CLI in particular) can surface it
    verbatim and exit cleanly instead of dumping a traceback.
    """


@dataclass(frozen=True)
class Partition:
    assignment: Dict[int, int]
    cores: int

    def core_of(self, actor_id: int) -> int:
        return self.assignment[actor_id]

    def loads(self, costs: Dict[int, float]) -> List[float]:
        loads = [0.0] * self.cores
        for actor_id, core in self.assignment.items():
            loads[core] += costs.get(actor_id, 0.0)
        return loads


#: A partitioner: ``(graph, per-actor costs, cores) -> Partition``.
PartitionFn = Callable[[StreamGraph, Dict[int, float], int], Partition]


def partition_lpt(graph: StreamGraph, costs: Dict[int, float],
                  cores: int) -> Partition:
    """Greedy LPT multiprocessor scheduling over profiled actor costs."""
    if cores < 1:
        raise ValueError("need at least one core")
    assignment: Dict[int, int] = {}
    loads = [0.0] * cores
    order = sorted(graph.actors,
                   key=lambda aid: (-costs.get(aid, 0.0), aid))
    for actor_id in order:
        core = min(range(cores), key=lambda c: (loads[c], c))
        assignment[actor_id] = core
        loads[core] += costs.get(actor_id, 0.0)
    return Partition(assignment, cores)


def partition_contiguous(graph: StreamGraph, costs: Dict[int, float],
                         cores: int) -> Partition:
    """Alternative partitioner: contiguous topological slices balanced by
    cost (keeps pipelines together, fewer cut tapes).  Used by the ablation
    bench to show the comm/balance trade-off.

    Edge cases share :func:`partition_lpt`'s contract: every actor is
    assigned, cores stay in ``range(cores)``, and ``cores >
    len(actors)`` simply leaves trailing cores empty —
    :meth:`Partition.loads` still reports one (zero) load per core.  An
    all-zero (or empty) cost map degrades to contiguous slices balanced
    by actor *count*: with no cost signal the old cumulative-threshold
    rule (``acc >= 0`` — trivially true) hopped every actor to the next
    core, piling the whole tail of the pipeline onto the last one.
    """
    if cores < 1:
        raise ValueError("need at least one core")
    order = graph.ordered_actors()
    total = sum(costs.get(aid, 0.0) for aid in order)
    assignment: Dict[int, int] = {}
    if total <= 0.0:
        # No cost signal: even contiguous slices by actor count.
        for index, actor_id in enumerate(order):
            assignment[actor_id] = (index * cores) // max(1, len(order))
        return Partition(assignment, cores)
    target = total / cores
    core = 0
    acc = 0.0
    for actor_id in order:
        assignment[actor_id] = core
        acc += costs.get(actor_id, 0.0)
        if acc >= target * (core + 1) and core < cores - 1:
            core += 1
    return Partition(assignment, cores)


# --- partitioner registry -------------------------------------------------

#: A factory: given the target machine (or ``None``), return the
#: partitioner callable.  Machine-oblivious strategies ignore the arg.
PartitionerFactory = Callable[[Optional[MachineDescription]], PartitionFn]

#: canonical lowercase name -> factory.
_PARTITIONERS: Dict[str, PartitionerFactory] = {}
#: lowercase alias -> canonical lowercase name.
_PARTITIONER_ALIASES: Dict[str, str] = {}


def register_partitioner(name: str, factory: PartitionerFactory, *,
                         aliases: Sequence[str] = (),
                         overwrite: bool = False) -> None:
    """Register a partitioner factory under ``name`` (+ aliases).

    Validation happens before any mutation, so a name/alias collision
    leaves the registry untouched (no half-registered strategies).
    """
    key = name.lower()
    akeys = [alias.lower() for alias in aliases]
    if not overwrite:
        if key in _PARTITIONERS or key in _PARTITIONER_ALIASES:
            raise ValueError(f"partitioner {name!r} is already registered")
        for alias, akey in zip(aliases, akeys):
            if _PARTITIONER_ALIASES.get(akey, key) != key:
                raise ValueError(
                    f"partitioner alias {alias!r} is already bound to "
                    f"{_PARTITIONER_ALIASES[akey]!r}")
            if akey in _PARTITIONERS and akey != key:
                raise ValueError(
                    f"partitioner alias {alias!r} collides with registered "
                    f"partitioner {akey!r}")
    _PARTITIONERS[key] = factory
    for akey in akeys:
        _PARTITIONER_ALIASES[akey] = key


def get_partitioner(name: Union[str, PartitionFn],
                    machine: Optional[MachineDescription] = None
                    ) -> PartitionFn:
    """Resolve a partitioner name (case-insensitive, aliases allowed).

    Passing a callable returns it unchanged, so APIs can accept either
    form.  ``machine`` is handed to the factory: communication-aware
    strategies (the optimizer) price cut edges with it; greedy ones
    ignore it.  Unknown names raise :class:`UnknownPartitionerError`
    with a did-you-mean suggestion and the registered-name listing.
    """
    if callable(name):
        return name
    key = name.lower()
    key = _PARTITIONER_ALIASES.get(key, key)
    factory = _PARTITIONERS.get(key)
    if factory is None:
        known = list_partitioners()
        candidates = known + sorted(_PARTITIONER_ALIASES)
        close = difflib.get_close_matches(name.lower(), candidates, n=1)
        hint = f" — did you mean {close[0]!r}?" if close else ""
        raise UnknownPartitionerError(
            f"unknown partitioner {name!r}{hint} (registered "
            f"partitioners: {', '.join(known)})")
    return factory(machine)


def list_partitioners() -> List[str]:
    """Sorted canonical names of every registered partitioner."""
    return sorted(_PARTITIONERS)


def _opt_factory(machine: Optional[MachineDescription]) -> PartitionFn:
    """Branch-and-bound adapter: min-memory under the default makespan
    bound (LPT's communication-aware makespan), priced on ``machine``."""

    def partition_opt(graph: StreamGraph, costs: Dict[int, float],
                      cores: int) -> Partition:
        # Deferred import: the optimizer builds on context/evaluate,
        # which import this module for Partition.
        from .context import build_plan_context
        from .optimizer import optimize_partition
        ctx = build_plan_context(graph, machine, costs=costs)
        return optimize_partition(ctx, cores).partition

    return partition_opt


register_partitioner("lpt", lambda machine: partition_lpt)
register_partitioner("contiguous", lambda machine: partition_contiguous,
                     aliases=("contig",))
register_partitioner("opt", _opt_factory, aliases=("bb", "ilp"))
