"""Channel-capacity planning (extracted from ``repro.multicore.channels``).

Bounded cross-core buffers can introduce *artificial* deadlock in an SDF
graph that is perfectly schedulable with unbounded ones.  The planner
here sizes every channel from the schedule itself:

* :func:`sequential_max_occupancy` symbolically walks the init phase and
  one steady iteration of the global schedule (no data, just rates) and
  records the maximum occupancy every tape reaches.  Because the steady
  state returns every tape to its post-init level (SDF's defining
  invariant), this is the maximum over the whole run.
* :func:`plan_capacities` grants each cut tape that sequential maximum
  **plus** ``slack_iterations`` extra steady iterations' worth of items
  (``slack_iterations=1`` is classic double buffering: the producing core
  may run one full iteration ahead before it stalls).

With capacity >= the sequential maximum the parallel execution is
deadlock-free for any per-core interleaving that preserves each core's
slice order of the global schedule: consider the earliest unfinished
firing of the global schedule — all of its inputs were produced by
earlier firings (already complete), and its output occupancy cannot
exceed what the sequential execution reached at the same point, so it
can always make progress.

This module is the *memory model* of the planning subsystem: the
branch-and-bound optimizer (:mod:`repro.plan.optimizer`) prices a
candidate partition's buffer footprint as the sum of these capacities
over its cut tapes, which is exactly what the parallel runtime will
allocate for it.
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..graph.stream_graph import StreamGraph
from ..schedule.steady_state import Schedule

__all__ = ["plan_capacities", "sequential_max_occupancy",
           "steady_crossings"]


def steady_crossings(graph: StreamGraph, schedule: Schedule) -> Dict[int, int]:
    """Items carried by each tape during one steady iteration."""
    return {tid: schedule.reps[edge.src] * graph.push_rate(edge.src,
                                                           edge.src_port)
            for tid, edge in graph.tapes.items()}


def sequential_max_occupancy(graph: StreamGraph,
                             schedule: Schedule) -> Dict[int, int]:
    """Maximum occupancy each tape reaches under the *sequential*
    execution of ``schedule`` (symbolic walk over rates; conservative in
    that a block of ``n`` firings is charged pushes-before-pops)."""
    occupancy = {tid: len(edge.initial)
                 for tid, edge in graph.tapes.items()}
    high = dict(occupancy)

    def walk(phase) -> None:
        for actor_id, firings in phase:
            for edge in graph.out_tapes(actor_id):
                occupancy[edge.id] += firings * graph.push_rate(
                    actor_id, edge.src_port)
                if occupancy[edge.id] > high[edge.id]:
                    high[edge.id] = occupancy[edge.id]
            for edge in graph.in_tapes(actor_id):
                occupancy[edge.id] -= firings * graph.pop_rate(
                    actor_id, edge.dst_port)

    walk(schedule.init)
    walk(schedule.steady)
    return high


def plan_capacities(graph: StreamGraph, schedule: Schedule,
                    cut_tapes: Iterable[int], *,
                    slack_iterations: int = 1) -> Dict[int, int]:
    """Deadlock-free capacity for every cut tape.

    ``sequential max occupancy`` guarantees liveness (see the module
    docstring); ``slack_iterations`` extra steady iterations of headroom
    let the producing core run ahead — ``1`` is double buffering.
    """
    high = sequential_max_occupancy(graph, schedule)
    crossing = steady_crossings(graph, schedule)
    return {tid: max(1, high[tid]) + slack_iterations * crossing[tid]
            for tid in cut_tapes}
