"""Shared SIMDization cost estimators (extracted from
``repro.simd.technique_choice``).

The §3.5 horizontal-vs-vertical arbitration and the planning subsystem
price the *same* speculative candidates: a split-join level merged into
one SIMD actor (horizontal, plus HSplitter/HJoiner packing work) versus
each branch fused and single-actor SIMDized (vertical, plus plain
splitter/joiner moves).  Keeping the estimators here means SIMD
technique choice and partition/buffer planning read one price table per
target — the co-optimization seam the gpu-like target exercises (its
expensive lane insert/extract flips levels from horizontal to vertical
that an i7 merges horizontally).

All builds are spec-level only (no graph surgery): costs are estimated
with the static body estimator over one steady state of the region.
"""

from __future__ import annotations

from math import gcd
from typing import Dict

from ..graph.actor import FilterSpec
from ..graph.stream_graph import StreamGraph
from ..perf import events as ev
from ..simd.cost_model import estimate_body_events
from ..simd.horizontal import merge_specs
from ..simd.machine import MachineDescription
from ..simd.segments import HorizontalCandidate
from ..simd.single_actor import vectorize_actor
from ..simd.vertical import fuse_specs

__all__ = ["firing_cost", "horizontal_cost", "mover_cost", "vertical_cost"]


def firing_cost(spec: FilterSpec, machine: MachineDescription) -> float:
    """Modeled cycles of one firing of ``spec`` on ``machine``."""
    counters = estimate_body_events(spec.work_body, machine.simd_width)
    counters.add(ev.FIRE)
    return counters.cycles(machine)


def mover_cost(items: int, machine: MachineDescription, *,
               packs: bool) -> float:
    """Per-steady-state cost of moving ``items`` elements through a
    splitter/joiner (scalar copy) or HSplitter/HJoiner (pack/unpack)."""
    per_item = machine.price(ev.SCALAR_LOAD) + (
        machine.price(ev.PACK) if packs else machine.price(ev.SCALAR_STORE))
    return items * per_item


def horizontal_cost(graph: StreamGraph, candidate: HorizontalCandidate,
                    reps: Dict[int, int],
                    machine: MachineDescription) -> float:
    """One steady state of ``candidate`` SIMDized horizontally."""
    sw = machine.simd_width
    groups = candidate.width // sw
    total = 0.0
    for level_index in range(candidate.depth):
        level = candidate.level(level_index)
        rep = reps[level[0]]
        for group in range(groups):
            ids = level[group * sw:(group + 1) * sw]
            merged = merge_specs([graph.actors[a].spec for a in ids], sw)
            total += firing_cost(merged, machine) * rep
    items = (reps[candidate.splitter_id]
             * graph.pop_rate(candidate.splitter_id))
    total += 2 * mover_cost(items, machine, packs=True)
    return total


def vertical_cost(graph: StreamGraph, candidate: HorizontalCandidate,
                  reps: Dict[int, int],
                  machine: MachineDescription) -> float:
    """One steady state of ``candidate`` fused + vertically SIMDized."""
    sw = machine.simd_width
    total = 0.0
    for branch in candidate.branches:
        specs = [graph.actors[a].spec for a in branch]
        branch_reps = [reps[a] for a in branch]
        if len(specs) == 1:
            coarse = specs[0]
            coarse_rep = branch_reps[0]
        else:
            coarse = fuse_specs(specs, branch_reps)
            coarse_rep = 0
            for rep in branch_reps:
                coarse_rep = gcd(coarse_rep, rep)
        vectorized = vectorize_actor(coarse, sw)
        total += firing_cost(vectorized, machine) * coarse_rep / sw
    items = (reps[candidate.splitter_id]
             * graph.pop_rate(candidate.splitter_id))
    total += 2 * mover_cost(items, machine, packs=False)
    return total
