"""Co-optimizing planning subsystem (`repro.plan`).

Partitioning, channel-buffer sizing, and SIMDization choice used to live
in four modules that could not see each other's costs; this package puts
them behind one seam:

* :mod:`~repro.plan.context` — :class:`PlanContext`: graph, schedule,
  per-actor costs, per-edge traffic, target prices, profiled once;
* :mod:`~repro.plan.partitioners` — the partitioner registry
  (``lpt``/``contiguous``/``opt``) consumed by the parallel runtime, the
  makespan model, the CLI, and the fuzz oracle;
* :mod:`~repro.plan.capacity` — deadlock-free channel capacities (the
  memory a partition pays per cut tape);
* :mod:`~repro.plan.evaluate` — communication-aware pricing of one
  candidate partition (pure arithmetic, no execution);
* :mod:`~repro.plan.optimizer` — branch-and-bound min-memory-under-
  makespan-bound (and the dual) over actor->core assignments;
* :mod:`~repro.plan.pareto` — the memory-vs-throughput front per app;
* :mod:`~repro.plan.costs` — the §3.5 horizontal/vertical cost
  estimators shared with SIMD technique choice;
* :mod:`~repro.plan.vectorize` — whole-program scalar-vs-macross choice
  per target.
"""

from .capacity import (
    plan_capacities,
    sequential_max_occupancy,
    steady_crossings,
)
from .context import PlanContext, build_plan_context, profile_actor_costs
from .costs import firing_cost, horizontal_cost, mover_cost, vertical_cost
from .evaluate import PlanEvaluation, evaluate_partition
from .optimizer import (
    InfeasiblePlanError,
    PlanError,
    PlanResult,
    optimize_partition,
)
from .pareto import ParetoPoint, pareto_front
from .partitioners import (
    Partition,
    UnknownPartitionerError,
    get_partitioner,
    list_partitioners,
    partition_contiguous,
    partition_lpt,
    register_partitioner,
)
from .vectorize import VectorizationPlan, plan_vectorization

__all__ = [
    "PlanContext", "build_plan_context", "profile_actor_costs",
    "plan_capacities", "sequential_max_occupancy", "steady_crossings",
    "PlanEvaluation", "evaluate_partition",
    "InfeasiblePlanError", "PlanError", "PlanResult", "optimize_partition",
    "ParetoPoint", "pareto_front",
    "Partition", "UnknownPartitionerError", "get_partitioner",
    "list_partitioners", "partition_contiguous", "partition_lpt",
    "register_partitioner",
    "firing_cost", "horizontal_cost", "mover_cost", "vertical_cost",
    "VectorizationPlan", "plan_vectorization",
]
