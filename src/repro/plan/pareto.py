"""Memory-vs-throughput Pareto exploration.

One optimizer run answers "cheapest memory at this speed"; the front
answers the question the ROADMAP's ablation actually asks — *how much
buffer memory does each increment of throughput cost on this target?*
(Lin/Wu/Bhattacharyya's memory-constrained scheduling trade-off.)

:func:`pareto_front` anchors the sweep at the two extremes — the
min-makespan plan (dual objective, unlimited memory) and the serial
all-on-one-core plan (zero cut-channel memory, sequential makespan) —
then minimizes memory under ``points`` evenly spaced makespan bounds in
between.  Dominated and duplicate points are filtered, so the returned
front is strictly monotone: makespan strictly increasing, memory
strictly decreasing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .context import PlanContext
from .evaluate import PlanEvaluation, evaluate_partition
from .optimizer import InfeasiblePlanError, optimize_partition
from .partitioners import Partition

__all__ = ["ParetoPoint", "pareto_front"]


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated (makespan, memory) trade-off."""

    makespan: float
    memory_items: int
    partition: Partition
    evaluation: PlanEvaluation

    def as_dict(self) -> dict:
        return {"makespan": round(self.makespan, 3),
                "memory_items": self.memory_items,
                "cut_tapes": len(self.evaluation.cut_tapes),
                "cores_used": len({c for c in
                                   self.partition.assignment.values()})}


def pareto_front(ctx: PlanContext, cores: int, *,
                 points: int = 8,
                 node_budget: int = 100_000) -> List[ParetoPoint]:
    """Sweep the memory-vs-makespan trade-off for ``cores`` workers.

    Returns the non-dominated points sorted by increasing makespan
    (therefore strictly decreasing memory).  ``points`` is the number of
    interior makespan bounds swept between the min-makespan and serial
    anchors; small graphs naturally yield fewer distinct points.
    """
    if points < 0:
        raise InfeasiblePlanError(
            f"pareto sweep needs >= 0 interior points, got {points}",
            bound=float(points))
    fastest = optimize_partition(ctx, cores, objective="makespan",
                                 node_budget=node_budget)
    serial = Partition({aid: 0 for aid in ctx.graph.actors}, cores)
    serial_eval = evaluate_partition(ctx, serial)

    candidates: List[Tuple[Partition, PlanEvaluation]] = [
        (fastest.partition, fastest.evaluation),
        (serial, serial_eval),
    ]
    low = fastest.evaluation.makespan
    high = serial_eval.makespan
    if high > low and points:
        step = (high - low) / (points + 1)
        for index in range(1, points + 1):
            bound = low + step * index
            try:
                plan = optimize_partition(ctx, cores, objective="memory",
                                          makespan_bound=bound,
                                          node_budget=node_budget)
            except InfeasiblePlanError:  # pragma: no cover - bound >= low
                continue
            candidates.append((plan.partition, plan.evaluation))

    # Dominance + duplicate filter: sort by (makespan, memory); keep a
    # point only when it strictly improves memory over everything kept.
    candidates.sort(key=lambda pair: (pair[1].makespan,
                                      pair[1].memory_items))
    front: List[ParetoPoint] = []
    for part, ev in candidates:
        if front and ev.memory_items >= front[-1].memory_items:
            continue
        front.append(ParetoPoint(makespan=ev.makespan,
                                 memory_items=ev.memory_items,
                                 partition=part, evaluation=ev))
    return front
