"""Figure 10: speedup over scalar code for {auto-vectorized,
macro-SIMDized, macro-SIMDized + auto-vectorized}, per benchmark.

Figure 10a uses the GCC-4.3 profile as the host/auto-vectorizing compiler;
Figure 10b uses the ICC-11.1 profile.  The paper's headline numbers: on
average macro-SIMDization beats GCC auto-vectorization by 54% and ICC's by
26%; ICC auto-vectorization alone averages 1.34x, MacroSS 2.07x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..autovec import GCC43, ICC111, CompilerProfile
from ..simd.machine import CORE_I7, MachineDescription
from .harness import Variants, arithmetic_mean, resolve_benchmarks
from .tables import format_table


@dataclass(frozen=True)
class Fig10Row:
    benchmark: str
    autovec: float
    macro: float
    macro_autovec: float


@dataclass(frozen=True)
class Fig10Result:
    compiler: str
    rows: tuple[Fig10Row, ...]

    @property
    def mean_autovec(self) -> float:
        return arithmetic_mean([r.autovec for r in self.rows])

    @property
    def mean_macro(self) -> float:
        return arithmetic_mean([r.macro for r in self.rows])

    @property
    def mean_macro_autovec(self) -> float:
        return arithmetic_mean([r.macro_autovec for r in self.rows])

    @property
    def macro_vs_autovec_percent(self) -> float:
        """The paper's "MacroSS outperforms autovec by N%" number."""
        return (self.mean_macro / self.mean_autovec - 1.0) * 100.0

    def render(self) -> str:
        header = [f"benchmark", f"{self.compiler}+autovec",
                  f"{self.compiler}+macro", f"{self.compiler}+macro+autovec"]
        body = [(r.benchmark, r.autovec, r.macro, r.macro_autovec)
                for r in self.rows]
        body.append(("AVERAGE", self.mean_autovec, self.mean_macro,
                     self.mean_macro_autovec))
        return format_table(header, body)


def run_fig10(profile: CompilerProfile,
              machine: MachineDescription = CORE_I7,
              benchmarks: Optional[Sequence[str]] = None) -> Fig10Result:
    rows: List[Fig10Row] = []
    for name in resolve_benchmarks(benchmarks):
        variants = Variants(name, machine)
        base = variants.baseline_cpo()
        rows.append(Fig10Row(
            benchmark=name,
            autovec=base / variants.autovec_cpo(profile),
            macro=base / variants.macro_cpo(),
            macro_autovec=base / variants.macro_autovec_cpo(profile),
        ))
    return Fig10Result(profile.name, tuple(rows))


def run_fig10a(machine: MachineDescription = CORE_I7,
               benchmarks: Optional[Sequence[str]] = None) -> Fig10Result:
    return run_fig10(GCC43, machine, benchmarks)


def run_fig10b(machine: MachineDescription = CORE_I7,
               benchmarks: Optional[Sequence[str]] = None) -> Fig10Result:
    return run_fig10(ICC111, machine, benchmarks)


if __name__ == "__main__":  # pragma: no cover
    print(run_fig10a().render())
    print()
    print(run_fig10b().render())
