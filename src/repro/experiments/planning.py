"""Planning experiment: the co-optimizer across the app registry.

One :class:`~repro.plan.context.PlanContext` per (benchmark, target)
pair, priced once, then reused for every strategy comparison:

* per-partitioner communication-aware makespan and planned channel
  memory (LPT / contiguous / branch-and-bound);
* the memory-vs-makespan Pareto front;
* the whole-program vectorization choice.

The report is plain dicts so the benchmark suite can serialize it
straight into ``BENCH_plan.json`` and the README table can be generated
from the same rows the CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..plan import (
    PlanContext,
    build_plan_context,
    evaluate_partition,
    get_partitioner,
    list_partitioners,
    optimize_partition,
    pareto_front,
    plan_vectorization,
)
from ..simd.machine import MachineDescription, get_target
from .harness import MEASURE_ITERATIONS, resolve_benchmarks, scalar_graph

__all__ = ["PlanningRow", "planning_report", "planning_row"]


@dataclass
class PlanningRow:
    """Planning summary for one (benchmark, target, cores) cell."""

    benchmark: str
    target: str
    cores: int
    #: strategy name -> {"makespan", "memory_items", "cuts"}.
    strategies: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: optimizer bookkeeping: nodes explored, bound, exhausted flag.
    optimizer: Dict[str, float] = field(default_factory=dict)
    #: [(makespan, memory_items), ...] — the Pareto front, makespan asc.
    front: List[Dict[str, float]] = field(default_factory=list)
    #: whole-program vectorization: mode + technique counts + speedup.
    vectorization: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {"benchmark": self.benchmark, "target": self.target,
                "cores": self.cores, "strategies": self.strategies,
                "optimizer": self.optimizer, "front": self.front,
                "vectorization": self.vectorization}


def planning_row(benchmark: str, target: MachineDescription, cores: int, *,
                 ctx: Optional[PlanContext] = None,
                 points: int = 6,
                 iterations: int = MEASURE_ITERATIONS) -> PlanningRow:
    """Price every registered strategy, the optimizer, and the front."""
    machine = get_target(target)
    graph = ctx.graph if ctx is not None else scalar_graph(benchmark)
    if ctx is None:
        ctx = build_plan_context(graph, machine, iterations=iterations)
    row = PlanningRow(benchmark=benchmark, target=machine.name, cores=cores)

    for name in list_partitioners():
        part = get_partitioner(name, machine)(graph, ctx.costs, cores)
        ev = evaluate_partition(ctx, part)
        row.strategies[name] = {
            "makespan": ev.makespan,
            "memory_items": ev.memory_items,
            "cuts": len(ev.cut_tapes),
            "cores_used": len(set(part.assignment.values())),
        }

    result = optimize_partition(ctx, cores)
    row.optimizer = {
        "nodes": result.nodes,
        "makespan_bound": result.makespan_bound,
        "exhausted": result.exhausted,
        "makespan": result.evaluation.makespan,
        "memory_items": result.evaluation.memory_items,
    }
    row.front = [pt.as_dict() for pt in pareto_front(ctx, cores,
                                                     points=points)]

    vec = plan_vectorization(graph, machine, iterations=iterations)
    row.vectorization = {
        "mode": vec.mode,
        "speedup": vec.speedup,
        "techniques": vec.technique_counts(),
    }
    return row


def planning_report(benchmarks: Optional[Sequence[str]] = None, *,
                    targets: Sequence[str] = ("core-i7-sse4", "gpu-like"),
                    cores: int = 4,
                    points: int = 6,
                    iterations: int = MEASURE_ITERATIONS
                    ) -> List[PlanningRow]:
    """The full planning sweep: every benchmark on every target.

    One profiled context per (benchmark, target) serves the strategy
    table, the optimizer run, and the Pareto front, so the report's
    numbers are mutually consistent by construction.
    """
    rows: List[PlanningRow] = []
    for name in resolve_benchmarks(benchmarks):
        graph = scalar_graph(name)
        for target in targets:
            machine = get_target(target)
            ctx = build_plan_context(graph, machine, iterations=iterations)
            rows.append(planning_row(name, machine, cores, ctx=ctx,
                                     points=points, iterations=iterations))
    return rows
