"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width table with a header rule, right-aligning numbers."""
    materialised: List[List[str]] = []
    for row in rows:
        materialised.append([_cell(value) for value in row])
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if index == 0:
                parts.append(cell.ljust(widths[index]))
            else:
                parts.append(cell.rjust(widths[index]))
        return "  ".join(parts)

    lines = [render(list(headers))]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render(row) for row in materialised)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
