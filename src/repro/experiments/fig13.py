"""Figure 13: multicore scheduling with and without macro-SIMDization.

Speedup over scalar single-core execution for {2, 4} cores, scalar vs
partition-first macro-SIMDized.  The paper's averages: 2 cores 1.28x ->
2.03x with SIMD; 4 cores 1.85x -> 3.17x; macro-SIMDized 2-core execution
comes within ~5% of (our model: beats) scalar 4-core execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..multicore.simulate import multicore_speedups
from ..simd.machine import CORE_I7, MachineDescription
from .harness import arithmetic_mean, resolve_benchmarks, scalar_graph
from .tables import format_table

CORE_COUNTS = (2, 4)
COLUMNS = ("2c", "4c", "2c+simd", "4c+simd")


@dataclass(frozen=True)
class Fig13Row:
    benchmark: str
    speedups: Dict[str, float]


@dataclass(frozen=True)
class Fig13Result:
    rows: Tuple[Fig13Row, ...]

    def mean(self, column: str) -> float:
        return arithmetic_mean([r.speedups[column] for r in self.rows])

    def render(self) -> str:
        body = [(r.benchmark, *(r.speedups[c] for c in COLUMNS))
                for r in self.rows]
        body.append(("AVERAGE", *(self.mean(c) for c in COLUMNS)))
        return format_table(["benchmark", "2 cores", "4 cores",
                             "2 cores + MacroSS", "4 cores + MacroSS"], body)


def run_fig13(machine: MachineDescription = CORE_I7,
              benchmarks: Optional[Sequence[str]] = None) -> Fig13Result:
    rows: List[Fig13Row] = []
    for name in resolve_benchmarks(benchmarks):
        graph = scalar_graph(name)
        rows.append(Fig13Row(name, multicore_speedups(
            graph, machine, list(CORE_COUNTS))))
    return Fig13Result(tuple(rows))


if __name__ == "__main__":  # pragma: no cover
    print(run_fig13().render())
