"""Shared experiment harness.

Builds each benchmark's compilation variants once and measures modeled
steady-state cycles per output item.  All speedups in the figures are
ratios of that throughput metric (it is invariant under Equation (1)
repetition rescaling, which changes work-per-iteration but not
work-per-item).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Union

from ..apps import BENCHMARKS, get_benchmark
from ..autovec import CompilerProfile, auto_vectorize
from ..graph.flatten import flatten
from ..graph.stream_graph import StreamGraph
from ..obs.tracer import Tracer
from ..runtime.executor import execute
from ..simd.machine import CORE_I7, MachineDescription, get_target
from ..simd.pipeline import MacroSSOptions, compile_graph

#: Benchmarks reported in the figures (paper order: suite apps first).
DEFAULT_BENCHMARKS = (
    "AudioBeam",
    "BeamFormer",
    "BitonicSort",
    "ChannelVocoder",
    "DCT",
    "FFT",
    "FMRadio",
    "FilterBank",
    "MP3Decoder",
    "MatrixMult",
    "MatrixMultBlock",
    "Vocoder",
)

#: Steady-state iterations measured per variant (cost model is
#: deterministic, so a couple of iterations suffice).
MEASURE_ITERATIONS = 2


def scalar_graph(name: str) -> StreamGraph:
    return flatten(get_benchmark(name))


def cycles_per_output(graph: StreamGraph, machine: MachineDescription,
                      iterations: int = MEASURE_ITERATIONS,
                      backend: str = "interp",
                      tracer: Optional[Tracer] = None) -> float:
    result = execute(graph, machine=machine, iterations=iterations,
                     backend=backend, tracer=tracer)
    return result.cycles_per_output(machine)


@dataclass
class Variants:
    """All compiled/measured variants of one benchmark on one machine.

    ``backend`` selects the execution engine used for every measurement;
    modeled cycle counts are backend-independent (the differential suite
    enforces counter equality), so figures are reproducible either way —
    ``"compiled"`` just regenerates them faster.

    ``machine`` may be a registered target name (``"sve-like"``,
    ``"i7+sagu"``, …) resolved through the target registry, or a
    :class:`MachineDescription`.
    """

    name: str
    machine: Union[str, MachineDescription]
    backend: str = "interp"
    #: optional tracer threaded through every compile + measurement
    #: (span per variant; see ``repro.obs``).
    tracer: Optional[Tracer] = None
    scalar: StreamGraph = field(init=False)

    def __post_init__(self) -> None:
        self.machine = get_target(self.machine)
        self.scalar = scalar_graph(self.name)
        self._cpo: Dict[str, float] = {}

    def baseline_cpo(self) -> float:
        return self._measure("scalar", self.scalar)

    def autovec_cpo(self, profile: CompilerProfile) -> float:
        key = f"autovec:{profile.name}"
        if key not in self._cpo:
            graph = self.scalar.clone()
            auto_vectorize(graph, profile, self.machine)
            self._measure(key, graph)
        return self._cpo[key]

    def macro_graph(self, options: Optional[MacroSSOptions] = None
                    ) -> StreamGraph:
        if options is None:
            options = MacroSSOptions()
        return compile_graph(self.scalar, self.machine, options,
                             tracer=self.tracer).graph

    def macro_cpo(self, options: Optional[MacroSSOptions] = None,
                  tag: str = "macro") -> float:
        if tag not in self._cpo:
            self._measure(tag, self.macro_graph(options))
        return self._cpo[tag]

    def macro_autovec_cpo(self, profile: CompilerProfile) -> float:
        key = f"macro+autovec:{profile.name}"
        if key not in self._cpo:
            graph = self.macro_graph()
            auto_vectorize(graph, profile, self.machine)
            self._measure(key, graph)
        return self._cpo[key]

    def _measure(self, tag: str, graph: StreamGraph) -> float:
        if tag not in self._cpo:
            self._cpo[tag] = cycles_per_output(graph, self.machine,
                                               backend=self.backend,
                                               tracer=self.tracer)
        return self._cpo[tag]


def resolve_benchmarks(names: Optional[Sequence[str]] = None) -> List[str]:
    if names:
        unknown = sorted(set(names) - set(BENCHMARKS))
        if unknown:
            raise KeyError(f"unknown benchmarks: {unknown}")
        return list(names)
    return list(DEFAULT_BENCHMARKS)


def geometric_mean(values: Sequence[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else 0.0


def arithmetic_mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
