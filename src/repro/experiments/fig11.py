"""Figure 11: percent speedup of vertical SIMDization over single-actor-
only macro-SIMDization.

The paper reports ~40% average, Matrix Multiply Block the largest (~114%),
and near-zero for FilterBank / BeamFormer (horizontally vectorized) and
FMRadio / AudioBeam (vectorizable actors too isolated to form pipelines).

Both configurations use the §3.1/§3.2 *scalar* strided tape accesses (no
§3.4 permutation/SAGU optimization), isolating the effect of vertical
fusion itself: the pack/unpack operations it eliminates are exactly the
ones the strided access groups perform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..simd.machine import CORE_I7, MachineDescription
from ..simd.pipeline import get_pipeline_options
from .harness import Variants, arithmetic_mean, resolve_benchmarks
from .tables import format_table


@dataclass(frozen=True)
class Fig11Row:
    benchmark: str
    improvement_percent: float


@dataclass(frozen=True)
class Fig11Result:
    rows: tuple[Fig11Row, ...]

    @property
    def mean_percent(self) -> float:
        return arithmetic_mean([r.improvement_percent for r in self.rows])

    def render(self) -> str:
        body = [(r.benchmark, r.improvement_percent) for r in self.rows]
        body.append(("AVERAGE", self.mean_percent))
        return format_table(["benchmark", "vertical improvement %"], body)


#: single-actor only, scalar tape accesses (named ablation pipeline).
_SINGLE_CONFIG = get_pipeline_options("single-only/no-tape")
#: vertical enabled, scalar tape accesses (named ablation pipeline).
_VERTICAL_CONFIG = get_pipeline_options("no-tape")


def run_fig11(machine: MachineDescription = CORE_I7,
              benchmarks: Optional[Sequence[str]] = None) -> Fig11Result:
    rows: List[Fig11Row] = []
    for name in resolve_benchmarks(benchmarks):
        variants = Variants(name, machine)
        single_only = variants.macro_cpo(_SINGLE_CONFIG, tag="single-only")
        full = variants.macro_cpo(_VERTICAL_CONFIG, tag="vertical")
        rows.append(Fig11Row(name, (single_only / full - 1.0) * 100.0))
    return Fig11Result(tuple(rows))


if __name__ == "__main__":  # pragma: no cover
    print(run_fig11().render())
