"""Figure 12: percent speedup from the SAGU on macro-SIMDized code.

The paper reports ~8.1% average; Matrix Multiply (~22%) and DCT (~17%)
benefit most (pack/unpack + scalar-memory heavy), BeamFormer (pure
horizontal) and MP3 Decoder (high compute-to-communication ratio) least.

The baseline is macro-SIMDized code with the §3.1 scalar strided tape
accesses (packing/unpacking at every scalar/vector boundary) — the
overhead the SAGU was designed to eliminate.  The SAGU variant runs the
§3.4 tape-optimization pass on a machine advertising the unit, letting the
cost model move eligible boundaries to plain vector accesses with
SAGU-assisted scalar neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..simd.machine import CORE_I7, MachineDescription
from ..simd.pipeline import get_pipeline_options
from .harness import Variants, arithmetic_mean, resolve_benchmarks
from .tables import format_table

#: Baseline: macro-SIMDized, scalar strided tape accesses (§3.1) — the
#: "no-tape" named ablation pipeline.
_BASELINE_CONFIG = get_pipeline_options("no-tape")


@dataclass(frozen=True)
class Fig12Row:
    benchmark: str
    improvement_percent: float


@dataclass(frozen=True)
class Fig12Result:
    rows: tuple[Fig12Row, ...]

    @property
    def mean_percent(self) -> float:
        return arithmetic_mean([r.improvement_percent for r in self.rows])

    def render(self) -> str:
        body = [(r.benchmark, r.improvement_percent) for r in self.rows]
        body.append(("AVERAGE", self.mean_percent))
        return format_table(["benchmark", "SAGU improvement %"], body)


def run_fig12(machine: MachineDescription = CORE_I7,
              benchmarks: Optional[Sequence[str]] = None) -> Fig12Result:
    sagu_machine = machine.with_sagu()
    rows: List[Fig12Row] = []
    for name in resolve_benchmarks(benchmarks):
        base_variants = Variants(name, machine)
        sagu_variants = Variants(name, sagu_machine)
        without = base_variants.macro_cpo(_BASELINE_CONFIG, tag="no-sagu")
        with_sagu = sagu_variants.macro_cpo()
        rows.append(Fig12Row(name, (without / with_sagu - 1.0) * 100.0))
    return Fig12Result(tuple(rows))


if __name__ == "__main__":  # pragma: no cover
    print(run_fig12().render())
