"""Reproduction of every figure in the paper's evaluation (§5)."""

from .fig10 import Fig10Result, run_fig10, run_fig10a, run_fig10b
from .fig11 import Fig11Result, run_fig11
from .fig12 import Fig12Result, run_fig12
from .fig13 import Fig13Result, run_fig13
from .harness import DEFAULT_BENCHMARKS, Variants, resolve_benchmarks
from .tables import format_table

__all__ = [
    "Fig10Result", "run_fig10", "run_fig10a", "run_fig10b",
    "Fig11Result", "run_fig11",
    "Fig12Result", "run_fig12",
    "Fig13Result", "run_fig13",
    "DEFAULT_BENCHMARKS", "Variants", "resolve_benchmarks",
    "format_table",
]
