"""Steady-state schedule construction.

We build single-appearance schedules: each actor appears once, enclosed in a
for-loop running its repetition count, actors ordered topologically — the
template the paper shows in Figure 1b.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..graph.stream_graph import StreamGraph
from .init_schedule import init_counts, verify_init_counts
from .rates import check_balanced, repetition_vector


@dataclass(frozen=True)
class Schedule:
    """An executable schedule for a flat graph.

    ``init`` and ``steady`` are (actor id, firings) phases in execution
    order; ``reps`` is the steady-state repetition vector.
    """

    init: Tuple[Tuple[int, int], ...]
    steady: Tuple[Tuple[int, int], ...]
    reps: Dict[int, int]

    def steady_firings(self) -> int:
        return sum(count for _, count in self.steady)

    def rep_of(self, actor_id: int) -> int:
        return self.reps[actor_id]


def build_schedule(graph: StreamGraph,
                   reps: Dict[int, int] | None = None) -> Schedule:
    """Compute init + steady schedules for ``graph``.

    ``reps`` may be a pre-scaled repetition vector (macro-SIMDization scales
    it by Equation (1) before vectorizing); it must still satisfy the balance
    equations.

    Acyclic graphs get the single-appearance topological schedule of
    Figure 1b; graphs with feedback loops get a data-driven schedule found
    by simulating buffer occupancies from the enqueued delay items.
    """
    if reps is None:
        reps = repetition_vector(graph)
    else:
        check_balanced(graph, reps)
    if graph.has_cycle():
        return _simulated_schedule(graph, reps)
    order = graph.topological_order()
    init = init_counts(graph)
    verify_init_counts(graph, init)
    init_phase = tuple((aid, init[aid]) for aid in order if init[aid] > 0)
    steady_phase = tuple((aid, reps[aid]) for aid in order)
    return Schedule(init_phase, steady_phase, dict(reps))


class DeadlockError(Exception):
    """The cyclic graph cannot complete a steady state from its initial
    tokens (insufficient feedback-loop delays)."""


def _simulated_schedule(graph: StreamGraph, reps: Dict[int, int]) -> Schedule:
    """Demand-driven steady schedule for a cyclic graph.

    Repeatedly fires any actor that (a) still owes firings this period and
    (b) has enough buffered input on every port (peek included); initial
    tokens come from the feedback tapes' ``initial`` items.  Termination
    with unfired actors means deadlock.  Peeking filters inside cycles are
    not supported (their priming would interact with the delays); the check
    lives here so the error is actionable.
    """
    from ..graph.actor import FilterSpec

    buffered = {tid: len(tape.initial) for tid, tape in graph.tapes.items()}
    cyclic_actors = graph.actors_on_cycles()
    for actor_id in cyclic_actors:
        spec = graph.actors[actor_id].spec
        if isinstance(spec, FilterSpec) and spec.is_peeking:
            raise DeadlockError(
                f"{graph.actors[actor_id].name}: peeking filters inside "
                "feedback loops are not supported")

    def can_fire(actor_id: int) -> bool:
        for tape in graph.in_tapes(actor_id):
            need = graph.peek_rate(actor_id, tape.dst_port)
            if buffered[tape.id] < need:
                return False
        return True

    def fire(actor_id: int, firings: list) -> None:
        for tape in graph.in_tapes(actor_id):
            buffered[tape.id] -= graph.pop_rate(actor_id, tape.dst_port)
        for tape in graph.out_tapes(actor_id):
            buffered[tape.id] += graph.push_rate(actor_id, tape.src_port)
        if firings and firings[-1][0] == actor_id:
            firings[-1] = (actor_id, firings[-1][1] + 1)
        else:
            firings.append((actor_id, 1))

    # -- init phase: prime peeking filters *outside* the cycles -----------------
    init_firings: list[tuple[int, int]] = []
    residual = {tid: 0 for tid in graph.tapes}
    for tape in graph.tapes.values():
        spec = graph.actors[tape.dst].spec
        if isinstance(spec, FilterSpec) and spec.is_peeking:
            residual[tape.id] = spec.peek - spec.pop

    def try_fire(actor_id: int, visiting: frozenset) -> bool:
        """Demand-driven: fire ``actor_id``, recursively firing upstream
        producers until its inputs suffice."""
        for _ in range(1024):
            if can_fire(actor_id):
                fire(actor_id, init_firings)
                return True
            advanced = False
            for tape in graph.in_tapes(actor_id):
                need = graph.peek_rate(actor_id, tape.dst_port)
                if buffered[tape.id] >= need:
                    continue
                if tape.src in visiting:
                    return False
                if try_fire(tape.src, visiting | {actor_id}):
                    advanced = True
            if not advanced:
                return False
        return False

    for _ in range(100_000):
        deficient = next(
            (t for t in graph.tapes.values()
             if buffered[t.id] < residual[t.id]), None)
        if deficient is None:
            break
        if not try_fire(deficient.src, frozenset({deficient.dst})):
            raise DeadlockError(
                f"cannot prime peeking filter "
                f"{graph.actors[deficient.dst].name!r} (add enqueue items)")
    else:  # pragma: no cover - runaway guard
        raise DeadlockError("init priming did not converge")

    # -- steady phase ------------------------------------------------------------
    remaining = dict(reps)
    firings: list[tuple[int, int]] = []
    progress = True
    while progress and any(count > 0 for count in remaining.values()):
        progress = False
        for actor_id in sorted(remaining):
            if remaining[actor_id] == 0 or not can_fire(actor_id):
                continue
            remaining[actor_id] -= 1
            fire(actor_id, firings)
            progress = True
    starved = [graph.actors[aid].name
               for aid, count in remaining.items() if count > 0]
    if starved:
        raise DeadlockError(
            f"feedback deadlock: {starved} cannot fire (add enqueue items)")
    return Schedule(tuple(init_firings), tuple(firings), dict(reps))
