"""Repetition-vector scaling for SIMDization (Equation (1) of the paper).

Before single-actor SIMDization, every SIMDizable actor's repetition count
must be a multiple of the SIMD width ``SW``.  The paper scales the whole
vector by::

    M = max over SIMDizable actors A_i of  LCM(SW, R_i) / R_i

Each term is the smallest factor making ``R_i`` a multiple of ``SW``; the
max is taken so a single global factor works for every actor, and scaling
the entire vector keeps the balance equations satisfied.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, Iterable


def per_actor_factor(sw: int, rep: int) -> int:
    """Smallest integer f such that ``f * rep`` is a multiple of ``sw``.

    Equals ``LCM(sw, rep) / rep == sw / gcd(sw, rep)``.
    """
    if rep <= 0:
        raise ValueError(f"repetition must be positive, got {rep}")
    if sw <= 0:
        raise ValueError(f"SIMD width must be positive, got {sw}")
    return sw // gcd(sw, rep)


def simd_scaling_factor(sw: int, reps: Dict[int, int],
                        simdizable: Iterable[int]) -> int:
    """Equation (1): the global factor M for the given SIMDizable actors."""
    factor = 1
    for actor_id in simdizable:
        factor = max(factor, per_actor_factor(sw, reps[actor_id]))
    return factor


def scale_repetitions(reps: Dict[int, int], factor: int) -> Dict[int, int]:
    """Multiply every repetition count by ``factor``."""
    if factor < 1:
        raise ValueError(f"scale factor must be >= 1, got {factor}")
    return {aid: rep * factor for aid, rep in reps.items()}
