"""Initialization schedule for peeking filters.

A filter with ``peek > pop`` must find ``peek`` items on its tape at every
steady-state firing while only ``pop`` are replenished per consumed firing.
The classic StreamIt solution primes each such tape with a residual of
``delta = peek - pop`` items before the steady state starts.

We compute, in reverse topological order, the number of *init firings* each
actor needs so that after running them (in topological order) every tape
holds at least its consumer's ``delta``.
"""

from __future__ import annotations

from math import ceil
from typing import Dict

from ..graph.actor import FilterSpec
from ..graph.stream_graph import StreamGraph


def tape_residuals(graph: StreamGraph) -> Dict[int, int]:
    """Residual items each tape must hold entering the steady state."""
    residuals: Dict[int, int] = {}
    for tape in graph.tapes.values():
        spec = graph.actors[tape.dst].spec
        if isinstance(spec, FilterSpec) and spec.is_peeking:
            residuals[tape.id] = spec.peek - spec.pop
        else:
            residuals[tape.id] = 0
    return residuals


def init_counts(graph: StreamGraph) -> Dict[int, int]:
    """Number of init firings per actor (most are 0 in non-peeking graphs)."""
    residuals = tape_residuals(graph)
    counts: Dict[int, int] = {aid: 0 for aid in graph.actors}
    for actor_id in reversed(graph.topological_order()):
        needed = 0
        for tape in graph.out_tapes(actor_id):
            demand = (residuals[tape.id]
                      + counts[tape.dst] * graph.pop_rate(tape.dst, tape.dst_port))
            if demand > 0:
                push = graph.push_rate(actor_id, tape.src_port)
                needed = max(needed, ceil(demand / push))
        counts[actor_id] = needed
    return counts


def verify_init_counts(graph: StreamGraph, counts: Dict[int, int]) -> None:
    """Check that executing ``counts`` in topological order leaves every tape
    with at least its residual and never underflows.  Raises ``ValueError``
    on violation (used by tests and as a post-condition)."""
    residuals = tape_residuals(graph)
    buffered: Dict[int, int] = {tid: 0 for tid in graph.tapes}
    for actor_id in graph.topological_order():
        firings = counts[actor_id]
        if firings == 0:
            continue
        for tape in graph.in_tapes(actor_id):
            pop = graph.pop_rate(actor_id, tape.dst_port)
            peek = graph.peek_rate(actor_id, tape.dst_port)
            required = (firings - 1) * pop + peek
            if buffered[tape.id] < required:
                raise ValueError(
                    f"init underflow on tape {tape.id} into "
                    f"{graph.actors[actor_id].name}: "
                    f"{buffered[tape.id]} < {required}")
            buffered[tape.id] -= firings * pop
        for tape in graph.out_tapes(actor_id):
            buffered[tape.id] += firings * graph.push_rate(actor_id, tape.src_port)
    for tape_id, residual in residuals.items():
        if buffered[tape_id] < residual:
            raise ValueError(
                f"tape {tape_id} holds {buffered[tape_id]} after init, "
                f"needs residual {residual}")
