"""SDF scheduling: balance equations, init schedule, steady state, scaling."""

from .init_schedule import init_counts, tape_residuals, verify_init_counts
from .rates import RateError, check_balanced, repetition_vector
from .scaling import per_actor_factor, scale_repetitions, simd_scaling_factor
from .steady_state import Schedule, build_schedule

__all__ = [
    "init_counts", "tape_residuals", "verify_init_counts",
    "RateError", "check_balanced", "repetition_vector",
    "per_actor_factor", "scale_repetitions", "simd_scaling_factor",
    "Schedule", "build_schedule",
]
