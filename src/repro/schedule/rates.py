"""Steady-state rate matching (SDF balance equations).

For every tape ``p -> c``, the repetition vector R must satisfy
``R[p] * push(p) == R[c] * pop(c)`` (Lee & Messerschmitt, 1987).  We solve
by propagating rational ratios across the (undirected) graph and normalising
to the smallest positive integer vector.  An inconsistent graph (no
solution) raises :class:`RateError`.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict

from ..graph.stream_graph import StreamGraph


class RateError(Exception):
    """Raised when the balance equations have no consistent solution."""


def repetition_vector(graph: StreamGraph) -> Dict[int, int]:
    """Return the minimal repetition vector {actor id: firings per steady
    state}."""
    if not graph.actors:
        return {}

    ratios: Dict[int, Fraction] = {}
    adjacency: Dict[int, list] = {aid: [] for aid in graph.actors}
    for tape in graph.tapes.values():
        push = graph.push_rate(tape.src, tape.src_port)
        pop = graph.pop_rate(tape.dst, tape.dst_port)
        if push <= 0 or pop <= 0:
            raise RateError(
                f"tape {tape.id}: non-positive rate (push={push}, pop={pop})")
        # R[src] * push == R[dst] * pop  =>  R[dst] = R[src] * push / pop
        adjacency[tape.src].append((tape.dst, Fraction(push, pop)))
        adjacency[tape.dst].append((tape.src, Fraction(pop, push)))

    for seed in sorted(graph.actors):
        if seed in ratios:
            continue
        ratios[seed] = Fraction(1)
        stack = [seed]
        while stack:
            current = stack.pop()
            for neighbour, factor in adjacency[current]:
                expected = ratios[current] * factor
                if neighbour in ratios:
                    if ratios[neighbour] != expected:
                        raise RateError(
                            f"inconsistent rates at actor "
                            f"{graph.actors[neighbour].name!r}: "
                            f"{ratios[neighbour]} vs {expected}")
                else:
                    ratios[neighbour] = expected
                    stack.append(neighbour)

    # Scale to the smallest integer vector.
    denominator_lcm = 1
    for value in ratios.values():
        denominator_lcm = _lcm(denominator_lcm, value.denominator)
    scaled = {aid: int(value * denominator_lcm) for aid, value in ratios.items()}
    divisor = 0
    for value in scaled.values():
        divisor = gcd(divisor, value)
    if divisor > 1:
        scaled = {aid: value // divisor for aid, value in scaled.items()}
    if any(value <= 0 for value in scaled.values()):
        raise RateError("repetition vector has non-positive entries")
    return scaled


def check_balanced(graph: StreamGraph, reps: Dict[int, int]) -> None:
    """Assert that ``reps`` satisfies every balance equation."""
    for tape in graph.tapes.values():
        produced = reps[tape.src] * graph.push_rate(tape.src, tape.src_port)
        consumed = reps[tape.dst] * graph.pop_rate(tape.dst, tape.dst_port)
        if produced != consumed:
            raise RateError(
                f"tape {tape.id} unbalanced: {produced} produced vs "
                f"{consumed} consumed")


def _lcm(a: int, b: int) -> int:
    return a * b // gcd(a, b)
