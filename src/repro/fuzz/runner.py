"""Fuzz campaign orchestration: generate → check → shrink → persist.

:func:`run_fuzz` is the single entry point shared by the CLI
(``python -m repro.cli fuzz``) and the pytest smoke tests.  A campaign is
identified by ``(seed, budget)``: program *i* is drawn from
``random.Random(seed)`` after ``i`` prior draws, so any finding can be
reproduced with the same pair — and, once shrunk, survives independently
of the generator in the corpus.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from typing import Dict

from ..obs.tracer import Tracer, ensure_tracer
from ..simd.machine import MachineDescription
from .corpus import save_repro
from .descriptions import ProgramDesc
from .generator import generate_program
from .harness import Divergence, GraphTransform, check_program
from .shrink import shrink


@dataclass
class Finding:
    """One divergence: the original program, its minimized form, where
    the repro was written, and the divergence the *minimized* form hits."""

    seed: int
    index: int
    original: ProgramDesc
    minimized: ProgramDesc
    divergence: Divergence
    repro_path: Optional[Path] = None


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    seed: int
    budget: int
    programs: int = 0
    executions: int = 0
    configs_checked: int = 0
    elapsed: float = 0.0
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.findings)} finding(s)"
        return (f"fuzz seed={self.seed}: {self.programs} programs, "
                f"{self.configs_checked} configs, {self.executions} "
                f"executions in {self.elapsed:.1f}s — {status}")


def _first_divergence(desc: ProgramDesc,
                      graph_transform: Optional[GraphTransform],
                      machines: Optional[Dict[str, MachineDescription]]
                      = None,
                      backends: Optional[Tuple[str, ...]] = None
                      ) -> Optional[Divergence]:
    report = check_program(desc, graph_transform=graph_transform,
                           machines=machines, backends=backends,
                           stop_on_first=True)
    return report.divergences[0] if report.divergences else None


def run_fuzz(seed: int = 0, budget: int = 100,
             *,
             corpus_dir: Optional[Path] = None,
             time_limit: Optional[float] = None,
             graph_transform: Optional[GraphTransform] = None,
             max_findings: int = 5,
             shrink_evals: int = 200,
             tracer: Optional[Tracer] = None,
             machines: Optional[Dict[str, MachineDescription]] = None,
             backends: Optional[Tuple[str, ...]] = None
             ) -> FuzzReport:
    """Run one seeded fuzz campaign.

    ``budget`` bounds the number of generated programs; ``time_limit``
    (seconds) additionally bounds wall clock — whichever trips first ends
    the campaign.  Each divergence is shrunk against the *same* oracle
    configuration (including any injected ``graph_transform``) and, when
    ``corpus_dir`` is given, persisted as a content-addressed repro.
    The campaign stops early after ``max_findings`` divergences — a
    broken compiler fails everything, and five minimized repros beat five
    hundred raw ones.

    ``machines`` restricts the machine axis (name → description); it
    defaults to every registered target
    (:func:`repro.fuzz.harness.default_machines`).  ``backends``
    restricts the backend axis; it defaults to every available
    non-reference backend (:func:`repro.fuzz.harness.default_backends` —
    ``compiled`` plus ``vector`` when numpy is installed).

    ``tracer`` (optional) records one span per checked program plus an
    instant event per finding carrying the divergence and its Algorithm-1
    pass trail (``macross fuzz --trace``).
    """
    tracer = ensure_tracer(tracer)
    rng = random.Random(seed)
    report = FuzzReport(seed=seed, budget=budget)
    start = time.monotonic()
    with tracer.span("fuzz.campaign", cat="fuzz", seed=seed,
                     budget=budget) as campaign_span:
        for index in range(budget):
            if time_limit is not None and \
                    time.monotonic() - start >= time_limit:
                break
            desc = generate_program(rng, index=index)
            with tracer.span(f"fuzz.program[{index}]", cat="fuzz",
                             filters=desc.filter_count()) as psp:
                check = check_program(desc, graph_transform=graph_transform,
                                      machines=machines, backends=backends,
                                      stop_on_first=True)
                psp.add(configs=check.configs_checked,
                        executions=check.executions, ok=check.ok)
            report.programs += 1
            report.executions += check.executions
            report.configs_checked += check.configs_checked
            if check.ok:
                continue

            def still_fails(cand: ProgramDesc) -> bool:
                return _first_divergence(cand, graph_transform,
                                         machines, backends) is not None

            with tracer.span(f"fuzz.shrink[{index}]", cat="fuzz"):
                minimized = shrink(desc, still_fails, max_evals=shrink_evals)
                divergence = _first_divergence(minimized, graph_transform,
                                               machines, backends)
            if divergence is None:  # shrinker over-shrunk (flaky predicate)
                minimized, divergence = desc, check.divergences[0]
            finding = Finding(seed=seed, index=index, original=desc,
                              minimized=minimized, divergence=divergence)
            if corpus_dir is not None:
                finding.repro_path = save_repro(minimized, divergence,
                                                Path(corpus_dir))
            tracer.event("fuzz.finding", cat="fuzz", index=index,
                         kind=divergence.kind, config=divergence.config,
                         detail=divergence.detail,
                         pass_trail=list(divergence.pass_trail))
            report.findings.append(finding)
            if len(report.findings) >= max_findings:
                break
        report.elapsed = time.monotonic() - start
        campaign_span.add(programs=report.programs,
                          findings=len(report.findings))
    return report
