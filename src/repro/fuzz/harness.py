"""Multi-oracle differential harness.

One generated program is checked through the cross-product of

* **SIMDization option sets** — scalar, single-actor, vertical,
  horizontal, and the full cost-model-arbitrated ``auto`` configuration;
* **machines** — every target in the registry
  (:func:`repro.simd.machine.list_targets`): registering a new target
  automatically puts it under fuzz.  Names are sorted, so campaigns stay
  seed-reproducible;
* **execution backends** — the tree-walking interpreter, the closure
  compiler, and (when numpy is installed) the vectorized array backend
  (:func:`default_backends`).

Oracles, in increasing strength:

1. *structural* — the transformed graph still validates;
2. *schedule sanity* — the repetition vector balances, every actor
   fires, and the steady phase fires each actor exactly its repetition;
3. *tape conservation* — after the init phase, every steady-state cycle
   returns every internal tape to the same occupancy (SDF's defining
   invariant);
4. *output rate* — the terminal actor produces ``iterations × reps ×
   push`` items;
5. *stream equivalence* — transformed outputs are a bit-identical prefix
   extension of the scalar reference stream (SIMDized graphs produce
   more items per steady iteration, never different ones);
6. *backend equivalence* — interpreter and compiled backend agree on
   outputs, init outputs, and per-actor performance-event bags,
   event-for-event.

Any violation is reported as a :class:`Divergence`; the shrinker then
minimizes the offending program description against the same oracles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..graph.flatten import flatten
from ..graph.stream_graph import StreamGraph
from ..graph.validate import collect_problems
from ..obs import Tracer, pass_trail
from ..perf.counters import PerActorCounters
from ..runtime.backends import resolve_backend
from ..runtime.executor import ExecutionResult, _GraphRun, execute
from ..schedule.rates import check_balanced
from ..schedule.steady_state import Schedule, build_schedule
from ..simd.machine import CORE_I7, MachineDescription, get_target, \
    list_targets
from ..simd.pipeline import MacroSSOptions, SCALAR_OPTIONS, compile_graph
from .descriptions import ProgramDesc, materialize

#: SIMDization paths under test (§3.1–§3.4 + the §3.5 arbitration).
OPTION_SETS: Dict[str, MacroSSOptions] = {
    "scalar": SCALAR_OPTIONS,
    "single": MacroSSOptions(vertical=False, horizontal=False),
    "vertical": MacroSSOptions(horizontal=False),
    "horizontal": MacroSSOptions(single_actor=False, vertical=False),
    "auto": MacroSSOptions(),
}


def default_machines() -> Dict[str, MachineDescription]:
    """The fuzz machine axis: every registered target, in sorted-name
    order (sorted ⇒ config enumeration, and therefore campaign results,
    are reproducible for a given seed and registry state).

    Computed per campaign rather than at import time so targets
    registered later are fuzzed automatically.
    """
    return {name: get_target(name) for name in list_targets()}


def default_backends() -> Tuple[str, ...]:
    """The fuzz backend axis: every non-reference execution backend
    available in this environment.  The vector backend joins the matrix
    automatically when numpy is installed (each backend is differentially
    checked against the interpreter reference)."""
    from ..runtime.vector.np_compat import HAVE_NUMPY
    if HAVE_NUMPY:
        return ("compiled", "vector")
    return ("compiled",)

#: Steady iterations for the scalar reference / each transformed run.
BASELINE_ITERATIONS = 2
CHECK_ITERATIONS = 1

#: Optional hook type: ``(graph, config_label) -> graph`` applied to every
#: *transformed* graph before execution.  Tests inject miscompiles here to
#: prove the oracles catch them.
GraphTransform = Callable[[StreamGraph, str], StreamGraph]


@dataclass(frozen=True)
class Divergence:
    """One oracle violation for one (options, machine, backend) config."""

    kind: str       # validate | schedule | tape | rate | output | backend | crash
    config: str     # e.g. "auto/core-i7+sagu/compiled"
    detail: str
    #: Algorithm-1 pass trail of the compile that produced the diverging
    #: graph (pass names + decision summaries, from the per-config compile
    #: trace) — empty when the divergence predates compilation.
    pass_trail: Tuple[str, ...] = ()

    def __str__(self) -> str:
        # Single-line on purpose: callers embed this in log lines.  The
        # pass trail is printed separately by the CLI / corpus tooling.
        return f"[{self.kind}] {self.config}: {self.detail}"


def _counter_bags(per_actor: PerActorCounters) -> Dict[int, Dict[str, int]]:
    return {
        actor_id: {event: count
                   for event, count in counters.events.items() if count}
        for actor_id, counters in per_actor.by_actor.items()
        if any(counters.events.values())
    }


def _run_checked(graph: StreamGraph, schedule: Schedule,
                 machine: MachineDescription, iterations: int,
                 backend: str) -> Tuple[ExecutionResult, Optional[str]]:
    """Mirror :func:`repro.runtime.executor.execute`, additionally
    checking tape conservation after every steady cycle.

    Returns ``(result, tape_violation_or_None)``."""
    run = _GraphRun(graph, schedule, machine, resolve_backend(backend))
    run.run_phase(schedule.init)
    init_outputs = run.drain_collector()
    init_counters = run.reset_counters()
    levels = {tid: len(tape) for tid, tape in run.tapes.items()}
    violation: Optional[str] = None
    for cycle in range(iterations):
        run.run_phase(schedule.steady)
        now = {tid: len(tape) for tid, tape in run.tapes.items()}
        if violation is None and now != levels:
            deltas = {tid: (levels[tid], now[tid])
                      for tid in now if now[tid] != levels[tid]}
            violation = (f"steady cycle {cycle}: tape occupancies changed "
                         f"{deltas}")
    outputs = run.drain_collector()
    result = ExecutionResult(
        graph_name=graph.name, iterations=iterations, outputs=outputs,
        init_outputs=init_outputs, init_counters=init_counters,
        steady_counters=run.counters, schedule=schedule,
        backend=resolve_backend(backend).name)
    return result, violation


def _schedule_problems(graph: StreamGraph, schedule: Schedule) -> List[str]:
    problems: List[str] = []
    try:
        check_balanced(graph, schedule.reps)
    except Exception as exc:  # RateError
        problems.append(f"unbalanced repetition vector: {exc}")
    if set(schedule.reps) != set(graph.actors):
        problems.append("repetition vector does not cover all actors")
    bad = {aid: rep for aid, rep in schedule.reps.items() if rep < 1}
    if bad:
        problems.append(f"non-positive repetitions: {bad}")
    fired: Dict[int, int] = {}
    for actor_id, count in schedule.steady:
        fired[actor_id] = fired.get(actor_id, 0) + count
    if fired != dict(schedule.reps):
        problems.append(
            f"steady phase firings {fired} != repetition vector "
            f"{dict(schedule.reps)}")
    return problems


def _terminal_rate(graph: StreamGraph, schedule: Schedule) -> Optional[int]:
    """Expected outputs per steady iteration (None when no terminal)."""
    from ..graph.actor import FilterSpec
    terminals = [a for a in graph.actors.values()
                 if not graph.out_tapes(a.id)
                 and isinstance(a.spec, FilterSpec) and a.spec.push > 0]
    if len(terminals) != 1:
        return None
    term = terminals[0]
    return schedule.reps[term.id] * term.spec.push


@dataclass
class CheckReport:
    """Outcome of checking one program across the config matrix."""

    divergences: List[Divergence] = field(default_factory=list)
    configs_checked: int = 0
    executions: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences


def check_graph(graph: StreamGraph,
                *,
                graph_transform: Optional[GraphTransform] = None,
                option_sets: Optional[Dict[str, MacroSSOptions]] = None,
                machines: Optional[Dict[str, MachineDescription]] = None,
                backends: Optional[Tuple[str, ...]] = None,
                stop_on_first: bool = True) -> CheckReport:
    """Run the full oracle matrix on one scalar flat graph.

    ``backends`` are the non-reference execution backends to check
    against the interpreter (default :func:`default_backends`)."""
    report = CheckReport()
    option_sets = option_sets if option_sets is not None else OPTION_SETS
    machines = machines if machines is not None else default_machines()
    backends = backends if backends is not None else default_backends()

    def diverge(kind: str, config: str, detail: str,
                trail: Tuple[str, ...] = ()) -> bool:
        report.divergences.append(
            Divergence(kind, config, str(detail)[:500], trail))
        return stop_on_first

    problems = collect_problems(graph)
    if problems:
        diverge("validate", "source", "; ".join(problems))
        return report

    # Scalar reference stream (interpreter, Core-i7).
    try:
        base_schedule = build_schedule(graph)
        baseline, tape_bad = _run_checked(
            graph, base_schedule, CORE_I7, BASELINE_ITERATIONS, "interp")
        report.executions += 1
    except Exception as exc:
        diverge("crash", "baseline", f"{type(exc).__name__}: {exc}")
        return report
    if tape_bad and diverge("tape", "baseline", tape_bad):
        return report
    if not baseline.outputs:
        diverge("rate", "baseline", "reference run produced no output")
        return report

    for mach_name, machine in machines.items():
        for opt_name, options in option_sets.items():
            if opt_name == "scalar" and machine.name != CORE_I7.name:
                continue  # structurally identical to core-i7/scalar
            config = f"{opt_name}/{mach_name}"
            # Per-config compile trace: a divergence below carries the
            # Algorithm-1 pass trail that produced the diverging graph.
            ctracer = Tracer()
            try:
                compiled = compile_graph(graph, machine, options,
                                         tracer=ctracer)
                tgraph = compiled.graph
                if graph_transform is not None:
                    tgraph = graph_transform(tgraph, config)
            except Exception as exc:
                if diverge("crash", config, f"{type(exc).__name__}: {exc}",
                           pass_trail(ctracer)):
                    return report
                continue
            report.configs_checked += 1
            trail = pass_trail(ctracer)

            problems = collect_problems(tgraph)
            if problems:
                if diverge("validate", config, "; ".join(problems), trail):
                    return report
                continue
            try:
                schedule = build_schedule(tgraph)
            except Exception as exc:
                if diverge("schedule", config,
                           f"{type(exc).__name__}: {exc}", trail):
                    return report
                continue
            sched_problems = _schedule_problems(tgraph, schedule)
            if sched_problems:
                if diverge("schedule", config, "; ".join(sched_problems),
                           trail):
                    return report
                continue

            try:
                ref, tape_bad = _run_checked(
                    tgraph, schedule, machine, CHECK_ITERATIONS, "interp")
                report.executions += 1
            except Exception as exc:
                if diverge("crash", f"{config}/interp",
                           f"{type(exc).__name__}: {exc}", trail):
                    return report
                continue
            if tape_bad and diverge("tape", f"{config}/interp", tape_bad,
                                    trail):
                return report

            expected = _terminal_rate(tgraph, schedule)
            if expected is not None and \
                    len(ref.outputs) != CHECK_ITERATIONS * expected:
                if diverge("rate", f"{config}/interp",
                           f"expected {CHECK_ITERATIONS * expected} outputs, "
                           f"got {len(ref.outputs)}", trail):
                    return report

            n = min(len(ref.outputs), len(baseline.outputs))
            if n == 0:
                if diverge("rate", f"{config}/interp",
                           "transformed run produced no output", trail):
                    return report
            elif ref.outputs[:n] != baseline.outputs[:n]:
                first = next(i for i in range(n)
                             if ref.outputs[i] != baseline.outputs[i])
                if diverge("output", f"{config}/interp",
                           f"first mismatch at item {first}: "
                           f"{ref.outputs[first]!r} != "
                           f"{baseline.outputs[first]!r}", trail):
                    return report

            for backend in backends:
                backend_config = f"{config}/{backend}"
                try:
                    got = execute(tgraph, schedule, machine=machine,
                                  iterations=CHECK_ITERATIONS,
                                  backend=backend)
                    report.executions += 1
                except Exception as exc:
                    if diverge("crash", backend_config,
                               f"{type(exc).__name__}: {exc}", trail):
                        return report
                    continue
                if got.outputs != ref.outputs:
                    if diverge("backend", backend_config,
                               "steady outputs differ from interpreter",
                               trail):
                        return report
                if got.init_outputs != ref.init_outputs:
                    if diverge("backend", backend_config,
                               "init outputs differ from interpreter",
                               trail):
                        return report
                if _counter_bags(got.steady_counters) != \
                        _counter_bags(ref.steady_counters):
                    if diverge("backend", backend_config,
                               "per-actor steady counter bags differ",
                               trail):
                        return report
                if _counter_bags(got.init_counters) != \
                        _counter_bags(ref.init_counters):
                    if diverge("backend", backend_config,
                               "per-actor init counter bags differ", trail):
                        return report
    return report


#: SIMDization paths exercised by the parallel-parity oracle (the full
#: arbitration plus the scalar baseline — the two ends of the spectrum).
PARALLEL_OPTION_SETS: Dict[str, MacroSSOptions] = {
    "scalar": SCALAR_OPTIONS,
    "auto": MacroSSOptions(),
}

#: Worker counts the parallel-parity oracle runs at.
PARALLEL_CORES: Tuple[int, ...] = (1, 2, 4)

#: Partitioning strategies the parallel-parity oracle runs at.  ``lpt``
#: is the runtime default; ``opt`` routes every generated program through
#: the branch-and-bound planner, so planner-produced partitions (and the
#: capacity plans they imply) are fuzzed for output parity too.
PARALLEL_PARTITIONERS: Tuple[str, ...] = ("lpt", "opt")


def check_parallel(graph: StreamGraph,
                   *,
                   cores: Tuple[int, ...] = PARALLEL_CORES,
                   option_sets: Optional[Dict[str, MacroSSOptions]] = None,
                   machines: Optional[Dict[str, MachineDescription]] = None,
                   backends: Optional[Tuple[str, ...]] = None,
                   partitioners: Tuple[str, ...] = PARALLEL_PARTITIONERS,
                   iterations: int = 2,
                   stop_on_first: bool = True) -> CheckReport:
    """Parallel-parity oracle: the thread-based multicore runtime must be
    *event-identical* to the sequential executor.

    For every (options, machine, backend) config the scalar graph is
    compiled, executed sequentially, then executed through
    :func:`repro.multicore.parallel.parallel_execute` at each worker
    count — outputs, init outputs, and per-actor init/steady counter bags
    must match exactly.  Any mismatch (or crash, deadlock, channel
    timeout) is reported as a ``kind="parallel"`` divergence.

    ``backends`` defaults to the interpreter plus every installed
    non-reference backend (:func:`default_backends`) — with numpy present
    that includes ``"vector"``, exercising batched channel I/O and
    ndarray tapes across cores.

    ``partitioners`` adds a planning axis: each registered name is
    resolved through :func:`repro.plan.get_partitioner` per machine, so
    the ``opt`` entry fuzzes branch-and-bound partitions (and their
    capacity plans) for the same event-identical parity.  At one core
    every partition collapses to the same single-core assignment, so
    only the first partitioner runs there.
    """
    from ..multicore.parallel import parallel_execute

    report = CheckReport()
    option_sets = option_sets if option_sets is not None \
        else PARALLEL_OPTION_SETS
    backends = backends if backends is not None \
        else ("interp",) + default_backends()
    machines = machines if machines is not None else {CORE_I7.name: CORE_I7}

    def diverge(config: str, detail: str, kind: str = "parallel") -> bool:
        report.divergences.append(Divergence(kind, config,
                                             str(detail)[:500]))
        return stop_on_first

    problems = collect_problems(graph)
    if problems:
        diverge("source", "; ".join(problems), kind="validate")
        return report

    for mach_name, machine in machines.items():
        for opt_name, options in option_sets.items():
            config = f"{opt_name}/{mach_name}"
            try:
                tgraph = compile_graph(graph, machine, options).graph
                schedule = build_schedule(tgraph)
            except Exception as exc:
                if diverge(config, f"{type(exc).__name__}: {exc}",
                           kind="crash"):
                    return report
                continue
            for backend in backends:
                bconfig = f"{config}/{backend}"
                try:
                    seq = execute(tgraph, schedule, machine=machine,
                                  iterations=iterations, backend=backend)
                    report.executions += 1
                except Exception as exc:
                    if diverge(bconfig, f"{type(exc).__name__}: {exc}",
                               kind="crash"):
                        return report
                    continue
                seq_steady = _counter_bags(seq.steady_counters)
                seq_init = _counter_bags(seq.init_counters)
                for n in cores:
                    # One core: every partitioner degenerates to the same
                    # single-core assignment — checking one is enough.
                    active = partitioners[:1] if n == 1 else partitioners
                    for part_name in active:
                        pconfig = f"{bconfig}/{n}c/{part_name}"
                        report.configs_checked += 1
                        try:
                            par = parallel_execute(
                                tgraph, schedule, machine=machine,
                                iterations=iterations, backend=backend,
                                cores=n, partitioner=part_name)
                            report.executions += 1
                        except Exception as exc:
                            if diverge(pconfig,
                                       f"{type(exc).__name__}: {exc}"):
                                return report
                            continue
                        if par.outputs != seq.outputs:
                            if diverge(pconfig, "steady outputs differ "
                                                "from sequential execute"):
                                return report
                        if par.init_outputs != seq.init_outputs:
                            if diverge(pconfig, "init outputs differ from "
                                                "sequential execute"):
                                return report
                        if _counter_bags(par.steady_counters) != seq_steady:
                            if diverge(pconfig,
                                       "per-actor steady counter bags "
                                       "differ from sequential"):
                                return report
                        if _counter_bags(par.init_counters) != seq_init:
                            if diverge(pconfig,
                                       "per-actor init counter bags "
                                       "differ from sequential"):
                                return report
    return report


def check_parallel_program(desc: ProgramDesc, **kwargs) -> CheckReport:
    """Materialize ``desc`` and run the parallel-parity oracle on it."""
    try:
        graph = flatten(materialize(desc))
    except Exception as exc:
        report = CheckReport()
        report.divergences.append(Divergence(
            "crash", "materialize", f"{type(exc).__name__}: {exc}"))
        return report
    return check_parallel(graph, **kwargs)


def check_program(desc: ProgramDesc,
                  *,
                  graph_transform: Optional[GraphTransform] = None,
                  option_sets: Optional[Dict[str, MacroSSOptions]] = None,
                  machines: Optional[Dict[str, MachineDescription]] = None,
                  backends: Optional[Tuple[str, ...]] = None,
                  stop_on_first: bool = True) -> CheckReport:
    """Materialize ``desc`` and run the oracle matrix on it."""
    try:
        graph = flatten(materialize(desc))
    except Exception as exc:
        report = CheckReport()
        report.divergences.append(Divergence(
            "crash", "materialize", f"{type(exc).__name__}: {exc}"))
        return report
    return check_graph(graph, graph_transform=graph_transform,
                       option_sets=option_sets, machines=machines,
                       backends=backends, stop_on_first=stop_on_first)
