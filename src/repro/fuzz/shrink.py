"""Deterministic greedy shrinker for diverging program descriptions.

Given a description that provokes a :class:`~repro.fuzz.harness.Divergence`
and a predicate that re-checks candidates, :func:`shrink` walks a fixed
menu of structural simplifications to a fixpoint, keeping every candidate
that *still fails* and discarding the rest:

1. **stage deletion** — drop whole pipeline stages (and, inside
   split-joins, whole branch stages);
2. **split-join collapse** — replace a split-join with one of its
   branches spliced into the pipeline, or drop branches down to two;
3. **rate reduction** — lower ``pop``/``push``/``peek_extra``/
   ``source_push`` and splitter weights toward 1;
4. **body simplification** — drop post-transform funcs, neutralize
   ``scale``/``offset``/``decay``, demote exotic kinds
   (``prework``/``stateful``/``peeking`` → ``map``), collapse int/float
   mixes to a single dtype.

All candidate edits derive joiner weights from branch ratios at
materialization time (see :mod:`repro.fuzz.descriptions`), so every
candidate is rate-consistent by construction; candidates that fail for a
*different* reason than the original divergence are still accepted — the
goal is a minimal failing input, not a minimal identical one.  The whole
process is deterministic: same input description + same predicate ⇒ same
minimized output.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List, Optional, Tuple

from .descriptions import FilterDesc, ProgramDesc, SplitJoinDesc, StageDesc

#: Predicate: returns True when the candidate still exhibits the failure.
FailPredicate = Callable[[ProgramDesc], bool]

#: Safety valve — upper bound on predicate evaluations per shrink run.
MAX_EVALS = 400


def _simpler_filters(f: FilterDesc) -> Iterator[FilterDesc]:
    """Candidate one-step simplifications of a single filter, most
    aggressive first."""
    if f.kind != "map":
        yield replace(f, kind="map")
    if f.funcs:
        yield replace(f, funcs=())
        if len(f.funcs) > 1:
            yield replace(f, funcs=f.funcs[:1])
    if f.pop > 1:
        yield replace(f, pop=1)
        yield replace(f, pop=f.pop - 1)
    if f.push > 1:
        yield replace(f, push=1)
        yield replace(f, push=f.push - 1)
    if f.peek_extra > 1:
        yield replace(f, peek_extra=1)
    if f.scale not in (1, 1.0):
        yield replace(f, scale=1.0 if f.dtype == "float" else 1)
    if f.offset not in (0, 0.0):
        yield replace(f, offset=0.0 if f.out_dtype == "float" else 0)
    if f.decay != 0.5:
        yield replace(f, decay=0.5)
    if f.out_dtype != f.dtype:
        yield replace(f, out_dtype=f.dtype)


def _with_stage(stages: Tuple[StageDesc, ...], index: int,
                new: StageDesc) -> Tuple[StageDesc, ...]:
    return stages[:index] + (new,) + stages[index + 1:]


def _without_stage(stages: Tuple[StageDesc, ...],
                   index: int) -> Tuple[StageDesc, ...]:
    return stages[:index] + stages[index + 1:]


def _splitjoin_candidates(sj: SplitJoinDesc) -> Iterator[StageDesc]:
    """Smaller stand-ins for one split-join stage (still a single stage;
    branch *inlining* into the pipeline is handled by the caller)."""
    # Drop branches down to the minimum of two.
    if len(sj.branches) > 2:
        for i in range(len(sj.branches)):
            yield SplitJoinDesc(
                kind=sj.kind,
                weights=sj.weights[:i] + sj.weights[i + 1:],
                branches=sj.branches[:i] + sj.branches[i + 1:])
    # Uniform unit weights.
    if sj.kind == "roundrobin" and any(w != 1 for w in sj.weights):
        yield SplitJoinDesc(kind=sj.kind,
                            weights=(1,) * len(sj.weights),
                            branches=sj.branches)
    # Simplify branch contents.
    for bi, branch in enumerate(sj.branches):
        if len(branch) > 1:
            for si in range(len(branch)):
                nb = branch[:si] + branch[si + 1:]
                yield SplitJoinDesc(
                    kind=sj.kind, weights=sj.weights,
                    branches=sj.branches[:bi] + (nb,) + sj.branches[bi + 1:])
        for si, stage in enumerate(branch):
            inner: Iterator[StageDesc]
            if isinstance(stage, FilterDesc):
                inner = _simpler_filters(stage)
            else:
                inner = _splitjoin_candidates(stage)
            for cand in inner:
                nb = branch[:si] + (cand,) + branch[si + 1:]
                yield SplitJoinDesc(
                    kind=sj.kind, weights=sj.weights,
                    branches=sj.branches[:bi] + (nb,) + sj.branches[bi + 1:])


def _candidates(desc: ProgramDesc) -> Iterator[ProgramDesc]:
    """All one-step smaller descriptions, roughly best-first."""
    stages = desc.stages
    # 1. Delete whole stages (front-to-back so prefixes shrink first).
    for i in range(len(stages)):
        yield replace(desc, stages=_without_stage(stages, i))
    # 2. Collapse a split-join to one of its branches (spliced inline).
    for i, stage in enumerate(stages):
        if isinstance(stage, SplitJoinDesc):
            for branch in stage.branches:
                yield replace(
                    desc, stages=stages[:i] + branch + stages[i + 1:])
    # 3. Shrink the source.
    if desc.source_push > 1:
        yield replace(desc, source_push=1)
        yield replace(desc, source_push=desc.source_push - 1)
    if desc.source_dtype != "float":
        yield replace(desc, source_dtype="float")
    # 4. Per-stage simplifications.
    for i, stage in enumerate(stages):
        if isinstance(stage, FilterDesc):
            for cand in _simpler_filters(stage):
                yield replace(desc, stages=_with_stage(stages, i, cand))
        else:
            for cand in _splitjoin_candidates(stage):
                yield replace(desc, stages=_with_stage(stages, i, cand))


def _size(desc: ProgramDesc) -> Tuple[int, int]:
    """Ordering key: (filter actors, serialized weight-ish complexity)."""
    complexity = desc.source_push

    def stage_cost(stage: StageDesc) -> int:
        if isinstance(stage, FilterDesc):
            cost = stage.pop + stage.push + stage.peek_extra
            cost += len(stage.funcs)
            cost += 0 if stage.kind == "map" else 1
            cost += 0 if stage.out_dtype == stage.dtype else 1
            return cost
        return sum(stage.weights) + sum(
            stage_cost(s) for b in stage.branches for s in b)

    complexity += sum(stage_cost(s) for s in desc.stages)
    return (desc.filter_count(), complexity)


def shrink(desc: ProgramDesc, still_fails: FailPredicate,
           *, max_evals: int = MAX_EVALS) -> ProgramDesc:
    """Greedily minimize ``desc`` while ``still_fails`` holds.

    Deterministic: candidates are generated in a fixed order and the
    first improving candidate restarts the pass (first-choice hill
    descent), iterated to a fixpoint or until ``max_evals`` predicate
    calls have been spent.
    """
    current = desc
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for cand in _candidates(current):
            if _size(cand) >= _size(current):
                continue
            evals += 1
            ok = False
            try:
                ok = still_fails(cand)
            except Exception:
                ok = False  # predicate crashes are treated as "not failing"
            if ok:
                current = cand
                improved = True
                break
            if evals >= max_evals:
                break
    return replace(current, name=desc.name)
