"""Serve-parity oracle: the serving runtime must be a transparent shard.

A session round-tripped through :mod:`repro.serve` — spec serialized to
the worker, executed against the worker's persistent caches, result
encoded / transported / decoded — must be *event-identical* to a direct
:func:`repro.runtime.executor.execute` of the same program: same
outputs, same init outputs, same per-actor counter bags.  Anything else
is a ``kind="serve"`` :class:`~repro.fuzz.harness.Divergence`.

Two transports are supported:

* ``pool=`` — a live :class:`~repro.serve.pool.ServePool`: the real
  cross-process path.  CI drives three fuzz seeds through a 2-worker
  pool this way.
* inline (default) — a :class:`~repro.serve.worker.WorkerEnv` in this
  process, with the result still forced through
  ``encode_result -> pickle -> decode_result``, i.e. the identical wire
  seam minus the process hop.  Fast enough for fuzz campaigns, and the
  ``wire_filter`` hook lets mutation tests corrupt the serialized form
  to prove this oracle actually looks at the bytes.
"""

from __future__ import annotations

import pickle
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..graph.flatten import flatten
from ..runtime.executor import execute
from ..schedule.steady_state import build_schedule
from ..simd.machine import CORE_I7
from ..simd.pipeline import compile_graph
from .descriptions import ProgramDesc, desc_to_dict, materialize
from .harness import CheckReport, Divergence, _counter_bags

__all__ = ["SERVE_PIPELINES", "SERVE_TRANSPORTS", "check_serve_program"]

#: Compilation pipelines the serve oracle exercises per program — the two
#: ends of the spectrum, mirroring the parallel-parity oracle's option
#: sets.
SERVE_PIPELINES: Tuple[str, ...] = ("scalar", "full")

#: Wire transports the oracle can force on the inline path: ``"queue"``
#: is the plain pickle round trip, ``"shm"`` forces every output array
#: through a real shared-memory segment (threshold 0) and back.
SERVE_TRANSPORTS: Tuple[str, ...] = ("queue", "shm")

#: Mutation-test hook: wire dict -> wire dict, applied between encode and
#: decode on the inline transport (after shm staging, so a filter can
#: corrupt the shm envelope too).
WireFilter = Callable[[dict], dict]

#: Inline shm segments need process-unique names; one counter per import.
_INLINE_SEQ = [0]


def _serve_one_inline(env, spec, wire_filter: Optional[WireFilter],
                      wire_transport: str = "queue"):
    import os

    from ..serve.session import decode_result, encode_result
    from ..serve.transport import load_result_shm, stage_result_shm

    raw = env.run_session(spec)
    wire = encode_result(raw)
    if wire_transport == "shm":
        _INLINE_SEQ[0] += 1
        # threshold 0: every packable array takes the segment path, so
        # the oracle genuinely covers the shm encode/decode pair.
        wire = stage_result_shm(wire, uid=f"fz{os.getpid() % 100000}",
                                worker=0, seq=_INLINE_SEQ[0], threshold=0)
    if wire_filter is not None:
        wire = wire_filter(wire)
    # Force the same byte-level round trip the process queue performs.
    wire = pickle.loads(pickle.dumps(wire))
    wire = load_result_shm(wire)
    return decode_result(wire)


def check_serve_program(desc: ProgramDesc, *,
                        pool=None,
                        env=None,
                        pipelines: Sequence[str] = SERVE_PIPELINES,
                        machines: Sequence[str] = (CORE_I7.name,),
                        backend: str = "compiled",
                        iterations: int = 2,
                        wire_transport: str = "queue",
                        wire_filter: Optional[WireFilter] = None,
                        stop_on_first: bool = True) -> CheckReport:
    """Check one generated program through the serving runtime.

    ``pool`` selects the real cross-process transport (build the pool
    with the ``wire_transport`` under test); otherwise an inline
    :class:`WorkerEnv` (reused across calls when passed via ``env``)
    runs the session with the full encode/pickle/decode round trip —
    and, with ``wire_transport="shm"``, through a real shared-memory
    segment per output array.  ``wire_filter`` is inline-only by
    construction — a live pool's serializer runs in another process.
    """
    from ..serve.session import SessionSpec
    from ..serve.worker import WorkerEnv

    if pool is not None and wire_filter is not None:
        raise ValueError("wire_filter requires the inline transport "
                         "(the pool's serializer lives in another process)")
    if wire_transport not in SERVE_TRANSPORTS:
        raise ValueError(f"wire_transport must be one of "
                         f"{SERVE_TRANSPORTS}, got {wire_transport!r}")
    report = CheckReport()

    def diverge(config: str, detail: str, kind: str = "serve") -> bool:
        report.divergences.append(Divergence(kind, config,
                                             str(detail)[:500]))
        return stop_on_first

    try:
        graph = flatten(materialize(desc))
        program_wire = desc_to_dict(desc)
    except Exception as exc:
        diverge("materialize", f"{type(exc).__name__}: {exc}", kind="crash")
        return report
    if env is None and pool is None:
        env = WorkerEnv(backend)

    for mach_name in machines:
        from ..simd.machine import get_target
        machine = get_target(mach_name)
        for pipeline in pipelines:
            config = f"{pipeline}/{mach_name}/{backend}"
            report.configs_checked += 1
            try:
                tgraph = compile_graph(graph, machine,
                                       pipeline=pipeline).graph
                schedule = build_schedule(tgraph)
                ref = execute(tgraph, schedule, machine=machine,
                              iterations=iterations, backend=backend)
                report.executions += 1
            except Exception as exc:
                if diverge(config, f"{type(exc).__name__}: {exc}",
                           kind="crash"):
                    return report
                continue

            spec = SessionSpec(program=program_wire, pipeline=pipeline,
                               machine=mach_name, backend=backend,
                               iterations=iterations)
            try:
                if pool is not None:
                    served = pool.run(spec, timeout=300.0)
                else:
                    served = _serve_one_inline(env, spec, wire_filter,
                                               wire_transport)
                report.executions += 1
            except Exception as exc:
                if diverge(config, f"{type(exc).__name__}: {exc}"):
                    return report
                continue

            if served.error is not None:
                if diverge(config, f"session error: {served.error}"):
                    return report
                continue
            if served.outputs != ref.outputs:
                if diverge(config, "served outputs differ from direct "
                                   "execute"):
                    return report
            if served.init_outputs != ref.init_outputs:
                if diverge(config, "served init outputs differ from "
                                   "direct execute"):
                    return report
            if served.steady_bags != _counter_bags(ref.steady_counters):
                if diverge(config, "served steady counter bags differ "
                                   "from direct execute"):
                    return report
            if served.init_bags != _counter_bags(ref.init_counters):
                if diverge(config, "served init counter bags differ "
                                   "from direct execute"):
                    return report
    return report
