"""Serializable stream-program descriptions for the differential fuzzer.

The fuzzer never manipulates :class:`~repro.graph.structure.Program` trees
directly.  It works on a tiny declarative AST (``FilterDesc`` /
``SplitJoinDesc`` / ``ProgramDesc``) that is

* **deterministically materializable** into a real program
  (:func:`materialize`), so the same description always produces the same
  stream graph and the same outputs;
* **JSON-serializable** (:func:`desc_to_dict` / :func:`desc_from_dict`), so
  minimized repros can be persisted into ``tests/fuzz_corpus/`` and replayed
  as regression tests;
* **structurally shrinkable** (:mod:`repro.fuzz.shrink`): deleting a stage,
  reducing a weight, or simplifying a body is a pure function from one
  description to a smaller one.

The description language intentionally covers the paper's interesting
axes: stateless maps, deep-peeking FIR-style filters, stateful
accumulators (horizontal SIMDization's selling point), prework-built
coefficient tables, duplicate and round-robin split-joins with unequal
weights, isomorphic arms (horizontal candidates), int/float mixes, and
rates that force Equation (1) repetition scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fractions import Fraction
from math import lcm
from typing import Any, Dict, List, Tuple, Union

from ..graph.actor import FilterSpec, StateVar
from ..graph.builtins import duplicate_splitter, roundrobin_joiner, \
    roundrobin_splitter
from ..graph.structure import Program, StreamNode, pipeline, splitjoin
from ..ir import expr as E
from ..ir.builder import WorkBuilder, call
from ..ir.types import FLOAT, INT, Scalar

#: Filter body shapes the generator can emit.
FILTER_KINDS = ("map", "peeking", "stateful", "prework")

#: Post-transform functions, keyed by element type.
FLOAT_FUNCS = ("abs", "sqrt_abs", "sin", "cos", "floor", "neg", "halve")
INT_FUNCS = ("abs", "neg")


@dataclass(frozen=True)
class FilterDesc:
    """One filter stage.

    ``kind`` selects the body shape:

    * ``map`` — stateless: ``acc = sum(pop() * scale)``, transform, push;
    * ``peeking`` — FIR-style: ``acc = sum(peek(i) * scale)`` over
      ``pop + peek_extra`` offsets, then ``pop`` destructive reads;
    * ``stateful`` — running accumulator in persistent state (scalar
      paths must keep it scalar; horizontal arms may vectorize it);
    * ``prework`` — ``init`` fills a read-only coefficient table that the
      work body multiplies against (FIR-table idiom; stays SIMDizable).
    """

    name: str
    kind: str = "map"
    pop: int = 1
    push: int = 1
    peek_extra: int = 0
    dtype: str = "float"
    out_dtype: str = "float"
    scale: float = 1.0
    offset: float = 0.0
    decay: float = 0.5
    funcs: Tuple[str, ...] = ()

    def ratio(self) -> Fraction:
        return Fraction(self.push, self.pop)


@dataclass(frozen=True)
class SplitJoinDesc:
    """A split-join stage; ``branches`` are pipelines of stages (filters,
    or — one nesting level deep — further split-joins).

    Joiner weights are *derived* at materialization time from the branch
    rate ratios, so any weight/branch edit the shrinker makes yields a
    rate-consistent graph by construction.
    """

    kind: str  # "duplicate" | "roundrobin"
    weights: Tuple[int, ...]
    branches: Tuple[Tuple["StageDesc", ...], ...]

    def __post_init__(self) -> None:
        if len(self.branches) < 2:
            raise ValueError("split-join needs at least two branches")
        if len(self.weights) != len(self.branches):
            raise ValueError("one weight per branch required")

    def in_weight(self, index: int) -> int:
        return 1 if self.kind == "duplicate" else self.weights[index]

    @property
    def pop_per_exec(self) -> int:
        return 1 if self.kind == "duplicate" else sum(self.weights)

    def joiner_weights(self) -> Tuple[int, ...]:
        """Smallest integer joiner weights balancing every branch."""
        per_exec = [self.in_weight(i) * chain_ratio(branch)
                    for i, branch in enumerate(self.branches)]
        scale = lcm(*(q.denominator for q in per_exec))
        return tuple(int(q * scale) for q in per_exec)

    def ratio(self) -> Fraction:
        produced = sum((self.in_weight(i) * chain_ratio(branch)
                        for i, branch in enumerate(self.branches)),
                       Fraction(0))
        return produced / self.pop_per_exec


StageDesc = Union[FilterDesc, SplitJoinDesc]


def chain_ratio(stages: Tuple[StageDesc, ...]) -> Fraction:
    out = Fraction(1)
    for stage in stages:
        out *= stage.ratio()
    return out


@dataclass(frozen=True)
class ProgramDesc:
    """A whole generated program: a ramp source plus a stage chain."""

    source_push: int = 4
    source_dtype: str = "float"
    stages: Tuple[StageDesc, ...] = ()
    name: str = "fuzz"

    def final_dtype(self) -> str:
        dtype = self.source_dtype
        for stage in self.stages:
            if isinstance(stage, FilterDesc):
                dtype = stage.out_dtype
            else:
                branch = stage.branches[0]
                for inner in branch:
                    if isinstance(inner, FilterDesc):
                        dtype = inner.out_dtype
        return dtype

    def filter_count(self) -> int:
        """Number of *filter* actors the materialized flat graph will have
        (splitters/joiners excluded) — the size metric shrinking minimizes."""
        count = 1  # source

        def count_stage(stage: StageDesc) -> int:
            if isinstance(stage, FilterDesc):
                return 1
            return sum(count_stage(s) for b in stage.branches for s in b)

        count += sum(count_stage(s) for s in self.stages)
        if self.stages and isinstance(self.stages[-1], SplitJoinDesc):
            count += 1  # implicit tail collector filter
        return count


# --------------------------------------------------------------------------
# materialization
# --------------------------------------------------------------------------

def _scalar_type(dtype: str) -> Scalar:
    return INT if dtype == "int" else FLOAT


def _const(value: float, dtype: str):
    return int(value) if dtype == "int" else float(value)


def _apply_funcs(expr: E.Expr, funcs: Tuple[str, ...], dtype: str) -> E.Expr:
    for func in funcs:
        if func == "sqrt_abs":
            expr = call("sqrt", call("abs", expr))
        elif func == "neg":
            expr = -expr
        elif func == "halve":
            expr = expr * (0.5 if dtype == "float" else 1)
        else:
            expr = call(func, expr)
    return expr


def _convert(expr: E.Expr, src: str, dst: str) -> E.Expr:
    if src == dst:
        return expr
    return call("float" if dst == "float" else "int", expr)


def materialize_filter(d: FilterDesc) -> FilterSpec:
    """Build the concrete :class:`FilterSpec` for one description."""
    dtype = d.dtype
    ty = _scalar_type(dtype)
    zero = _const(0, dtype)
    scale = _const(d.scale, dtype)
    b = WorkBuilder()
    state: Tuple[StateVar, ...] = ()
    init_body: Tuple = ()
    peek = 0

    if d.kind == "peeking":
        peek = d.pop + max(1, d.peek_extra)
        acc = b.let("acc", zero, ty)
        with b.loop("i", 0, peek) as i:
            term = b.peek(i) if scale == 1 else b.peek(i) * scale
            b.set(acc, acc + term)
        with b.loop("j", 0, d.pop):
            b.stmt(b.pop())
        result: E.Expr = acc
    elif d.kind == "stateful":
        state = (StateVar("s", ty, 0, zero),)
        s = b.var("s")
        for _ in range(d.pop):
            if dtype == "int":
                b.set(s, b.pop() - s)
            else:
                b.set(s, s * float(d.decay) + b.pop())
        result = s
    elif d.kind == "prework":
        # init fills a read-only table; work convolves against it.
        state = (StateVar("w", FLOAT, d.pop, 0.0),)
        init = WorkBuilder()
        with init.loop("i", 0, d.pop) as i:
            init.set(E.ArrayRead("w", E.as_expr(i)),
                     float(d.scale) + 0.25 * i)
        init_body = init.build()
        acc = b.let("acc", 0.0)
        with b.loop("i", 0, d.pop) as i:
            b.set(acc, acc + b.pop() * E.ArrayRead("w", E.as_expr(i)))
        result = acc
    else:  # map
        acc = b.let("acc", zero, ty)
        with b.loop("i", 0, d.pop):
            term = b.pop() if scale == 1 else b.pop() * scale
            b.set(acc, acc + term)
        result = acc

    # prework accumulates in float regardless of declared input dtype.
    acc_dtype = "float" if d.kind == "prework" else dtype
    result = _apply_funcs(result, tuple(d.funcs), acc_dtype)
    out_dtype = d.out_dtype
    offset = _const(d.offset, out_dtype)
    converted = _convert(result, acc_dtype, out_dtype)
    for j in range(d.push):
        delta = offset * j if isinstance(offset, int) else round(offset * j, 6)
        b.push(converted if delta == 0 else converted + delta)
    return FilterSpec(
        d.name, pop=d.pop, push=d.push, peek=peek,
        data_type=_scalar_type("float" if d.kind == "prework" else dtype),
        output_type=_scalar_type(out_dtype),
        state=state, init_body=init_body, work_body=b.build())


def materialize_stage(stage: StageDesc) -> StreamNode:
    if isinstance(stage, FilterDesc):
        from ..graph.structure import FilterNode
        return FilterNode(materialize_filter(stage))
    splitter = (duplicate_splitter(len(stage.weights))
                if stage.kind == "duplicate"
                else roundrobin_splitter(list(stage.weights)))
    branches = [pipeline(*[materialize_stage(s) for s in branch])
                for branch in stage.branches]
    joiner = roundrobin_joiner(list(stage.joiner_weights()))
    return splitjoin(splitter, branches, joiner)


def make_source(push: int, dtype: str, name: str = "src") -> FilterSpec:
    """Deterministic ramp source of the requested element type."""
    ty = _scalar_type(dtype)
    one = _const(1, dtype)
    b = WorkBuilder()
    t = b.var("t")
    with b.loop("i", 0, push):
        b.push(t)
        b.set(t, t + one)
    return FilterSpec(name, pop=0, push=push, data_type=ty, output_type=ty,
                      state=(StateVar("t", ty, 0, _const(0, dtype)),),
                      work_body=b.build())


def make_tail(dtype: str, name: str = "tail") -> FilterSpec:
    ty = _scalar_type(dtype)
    b = WorkBuilder()
    b.push(b.pop())
    return FilterSpec(name, pop=1, push=1, data_type=ty, output_type=ty,
                      work_body=b.build())


def materialize(desc: ProgramDesc) -> Program:
    """Deterministically build the hierarchical program for ``desc``.

    A tail identity filter is appended when the last stage is a split-join
    (the executor collects the terminal *filter*'s pushes)."""
    nodes: List[StreamNode] = [materialize_stage(s) for s in desc.stages]
    from ..graph.structure import FilterNode
    head = FilterNode(make_source(desc.source_push, desc.source_dtype))
    if desc.stages and isinstance(desc.stages[-1], SplitJoinDesc):
        nodes.append(FilterNode(make_tail(desc.final_dtype())))
    return Program(desc.name, pipeline(head, *nodes))


# --------------------------------------------------------------------------
# (de)serialization
# --------------------------------------------------------------------------

def desc_to_dict(desc: ProgramDesc) -> Dict[str, Any]:
    def stage_dict(stage: StageDesc) -> Dict[str, Any]:
        if isinstance(stage, FilterDesc):
            return {
                "node": "filter", "name": stage.name, "kind": stage.kind,
                "pop": stage.pop, "push": stage.push,
                "peek_extra": stage.peek_extra,
                "dtype": stage.dtype, "out_dtype": stage.out_dtype,
                "scale": stage.scale, "offset": stage.offset,
                "decay": stage.decay, "funcs": list(stage.funcs),
            }
        return {
            "node": "splitjoin", "kind": stage.kind,
            "weights": list(stage.weights),
            "branches": [[stage_dict(s) for s in branch]
                         for branch in stage.branches],
        }

    return {
        "version": 1,
        "name": desc.name,
        "source_push": desc.source_push,
        "source_dtype": desc.source_dtype,
        "stages": [stage_dict(s) for s in desc.stages],
    }


def desc_from_dict(data: Dict[str, Any]) -> ProgramDesc:
    def stage_from(d: Dict[str, Any]) -> StageDesc:
        if d["node"] == "filter":
            return FilterDesc(
                name=d["name"], kind=d["kind"], pop=d["pop"], push=d["push"],
                peek_extra=d.get("peek_extra", 0),
                dtype=d.get("dtype", "float"),
                out_dtype=d.get("out_dtype", "float"),
                scale=d.get("scale", 1.0), offset=d.get("offset", 0.0),
                decay=d.get("decay", 0.5),
                funcs=tuple(d.get("funcs", ())))
        return SplitJoinDesc(
            kind=d["kind"], weights=tuple(d["weights"]),
            branches=tuple(tuple(stage_from(s) for s in branch)
                           for branch in d["branches"]))

    return ProgramDesc(
        source_push=data["source_push"],
        source_dtype=data.get("source_dtype", "float"),
        stages=tuple(stage_from(s) for s in data.get("stages", [])),
        name=data.get("name", "fuzz"))
