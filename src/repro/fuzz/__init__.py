"""Differential stream-graph fuzzer.

Seeded, reproducible end-to-end checking of every MacroSS SIMDization
path against the scalar reference semantics and of the compiled backend
against the interpreter.  See :mod:`repro.fuzz.harness` for the oracle
stack and :mod:`repro.fuzz.runner` for campaign orchestration.
"""

from .corpus import (DEFAULT_CORPUS, ReplayResult, desc_hash, load_corpus,
                     replay_corpus, save_repro)
from .descriptions import (FilterDesc, ProgramDesc, SplitJoinDesc,
                           desc_from_dict, desc_to_dict, materialize)
from .generator import generate_program
from .harness import (CheckReport, Divergence, GraphTransform, OPTION_SETS,
                      PARALLEL_CORES, PARALLEL_OPTION_SETS, check_graph,
                      check_parallel, check_parallel_program, check_program,
                      default_machines)
from .runner import Finding, FuzzReport, run_fuzz
from .serve_oracle import (SERVE_PIPELINES, SERVE_TRANSPORTS,
                           check_serve_program)
from .shrink import shrink

__all__ = [
    "CheckReport", "DEFAULT_CORPUS", "Divergence", "FilterDesc", "Finding",
    "FuzzReport", "GraphTransform", "OPTION_SETS", "PARALLEL_CORES",
    "PARALLEL_OPTION_SETS", "ProgramDesc", "SERVE_PIPELINES",
    "SERVE_TRANSPORTS",
    "default_machines",
    "ReplayResult", "SplitJoinDesc", "check_graph", "check_parallel",
    "check_parallel_program", "check_program", "check_serve_program",
    "desc_from_dict", "desc_hash", "desc_to_dict", "generate_program",
    "load_corpus", "materialize", "replay_corpus", "run_fuzz", "save_repro",
    "shrink",
]
