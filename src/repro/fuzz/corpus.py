"""Fuzz-corpus persistence: minimized repros as deterministic regression
tests.

Every divergence the fuzzer finds is shrunk and saved into a corpus
directory (``tests/fuzz_corpus/`` in-tree) as one JSON file per repro:

* the filename is ``repro_<hash8>.json`` where the hash is over the
  *canonical serialized description* — content-addressed, so re-finding
  the same minimized program never creates duplicates and the files are
  stable across machines and runs (no timestamps, no counters);
* the payload carries the description plus the divergence that motivated
  it (kind/config/detail) for human triage;
* :func:`replay_corpus` re-checks every stored description through the
  full oracle matrix — the regression suite every future transformation
  PR runs against.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .descriptions import ProgramDesc, desc_from_dict, desc_to_dict
from .harness import CheckReport, Divergence, check_program

#: Default in-tree corpus location (resolved relative to the repo root).
DEFAULT_CORPUS = Path(__file__).resolve().parents[3] / "tests" / "fuzz_corpus"


def desc_hash(desc: ProgramDesc) -> str:
    """Stable 8-hex-digit content hash of a description."""
    payload = desc_to_dict(desc)
    payload.pop("name", None)  # names are cosmetic
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:8]


def save_repro(desc: ProgramDesc, divergence: Optional[Divergence],
               corpus_dir: Path) -> Path:
    """Persist one minimized repro; returns the (content-addressed) path."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    entry: Dict = {"description": desc_to_dict(desc)}
    if divergence is not None:
        entry["divergence"] = {
            "kind": divergence.kind,
            "config": divergence.config,
            "detail": divergence.detail,
        }
        if divergence.pass_trail:
            entry["divergence"]["pass_trail"] = list(divergence.pass_trail)
    path = corpus_dir / f"repro_{desc_hash(desc)}.json"
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_corpus(corpus_dir: Path) -> List[Tuple[Path, ProgramDesc]]:
    """All stored repro descriptions, sorted by filename (deterministic)."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    out: List[Tuple[Path, ProgramDesc]] = []
    for path in sorted(corpus_dir.glob("repro_*.json")):
        data = json.loads(path.read_text(encoding="utf-8"))
        out.append((path, desc_from_dict(data["description"])))
    return out


@dataclass
class ReplayResult:
    """Outcome of replaying the whole corpus."""

    checked: int = 0
    failures: List[Tuple[Path, Divergence]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.failures is None:
            self.failures = []

    @property
    def ok(self) -> bool:
        return not self.failures


def replay_corpus(corpus_dir: Path = DEFAULT_CORPUS) -> ReplayResult:
    """Re-run the oracle matrix over every stored repro.

    A healthy tree replays clean: corpus entries document *fixed* bugs
    (or deliberately injected ones from the mutation tests), so any
    failure here is a regression of a previously-minimized case.
    """
    result = ReplayResult()
    for path, desc in load_corpus(corpus_dir):
        report: CheckReport = check_program(desc)
        result.checked += 1
        for div in report.divergences:
            result.failures.append((path, div))
    return result
