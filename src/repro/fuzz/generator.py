"""Seeded random generation of stream-program descriptions.

Everything is driven by one ``random.Random`` instance, so a (seed, index)
pair uniquely identifies a program — the property the corpus and the CLI's
``--seed`` flag rely on.  The generator goes deliberately beyond the
hand-rolled hypothesis strategies in ``tests/properties/``:

* stateful and deep-peeking filters, prework-built coefficient tables;
* nested pipelines and split-joins (one nesting level);
* duplicate and round-robin splitters with *unequal* weights;
* isomorphic split-join arms sized to the SIMD width, to trigger
  horizontal SIMDization;
* int/float element types with explicit conversions at stage boundaries;
* pops/pushes that are non-multiples of the SIMD width, stressing the
  Equation (1) repetition rescaling.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from .descriptions import (
    FLOAT_FUNCS,
    INT_FUNCS,
    FilterDesc,
    ProgramDesc,
    SplitJoinDesc,
    StageDesc,
)

#: Branch counts that make a split-join a horizontal candidate (the
#: default machines share SIMD width 4).
_HORIZONTAL_WIDTHS = (4, 8)

_FLOAT_SCALES = (0.5, 1.0, 1.5, 2.0, -1.5, 0.25)
_INT_SCALES = (1, 2, 3, -2)
_DECAYS = (0.25, 0.5, 0.75, 0.9)


class _NameGen:
    def __init__(self) -> None:
        self._n = 0

    def __call__(self, prefix: str = "f") -> str:
        self._n += 1
        return f"{prefix}{self._n}"


def _random_funcs(rng: random.Random, dtype: str) -> Tuple[str, ...]:
    pool = INT_FUNCS if dtype == "int" else FLOAT_FUNCS
    count = rng.choice((0, 0, 1, 1, 2))
    return tuple(rng.choice(pool) for _ in range(count))


def random_filter(rng: random.Random, names: _NameGen, dtype: str,
                  *, allow_dtype_flip: bool = True,
                  max_rate: int = 5) -> FilterDesc:
    kind = rng.choices(
        ("map", "peeking", "stateful", "prework"),
        weights=(5, 2, 2, 1 if dtype == "float" else 0))[0]
    out_dtype = dtype
    if allow_dtype_flip and rng.random() < 0.2:
        out_dtype = "int" if dtype == "float" else "float"
    scale = rng.choice(_INT_SCALES if dtype == "int" else _FLOAT_SCALES)
    offset = (rng.choice((0, 0, 1, 2)) if out_dtype == "int"
              else rng.choice((0.0, 0.0, 0.5, 1.0)))
    return FilterDesc(
        name=names(),
        kind=kind,
        pop=rng.randint(1, max_rate),
        push=rng.randint(1, max_rate),
        peek_extra=rng.randint(1, 3),
        dtype=dtype,
        out_dtype=out_dtype,
        scale=scale,
        offset=offset,
        decay=rng.choice(_DECAYS),
        funcs=_random_funcs(rng, dtype),
    )


def _isomorphic_splitjoin(rng: random.Random, names: _NameGen,
                          dtype: str) -> SplitJoinDesc:
    """Equal-weight split-join with isomorphic arms — a horizontal
    SIMDization candidate by construction (constants differ per arm)."""
    width = rng.choice(_HORIZONTAL_WIDTHS)
    duplicate = rng.random() < 0.5
    weight = 1 if duplicate else rng.randint(1, 3)
    depth = rng.randint(1, 2)
    scales = _INT_SCALES if dtype == "int" else _FLOAT_SCALES
    # One template per level; arms share everything except constants.
    templates = []
    for _ in range(depth):
        kind = rng.choices(("map", "stateful"), weights=(3, 2))[0]
        rate = rng.randint(1, 3)
        funcs = _random_funcs(rng, dtype)
        templates.append((kind, rate, funcs))
    branches: List[Tuple[StageDesc, ...]] = []
    for _arm in range(width):
        chain = []
        for kind, rate, funcs in templates:
            chain.append(FilterDesc(
                name=names("h"),
                kind=kind,
                pop=rate, push=rate,
                dtype=dtype, out_dtype=dtype,
                scale=rng.choice(scales),
                decay=rng.choice(_DECAYS),
                funcs=funcs,
            ))
        branches.append(tuple(chain))
    return SplitJoinDesc(
        kind="duplicate" if duplicate else "roundrobin",
        weights=(weight,) * width,
        branches=tuple(branches))


def _weights_reasonable(sj: SplitJoinDesc, cap: int = 24) -> bool:
    """Reject split-joins whose derived joiner weights (at any nesting
    level) would explode the repetition vector."""
    if max(sj.joiner_weights()) > cap:
        return False
    for branch in sj.branches:
        for stage in branch:
            if isinstance(stage, SplitJoinDesc) and \
                    not _weights_reasonable(stage, cap):
                return False
    return True


def _free_splitjoin(rng: random.Random, names: _NameGen, dtype: str,
                    *, depth: int) -> SplitJoinDesc:
    """General split-join: unequal weights, heterogeneous branches, and —
    while ``depth`` allows — nested split-joins inside branches."""
    for attempt in range(6):
        fanout = rng.randint(2, 4)
        duplicate = rng.random() < 0.4
        weights = tuple(1 if duplicate else rng.randint(1, 3)
                        for _ in range(fanout))
        # Later attempts force rate-balanced branches (ratio 1) so the
        # derived joiner weights stay small.
        balanced = attempt >= 3
        branches: List[Tuple[StageDesc, ...]] = []
        for _ in range(fanout):
            chain: List[StageDesc] = []
            for _ in range(rng.randint(1, 2)):
                if not balanced and depth > 0 and rng.random() < 0.15:
                    chain.append(_free_splitjoin(rng, names, dtype, depth=0))
                else:
                    f = random_filter(rng, names, dtype,
                                      allow_dtype_flip=False, max_rate=3)
                    if balanced:
                        f = FilterDesc(**{**f.__dict__, "push": f.pop,
                                          "peek_extra": min(f.peek_extra, 2)})
                    chain.append(f)
            branches.append(tuple(chain))
        candidate = SplitJoinDesc(
            kind="duplicate" if duplicate else "roundrobin",
            weights=weights, branches=tuple(branches))
        if _weights_reasonable(candidate):
            return candidate
    # Deterministic last resort: two identity branches.
    a = random_filter(rng, names, dtype, allow_dtype_flip=False, max_rate=2)
    a = FilterDesc(**{**a.__dict__, "push": a.pop})
    b = random_filter(rng, names, dtype, allow_dtype_flip=False, max_rate=2)
    b = FilterDesc(**{**b.__dict__, "push": b.pop})
    return SplitJoinDesc(kind="roundrobin", weights=(1, 2),
                         branches=((a,), (b,)))


def random_stage(rng: random.Random, names: _NameGen,
                 dtype: str) -> StageDesc:
    roll = rng.random()
    if roll < 0.15:
        return _isomorphic_splitjoin(rng, names, dtype)
    if roll < 0.30:
        return _free_splitjoin(rng, names, dtype, depth=1)
    return random_filter(rng, names, dtype)


def generate_program(rng: random.Random, *, index: int = 0,
                     max_stages: int = 4) -> ProgramDesc:
    """Draw one random-but-valid program description."""
    names = _NameGen()
    source_dtype = "int" if rng.random() < 0.25 else "float"
    dtype = source_dtype
    stages: List[StageDesc] = []
    for _ in range(rng.randint(1, max_stages)):
        stage = random_stage(rng, names, dtype)
        stages.append(stage)
        if isinstance(stage, FilterDesc):
            dtype = stage.out_dtype
    return ProgramDesc(
        source_push=rng.randint(2, 6),
        source_dtype=source_dtype,
        stages=tuple(stages),
        name=f"fuzz{index}")
