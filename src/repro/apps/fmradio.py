"""FMRadio benchmark: FM demodulation plus a multi-band equalizer.

A low-pass front end and a quadrature-free demodulator feed a duplicate
split-join of eight isomorphic band filters (band-pass FIR + gain) summed
back together — StreamIt's FMRadio shape.  The deep peeking FIRs make this
the benchmark where a strong loop auto-vectorizer (ICC) is competitive with
macro-SIMDization (unit-stride windows vectorize well either way), matching
the paper's FMRadio anomaly in Figure 10b.
"""

from __future__ import annotations

import math

from ..graph.actor import FilterSpec
from ..graph.builtins import duplicate_splitter, roundrobin_joiner
from ..graph.structure import Program, pipeline, splitjoin
from ..ir import WorkBuilder
from .dspkit import adder, bandpass_coeffs, fir_filter, gain, lowpass_coeffs
from .registry import register
from .sources import sine_source

BANDS = 8
TAPS = 32


def make_demodulator() -> FilterSpec:
    """FM demodulator (multiplicative approximation, as in StreamIt)."""
    demod_gain = 0.5
    b = WorkBuilder()
    cur = b.let("cur", b.peek(0))
    nxt = b.let("nxt", b.peek(1))
    b.push(cur * nxt * demod_gain)
    b.stmt(b.pop())
    return FilterSpec("Demod", pop=1, push=1, peek=2, work_body=b.build())


def make_band(index: int):
    low = math.pi * index / BANDS
    high = math.pi * (index + 1) / BANDS
    return pipeline(
        fir_filter(f"Band{index}", bandpass_coeffs(TAPS, low, high)),
        gain(f"BandGain{index}", 1.0 / (index + 1.0)),
    )


@register("FMRadio")
def build() -> Program:
    return Program("FMRadio", pipeline(
        sine_source("fm_src", push=8, omega=0.73),
        fir_filter("LowPass", lowpass_coeffs(TAPS, math.pi / 2)),
        make_demodulator(),
        splitjoin(duplicate_splitter(BANDS),
                  [make_band(i) for i in range(BANDS)],
                  roundrobin_joiner([1] * BANDS)),
        adder("EqCombine", BANDS),
    ))
