"""ChannelVocoder benchmark: band-split envelope follower.

Four isomorphic channels (band-pass FIR -> rectifier -> decimating
envelope FIR) inside a duplicate split-join, recombined by a weighted
adder.  Exercises horizontal SIMDization over multi-level branches whose
levels have *different* repetition counts (the envelope stage decimates)."""

from __future__ import annotations

import math

from ..graph.builtins import duplicate_splitter, roundrobin_joiner
from ..graph.structure import Program, pipeline, splitjoin
from .dspkit import adder, bandpass_coeffs, fir_filter, lowpass_coeffs, rectifier
from .registry import register
from .sources import sine_source

CHANNELS = 4
BPF_TAPS = 16
ENV_TAPS = 8
DECIMATION = 4


def make_channel(index: int):
    low = math.pi * index / CHANNELS
    high = math.pi * (index + 1) / CHANNELS
    return pipeline(
        fir_filter(f"VocBand{index}", bandpass_coeffs(BPF_TAPS, low, high)),
        rectifier(f"Rectify{index}"),
        fir_filter(f"Envelope{index}",
                   lowpass_coeffs(ENV_TAPS, math.pi / 8, gain=1.0 + index),
                   decimation=DECIMATION),
    )


@register("ChannelVocoder")
def build() -> Program:
    weights = tuple(0.5 + 0.5 * c for c in range(CHANNELS))
    return Program("ChannelVocoder", pipeline(
        sine_source("cv_src", push=8, omega=0.21),
        splitjoin(duplicate_splitter(CHANNELS),
                  [make_channel(i) for i in range(CHANNELS)],
                  roundrobin_joiner([1] * CHANNELS)),
        adder("VocCombine", CHANNELS, weights),
    ))
