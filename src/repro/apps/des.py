"""DES benchmark: a Feistel block cipher core (StreamIt's DES shape).

Integer data, bitwise rounds (shifts, XOR, AND), a stateless pipeline of
round actors — exercises the compiler's integer/bitwise path end-to-end.
Each round actor consumes a (left, right) word pair and produces the next;
an initial permutation and a final swap bracket the rounds.

The F-function is a reduced DES round (rotate + key mix + S-box-ish mixing
with multiplicative hashing) — structure over fidelity, as with the other
suite re-implementations.
"""

from __future__ import annotations

from ..graph.actor import FilterSpec, StateVar
from ..graph.structure import Program, pipeline
from ..ir import INT, WorkBuilder
from .registry import register

ROUNDS = 6
MASK = 0xFFFFFFFF
#: Per-round key constants (fixed, as StreamIt's DES bakes in the key).
_KEYS = [0x9E3779B9, 0x7F4A7C15, 0x85EBCA6B, 0xC2B2AE35,
         0x27D4EB2F, 0x165667B1]


def make_int_source(name: str = "des_src", pairs: int = 4) -> FilterSpec:
    """Stateful 32-bit word-pair source (xorshift-style)."""
    b = WorkBuilder()
    s = b.var("s")
    with b.loop("i", 0, 2 * pairs):
        b.set(s, (s * 1103515245 + 12345) % 2147483648)
        b.push(s)
    return FilterSpec(name, pop=0, push=2 * pairs, data_type=INT,
                      state=(StateVar("s", INT, 0, 88172645),),
                      work_body=b.build())


def make_initial_permutation() -> FilterSpec:
    """Bit-spreading initial permutation (word-level approximation)."""
    b = WorkBuilder()
    left = b.let("left", b.pop(), ty=INT)
    right = b.let("right", b.pop(), ty=INT)
    b.push(((left << 1) & MASK) ^ (right >> 1))
    b.push(((right << 1) & MASK) ^ (left >> 1))
    return FilterSpec("InitialPerm", pop=2, push=2, data_type=INT,
                      work_body=b.build())


def make_round(index: int) -> FilterSpec:
    """One Feistel round: (L, R) -> (R, L ^ F(R, K))."""
    key = _KEYS[index % len(_KEYS)]
    b = WorkBuilder()
    left = b.let("left", b.pop(), ty=INT)
    right = b.let("right", b.pop(), ty=INT)
    mixed = b.let("mixed", (right ^ key) & MASK, ty=INT)
    rotated = b.let("rotated",
                    ((mixed << 5) & MASK) | (mixed >> 27), ty=INT)
    f_out = b.let("f_out", (rotated * 2654435761) & MASK, ty=INT)
    b.push(right)
    b.push(left ^ f_out)
    return FilterSpec(f"Round{index}", pop=2, push=2, data_type=INT,
                      work_body=b.build())


def make_final_swap() -> FilterSpec:
    b = WorkBuilder()
    left = b.let("left", b.pop(), ty=INT)
    right = b.let("right", b.pop(), ty=INT)
    b.push(right)
    b.push(left)
    return FilterSpec("FinalSwap", pop=2, push=2, data_type=INT,
                      work_body=b.build())


@register("DES")
def build() -> Program:
    return Program("DES", pipeline(
        make_int_source(),
        make_initial_permutation(),
        *[make_round(r) for r in range(ROUNDS)],
        make_final_swap(),
    ))
