"""Matrix Multiply benchmark (4x4, StreamIt's MatrixMult shape).

A round-robin splitter separates the interleaved A/B matrix stream; the B
path is transposed so the multiply kernel reads both operands with unit
stride; a joiner recombines and the multiply actor produces C.  The
split-join branches are *not* isomorphic (identity vs transpose), so the
gains here come from single-actor SIMDization — and the large strided
boundary traffic makes Matrix Multiply the biggest SAGU winner in
Figure 12 (~22%).
"""

from __future__ import annotations

from ..graph.actor import FilterSpec
from ..graph.builtins import roundrobin_joiner, roundrobin_splitter
from ..graph.structure import Program, pipeline, splitjoin
from ..ir import FLOAT, WorkBuilder
from .registry import register
from .sources import lcg_source

DIM = 4
CELLS = DIM * DIM


def make_identity() -> FilterSpec:
    b = WorkBuilder()
    with b.loop("i", 0, CELLS):
        b.push(b.pop())
    return FilterSpec("PassA", pop=CELLS, push=CELLS, work_body=b.build())


def make_transpose() -> FilterSpec:
    b = WorkBuilder()
    a = b.array("a", FLOAT, CELLS)
    with b.loop("i", 0, CELLS) as i:
        b.set(a[i], b.pop())
    with b.loop("c", 0, DIM) as c:
        with b.loop("r", 0, DIM) as r:
            b.push(a[r * DIM + c])
    return FilterSpec("TransposeB", pop=CELLS, push=CELLS, work_body=b.build())


def make_multiply() -> FilterSpec:
    """C = A * B^T-form multiply: both operand rows are unit-stride."""
    b = WorkBuilder()
    a = b.array("a", FLOAT, CELLS)
    bt = b.array("bt", FLOAT, CELLS)
    with b.loop("i", 0, CELLS) as i:
        b.set(a[i], b.pop())
    with b.loop("i", 0, CELLS) as i:
        b.set(bt[i], b.pop())
    with b.loop("r", 0, DIM) as r:
        with b.loop("c", 0, DIM) as c:
            acc = b.let("acc", 0.0)
            with b.loop("k", 0, DIM) as k:
                b.set(acc, acc + a[r * DIM + k] * bt[c * DIM + k])
            b.push(acc)
    return FilterSpec("Multiply", pop=2 * CELLS, push=CELLS,
                      work_body=b.build())


@register("MatrixMult")
def build() -> Program:
    return Program("MatrixMult", pipeline(
        lcg_source("mm_src", push=2 * CELLS),
        splitjoin(roundrobin_splitter([CELLS, CELLS]),
                  [make_identity(), make_transpose()],
                  roundrobin_joiner([CELLS, CELLS])),
        make_multiply(),
    ))
