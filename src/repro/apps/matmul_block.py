"""Matrix Multiply Block benchmark (blocked 4x4 multiply).

Unlike plain MatrixMult, the blocked version is a deep pipeline of
stateless reorder / block-multiply / merge actors with heavy tape traffic
between them.  Vertically fusing the chain eliminates an enormous amount of
packing/unpacking, which is why Matrix Multiply Block shows the largest
vertical-SIMDization gain in Figure 11 (~114%).
"""

from __future__ import annotations

from ..graph.actor import FilterSpec
from ..graph.builtins import roundrobin_joiner, roundrobin_splitter
from ..graph.structure import Program, pipeline, splitjoin
from ..ir import FLOAT, WorkBuilder
from .matmul import make_identity, make_transpose
from .registry import register
from .sources import lcg_source

DIM = 4
HALF = DIM // 2
CELLS = DIM * DIM


def _block_index(block_row: int, block_col: int, r: int, c: int) -> int:
    """Row-major index of element (r, c) of 2x2 block (block_row, block_col)."""
    return (block_row * HALF + r) * DIM + (block_col * HALF + c)


def make_block_reorder() -> FilterSpec:
    """Rearrange both matrices from row-major into block-major order."""
    b = WorkBuilder()
    a = b.array("a", FLOAT, 2 * CELLS)
    with b.loop("i", 0, 2 * CELLS) as i:
        b.set(a[i], b.pop())
    for matrix in range(2):
        base = matrix * CELLS
        for block_row in range(2):
            for block_col in range(2):
                for r in range(HALF):
                    for c in range(HALF):
                        b.push(a[base + _block_index(block_row, block_col, r, c)])
    return FilterSpec("BlockReorder", pop=2 * CELLS, push=2 * CELLS,
                      work_body=b.build())


def make_block_multiply() -> FilterSpec:
    """Multiply in 2x2 blocks: C_ij = sum_k A_ik * B_kj (B pre-transposed,
    so B_kj blocks arrive as rows)."""
    b = WorkBuilder()
    a = b.array("a", FLOAT, CELLS)
    bt = b.array("bt", FLOAT, CELLS)
    with b.loop("i", 0, CELLS) as i:
        b.set(a[i], b.pop())
    with b.loop("i", 0, CELLS) as i:
        b.set(bt[i], b.pop())

    block = HALF * HALF  # elements per block in block-major layout

    def a_at(br: int, bk: int, r: int, k: int) -> int:
        return (br * 2 + bk) * block + r * HALF + k

    def bt_at(bc: int, bk: int, c: int, k: int) -> int:
        return (bc * 2 + bk) * block + c * HALF + k

    for block_row in range(2):
        for block_col in range(2):
            for r in range(HALF):
                for c in range(HALF):
                    acc = b.let(f"acc{block_row}{block_col}{r}{c}", 0.0)
                    for bk in range(2):
                        for k in range(HALF):
                            b.set(acc, acc
                                  + a[a_at(block_row, bk, r, k)]
                                  * bt[bt_at(block_col, bk, c, k)])
                    b.push(acc)
    return FilterSpec("BlockMultiply", pop=2 * CELLS, push=CELLS,
                      work_body=b.build())


def make_block_interleave() -> FilterSpec:
    """Interleave the A and B block streams operand-by-operand (pure data
    movement, as in the StreamIt original's block distributors)."""
    b = WorkBuilder()
    a = b.array("a", FLOAT, 2 * CELLS)
    with b.loop("i", 0, 2 * CELLS) as i:
        b.set(a[i], b.pop())
    block = HALF * HALF
    for pair in range(2 * CELLS // block // 2):
        for e in range(block):
            b.push(a[pair * block + e])
            b.push(a[CELLS + pair * block + e])
    return FilterSpec("BlockInterleave", pop=2 * CELLS, push=2 * CELLS,
                      work_body=b.build())


def make_block_deinterleave() -> FilterSpec:
    """Undo the operand interleave ahead of the multiplier."""
    b = WorkBuilder()
    a = b.array("a", FLOAT, 2 * CELLS)
    with b.loop("i", 0, 2 * CELLS) as i:
        b.set(a[i], b.pop())
    for half in range(2):
        with b.loop("j", 0, CELLS) as j:
            b.push(a[j * 2 + half])
    return FilterSpec("BlockDeinterleave", pop=2 * CELLS, push=2 * CELLS,
                      work_body=b.build())


def make_operand_duplicate() -> FilterSpec:
    """Emit each operand block twice (the StreamIt original duplicates
    blocks to every consumer that needs them — pure data movement)."""
    b = WorkBuilder()
    a = b.array("a", FLOAT, 2 * CELLS)
    with b.loop("i", 0, 2 * CELLS) as i:
        b.set(a[i], b.pop())
    block = HALF * HALF
    for blk in range(2 * CELLS // block):
        for copy in range(2):
            for e in range(block):
                b.push(a[blk * block + e])
    return FilterSpec("BlockDuplicate", pop=2 * CELLS, push=4 * CELLS,
                      work_body=b.build())


def make_operand_select() -> FilterSpec:
    """Drop the duplicate copies again (the consumer-side selector)."""
    b = WorkBuilder()
    a = b.array("a", FLOAT, 4 * CELLS)
    with b.loop("i", 0, 4 * CELLS) as i:
        b.set(a[i], b.pop())
    block = HALF * HALF
    for blk in range(2 * CELLS // block):
        for e in range(block):
            b.push(a[blk * 2 * block + e])
    return FilterSpec("BlockSelect", pop=4 * CELLS, push=2 * CELLS,
                      work_body=b.build())


def make_block_merge() -> FilterSpec:
    """Back from block-major to row-major."""
    b = WorkBuilder()
    a = b.array("a", FLOAT, CELLS)
    with b.loop("i", 0, CELLS) as i:
        b.set(a[i], b.pop())
    for r in range(DIM):
        for c in range(DIM):
            block_row, rr = divmod(r, HALF)
            block_col, cc = divmod(c, HALF)
            b.push(a[(block_row * 2 + block_col) * HALF * HALF
                     + rr * HALF + cc])
    return FilterSpec("BlockMerge", pop=CELLS, push=CELLS, work_body=b.build())


@register("MatrixMultBlock")
def build() -> Program:
    return Program("MatrixMultBlock", pipeline(
        lcg_source("mmb_src", push=2 * CELLS),
        splitjoin(roundrobin_splitter([CELLS, CELLS]),
                  [make_identity(), make_transpose()],
                  roundrobin_joiner([CELLS, CELLS])),
        make_block_reorder(),
        make_operand_duplicate(),
        make_operand_select(),
        make_block_interleave(),
        make_block_deinterleave(),
        make_block_multiply(),
        make_block_merge(),
    ))
