"""BeamFormer benchmark: multi-channel beamforming front end.

Two cascaded split-joins: a duplicate split over four sensor channels, each
running a *stateful* decimating FIR (per-channel calibration coefficients),
then a duplicate split over four steered beams, each a stateless weighted
combiner with per-beam weights.  Stateful channel filters block vertical
SIMDization and pipeline collapsing, so — as the paper observes — nearly
all of BeamFormer's speedup comes from horizontal SIMDization of the two
isomorphic actor sets.
"""

from __future__ import annotations

import math

from ..graph.actor import FilterSpec, StateVar
from ..graph.builtins import duplicate_splitter, roundrobin_joiner
from ..graph.structure import Program, pipeline, splitjoin
from ..ir import FLOAT, INT, ArrayHandle, WorkBuilder
from .dspkit import adder
from .registry import register
from .sources import lcg_source

CHANNELS = 4
BEAMS = 4
HISTORY = 4
DECIMATION = 2


def make_channel_fir(index: int) -> FilterSpec:
    """Stateful decimating FIR: keeps a HISTORY-deep ring of samples and
    emits their calibrated dot product every DECIMATION inputs."""
    coeffs = tuple(
        math.cos(0.4 * index + 0.7 * tap) / HISTORY
        for tap in range(HISTORY))
    b = WorkBuilder()
    hist = ArrayHandle("hist")
    coeff = b.array("coeff", FLOAT, HISTORY, init=coeffs)
    ph = b.var("ph")
    with b.loop("j", 0, DECIMATION):
        b.set(hist[ph], b.pop())
        b.set(ph, (ph + 1) % HISTORY)
    acc = b.let("acc", 0.0)
    with b.loop("t", 0, HISTORY) as t:
        b.set(acc, acc + hist[t] * coeff[t])
    b.push(acc)
    return FilterSpec(
        f"ChannelFIR{index}", pop=DECIMATION, push=1,
        state=(StateVar("hist", FLOAT, HISTORY, 0.0),
               StateVar("ph", INT, 0, 0)),
        work_body=b.build(),
    )


def make_beam(index: int) -> FilterSpec:
    """Stateless steering combiner: weighted sum of the CHANNELS samples."""
    weights = tuple(math.cos(2 * math.pi * index * ch / CHANNELS)
                    for ch in range(CHANNELS))
    b = WorkBuilder()
    w = b.array("w", FLOAT, CHANNELS, init=weights)
    acc = b.let("acc", 0.0)
    with b.loop("c", 0, CHANNELS) as c:
        b.set(acc, acc + b.pop() * w[c])
    b.push(acc * acc)
    return FilterSpec(f"Beam{index}", pop=CHANNELS, push=1,
                      work_body=b.build())


@register("BeamFormer")
def build() -> Program:
    return Program("BeamFormer", pipeline(
        lcg_source("bf_src", push=8),
        splitjoin(duplicate_splitter(CHANNELS),
                  [make_channel_fir(i) for i in range(CHANNELS)],
                  roundrobin_joiner([1] * CHANNELS)),
        splitjoin(duplicate_splitter(BEAMS),
                  [make_beam(i) for i in range(BEAMS)],
                  roundrobin_joiner([1] * BEAMS)),
        adder("Detect", BEAMS),
    ))
