"""Registry of benchmark programs (populated as apps are defined)."""

from __future__ import annotations

from typing import Callable, Dict

from ..graph.structure import Program

#: name -> zero-argument factory returning a Program.
BENCHMARKS: Dict[str, Callable[[], Program]] = {}


def register(name: str):
    def decorator(factory: Callable[[], Program]):
        BENCHMARKS[name] = factory
        return factory
    return decorator


def get_benchmark(name: str) -> Program:
    factory = BENCHMARKS.get(name)
    if factory is None:
        # Case-insensitive fallback so e.g. ``macross run fmradio`` works.
        matches = [key for key in BENCHMARKS if key.lower() == name.lower()]
        if len(matches) == 1:
            factory = BENCHMARKS[matches[0]]
    if factory is None:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}")
    return factory()


def _populate() -> None:
    """Import app modules for their registration side effects."""
    from . import (  # noqa: F401
        audiobeam,
        beamformer,
        bitonic,
        channelvocoder,
        dct,
        des,
        fft,
        filterbank,
        fmradio,
        matmul,
        matmul_block,
        mp3decoder,
        radar,
        running_example,
        stream,
        vocoder,
    )
    BENCHMARKS.setdefault("RunningExample", running_example.build)


_populate()
