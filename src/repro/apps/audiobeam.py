"""AudioBeam benchmark: delay-and-sum acoustic beamforming over a
microphone array.

Eight stateful per-microphone conditioning actors (delay line + per-mic
gain) sit in a duplicate split-join, followed by the delay-and-sum
combiner.  The vectorizable actors are isolated single actors rather than
pipelines, so — as the paper notes — AudioBeam offers almost no vertical
SIMDization opportunity; its gains come from the horizontal pass.
"""

from __future__ import annotations

from ..graph.builtins import duplicate_splitter, roundrobin_joiner
from ..graph.structure import Program, pipeline, splitjoin
from .dspkit import adder, delay_line
from .registry import register
from .sources import lcg_source

MICS = 8
DELAY = 4


@register("AudioBeam")
def build() -> Program:
    mics = [delay_line(f"Mic{i}", DELAY, gain_value=1.0 / (1.0 + 0.25 * i))
            for i in range(MICS)]
    weights = tuple(1.0 / MICS for _ in range(MICS))
    return Program("AudioBeam", pipeline(
        lcg_source("ab_src", push=8),
        splitjoin(duplicate_splitter(MICS), mics,
                  roundrobin_joiner([1] * MICS)),
        adder("DelaySum", MICS, weights),
    ))
