"""BitonicSort benchmark: the 8-key bitonic sorting network.

Each network stage is one stateless actor of unrolled compare-exchange
(min/max) pairs — exactly StreamIt's BitonicSort decomposition.  The six
stage actors form one long vertical fusion chain, and min/max map directly
onto SIMD instructions.
"""

from __future__ import annotations

from typing import List, Tuple

from ..graph.actor import FilterSpec
from ..graph.structure import Program, pipeline
from ..ir import FLOAT, WorkBuilder, call
from .registry import register
from .sources import lcg_source

KEYS = 8


def _network() -> List[List[Tuple[int, int, bool]]]:
    """Stages of (i, j, ascending) compare-exchange pairs for the bitonic
    network over ``KEYS`` keys."""
    stages: List[List[Tuple[int, int, bool]]] = []
    k = 2
    while k <= KEYS:
        j = k // 2
        while j >= 1:
            stage: List[Tuple[int, int, bool]] = []
            for i in range(KEYS):
                partner = i ^ j
                if partner > i:
                    ascending = (i & k) == 0
                    stage.append((i, partner, ascending))
            stages.append(stage)
            j //= 2
        k *= 2
    return stages


def make_stage(index: int,
               pairs: List[Tuple[int, int, bool]]) -> FilterSpec:
    b = WorkBuilder()
    a = b.array("a", FLOAT, KEYS)
    out = b.array("out", FLOAT, KEYS)
    with b.loop("i", 0, KEYS) as i:
        b.set(a[i], b.pop())
    for i, j, ascending in pairs:
        lo = b.let(f"lo{i}_{j}", call("min", a[i], a[j]))
        hi = b.let(f"hi{i}_{j}", call("max", a[i], a[j]))
        if ascending:
            b.set(out[i], lo)
            b.set(out[j], hi)
        else:
            b.set(out[i], hi)
            b.set(out[j], lo)
    with b.loop("i", 0, KEYS) as i:
        b.push(out[i])
    return FilterSpec(f"CompareExchange{index}", pop=KEYS, push=KEYS,
                      work_body=b.build())


@register("BitonicSort")
def build() -> Program:
    stages = [make_stage(i, pairs) for i, pairs in enumerate(_network())]
    return Program("BitonicSort", pipeline(
        lcg_source("sort_src", push=KEYS),
        *stages,
    ))
