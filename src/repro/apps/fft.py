"""FFT benchmark: 16-point complex FFT as a pipeline of butterfly stages.

Structure follows StreamIt's CoarseSerializedFFT: a bit-reversal reorder
actor, log2(N) butterfly stage actors, and a magnitude tail.  Every stage is
stateless and non-peeking, so MacroSS fuses the whole pipeline vertically
and SIMDizes the coarse actor — the shape behind FFT's vertical gains in
Figure 11.

Samples are interleaved complex (re, im), so frames are ``2 * N`` floats.
"""

from __future__ import annotations

import math

from ..graph.actor import FilterSpec
from ..graph.structure import Program, pipeline
from ..ir import FLOAT, WorkBuilder, call
from .registry import register
from .sources import lcg_source

N = 16
FRAME = 2 * N


def _bit_reverse(value: int, bits: int) -> int:
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def make_reorder() -> FilterSpec:
    """Bit-reversal permutation of N complex samples."""
    bits = int(math.log2(N))
    b = WorkBuilder()
    a = b.array("a", FLOAT, FRAME)
    with b.loop("i", 0, FRAME) as i:
        b.set(a[i], b.pop())
    for out_index in range(N):
        src = _bit_reverse(out_index, bits)
        b.push(a[2 * src])
        b.push(a[2 * src + 1])
    return FilterSpec("Reorder", pop=FRAME, push=FRAME, work_body=b.build())


def make_stage(stage: int) -> FilterSpec:
    """One radix-2 butterfly stage (stage in [0, log2(N)))."""
    half = 1 << stage
    span = half * 2
    b = WorkBuilder()
    a = b.array("a", FLOAT, FRAME)
    out = b.array("out", FLOAT, FRAME)
    with b.loop("i", 0, FRAME) as i:
        b.set(a[i], b.pop())
    for group in range(0, N, span):
        for k in range(half):
            top = group + k
            bot = group + k + half
            angle = -2.0 * math.pi * k / span
            wr, wi = math.cos(angle), math.sin(angle)
            # t = w * a[bot]; out[top] = a[top] + t; out[bot] = a[top] - t
            tr = b.let(f"tr_{top}",
                       a[2 * bot] * wr - a[2 * bot + 1] * wi)
            ti = b.let(f"ti_{top}",
                       a[2 * bot] * wi + a[2 * bot + 1] * wr)
            b.set(out[2 * top], a[2 * top] + tr)
            b.set(out[2 * top + 1], a[2 * top + 1] + ti)
            b.set(out[2 * bot], a[2 * top] - tr)
            b.set(out[2 * bot + 1], a[2 * top + 1] - ti)
    with b.loop("i", 0, FRAME) as i:
        b.push(out[i])
    return FilterSpec(f"Butterfly{stage}", pop=FRAME, push=FRAME,
                      work_body=b.build())


def make_magnitude() -> FilterSpec:
    """Complex magnitude tail: (re, im) -> |z|."""
    b = WorkBuilder()
    re = b.let("re", b.pop())
    im = b.let("im", b.pop())
    b.push(call("sqrt", re * re + im * im))
    return FilterSpec("Magnitude", pop=2, push=1, work_body=b.build())


@register("FFT")
def build() -> Program:
    stages = [make_stage(s) for s in range(int(math.log2(N)))]
    return Program("FFT", pipeline(
        lcg_source("fft_src", push=FRAME),
        make_reorder(),
        *stages,
        make_magnitude(),
    ))
