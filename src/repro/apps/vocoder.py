"""Vocoder benchmark: short-frame phase-vocoder pipeline.

A frame DFT (compute heavy, stateless), a magnitude/phase converter that
calls ``atan2`` — which the SSE-class machine model has no vector form of,
so the actor correctly stays scalar — a stateful phase accumulator, and a
resynthesis oscillator.  The mix of vectorized and scalar actors means data
repeatedly crosses the scalar/vector boundary, exercising the permutation
and SAGU tape optimizations on a graph the other benchmarks don't resemble.
"""

from __future__ import annotations

import math

from ..graph.actor import FilterSpec, StateVar
from ..graph.structure import Program, pipeline
from ..ir import FLOAT, ArrayHandle, WorkBuilder, call
from .registry import register
from .sources import sine_source

FRAME = 8
BINS = FRAME // 2


def make_frame_dft() -> FilterSpec:
    """Real DFT of a FRAME-sample window: BINS (re, im) pairs out."""
    b = WorkBuilder()
    x = b.array("x", FLOAT, FRAME)
    with b.loop("i", 0, FRAME) as i:
        b.set(x[i], b.pop())
    for k in range(BINS):
        re = b.let(f"re{k}", 0.0)
        im = b.let(f"im{k}", 0.0)
        for n in range(FRAME):
            angle = -2.0 * math.pi * k * n / FRAME
            b.set(re, re + x[n] * math.cos(angle))
            b.set(im, im + x[n] * math.sin(angle))
        b.push(re)
        b.push(im)
    return FilterSpec("FrameDFT", pop=FRAME, push=2 * BINS,
                      work_body=b.build())


def make_mag_phase() -> FilterSpec:
    """Cartesian -> polar; ``atan2`` has no SSE vector form, so this actor
    is rejected by the SIMDizability analysis and stays scalar."""
    b = WorkBuilder()
    re = b.let("re", b.pop())
    im = b.let("im", b.pop())
    b.push(call("sqrt", re * re + im * im))
    b.push(call("atan2", im, re + 1e-12))
    return FilterSpec("MagPhase", pop=2, push=2, work_body=b.build())


def make_phase_unwrap() -> FilterSpec:
    """Stateful phase accumulator (running phase per frame stream)."""
    b = WorkBuilder()
    acc = b.var("acc")
    mag = b.let("mag", b.pop())
    phase = b.let("phase", b.pop())
    b.set(acc, acc + phase * 0.5)
    b.push(mag)
    b.push(acc)
    return FilterSpec(
        "PhaseUnwrap", pop=2, push=2,
        state=(StateVar("acc", FLOAT, 0, 0.0),),
        work_body=b.build(),
    )


def make_resynth() -> FilterSpec:
    """Oscillator-bank resynthesis: sample = mag * cos(phase)."""
    b = WorkBuilder()
    mag = b.let("mag", b.pop())
    phase = b.let("phase", b.pop())
    b.push(mag * call("cos", phase))
    return FilterSpec("Resynth", pop=2, push=1, work_body=b.build())


@register("Vocoder")
def build() -> Program:
    return Program("Vocoder", pipeline(
        sine_source("voc_src", push=FRAME, omega=0.41),
        make_frame_dft(),
        make_mag_phase(),
        make_phase_unwrap(),
        make_resynth(),
    ))
