"""STREAM-idiom microbenchmarks (copy / scale / add / triad).

McCalpin's STREAM kernels re-expressed as stream graphs: a deterministic
ramp source, one data-parallel work filter doing the idiom arithmetic
over ``BLOCK`` elements per firing, and a passthrough tail that keeps
every computed element in the collected output stream.  Every actor is
stateless or affine-stateful, so the whole pipeline rides the vector
backend's array fast path — these graphs are the bandwidth ceiling of
the roofline benchmark (``benchmarks/test_roofline.py``), with the paper
apps plotted against them.

``add`` and ``triad`` read two logical streams interleaved on one tape
(x0 y0 x1 y1 ...), which is the stream-graph shape of STREAM's two-array
reads.
"""

from __future__ import annotations

from ..graph.actor import FilterSpec
from ..graph.structure import Program, pipeline
from ..ir import WorkBuilder
from .registry import register
from .sources import passthrough_sink, ramp_source

#: Elements processed per work-filter firing.
BLOCK = 32

#: STREAM's scalar constant (q in ``a[i] = b[i] + q * c[i]``).
SCALE_Q = 3.0


def copy_filter(name: str = "Copy", block: int = BLOCK) -> FilterSpec:
    b = WorkBuilder()
    with b.loop("i", 0, block):
        b.push(b.pop())
    return FilterSpec(name, pop=block, push=block, work_body=b.build())


def scale_filter(name: str = "Scale", block: int = BLOCK,
                 q: float = SCALE_Q) -> FilterSpec:
    b = WorkBuilder()
    with b.loop("i", 0, block):
        b.push(b.pop() * q)
    return FilterSpec(name, pop=block, push=block, work_body=b.build())


def add_filter(name: str = "Add", block: int = BLOCK) -> FilterSpec:
    """``c[i] = a[i] + b[i]`` over an interleaved pair stream."""
    b = WorkBuilder()
    with b.loop("i", 0, block):
        x = b.let("x", b.pop())
        y = b.let("y", b.pop())
        b.push(x + y)
    return FilterSpec(name, pop=2 * block, push=block, work_body=b.build())


def triad_filter(name: str = "Triad", block: int = BLOCK,
                 q: float = SCALE_Q) -> FilterSpec:
    """``a[i] = b[i] + q * c[i]`` over an interleaved pair stream."""
    b = WorkBuilder()
    with b.loop("i", 0, block):
        x = b.let("x", b.pop())
        y = b.let("y", b.pop())
        b.push(x + q * y)
    return FilterSpec(name, pop=2 * block, push=block, work_body=b.build())


def _stream_program(name: str, work: FilterSpec, pairs: bool) -> Program:
    push = 2 * BLOCK if pairs else BLOCK
    top = pipeline(
        ramp_source("ramp", push=push, step=0.5),
        work,
        passthrough_sink("out", pop=BLOCK),
    )
    return Program(name, top)


@register("StreamCopy")
def build_copy() -> Program:
    return _stream_program("stream_copy", copy_filter(), pairs=False)


@register("StreamScale")
def build_scale() -> Program:
    return _stream_program("stream_scale", scale_filter(), pairs=False)


@register("StreamAdd")
def build_add() -> Program:
    return _stream_program("stream_add", add_filter(), pairs=True)


@register("StreamTriad")
def build_triad() -> Program:
    return _stream_program("stream_triad", triad_filter(), pairs=True)


#: The idiom family, in roofline order.
STREAM_APPS = ("StreamCopy", "StreamScale", "StreamAdd", "StreamTriad")
