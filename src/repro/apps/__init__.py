"""Benchmark applications (StreamIt-suite equivalents) and the paper's
running example, all written against the public DSL."""

from .registry import BENCHMARKS, get_benchmark

__all__ = ["BENCHMARKS", "get_benchmark"]
