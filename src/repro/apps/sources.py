"""Reusable source and sink filters for the benchmark programs.

Sources are stateful (a counter or PRNG seed) so they are — correctly —
excluded from SIMDization, exactly like StreamIt's file/radio sources on
the paper's platform.  All sources are deterministic, so scalar and
SIMDized executions of a program are comparable element-for-element.
"""

from __future__ import annotations

from ..graph.actor import FilterSpec, StateVar
from ..ir import FLOAT, INT, WorkBuilder, call


def lcg_source(name: str = "source", push: int = 8,
               seed: int = 12345) -> FilterSpec:
    """Pseudo-random floats in [-1, 1) from a 31-bit linear congruential
    generator (the classic glibc constants)."""
    b = WorkBuilder()
    state = b.var("seed")
    with b.loop("i", 0, push):
        b.set(state, (state * 1103515245 + 12345) % 2147483648)
        b.push(call("float", state % 2000) / 1000.0 - 1.0)
    return FilterSpec(
        name, pop=0, push=push,
        state=(StateVar("seed", INT, 0, seed),),
        work_body=b.build(),
    )


def ramp_source(name: str = "ramp", push: int = 8,
                step: float = 1.0) -> FilterSpec:
    """Monotone ramp source: 0, step, 2*step, ... (easy to reason about in
    tests)."""
    b = WorkBuilder()
    t = b.var("t")
    with b.loop("i", 0, push):
        b.push(t)
        b.set(t, t + step)
    return FilterSpec(
        name, pop=0, push=push,
        state=(StateVar("t", FLOAT, 0, 0.0),),
        work_body=b.build(),
    )


def sine_source(name: str = "sine", push: int = 8,
                omega: float = 0.1) -> FilterSpec:
    """Sampled sinusoid — a stand-in for the audio/RF front-ends of the
    StreamIt benchmarks."""
    b = WorkBuilder()
    t = b.var("t")
    with b.loop("i", 0, push):
        b.push(call("sin", t * omega))
        b.set(t, t + 1.0)
    return FilterSpec(
        name, pop=0, push=push,
        state=(StateVar("t", FLOAT, 0, 0.0),),
        work_body=b.build(),
    )


def checksum_sink(name: str = "sink", pop: int = 8) -> FilterSpec:
    """Stateful folding sink: pushes a running checksum once per firing.

    Keeping ``push == 1`` gives every program a scalar output stream to
    collect and compare across compilations.
    """
    b = WorkBuilder()
    acc = b.var("acc")
    with b.loop("i", 0, pop):
        b.set(acc, acc + b.pop())
    b.push(acc)
    return FilterSpec(
        name, pop=pop, push=1,
        state=(StateVar("acc", FLOAT, 0, 0.0),),
        work_body=b.build(),
    )


def passthrough_sink(name: str = "out", pop: int = 1) -> FilterSpec:
    """Stateless identity tail; keeps every computed sample in the output
    stream (strict element-wise comparisons in tests)."""
    b = WorkBuilder()
    with b.loop("i", 0, pop):
        b.push(b.pop())
    return FilterSpec(name, pop=pop, push=pop, work_body=b.build())
