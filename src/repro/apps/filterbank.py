"""FilterBank benchmark: 8-channel multirate analysis/synthesis bank.

A duplicate splitter fans the signal into eight per-band pipelines
(band-pass FIR -> decimate -> interpolate -> synthesis FIR); the bands are
isomorphic, differing only in their coefficient tables, so MacroSS
horizontally SIMDizes two groups of SW = 4 bands each (the k·SW case) —
FilterBank's speedup comes almost entirely from horizontal SIMDization
(Figure 11's near-zero vertical bar).
"""

from __future__ import annotations

import math

from ..graph.builtins import duplicate_splitter, roundrobin_joiner
from ..graph.structure import Program, pipeline, splitjoin
from .dspkit import adder, bandpass_coeffs, downsampler, fir_filter, upsampler
from .registry import register
from .sources import sine_source

BANDS = 8
TAPS = 16
DECIMATION = 2


def make_band(index: int):
    low = math.pi * index / BANDS
    high = math.pi * (index + 1) / BANDS
    analysis = fir_filter(f"Analysis{index}",
                          bandpass_coeffs(TAPS, low, high))
    synthesis = fir_filter(f"Synthesis{index}",
                           bandpass_coeffs(TAPS, low, high, gain=float(BANDS)))
    return pipeline(
        analysis,
        downsampler(f"Down{index}", DECIMATION),
        upsampler(f"Up{index}", DECIMATION),
        synthesis,
    )


@register("FilterBank")
def build() -> Program:
    return Program("FilterBank", pipeline(
        sine_source("fb_src", push=8, omega=0.37),
        splitjoin(duplicate_splitter(BANDS),
                  [make_band(i) for i in range(BANDS)],
                  roundrobin_joiner([1] * BANDS)),
        adder("Combine", BANDS),
    ))
