"""Shared DSP building blocks for the benchmark suite.

These mirror the small reusable filters of the StreamIt benchmark sources:
peeking FIR filters, decimators, interpolators, element-wise maps — all
written against the IR builder so the compiler sees exactly the structures
the paper's suite exposes (sliding windows, coefficient tables, isomorphic
instances differing only in constants).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..graph.actor import FilterSpec, StateVar
from ..ir import FLOAT, ArrayHandle, WorkBuilder, call


def fir_filter(name: str, coeffs: Sequence[float], *,
               decimation: int = 1) -> FilterSpec:
    """Peeking FIR: ``out = sum_i peek(i) * coeffs[i]``, consuming
    ``decimation`` samples per output (StreamIt's ``FIRFilter``/
    ``LowPassFilter`` shape)."""
    taps = len(coeffs)
    b = WorkBuilder()
    coeff = b.array("coeff", FLOAT, taps, init=tuple(coeffs))
    acc = b.let("acc", 0.0)
    with b.loop("i", 0, taps) as i:
        b.set(acc, acc + b.peek(i) * coeff[i])
    b.push(acc)
    with b.loop("j", 0, decimation):
        b.stmt(b.pop())
    return FilterSpec(name, pop=decimation, push=1, peek=taps,
                      work_body=b.build())


def lowpass_coeffs(taps: int, cutoff: float, gain: float = 1.0
                   ) -> tuple[float, ...]:
    """Windowed-sinc low-pass coefficients (Hamming window), the formula
    StreamIt's LowPassFilter uses."""
    coeffs = []
    middle = (taps - 1) / 2.0
    for i in range(taps):
        x = i - middle
        ideal = cutoff / math.pi if x == 0 else math.sin(cutoff * x) / (math.pi * x)
        window = 0.54 - 0.46 * math.cos(2 * math.pi * i / (taps - 1))
        coeffs.append(gain * ideal * window)
    return tuple(coeffs)


def bandpass_coeffs(taps: int, low: float, high: float,
                    gain: float = 1.0) -> tuple[float, ...]:
    hi = lowpass_coeffs(taps, high, gain)
    lo = lowpass_coeffs(taps, low, gain)
    return tuple(h - l for h, l in zip(hi, lo))


def downsampler(name: str, factor: int) -> FilterSpec:
    """Keep one sample in ``factor``."""
    b = WorkBuilder()
    b.push(b.pop())
    with b.loop("i", 0, factor - 1):
        b.stmt(b.pop())
    return FilterSpec(name, pop=factor, push=1, work_body=b.build())


def upsampler(name: str, factor: int) -> FilterSpec:
    """Zero-stuff ``factor - 1`` samples after each input."""
    b = WorkBuilder()
    b.push(b.pop())
    with b.loop("i", 0, factor - 1):
        b.push(0.0)
    return FilterSpec(name, pop=1, push=factor, work_body=b.build())


def gain(name: str, factor: float) -> FilterSpec:
    b = WorkBuilder()
    b.push(b.pop() * factor)
    return FilterSpec(name, pop=1, push=1, work_body=b.build())


def rectifier(name: str = "rectify") -> FilterSpec:
    b = WorkBuilder()
    b.push(call("abs", b.pop()))
    return FilterSpec(name, pop=1, push=1, work_body=b.build())


def adder(name: str, n: int, weights: Sequence[float] | None = None
          ) -> FilterSpec:
    """Weighted sum of ``n`` consecutive samples into one output."""
    b = WorkBuilder()
    acc = b.let("acc", 0.0)
    if weights is None:
        with b.loop("i", 0, n):
            b.set(acc, acc + b.pop())
    else:
        w = b.array("w", FLOAT, n, init=tuple(weights))
        with b.loop("i", 0, n) as i:
            b.set(acc, acc + b.pop() * w[i])
    b.push(acc)
    return FilterSpec(name, pop=n, push=1, work_body=b.build())


def delay_line(name: str, depth: int, gain_value: float = 1.0) -> FilterSpec:
    """Stateful circular delay of ``depth`` samples with an output gain —
    the canonical horizontal-SIMDization target (cf. the C actors of the
    running example)."""
    b = WorkBuilder()
    ph = b.var("ph")
    hist = ArrayHandle("hist")
    b.push(hist[ph] * gain_value)
    b.set(hist[ph], b.pop())
    b.set(ph, (ph + 1) % depth)
    from ..ir import INT
    return FilterSpec(
        name, pop=1, push=1,
        state=(StateVar("hist", FLOAT, depth, 0.0),
               StateVar("ph", INT, 0, 0)),
        work_body=b.build(),
    )
