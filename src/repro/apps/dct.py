"""DCT benchmark: 8x8 two-dimensional DCT (rows, then columns, then
quantisation), the JPEG/MPEG kernel of the StreamIt suite.

Three stateless block actors form a vertical fusion chain; the 64-element
block boundaries make the strided gather/scatter traffic heavy, which is
why DCT is one of the biggest SAGU winners in Figure 12 (~17%).
"""

from __future__ import annotations

import math

from ..graph.actor import FilterSpec
from ..graph.structure import Program, pipeline
from ..ir import FLOAT, WorkBuilder
from .registry import register
from .sources import lcg_source

BLOCK = 8
AREA = BLOCK * BLOCK


def _dct_table() -> tuple[float, ...]:
    """C[r*8+k] = s(r) * cos((2k+1) r pi / 16)."""
    values = []
    for r in range(BLOCK):
        scale = math.sqrt(1.0 / BLOCK) if r == 0 else math.sqrt(2.0 / BLOCK)
        for k in range(BLOCK):
            values.append(scale * math.cos((2 * k + 1) * r * math.pi
                                           / (2 * BLOCK)))
    return tuple(values)


def make_row_dct() -> FilterSpec:
    """1-D DCT along each of the 8 rows of the block."""
    b = WorkBuilder()
    table = b.array("C", FLOAT, AREA, init=_dct_table())
    x = b.array("x", FLOAT, BLOCK)
    with b.loop("row", 0, BLOCK):
        with b.loop("i", 0, BLOCK) as i:
            b.set(x[i], b.pop())
        with b.loop("r", 0, BLOCK) as r:
            acc = b.let("acc", 0.0)
            with b.loop("k", 0, BLOCK) as k:
                b.set(acc, acc + x[k] * table[r * BLOCK + k])
            b.push(acc)
    return FilterSpec("RowDCT", pop=AREA, push=AREA, work_body=b.build())


def make_col_dct() -> FilterSpec:
    """1-D DCT along each of the 8 columns, emitting row-major."""
    b = WorkBuilder()
    table = b.array("C", FLOAT, AREA, init=_dct_table())
    a = b.array("a", FLOAT, AREA)
    out = b.array("out", FLOAT, AREA)
    with b.loop("i", 0, AREA) as i:
        b.set(a[i], b.pop())
    with b.loop("c", 0, BLOCK) as c:
        with b.loop("r", 0, BLOCK) as r:
            acc = b.let("acc", 0.0)
            with b.loop("k", 0, BLOCK) as k:
                b.set(acc, acc + a[k * BLOCK + c] * table[r * BLOCK + k])
            b.set(out[r * BLOCK + c], acc)
    with b.loop("i", 0, AREA) as i:
        b.push(out[i])
    return FilterSpec("ColDCT", pop=AREA, push=AREA, work_body=b.build())


def make_quantizer() -> FilterSpec:
    """Frequency-dependent scaling (flat luminance-style table)."""
    quant = tuple(1.0 / (1.0 + 0.25 * (r + c))
                  for r in range(BLOCK) for c in range(BLOCK))
    b = WorkBuilder()
    table = b.array("Q", FLOAT, AREA, init=quant)
    with b.loop("i", 0, AREA) as i:
        b.push(b.pop() * table[i])
    return FilterSpec("Quantize", pop=AREA, push=AREA, work_body=b.build())


@register("DCT")
def build() -> Program:
    return Program("DCT", pipeline(
        lcg_source("dct_src", push=AREA),
        make_row_dct(),
        make_col_dct(),
        make_quantizer(),
    ))
