"""MP3 Decoder benchmark (the compute-heavy back half of the decoder).

Dequantisation (x^(4/3) power law), anti-aliasing butterflies, a reduced
IMDCT, and windowing — all stateless, compute-dominated block actors.  The
whole chain fuses vertically, and because its computation-to-communication
ratio is very high, SAGU buys almost nothing on it (matching MP3 Decoder's
flat bar in Figure 12).
"""

from __future__ import annotations

import math

from ..graph.actor import FilterSpec
from ..graph.structure import Program, pipeline
from ..ir import FLOAT, WorkBuilder, call
from .registry import register
from .sources import lcg_source

GRANULE = 32
#: Reduced IMDCT depth (full MP3 uses 36-point; 8 keeps simulation fast
#: while preserving the compute-heavy shape).
IMDCT_TAPS = 8

#: Anti-alias butterfly coefficients (ISO 11172-3 cs/ca pairs).
_CS_CA = [
    (0.857493, -0.514496), (0.881742, -0.471732), (0.949629, -0.313377),
    (0.983315, -0.181913), (0.995518, -0.094624), (0.999161, -0.040966),
    (0.999899, -0.014199), (0.999993, -0.003700),
]


def make_dequantizer() -> FilterSpec:
    """Power-law requantisation: y = sign(x) * |x|^(4/3)."""
    b = WorkBuilder()
    with b.loop("i", 0, GRANULE):
        x = b.let("x", b.pop())
        mag = b.let("mag", call("pow", call("abs", x) + 1e-9, 4.0 / 3.0))
        sign = b.let("sign", (x.ge(0.0)) * 2.0 - 1.0)
        b.push(sign * mag)
    return FilterSpec("Dequantize", pop=GRANULE, push=GRANULE,
                      work_body=b.build())


def make_antialias() -> FilterSpec:
    """Butterflies across sub-band boundaries (ISO anti-alias stage)."""
    b = WorkBuilder()
    a = b.array("a", FLOAT, GRANULE)
    with b.loop("i", 0, GRANULE) as i:
        b.set(a[i], b.pop())
    for boundary in range(1, GRANULE // 8):
        base = boundary * 8
        for tap, (cs, ca) in enumerate(_CS_CA[:4]):
            lo = base - 1 - tap
            hi = base + tap
            x = b.let(f"x{boundary}_{tap}", a[lo] * cs - a[hi] * ca)
            y = b.let(f"y{boundary}_{tap}", a[hi] * cs + a[lo] * ca)
            b.set(a[lo], x)
            b.set(a[hi], y)
    with b.loop("i", 0, GRANULE) as i:
        b.push(a[i])
    return FilterSpec("Antialias", pop=GRANULE, push=GRANULE,
                      work_body=b.build())


def make_imdct() -> FilterSpec:
    """Reduced inverse MDCT: each output mixes IMDCT_TAPS inputs with a
    cosine kernel."""
    kernel = tuple(
        math.cos(math.pi / (2.0 * IMDCT_TAPS) * (2 * i + 1 + IMDCT_TAPS)
                 * (2 * k + 1))
        for i in range(GRANULE) for k in range(IMDCT_TAPS))
    b = WorkBuilder()
    table = b.array("K", FLOAT, GRANULE * IMDCT_TAPS, init=kernel)
    a = b.array("a", FLOAT, GRANULE)
    with b.loop("i", 0, GRANULE) as i:
        b.set(a[i], b.pop())
    with b.loop("i", 0, GRANULE) as i:
        acc = b.let("acc", 0.0)
        with b.loop("k", 0, IMDCT_TAPS) as k:
            b.set(acc, acc + a[(i + k) % GRANULE]
                  * table[i * IMDCT_TAPS + k])
        b.push(acc)
    return FilterSpec("IMDCT", pop=GRANULE, push=GRANULE, work_body=b.build())


def make_window() -> FilterSpec:
    """Synthesis window (sine window)."""
    window = tuple(math.sin(math.pi / GRANULE * (i + 0.5))
                   for i in range(GRANULE))
    b = WorkBuilder()
    table = b.array("W", FLOAT, GRANULE, init=window)
    with b.loop("i", 0, GRANULE) as i:
        b.push(b.pop() * table[i])
    return FilterSpec("Window", pop=GRANULE, push=GRANULE, work_body=b.build())


@register("MP3Decoder")
def build() -> Program:
    return Program("MP3Decoder", pipeline(
        lcg_source("mp3_src", push=GRANULE),
        make_dequantizer(),
        make_antialias(),
        make_imdct(),
        make_window(),
    ))
