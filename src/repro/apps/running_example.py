"""The paper's running example stream graph (Figure 2a).

Ten unique actors: a stateful source A; a (4,4,4,4) round-robin split-join
of four isomorphic stateless actors B0–B3 (Figure 6a's code, with constants
5/6/7/8) feeding four isomorphic *stateful* delay actors C0–C3; a (1,1,1,1)
joiner; a pipeline D (Figure 3a), E (Figure 3a), stateful F, peeking G; and
a stateful folding tail H.

MacroSS must reproduce Figure 2b on this graph at SW=4:

* B and C levels horizontally SIMDized (HSplitter/HJoiner);
* D and E vertically fused into ``3D_2E`` (pop 6, push 8) and SIMDized;
* G single-actor SIMDized;
* A, F, H stay scalar (stateful);
* Equation (1) scaling factor M = 2.
"""

from __future__ import annotations

from ..graph.actor import FilterSpec, StateVar
from ..graph.builtins import roundrobin_joiner, roundrobin_splitter
from ..graph.structure import Program, pipeline, splitjoin
from ..ir import FLOAT, INT, ArrayHandle, WorkBuilder, call
from .sources import lcg_source

#: Delay-line depth of the C actors.
_C_DEPTH = 8


def make_b(index: int, divisor: float) -> FilterSpec:
    """Figure 6a's B actor: three rounds of (a0*a1 + a2*a3) / divisor."""
    b = WorkBuilder()
    with b.loop("i", 0, 3):
        a0 = b.let("a0", b.pop())
        a1 = b.let("a1", b.pop())
        a2 = b.let("a2", b.pop())
        a3 = b.let("a3", b.pop())
        b.push((a0 * a1 + a2 * a3) / divisor)
    return FilterSpec(f"B{index}", pop=12, push=3, work_body=b.build())


def make_c(index: int) -> FilterSpec:
    """Figure 6a's C actor, repaired into a circular delay line: pushes the
    ``_C_DEPTH``-old sample, stores the fresh one."""
    b = WorkBuilder()
    ph = b.var("place_holder")
    delay = ArrayHandle("delay")  # state array declared on the spec
    b.push(delay[ph])
    b.set(delay[ph], b.pop())
    b.set(ph, (ph + 1) % _C_DEPTH)
    return FilterSpec(
        f"C{index}", pop=1, push=1,
        state=(StateVar("delay", FLOAT, _C_DEPTH, 0.0),
               StateVar("place_holder", INT, 0, 0)),
        work_body=b.build(),
    )


def make_d() -> FilterSpec:
    """Figure 3a's D actor (pop 2, push 2)."""
    b = WorkBuilder()
    tmp = b.array("tmp", FLOAT, 2)
    coeff = b.array("coeff", FLOAT, 2, init=(0.8, 1.2))
    with b.loop("i", 0, 2) as i:
        t = b.let("t", b.pop())
        b.set(tmp[i], t * coeff[i])
    b.push(call("sqrt", call("abs", tmp[0] + tmp[1])))
    b.push(call("sqrt", call("abs", tmp[0] - tmp[1])))
    return FilterSpec("D", pop=2, push=2, work_body=b.build())


def make_e() -> FilterSpec:
    """Figure 3a's E actor (pop 3, push 4)."""
    b = WorkBuilder()
    result = b.array("result", FLOAT, 4)
    x0 = b.let("x0", b.pop())
    x1 = b.let("x1", b.pop())
    x2 = b.let("x2", b.pop())
    b.set(result[0], x1 * call("cos", x0) + x2)
    b.set(result[1], x0 * call("cos", x1) + x2)
    b.set(result[2], x1 * call("sin", x0) + x2)
    b.set(result[3], x0 * call("sin", x1) + x2)
    with b.loop("i", 0, 4) as i:
        b.push(result[i])
    return FilterSpec("E", pop=3, push=4, work_body=b.build())


def make_f() -> FilterSpec:
    """Stateful smoother F (pop 4, push 1) — the reason D–E–F cannot all be
    fused (shaded in Figure 2a)."""
    b = WorkBuilder()
    acc = b.var("acc")
    s = b.let("s", 0.0)
    with b.loop("i", 0, 4):
        b.set(s, s + b.pop())
    b.set(acc, acc * 0.9 + s * 0.1)
    b.push(acc)
    return FilterSpec(
        "F", pop=4, push=1,
        state=(StateVar("acc", FLOAT, 0, 0.0),),
        work_body=b.build(),
    )


def make_g() -> FilterSpec:
    """Peeking interpolator G (peek 4, pop 2, push 8)."""
    b = WorkBuilder()
    w0 = b.let("w0", b.peek(0))
    w1 = b.let("w1", b.peek(1))
    w2 = b.let("w2", b.peek(2))
    w3 = b.let("w3", b.peek(3))
    for step in range(8):
        frac = step / 8.0
        b.push(w0 * (1.0 - frac) + w1 * frac + (w2 - w3) * 0.25)
    b.stmt(b.pop())
    b.stmt(b.pop())
    return FilterSpec("G", pop=2, push=8, peek=4, work_body=b.build())


def make_h() -> FilterSpec:
    """Stateful folding tail H (pop 8, push 1)."""
    b = WorkBuilder()
    acc = b.var("acc")
    with b.loop("i", 0, 8):
        b.set(acc, acc + b.pop())
    b.push(acc)
    return FilterSpec(
        "H", pop=8, push=1,
        state=(StateVar("acc", FLOAT, 0, 0.0),),
        work_body=b.build(),
    )


def build(divisors: tuple = (5.0, 6.0, 7.0, 8.0)) -> Program:
    """Assemble the Figure 2a graph."""
    branches = [
        pipeline(make_b(i, divisors[i]), make_c(i))
        for i in range(4)
    ]
    top = pipeline(
        lcg_source("A", push=8),
        splitjoin(roundrobin_splitter([4, 4, 4, 4]), branches,
                  roundrobin_joiner([1, 1, 1, 1])),
        make_d(),
        make_e(),
        make_f(),
        make_g(),
        make_h(),
    )
    return Program("running_example", top)
