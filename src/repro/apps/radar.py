"""Radar benchmark (StreamIt's RadarArray front end, reduced).

A nested split-join structure: an outer round-robin split over four antenna
channels, where each channel is itself a split-join of two isomorphic
polyphase FIR branches.  Nested split-joins are *not* horizontal candidates
(the paper's horizontal SIMDization targets flat isomorphic levels), so
Radar exercises the compiler's fallback path: the outer structure stays,
inner branches get single-actor/vertical SIMDization, and the decimating
FIRs bring peeking windows along.
"""

from __future__ import annotations

import math

from ..graph.builtins import roundrobin_joiner, roundrobin_splitter
from ..graph.structure import Program, pipeline, splitjoin
from .dspkit import adder, fir_filter, lowpass_coeffs
from .registry import register
from .sources import lcg_source

CHANNELS = 4
PHASES = 2
TAPS = 12


def make_channel(channel: int):
    """One antenna channel: polyphase decomposition into two FIR branches,
    then a beam-weight combiner."""
    branches = []
    for phase in range(PHASES):
        cutoff = math.pi / (2.0 + 0.5 * channel + 0.25 * phase)
        branches.append(fir_filter(
            f"Poly{channel}_{phase}",
            lowpass_coeffs(TAPS, cutoff, gain=1.0 + 0.1 * channel)))
    return pipeline(
        splitjoin(roundrobin_splitter([1] * PHASES), branches,
                  roundrobin_joiner([1] * PHASES)),
        adder(f"ChanSum{channel}", PHASES,
              weights=tuple(math.cos(0.3 * channel + 0.7 * p)
                            for p in range(PHASES))),
    )


@register("Radar")
def build() -> Program:
    return Program("Radar", pipeline(
        lcg_source("radar_src", push=8),
        splitjoin(roundrobin_splitter([2] * CHANNELS),
                  [make_channel(c) for c in range(CHANNELS)],
                  roundrobin_joiner([1] * CHANNELS)),
        adder("BeamSum", CHANNELS),
    ))
