"""MacroSS: Macro-SIMDization of Streaming Applications — reproduction.

A Python reproduction of Hormati et al., ASPLOS 2010: a StreamIt-like
streaming-language substrate (graph + work-function IR, SDF scheduler,
functional interpreter with a Core-i7-class cycle cost model) and the
MacroSS compiler on top of it (single-actor, vertical, and horizontal
SIMDization; permutation/SAGU tape optimizations; C++-with-intrinsics code
generation), plus auto-vectorizer baselines and the paper's evaluation
harness.

Quickstart::

    from repro import (FilterSpec, WorkBuilder, Program, pipeline,
                       flatten, compile_graph, execute, CORE_I7)

    b = WorkBuilder()
    b.push(b.pop() * 2.0)
    doubler = FilterSpec("double", pop=1, push=1, work_body=b.build())
    ...
    graph = flatten(Program("demo", pipeline(source, doubler)))
    compiled = compile_graph(graph, CORE_I7)
    result = execute(compiled.graph, machine=CORE_I7)
"""

from .graph import (
    FeedbackLoop,
    FilterSpec,
    GraphError,
    JoinerSpec,
    Program,
    SplitterSpec,
    StateVar,
    StreamGraph,
    bind_params,
    duplicate_splitter,
    feedbackloop,
    flatten,
    pipeline,
    roundrobin_joiner,
    roundrobin_splitter,
    splitjoin,
    validate,
)
from .ir import FLOAT, INT, ArrayHandle, Param, WorkBuilder, call, format_body
from .plan import (
    InfeasiblePlanError,
    ParetoPoint,
    Partition,
    PlanContext,
    PlanError,
    PlanResult,
    UnknownPartitionerError,
    build_plan_context,
    evaluate_partition,
    get_partitioner,
    list_partitioners,
    optimize_partition,
    pareto_front,
    plan_vectorization,
    register_partitioner,
)
from .runtime import ExecutionResult, Tape, execute
from .schedule import Schedule, build_schedule, repetition_vector
from .simd import (
    CORE_I7,
    CORE_I7_SAGU,
    NEON_LIKE,
    SVE_LIKE,
    CompilationReport,
    CompiledGraph,
    MachineDescription,
    MacroSSOptions,
    UnknownTargetError,
    compile_graph,
    get_target,
    list_targets,
    register_target,
    wide_machine,
)

__version__ = "1.0.0"

__all__ = [
    "FeedbackLoop", "FilterSpec", "GraphError", "JoinerSpec", "Program",
    "SplitterSpec", "StateVar", "StreamGraph", "bind_params",
    "duplicate_splitter", "feedbackloop", "flatten", "pipeline",
    "roundrobin_joiner", "roundrobin_splitter", "splitjoin", "validate",
    "FLOAT", "INT", "ArrayHandle", "Param", "WorkBuilder", "call",
    "format_body",
    "ExecutionResult", "Tape", "execute",
    "InfeasiblePlanError", "ParetoPoint", "Partition", "PlanContext",
    "PlanError", "PlanResult", "UnknownPartitionerError",
    "build_plan_context", "evaluate_partition", "get_partitioner",
    "list_partitioners", "optimize_partition", "pareto_front",
    "plan_vectorization", "register_partitioner",
    "Schedule", "build_schedule", "repetition_vector",
    "CORE_I7", "CORE_I7_SAGU", "NEON_LIKE", "SVE_LIKE",
    "CompilationReport", "CompiledGraph", "MachineDescription",
    "MacroSSOptions", "UnknownTargetError", "compile_graph",
    "get_target", "list_targets", "register_target", "wide_machine",
    "__version__",
]
