"""Interpreter for actor work functions.

Executes IR bodies (scalar or SIMDized) against runtime tapes while
emitting performance events.  The interpreter is the reproduction's stand-in
for running compiled binaries on the Core i7: functional results validate
the transformations, the event stream feeds the cycle cost model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..ir import expr as E
from ..ir import lvalue as L
from ..ir import stmt as S
from ..ir.types import Vector
from ..perf import events as ev
from ..perf.counters import PerfCounters
from .env import Env
from .errors import InterpreterError
from .tape import Tape
from .values import (
    apply_binary,
    apply_math,
    apply_unary,
    copy_value,
    is_vector_value,
    splat,
)

_MUL_OPS = frozenset({"*"})
_DIV_OPS = frozenset({"/", "%"})


@dataclass
class ActorRuntime:
    """Mutable per-actor execution context."""

    actor_id: int
    simd_width: int
    counters: PerfCounters
    state: Dict[str, Any] = field(default_factory=dict)
    input: Optional[Tape] = None
    output: Optional[Tape] = None
    #: lane-ordered flags: scalar accesses on such tapes pay address
    #: translation (Figure 8) or a SAGU increment (Figure 9).
    in_lane_ordered: bool = False
    out_lane_ordered: bool = False
    #: internal FIFO buffers of a vertically fused coarse actor.
    internal: Dict[int, List[Any]] = field(default_factory=dict)
    #: cursor per internal buffer (index of next item to pop).
    internal_head: Dict[int, int] = field(default_factory=dict)
    has_sagu: bool = False


class Interpreter:
    """Executes one actor's bodies within an :class:`ActorRuntime`."""

    def __init__(self, runtime: ActorRuntime) -> None:
        self.rt = runtime
        self.env = Env(runtime.state)

    # -- public entry points ----------------------------------------------------
    def run_init(self, body: S.Body) -> None:
        self.env.reset_locals()
        self._run_body(body)

    def run_work(self, body: S.Body) -> None:
        self.rt.counters.add(ev.FIRE)
        self.env.reset_locals()
        self._run_body(body)

    # -- helpers -----------------------------------------------------------------
    def _charge(self, event: str, count: int = 1) -> None:
        self.rt.counters.add(event, count)

    def _charge_scalar_in(self) -> None:
        self._charge(ev.SCALAR_LOAD)
        if self.rt.in_lane_ordered:
            self._charge(ev.SAGU if self.rt.has_sagu else ev.ADDR)

    def _charge_scalar_out(self) -> None:
        self._charge(ev.SCALAR_STORE)
        if self.rt.out_lane_ordered:
            self._charge(ev.SAGU if self.rt.has_sagu else ev.ADDR)

    def _input(self) -> Tape:
        if self.rt.input is None:
            raise InterpreterError("actor has no input tape")
        return self.rt.input

    def _output(self) -> Tape:
        if self.rt.output is None:
            raise InterpreterError("actor has no output tape")
        return self.rt.output

    # -- statements ----------------------------------------------------------------
    def _run_body(self, body: S.Body) -> None:
        for stmt in body:
            self._run_stmt(stmt)

    def _run_stmt(self, stmt: S.Stmt) -> None:
        if isinstance(stmt, S.Assign):
            self._assign(stmt.lhs, self._eval(stmt.rhs))
        elif isinstance(stmt, S.DeclVar):
            if stmt.init is not None:
                value = copy_value(self._eval(stmt.init))
            elif isinstance(stmt.type, Vector):
                value = splat(0.0, stmt.type.width)
            else:
                value = 0.0
            self.env.declare(stmt.name, value)
        elif isinstance(stmt, S.DeclArray):
            self.env.declare(stmt.name, self._make_array(stmt))
        elif isinstance(stmt, S.Push):
            self._charge_scalar_out()
            self._output().push(self._eval(stmt.value))
        elif isinstance(stmt, S.RPush):
            self._charge_scalar_out()
            offset = self._eval(stmt.offset)
            self._output().rpush(self._eval(stmt.value), int(offset))
        elif isinstance(stmt, S.VPush):
            self._charge(ev.VECTOR_STORE)
            value = self._eval(stmt.value)
            if not is_vector_value(value):
                raise InterpreterError("vpush of a scalar value")
            self._output().push(list(value))
        elif isinstance(stmt, S.ScatterPush):
            self._scatter_push(stmt)
        elif isinstance(stmt, S.InternalPush):
            value = self._eval(stmt.value)
            self._charge(ev.VECTOR_STORE if is_vector_value(value)
                         else ev.SCALAR_STORE)
            self.rt.internal.setdefault(stmt.buf, []).append(copy_value(value))
        elif isinstance(stmt, S.CostAnnotation):
            self._charge(stmt.event, stmt.count)
        elif isinstance(stmt, S.AdvanceReader):
            self._charge(ev.SCALAR_ALU)
            self._input().advance_reader(stmt.count)
        elif isinstance(stmt, S.AdvanceWriter):
            self._charge(ev.SCALAR_ALU)
            self._output().advance_writer(stmt.count)
        elif isinstance(stmt, S.ExprStmt):
            self._eval(stmt.expr)
        elif isinstance(stmt, S.For):
            start = int(self._eval(stmt.start))
            end = int(self._eval(stmt.end))
            self.env.declare(stmt.var, start)
            for index in range(start, end):
                self._charge(ev.LOOP)
                self.env.set(stmt.var, index)
                self._run_body(stmt.body)
        elif isinstance(stmt, S.If):
            if self._truthy(self._eval(stmt.cond)):
                self._run_body(stmt.then_body)
            else:
                self._run_body(stmt.else_body)
        else:
            raise InterpreterError(f"unknown statement {stmt!r}")

    def _make_array(self, stmt: S.DeclArray) -> List[Any]:
        width = stmt.elem_type.width if isinstance(stmt.elem_type, Vector) else 0
        if stmt.init is not None:
            if width:
                # Vector-element arrays may be initialised per-lane (tuples)
                # or by splatting a scalar initialiser.
                return [list(item) if isinstance(item, tuple) else splat(item, width)
                        for item in stmt.init]
            return [item for item in stmt.init]
        if width:
            return [splat(0.0, width) for _ in range(stmt.size)]
        return [0.0] * stmt.size

    def _scatter_push(self, stmt: S.ScatterPush) -> None:
        value = self._eval(stmt.value)
        if not is_vector_value(value):
            raise InterpreterError("scatter_push of a scalar value")
        out = self._output()
        sw = len(value)
        if stmt.strategy == "scalar":
            self._charge(ev.SCALAR_STORE, sw)
            self._charge(ev.UNPACK, sw)
        elif stmt.strategy == "permute":
            self._charge(ev.VECTOR_STORE_U)
            if stmt.stride > 1:
                self._charge(ev.PERMUTE, int(math.log2(stmt.stride)))
        elif stmt.strategy == "sagu":
            self._charge(ev.VECTOR_STORE)
        else:
            raise InterpreterError(f"unknown scatter strategy {stmt.strategy!r}")
        for lane in range(1, sw):
            out.rpush(value[lane], lane * stmt.stride)
        out.push(value[0])

    # -- lvalues ------------------------------------------------------------------
    def _assign(self, lhs: L.LValue, value: Any) -> None:
        if isinstance(lhs, L.VarLV):
            self.env.set(lhs.name, copy_value(value))
        elif isinstance(lhs, L.ArrayLV):
            index = int(self._eval(lhs.index))
            array = self.env.get(lhs.name)
            self._charge(ev.VECTOR_STORE if is_vector_value(value)
                         else ev.SCALAR_STORE)
            array[index] = copy_value(value)
        elif isinstance(lhs, L.LaneLV):
            vec = self.env.get(lhs.name)
            if not is_vector_value(vec):
                raise InterpreterError(f"{lhs.name} is not a vector")
            self._charge(ev.PACK)
            vec[lhs.lane] = value
        elif isinstance(lhs, L.ArrayLaneLV):
            index = int(self._eval(lhs.index))
            vec = self.env.get(lhs.name)[index]
            self._charge(ev.PACK)
            vec[lhs.lane] = value
        else:
            raise InterpreterError(f"unknown lvalue {lhs!r}")

    # -- expressions ----------------------------------------------------------------
    def _eval(self, e: E.Expr) -> Any:
        if isinstance(e, (E.IntConst, E.FloatConst, E.BoolConst)):
            return e.value
        if isinstance(e, E.VectorConst):
            return list(e.values)
        if isinstance(e, E.Var):
            return self.env.get(e.name)
        if isinstance(e, E.ArrayRead):
            index = int(self._eval(e.index))
            value = self.env.get(e.name)[index]
            self._charge(ev.VECTOR_LOAD if is_vector_value(value)
                         else ev.SCALAR_LOAD)
            return value
        if isinstance(e, E.Lane):
            base = self._eval(e.base)
            if not is_vector_value(base):
                raise InterpreterError("lane access on scalar value")
            self._charge(ev.UNPACK)
            return base[e.index]
        if isinstance(e, E.BinaryOp):
            return self._binary(e)
        if isinstance(e, E.UnaryOp):
            operand = self._eval(e.operand)
            if is_vector_value(operand):
                self._charge(ev.VECTOR_ALU)
                return [apply_unary(e.op, x) for x in operand]
            self._charge(ev.SCALAR_ALU)
            return apply_unary(e.op, operand)
        if isinstance(e, E.Call):
            return self._call(e)
        if isinstance(e, E.Select):
            return self._select(e)
        if isinstance(e, E.Pop):
            self._charge_scalar_in()
            return self._input().pop()
        if isinstance(e, E.Peek):
            self._charge_scalar_in()
            return self._input().peek(int(self._eval(e.offset)))
        if isinstance(e, E.VPop):
            self._charge(ev.VECTOR_LOAD)
            value = self._input().pop()
            if not is_vector_value(value):
                raise InterpreterError("vpop from a scalar tape")
            return value
        if isinstance(e, E.VPeek):
            self._charge(ev.VECTOR_LOAD)
            value = self._input().peek(int(self._eval(e.offset)))
            if not is_vector_value(value):
                raise InterpreterError("vpeek from a scalar tape")
            return value
        if isinstance(e, E.ArrayVec):
            start = int(self._eval(e.index))
            array = self.env.get(e.name)
            sw = self.rt.simd_width
            if start + sw > len(array):
                raise InterpreterError(
                    f"vector load past end of array {e.name!r}")
            self._charge(ev.VECTOR_LOAD_U)
            return list(array[start:start + sw])
        if isinstance(e, E.Broadcast):
            value = self._eval(e.value)
            if is_vector_value(value):
                return value
            self._charge(ev.SPLAT)
            return splat(value, e.width)
        if isinstance(e, E.GatherPop):
            return self._gather_pop(e)
        if isinstance(e, E.GatherPeek):
            return self._gather_peek(e)
        if isinstance(e, E.InternalPop):
            return self._internal_pop(e.buf)
        if isinstance(e, E.InternalPeek):
            offset = int(self._eval(e.offset))
            buf = self.rt.internal.get(e.buf, [])
            head = self.rt.internal_head.get(e.buf, 0)
            if head + offset >= len(buf):
                raise InterpreterError(f"internal buffer {e.buf} underflow")
            value = buf[head + offset]
            self._charge(ev.VECTOR_LOAD if is_vector_value(value)
                         else ev.SCALAR_LOAD)
            return value
        raise InterpreterError(f"unknown expression {e!r}")

    def _binary(self, e: E.BinaryOp) -> Any:
        left = self._eval(e.left)
        right = self._eval(e.right)
        left_vec = is_vector_value(left)
        right_vec = is_vector_value(right)
        if left_vec or right_vec:
            width = len(left) if left_vec else len(right)
            if not left_vec:
                left = splat(left, width)
            if not right_vec:
                right = splat(right, width)
            self._charge(self._vector_op_event(e.op))
            return [apply_binary(e.op, a, b) for a, b in zip(left, right)]
        self._charge(self._scalar_op_event(e.op))
        return apply_binary(e.op, left, right)

    @staticmethod
    def _scalar_op_event(op: str) -> str:
        if op in _MUL_OPS:
            return ev.SCALAR_MUL
        if op in _DIV_OPS:
            return ev.SCALAR_DIV
        return ev.SCALAR_ALU

    @staticmethod
    def _vector_op_event(op: str) -> str:
        if op in _MUL_OPS:
            return ev.VECTOR_MUL
        if op in _DIV_OPS:
            return ev.VECTOR_DIV
        return ev.VECTOR_ALU

    def _call(self, e: E.Call) -> Any:
        args = [self._eval(a) for a in e.args]
        if any(is_vector_value(a) for a in args):
            width = next(len(a) for a in args if is_vector_value(a))
            cols = [a if is_vector_value(a) else splat(a, width) for a in args]
            self._charge(ev.vector_math(e.func))
            return [apply_math(e.func, [col[i] for col in cols])
                    for i in range(width)]
        self._charge(ev.scalar_math(e.func))
        return apply_math(e.func, args)

    def _select(self, e: E.Select) -> Any:
        cond = self._eval(e.cond)
        if_true = self._eval(e.if_true)
        if_false = self._eval(e.if_false)
        if is_vector_value(cond):
            self._charge(ev.VECTOR_ALU)  # blend
            width = len(cond)
            t = if_true if is_vector_value(if_true) else splat(if_true, width)
            f = if_false if is_vector_value(if_false) else splat(if_false, width)
            return [t[i] if cond[i] else f[i] for i in range(width)]
        self._charge(ev.SCALAR_ALU)
        return if_true if cond else if_false

    def _gather_pop(self, e: E.GatherPop) -> List[Any]:
        tape = self._input()
        sw = self.rt.simd_width
        lanes = [tape.peek(k * e.stride) for k in range(sw)]
        tape.advance_reader(e.advance)
        if e.strategy == "scalar":
            self._charge(ev.SCALAR_LOAD, sw)
            self._charge(ev.PACK, sw)
        elif e.strategy == "permute":
            self._charge(ev.VECTOR_LOAD_U)
            if e.stride > 1:
                self._charge(ev.PERMUTE, int(math.log2(e.stride)))
        elif e.strategy == "sagu":
            self._charge(ev.VECTOR_LOAD)
        else:
            raise InterpreterError(f"unknown gather strategy {e.strategy!r}")
        return lanes

    def _gather_peek(self, e: E.GatherPeek) -> List[Any]:
        tape = self._input()
        sw = self.rt.simd_width
        offset = int(self._eval(e.offset))
        lanes = [tape.peek(offset + k * e.stride) for k in range(sw)]
        if e.strategy == "scalar":
            self._charge(ev.SCALAR_LOAD, sw)
            self._charge(ev.PACK, sw)
        elif e.strategy == "permute":
            self._charge(ev.VECTOR_LOAD_U)
            if e.stride > 1:
                self._charge(ev.PERMUTE, int(math.log2(e.stride)))
        elif e.strategy == "sagu":
            self._charge(ev.VECTOR_LOAD)
        else:
            raise InterpreterError(f"unknown gather strategy {e.strategy!r}")
        return lanes

    def _internal_pop(self, buf_id: int) -> Any:
        buf = self.rt.internal.get(buf_id)
        head = self.rt.internal_head.get(buf_id, 0)
        if buf is None or head >= len(buf):
            raise InterpreterError(f"internal buffer {buf_id} underflow")
        value = buf[head]
        self.rt.internal_head[buf_id] = head + 1
        # Compact when fully drained (coarse-actor firings leave buffers
        # empty between firings by construction).
        if self.rt.internal_head[buf_id] == len(buf):
            buf.clear()
            self.rt.internal_head[buf_id] = 0
        self._charge(ev.VECTOR_LOAD if is_vector_value(value)
                     else ev.SCALAR_LOAD)
        return value

    @staticmethod
    def _truthy(value: Any) -> bool:
        if is_vector_value(value):
            raise InterpreterError("vector value used as branch condition")
        return bool(value)
