"""FIFO tape with StreamIt's extended access repertoire.

Beyond ``push``/``pop``, the SIMDized code of the paper needs:

* ``peek(offset)`` — non-destructive read ahead of the read pointer;
* ``rpush(value, offset)`` — random-access write past the write pointer
  *without* advancing it (§3.1, Figure 3b);
* ``advance_reader`` / ``advance_writer`` — bulk pointer adjustment closing
  out the strided access groups of a vectorized firing.

The implementation keeps an explicit read head and write pointer over a
growable list; slots between the write pointer and the furthest ``rpush``
hold a sentinel until written.  Elements may be scalars or vectors (lists):
the tape is agnostic.
"""

from __future__ import annotations

from typing import Any, List

from .errors import TapeUnderflow, UninitializedRead

_UNWRITTEN = object()

#: Compact the backing list when the dead prefix exceeds this many items.
_COMPACT_THRESHOLD = 8192


class Tape:
    """A FIFO channel between two actors."""

    __slots__ = ("name", "_buf", "_head", "_wp")

    def __init__(self, name: str = "tape") -> None:
        self.name = name
        self._buf: List[Any] = []
        self._head = 0   # index of the next item to pop
        self._wp = 0     # index one past the last committed item

    # -- capacity -------------------------------------------------------------
    def __len__(self) -> int:
        """Number of committed, unconsumed items."""
        return self._wp - self._head

    def _ensure(self, index: int) -> None:
        grow = index + 1 - len(self._buf)
        if grow > 0:
            self._buf.extend([_UNWRITTEN] * grow)

    def _compact(self) -> None:
        if self._head > _COMPACT_THRESHOLD and self._head * 2 > len(self._buf):
            del self._buf[: self._head]
            self._wp -= self._head
            self._head = 0

    # -- writing --------------------------------------------------------------
    def push(self, value: Any) -> None:
        self._ensure(self._wp)
        self._buf[self._wp] = value
        self._wp += 1

    def rpush(self, value: Any, offset: int) -> None:
        if offset < 0:
            raise ValueError(f"{self.name}: negative rpush offset {offset}")
        index = self._wp + offset
        self._ensure(index)
        self._buf[index] = value

    def advance_writer(self, count: int) -> None:
        if count < 0:
            raise ValueError(f"{self.name}: negative writer advance")
        self._ensure(self._wp + count - 1 if count else self._wp)
        segment = self._buf[self._wp:self._wp + count]
        if _UNWRITTEN in segment:
            raise UninitializedRead(
                f"{self.name}: advancing writer over unwritten slot "
                f"{segment.index(_UNWRITTEN)}")
        self._wp += count

    def write_strided(self, offset: int, stride: int,
                      values: List[Any]) -> None:
        """Write ``values[j]`` at ``offset + j * stride`` past the write
        pointer without advancing it — ``len(values)`` ``rpush`` calls in
        one slice assignment (the vector backend's batched commit)."""
        if offset < 0:
            raise ValueError(f"{self.name}: negative rpush offset {offset}")
        if stride < 1:
            raise ValueError(f"{self.name}: write stride must be >= 1")
        count = len(values)
        if not count:
            return
        base = self._wp + offset
        last = base + (count - 1) * stride
        self._ensure(last)
        self._buf[base:last + 1:stride] = values

    # -- reading --------------------------------------------------------------
    def pop(self) -> Any:
        if self._head >= self._wp:
            raise TapeUnderflow(f"{self.name}: pop from empty tape")
        value = self._buf[self._head]
        if value is _UNWRITTEN:
            raise UninitializedRead(f"{self.name}: pop of unwritten slot")
        self._head += 1
        self._compact()
        return value

    def peek(self, offset: int) -> Any:
        if offset < 0:
            raise ValueError(f"{self.name}: negative peek offset {offset}")
        index = self._head + offset
        if index >= self._wp:
            raise TapeUnderflow(
                f"{self.name}: peek({offset}) with only {len(self)} items")
        value = self._buf[index]
        if value is _UNWRITTEN:
            raise UninitializedRead(f"{self.name}: peek of unwritten slot")
        return value

    def peek_block(self, count: int) -> List[Any]:
        """Non-destructive read of the next ``count`` committed items as one
        list (the vector backend's batched window fetch).  Slots below the
        write pointer are committed by construction, so no per-slot
        sentinel check is needed."""
        if count < 0:
            raise ValueError(f"{self.name}: negative peek_block count")
        if self._head + count > self._wp:
            raise TapeUnderflow(
                f"{self.name}: peek_block({count}) with only {len(self)} "
                f"items")
        return self._buf[self._head:self._head + count]

    def advance_reader(self, count: int) -> None:
        if count < 0:
            raise ValueError(f"{self.name}: negative reader advance")
        if self._head + count > self._wp:
            raise TapeUnderflow(
                f"{self.name}: advance_reader({count}) with only "
                f"{len(self)} items")
        self._head += count
        self._compact()

    # -- draining (output collection) ------------------------------------------
    def drain(self) -> List[Any]:
        """Pop and return every committed item (executor output collection)."""
        items = self._buf[self._head:self._wp]
        if any(item is _UNWRITTEN for item in items):
            raise UninitializedRead(f"{self.name}: drain hit unwritten slot")
        self._head = self._wp
        self._compact()
        return items
