"""FIFO tape with StreamIt's extended access repertoire.

Beyond ``push``/``pop``, the SIMDized code of the paper needs:

* ``peek(offset)`` — non-destructive read ahead of the read pointer;
* ``rpush(value, offset)`` — random-access write past the write pointer
  *without* advancing it (§3.1, Figure 3b);
* ``advance_reader`` / ``advance_writer`` — bulk pointer adjustment closing
  out the strided access groups of a vectorized firing.

The implementation keeps an explicit read head and write pointer over a
growable list; slots between the write pointer and the furthest ``rpush``
hold a sentinel until written.  Elements may be scalars or vectors (lists):
the tape is agnostic.

:class:`NdTape` is the machine-native sibling used by the vector backend:
the same repertoire and the same observable behaviour (values, lengths,
error types *and* messages — pinned by the differential property suite),
but backed by a dtype-tracked int64/float64 ndarray with zero-copy window
views (``peek_block_array``) and array commits (``write_strided_array``),
so batch kernels never round-trip Python lists.  Payloads the array cannot
represent (vectors, bools, ints beyond the exact range) degrade the tape
to the inherited list representation, permanently and safely.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .errors import StreamRuntimeError, TapeUnderflow, UninitializedRead

try:  # pragma: no cover - exercised through both CI lanes
    import numpy as np
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

_UNWRITTEN = object()

#: Compact the backing list when the dead prefix exceeds this many items.
_COMPACT_THRESHOLD = 8192


class Tape:
    """A FIFO channel between two actors."""

    __slots__ = ("name", "_buf", "_head", "_wp")

    def __init__(self, name: str = "tape") -> None:
        self.name = name
        self._buf: List[Any] = []
        self._head = 0   # index of the next item to pop
        self._wp = 0     # index one past the last committed item

    # -- capacity -------------------------------------------------------------
    def __len__(self) -> int:
        """Number of committed, unconsumed items."""
        return self._wp - self._head

    def _ensure(self, index: int) -> None:
        grow = index + 1 - len(self._buf)
        if grow > 0:
            self._buf.extend([_UNWRITTEN] * grow)

    def _compact(self) -> None:
        if self._head > _COMPACT_THRESHOLD and self._head * 2 > len(self._buf):
            del self._buf[: self._head]
            self._wp -= self._head
            self._head = 0

    # -- writing --------------------------------------------------------------
    def push(self, value: Any) -> None:
        self._ensure(self._wp)
        self._buf[self._wp] = value
        self._wp += 1

    def rpush(self, value: Any, offset: int) -> None:
        if offset < 0:
            raise ValueError(f"{self.name}: negative rpush offset {offset}")
        index = self._wp + offset
        self._ensure(index)
        self._buf[index] = value

    def advance_writer(self, count: int) -> None:
        if count < 0:
            raise ValueError(f"{self.name}: negative writer advance")
        if not count:
            return  # must not grow the backing buffer (regression-pinned)
        self._ensure(self._wp + count - 1)
        segment = self._buf[self._wp:self._wp + count]
        if _UNWRITTEN in segment:
            raise UninitializedRead(
                f"{self.name}: advancing writer over unwritten slot "
                f"{segment.index(_UNWRITTEN)}")
        self._wp += count

    def write_strided(self, offset: int, stride: int,
                      values: List[Any]) -> None:
        """Write ``values[j]`` at ``offset + j * stride`` past the write
        pointer without advancing it — ``len(values)`` ``rpush`` calls in
        one slice assignment (the vector backend's batched commit)."""
        if offset < 0:
            raise ValueError(f"{self.name}: negative rpush offset {offset}")
        if stride < 1:
            raise ValueError(f"{self.name}: write stride must be >= 1")
        count = len(values)
        if not count:
            return
        base = self._wp + offset
        last = base + (count - 1) * stride
        self._ensure(last)
        self._buf[base:last + 1:stride] = values

    # -- reading --------------------------------------------------------------
    def pop(self) -> Any:
        if self._head >= self._wp:
            raise TapeUnderflow(f"{self.name}: pop from empty tape")
        value = self._buf[self._head]
        if value is _UNWRITTEN:
            raise UninitializedRead(f"{self.name}: pop of unwritten slot")
        self._head += 1
        self._compact()
        return value

    def peek(self, offset: int) -> Any:
        if offset < 0:
            raise ValueError(f"{self.name}: negative peek offset {offset}")
        index = self._head + offset
        if index >= self._wp:
            raise TapeUnderflow(
                f"{self.name}: peek({offset}) with only {len(self)} items")
        value = self._buf[index]
        if value is _UNWRITTEN:
            raise UninitializedRead(f"{self.name}: peek of unwritten slot")
        return value

    def peek_block(self, count: int) -> List[Any]:
        """Non-destructive read of the next ``count`` committed items as one
        list (the vector backend's batched window fetch).  Slots below the
        write pointer are committed by construction, so no per-slot
        sentinel check is needed."""
        if count < 0:
            raise ValueError(f"{self.name}: negative peek_block count")
        if self._head + count > self._wp:
            raise TapeUnderflow(
                f"{self.name}: peek_block({count}) with only {len(self)} "
                f"items")
        return self._buf[self._head:self._head + count]

    def advance_reader(self, count: int) -> None:
        if count < 0:
            raise ValueError(f"{self.name}: negative reader advance")
        if self._head + count > self._wp:
            raise TapeUnderflow(
                f"{self.name}: advance_reader({count}) with only "
                f"{len(self)} items")
        self._head += count
        self._compact()

    # -- draining (output collection) ------------------------------------------
    def drain(self) -> List[Any]:
        """Pop and return every committed item (executor output collection)."""
        items = self._buf[self._head:self._wp]
        if any(item is _UNWRITTEN for item in items):
            raise UninitializedRead(f"{self.name}: drain hit unwritten slot")
        self._head = self._wp
        self._compact()
        return items


# ==============================================================================
# NdTape: the ndarray-native tape of the vector data plane
# ==============================================================================

#: Largest integer magnitude exactly representable in float64 — the same
#: limit the vector kernels guard with (``2**53``).  Ints beyond it cannot
#: share a float64 buffer with floats without silent rounding.
_ND_EXACT_INT = 2 ** 53
_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1

#: Injectable defect (mutation tests only): rotates every ndarray window
#: read by this many slots — the classic off-by-one ring-wrap bug.  The
#: differential oracles must catch and shrink it.
_MUT_ND_WINDOW_SHIFT = 0


class NdTape(Tape):
    """A :class:`Tape` backed by a dtype-tracked int64/float64 ndarray.

    Observable behaviour is identical to the list tape — same values
    (Python ``int`` stays ``int``, ``float`` stays ``float``), same
    lengths, same error types and messages — which the property suite in
    ``tests/runtime/test_tape_properties.py`` pins differentially.  What
    changes is the representation:

    * committed and staged items live in one contiguous ndarray
      (``_arr``), so the vector backend's batch kernels read input
      windows as **zero-copy views** (:meth:`peek_block_array`) and
      commit output columns as **array slice assignments**
      (:meth:`write_strided_array`) with no per-batch
      ``asarray``/``tolist``;
    * the dtype is adopted from the first value written (int64 for
      ``int``, float64 for ``float``) and promoted int64→float64 when
      floats arrive mid-stream.  A promoted ("mixed") tape keeps a
      per-slot ``_int_mask`` so reads restore the exact Python type;
    * payloads the array cannot hold — vector (list) elements, bools,
      ints beyond the int64 / float64-exact range — **degrade** the tape
      to the inherited list representation (sticky; the reason is kept in
      ``degrade_reason`` and surfaced through
      ``ExecutionResult.vectorized``).

    A staged-write mask (``_written``) reproduces the list tape's
    ``_UNWRITTEN`` hole semantics for ``rpush`` gaps, and the tape resets
    to the no-dtype state whenever it empties completely, so per-phase
    dtype changes never force a degrade.
    """

    __slots__ = ("_arr", "_written", "_int_mask", "_kind", "_tail",
                 "degrade_reason")

    def __init__(self, name: str = "tape") -> None:
        if not HAVE_NUMPY:
            raise StreamRuntimeError(
                "NdTape requires numpy (install the [vector] extra: "
                "pip install .[vector])")
        super().__init__(name)
        self._arr: Optional[Any] = None       # int64/float64 backing array
        self._written: Optional[Any] = None   # bool mask: slot was staged
        self._int_mask: Optional[Any] = None  # bool mask: slot holds an int
        self._kind: Optional[str] = None      # None | "int" | "float" | "mixed"
        self._tail = 0                        # one past the furthest staged slot
        self.degrade_reason: Optional[str] = None

    # -- representation state --------------------------------------------------
    @property
    def dtype_kind(self) -> Optional[str]:
        """``"int"``/``"float"``/``"mixed"`` in array mode, ``"list"``
        after a degrade, ``None`` while empty with no dtype adopted."""
        if self.degrade_reason is not None:
            return "list"
        return self._kind

    @staticmethod
    def _reason_for(value: Any) -> str:
        if type(value) is list:
            return "vector payload"
        return f"non-numeric payload ({type(value).__name__})"

    def _degrade(self, reason: str) -> None:
        """Switch permanently to the inherited list representation,
        materializing committed and staged slots (holes stay holes)."""
        buf: List[Any] = []
        arr, written, mask = self._arr, self._written, self._int_mask
        if arr is not None and self._tail > self._head:
            as_int = arr.dtype.kind == "i"
            for i in range(self._head, self._tail):
                if not written[i]:
                    buf.append(_UNWRITTEN)
                elif as_int or (mask is not None and mask[i]):
                    buf.append(int(arr[i]))
                else:
                    buf.append(float(arr[i]))
        self._buf = buf
        self._wp -= self._head
        self._head = 0
        self._tail = 0
        self._arr = None
        self._written = None
        self._int_mask = None
        self._kind = None
        self.degrade_reason = reason

    def _adopt(self, kind: str) -> None:
        """Adopt a dtype while logically empty (reuses the allocation when
        the dtype matches; stale staged-write flags are cleared)."""
        dtype = np.int64 if kind == "int" else np.float64
        arr = self._arr
        if arr is None or arr.dtype != dtype:
            cap = 16 if arr is None else len(arr)
            self._arr = np.zeros(cap, dtype=dtype)
            self._written = np.zeros(cap, dtype=bool)
        else:
            self._written[:] = False
        self._kind = kind
        self._int_mask = None

    def _promote(self) -> bool:
        """int64 → float64 storage (floats arrived mid-stream).  Existing
        ints must be float64-exact; each staged slot is remembered as an
        int so reads restore the Python type.  Returns ``False`` (after
        degrading) when an existing int is beyond the exact range."""
        arr, written = self._arr, self._written
        live = written[:self._tail]
        if self._tail and live.any():
            staged = arr[:self._tail][live].astype(np.float64)
            if float(np.abs(staged).max()) > float(_ND_EXACT_INT):
                self._degrade("int beyond float64-exact range")
                return False
        self._arr = arr.astype(np.float64)
        self._int_mask = written.copy()
        self._kind = "mixed"
        return True

    def _to_mixed(self) -> None:
        """float64 storage gains an int mask (ints arrived mid-stream)."""
        self._int_mask = np.zeros(len(self._arr), dtype=bool)
        self._kind = "mixed"

    def _grow(self, index: int) -> None:
        arr = self._arr
        if index < len(arr):
            return
        cap = max(len(arr) * 2, index + 1)
        new = np.zeros(cap, dtype=arr.dtype)
        new[:len(arr)] = arr
        self._arr = new
        grown = np.zeros(cap, dtype=bool)
        grown[:len(arr)] = self._written
        self._written = grown
        if self._int_mask is not None:
            mask = np.zeros(cap, dtype=bool)
            mask[:len(arr)] = self._int_mask
            self._int_mask = mask

    def _reset_empty(self) -> None:
        """Fully empty (no committed or staged items): drop the dtype so
        the next phase can adopt a fresh one; keep the allocation.  Stale
        staged-write flags must go too — a later ``advance_writer`` from
        the rebased write pointer must see holes, not ghosts."""
        if self._written is not None and self._tail:
            self._written[:self._tail] = False
        self._head = self._wp = self._tail = 0
        self._kind = None
        self._int_mask = None

    def _after_read(self) -> None:
        if self._head == self._tail:
            self._reset_empty()
            return
        head = self._head
        if head > _COMPACT_THRESHOLD and head * 2 > len(self._arr):
            n = self._tail - head
            self._arr[:n] = self._arr[head:self._tail].copy()
            self._written[:n] = self._written[head:self._tail].copy()
            if self._int_mask is not None:
                self._int_mask[:n] = self._int_mask[head:self._tail].copy()
            self._written[n:self._tail] = False
            self._wp -= head
            self._tail = n
            self._head = 0

    def _value_at(self, i: int) -> Any:
        if self._kind == "int":
            return int(self._arr[i])
        v = self._arr[i]
        if self._int_mask is not None and self._int_mask[i]:
            return int(v)
        return float(v)

    def _write_scalar(self, index: int, value: Any) -> bool:
        """Stage ``value`` at absolute ``index``.  Returns ``False`` after
        degrading (caller redoes the operation through the list path)."""
        t = type(value)
        if t is int:
            vkind = "int"
        elif t is float:
            vkind = "float"
        else:
            self._degrade(self._reason_for(value))
            return False
        k = self._kind
        if k is None:
            self._adopt(vkind)
        elif k == "int" and vkind == "float":
            if not self._promote():
                return False
        elif k == "float" and vkind == "int":
            self._to_mixed()
        if vkind == "int":
            if self._kind == "int":
                if not _INT64_MIN <= value <= _INT64_MAX:
                    self._degrade("int beyond int64 range")
                    return False
            elif not -_ND_EXACT_INT <= value <= _ND_EXACT_INT:
                self._degrade("int beyond float64-exact range")
                return False
        self._grow(index)
        self._arr[index] = value
        self._written[index] = True
        if self._int_mask is not None:
            self._int_mask[index] = vkind == "int"
        if index + 1 > self._tail:
            self._tail = index + 1
        return True

    # -- writing ---------------------------------------------------------------
    def push(self, value: Any) -> None:
        if self.degrade_reason is not None:
            Tape.push(self, value)
        elif self._write_scalar(self._wp, value):
            self._wp += 1
        else:
            Tape.push(self, value)

    def rpush(self, value: Any, offset: int) -> None:
        if offset < 0:
            raise ValueError(f"{self.name}: negative rpush offset {offset}")
        if self.degrade_reason is not None or \
                not self._write_scalar(self._wp + offset, value):
            Tape.rpush(self, value, offset)

    def advance_writer(self, count: int) -> None:
        if count < 0:
            raise ValueError(f"{self.name}: negative writer advance")
        if self.degrade_reason is not None:
            Tape.advance_writer(self, count)
            return
        if not count:
            return
        written = self._written
        if written is None:
            raise UninitializedRead(
                f"{self.name}: advancing writer over unwritten slot 0")
        end = self._wp + count
        seg = written[self._wp:min(end, len(written))]
        if seg.size < count or not seg.all():
            hole = int(np.argmin(seg)) if seg.size and not seg.all() \
                else int(seg.size)
            raise UninitializedRead(
                f"{self.name}: advancing writer over unwritten slot {hole}")
        self._wp = end  # every staged slot < _tail, so end <= _tail

    def write_strided(self, offset: int, stride: int,
                      values: List[Any]) -> None:
        if offset < 0:
            raise ValueError(f"{self.name}: negative rpush offset {offset}")
        if stride < 1:
            raise ValueError(f"{self.name}: write stride must be >= 1")
        if self.degrade_reason is not None:
            Tape.write_strided(self, offset, stride, values)
            return
        count = len(values)
        if not count:
            return
        kinds = set(map(type, values))
        if not kinds <= {int, float}:
            bad = next(v for v in values if type(v) not in (int, float))
            self._degrade(self._reason_for(bad))
            Tape.write_strided(self, offset, stride, values)
            return
        vkind = "int" if kinds == {int} else \
            "float" if kinds == {float} else "mixed"
        if not self._prepare_block(vkind):
            Tape.write_strided(self, offset, stride, values)
            return
        if self._kind != "int" and int in kinds:
            worst = max(abs(v) for v in values if type(v) is int)
            if worst > _ND_EXACT_INT:
                self._degrade("int beyond float64-exact range")
                Tape.write_strided(self, offset, stride, values)
                return
        base = self._wp + offset
        last = base + (count - 1) * stride
        self._grow(last)
        try:
            self._arr[base:last + 1:stride] = values
        except (OverflowError, ValueError):
            self._degrade("int beyond int64 range")
            Tape.write_strided(self, offset, stride, values)
            return
        self._written[base:last + 1:stride] = True
        if self._int_mask is not None:
            if vkind == "mixed":
                self._int_mask[base:last + 1:stride] = \
                    [type(v) is int for v in values]
            else:
                self._int_mask[base:last + 1:stride] = vkind == "int"
        if last + 1 > self._tail:
            self._tail = last + 1

    def _prepare_block(self, vkind: str) -> bool:
        """Adopt/promote storage for a block of kind ``vkind``; ``False``
        after degrading."""
        k = self._kind
        if k is None:
            self._adopt("int" if vkind == "int" else "float")
            if vkind == "mixed":
                self._to_mixed()
        elif k == "int" and vkind != "int":
            return self._promote()
        elif k == "float" and vkind != "float":
            self._to_mixed()
        return True

    def write_strided_array(self, offset: int, stride: int,
                            values: Any) -> None:
        """:meth:`write_strided` from a 1-d int64/float64 ndarray — the
        vector backend's zero-conversion batched commit."""
        if offset < 0:
            raise ValueError(f"{self.name}: negative rpush offset {offset}")
        if stride < 1:
            raise ValueError(f"{self.name}: write stride must be >= 1")
        count = len(values)
        if not count:
            return
        if self.degrade_reason is None:
            dk = values.dtype.kind
            vkind = "int" if dk == "i" else "float" if dk == "f" else None
            if vkind is None:
                self._degrade(f"non-numeric payload (dtype {values.dtype})")
            elif self._prepare_block(vkind):
                if vkind == "int" and self._kind != "int" and \
                        float(np.abs(values.astype(np.float64)).max()) > \
                        float(_ND_EXACT_INT):
                    self._degrade("int beyond float64-exact range")
                else:
                    base = self._wp + offset
                    last = base + (count - 1) * stride
                    self._grow(last)
                    self._arr[base:last + 1:stride] = values
                    self._written[base:last + 1:stride] = True
                    if self._int_mask is not None:
                        self._int_mask[base:last + 1:stride] = vkind == "int"
                    if last + 1 > self._tail:
                        self._tail = last + 1
                    return
        Tape.write_strided(self, offset, stride, values.tolist())

    # -- reading ---------------------------------------------------------------
    def pop(self) -> Any:
        if self.degrade_reason is not None:
            return Tape.pop(self)
        if self._head >= self._wp:
            raise TapeUnderflow(f"{self.name}: pop from empty tape")
        value = self._value_at(self._head)
        self._head += 1
        self._after_read()
        return value

    def peek(self, offset: int) -> Any:
        if self.degrade_reason is not None:
            return Tape.peek(self, offset)
        if offset < 0:
            raise ValueError(f"{self.name}: negative peek offset {offset}")
        index = self._head + offset
        if index >= self._wp:
            raise TapeUnderflow(
                f"{self.name}: peek({offset}) with only {len(self)} items")
        return self._value_at(index)

    def peek_block(self, count: int) -> List[Any]:
        if self.degrade_reason is not None:
            return Tape.peek_block(self, count)
        if count < 0:
            raise ValueError(f"{self.name}: negative peek_block count")
        if self._head + count > self._wp:
            raise TapeUnderflow(
                f"{self.name}: peek_block({count}) with only {len(self)} "
                f"items")
        if not count:
            return []
        view = self._arr[self._head:self._head + count]
        if _MUT_ND_WINDOW_SHIFT:
            view = np.roll(view, -_MUT_ND_WINDOW_SHIFT)
        if self._int_mask is None:
            return view.tolist()
        mask = self._int_mask[self._head:self._head + count]
        return [int(v) if m else v
                for v, m in zip(view.tolist(), mask.tolist())]

    def peek_block_array(self, count: int) -> Optional[Any]:
        """Zero-copy read-only view of the next ``count`` committed items,
        or ``None`` when no pure int64/float64 view exists (degraded,
        mixed int/float content, or no dtype adopted yet)."""
        if count < 0:
            raise ValueError(f"{self.name}: negative peek_block count")
        if self._head + count > self._wp:
            raise TapeUnderflow(
                f"{self.name}: peek_block({count}) with only {len(self)} "
                f"items")
        if self.degrade_reason is not None or \
                self._kind not in ("int", "float"):
            return None
        view = self._arr[self._head:self._head + count]
        if _MUT_ND_WINDOW_SHIFT:
            view = np.roll(view, -_MUT_ND_WINDOW_SHIFT)
        view.flags.writeable = False
        return view

    def advance_reader(self, count: int) -> None:
        if self.degrade_reason is not None:
            Tape.advance_reader(self, count)
            return
        if count < 0:
            raise ValueError(f"{self.name}: negative reader advance")
        if self._head + count > self._wp:
            raise TapeUnderflow(
                f"{self.name}: advance_reader({count}) with only "
                f"{len(self)} items")
        self._head += count
        self._after_read()

    # -- draining (output collection) ------------------------------------------
    def drain(self) -> List[Any]:
        if self.degrade_reason is not None:
            return Tape.drain(self)
        items = self.peek_block(self._wp - self._head)
        self._head = self._wp
        self._after_read()
        return items
