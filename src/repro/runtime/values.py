"""Value helpers for the interpreter.

Scalars are Python ``int``/``float``/``bool``; vectors are Python lists of
scalars (mutable so lane assignment is cheap, copied on variable assignment
to preserve value semantics).
"""

from __future__ import annotations

import math
import operator
from typing import Any, Callable, List

ScalarValue = int | float | bool
Value = ScalarValue | List[ScalarValue]


def is_vector_value(value: Any) -> bool:
    return isinstance(value, list)


def copy_value(value: Value) -> Value:
    """Vectors copy on assignment; scalars are immutable."""
    return list(value) if isinstance(value, list) else value


def splat(value: ScalarValue, width: int) -> List[ScalarValue]:
    return [value] * width


def _c_int_div(a: int, b: int) -> int:
    """C semantics: truncation toward zero."""
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def _c_int_mod(a: int, b: int) -> int:
    return a - _c_int_div(a, b) * b


def _div(a: ScalarValue, b: ScalarValue) -> ScalarValue:
    if isinstance(a, int) and isinstance(b, int):
        return _c_int_div(a, b)
    return a / b


def _mod(a: ScalarValue, b: ScalarValue) -> ScalarValue:
    if isinstance(a, int) and isinstance(b, int):
        return _c_int_mod(a, b)
    return math.fmod(a, b)


#: Scalar semantics of each IR binary operator (C-like).  Shared by the
#: interpreter's generic dispatch and the compiled backend's specialised
#: closures, so both engines compute bit-identical results by construction.
BINARY_IMPLS: dict[str, Callable[[ScalarValue, ScalarValue], ScalarValue]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": _div,
    "%": _mod,
    "<<": lambda a, b: int(a) << int(b),
    ">>": lambda a, b: int(a) >> int(b),
    "&": lambda a, b: int(a) & int(b),
    "|": lambda a, b: int(a) | int(b),
    "^": lambda a, b: int(a) ^ int(b),
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "&&": lambda a, b: bool(a) and bool(b),
    "||": lambda a, b: bool(a) or bool(b),
}

#: Scalar semantics of each IR unary operator.
UNARY_IMPLS: dict[str, Callable[[ScalarValue], ScalarValue]] = {
    "-": operator.neg,
    "!": lambda a: not bool(a),
    "~": lambda a: ~int(a),
}


def apply_binary(op: str, a: ScalarValue, b: ScalarValue) -> ScalarValue:
    """Scalar semantics of each IR binary operator (C-like)."""
    impl = BINARY_IMPLS.get(op)
    if impl is None:
        raise ValueError(f"unknown binary operator {op!r}")
    return impl(a, b)


def apply_unary(op: str, a: ScalarValue) -> ScalarValue:
    impl = UNARY_IMPLS.get(op)
    if impl is None:
        raise ValueError(f"unknown unary operator {op!r}")
    return impl(a)


_MATH_IMPL: dict[str, Callable[..., ScalarValue]] = {
    "sin": math.sin, "cos": math.cos, "tan": math.tan,
    "asin": math.asin, "acos": math.acos, "atan": math.atan,
    "atan2": math.atan2,
    "sqrt": math.sqrt, "exp": math.exp, "log": math.log, "pow": math.pow,
    "abs": abs, "min": min, "max": max,
    "floor": lambda x: float(math.floor(x)),
    "ceil": lambda x: float(math.ceil(x)),
    "round": lambda x: float(round(x)),
    "rint": lambda x: float(round(x)),
    "float": float,
    "int": lambda x: int(x),  # C cast: truncation toward zero
}


def math_impl(func: str) -> Callable[..., ScalarValue]:
    """Scalar implementation of a math intrinsic (shared with the compiled
    backend so both engines call the exact same callable)."""
    impl = _MATH_IMPL.get(func)
    if impl is None:
        raise ValueError(f"unknown math intrinsic {func!r}")
    return impl


def apply_math(func: str, args: List[ScalarValue]) -> ScalarValue:
    return math_impl(func)(*args)
