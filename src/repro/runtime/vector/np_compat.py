"""NumPy availability gate and bit-parity calibration.

The vector backend is only allowed to vectorize operations whose numpy
implementation is **bit-identical** to the Python ``math``-module
semantics the interpreter uses (:mod:`repro.runtime.values`).  Basic
IEEE-754 arithmetic (``+ - * /`` on float64) is identical by definition —
Python floats *are* doubles — but transcendental intrinsics come from two
different libm entry points and may disagree in the last ulp depending on
platform and numpy build.

Rather than hard-coding a platform-specific whitelist, this module runs a
one-time **calibration probe** at import: each candidate intrinsic is
evaluated over a few thousand deterministic sample points through both
``math.<f>`` and ``np.<f>``; only intrinsics that agree bit-for-bit on
every probe point are admitted to the vector fast path.  Actors whose
bodies use a non-admitted intrinsic fall back to the compiled backend per
actor, so a platform with a divergent ``np.sin`` stays *correct* — it
just vectorizes fewer actors.  (``pow`` is excluded unconditionally: its
domain-error behaviour differs structurally, not just in rounding.)

numpy itself is an optional extra (``pip install .[vector]``).  When it
is missing, ``HAVE_NUMPY`` is ``False`` and resolving ``backend="vector"``
raises a clean :class:`~repro.runtime.errors.StreamRuntimeError`.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, FrozenSet, List, Tuple

try:  # pragma: no cover - exercised through both CI lanes
    import numpy as np
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = ["HAVE_NUMPY", "np", "exact_intrinsics", "NP_MATH"]

#: Intrinsics considered for vectorization, with their numpy counterpart
#: and the scalar reference from :mod:`repro.runtime.values`.  ``min`` /
#: ``max`` / ``abs`` / casts are handled structurally in the kernel
#: builder; ``pow`` is never vectorized (domain errors differ).
_CANDIDATES: Dict[str, Tuple[Callable[..., Any], Callable[[float], float]]] = {}

#: Probe domains chosen to cover each intrinsic's legal range densely.
_PROBE_COUNT = 4001


def _probe_points(lo: float, hi: float) -> List[float]:
    span = hi - lo
    return [lo + span * k / (_PROBE_COUNT - 1) for k in range(_PROBE_COUNT)]


def _build_candidates() -> None:
    if not HAVE_NUMPY:
        return
    wide = _probe_points(-50.0, 50.0)
    unit = _probe_points(-0.999, 0.999)
    positive = _probe_points(1e-6, 1e4)
    _CANDIDATES.update({
        "sin": (np.sin, math.sin),
        "cos": (np.cos, math.cos),
        "tan": (np.tan, math.tan),
        "atan": (np.arctan, math.atan),
        "exp": (np.exp, math.exp),
        "floor": (np.floor, lambda x: float(math.floor(x))),
        "ceil": (np.ceil, lambda x: float(math.ceil(x))),
        "round": (np.round, lambda x: float(round(x))),
        "rint": (np.rint, lambda x: float(round(x))),
    })
    _DOMAINS.update({name: wide for name in _CANDIDATES})
    _CANDIDATES["asin"] = (np.arcsin, math.asin)
    _CANDIDATES["acos"] = (np.arccos, math.acos)
    _DOMAINS["asin"] = unit
    _DOMAINS["acos"] = unit
    _CANDIDATES["sqrt"] = (np.sqrt, math.sqrt)
    _CANDIDATES["log"] = (np.log, math.log)
    _DOMAINS["sqrt"] = positive
    _DOMAINS["log"] = positive


_DOMAINS: Dict[str, List[float]] = {}
_build_candidates()


def _calibrate() -> FrozenSet[str]:
    """Return the set of intrinsics whose numpy implementation matches the
    scalar reference bit-for-bit on every probe point."""
    if not HAVE_NUMPY:
        return frozenset()
    exact = set()
    for name, (np_fn, py_fn) in _CANDIDATES.items():
        points = _DOMAINS[name]
        got = np_fn(np.asarray(points, dtype=np.float64))
        want = [py_fn(x) for x in points]
        if got.tolist() == want:
            exact.add(name)
    # atan2 is binary; probe a grid (excluding the 0/0 corner Python and
    # numpy agree on anyway, but keep it simple and well-defined).
    ys = _probe_points(-9.5, 9.5)[::40]
    xs = _probe_points(-7.5, 7.5)[::40]
    yg = np.asarray([y for y in ys for _ in xs])
    xg = np.asarray([x for _ in ys for x in xs])
    got2 = np.arctan2(yg, xg).tolist()
    want2 = [math.atan2(y, x) for y in ys for x in xs]
    if got2 == want2:
        exact.add("atan2")
    # fmod backs the float path of the `%` operator.
    a = np.asarray(_probe_points(-321.7, 298.3))
    if np.fmod(a, 7.3).tolist() == [math.fmod(x, 7.3) for x in a.tolist()]:
        exact.add("fmod")
    return frozenset(exact)


#: Intrinsics admitted to the vector fast path on this platform.
EXACT_INTRINSICS: FrozenSet[str] = _calibrate()


def exact_intrinsics() -> FrozenSet[str]:
    return EXACT_INTRINSICS


#: numpy elementwise implementations for admitted intrinsics (queried by
#: the kernel builder; absence means "fall back for this actor").
NP_MATH: Dict[str, Callable[..., Any]] = {}
if HAVE_NUMPY:
    NP_MATH.update({
        "sin": np.sin, "cos": np.cos, "tan": np.tan,
        "asin": np.arcsin, "acos": np.arccos, "atan": np.arctan,
        "atan2": np.arctan2, "sqrt": np.sqrt, "exp": np.exp,
        "log": np.log, "floor": np.floor, "ceil": np.ceil,
        "round": np.round, "rint": np.rint,
    })
