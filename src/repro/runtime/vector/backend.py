"""The vector execution backend: whole-array batch execution per actor.

``VectorBackend`` extends :class:`~repro.runtime.compiled.CompiledBackend`
— every actor still gets the compiled closure kernels (they run the init
body and serve as the per-firing fallback) — and additionally attempts to
build a :class:`~.kernel.BatchKernel` per filter once its init body has
run.  Actors whose work body vectorizes execute ``n`` consecutive firings
as a handful of numpy array operations through ``run_work_batch``; actors
that do not (stateful beyond affine induction, data-dependent control
flow, inexact intrinsics, ...) fall back to the compiled path per firing,
and the decision — ``"vector"`` or ``"fallback: <reason>"`` — is recorded
per actor and surfaced through ``ExecutionResult.vectorized`` and the obs
layer.

Movers (splitters/joiners) get batched fast paths too: one
``peek_block`` + a few strided slice writes move ``n`` firings' worth of
elements with a single batched counter charge, in the exact element order
of the sequential path.

Every batch entry point re-validates at runtime and *returns control to
the per-firing path* when a guard fails (multicore ``Channel`` tapes,
insufficient input, type drift, bound overflow) — so outputs and counter
bags stay bit-identical to the interpreter in every case the batch path
cannot prove, rather than being best-effort.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, List, Optional

from ...graph.actor import FilterSpec
from ...graph.builtins import (
    HJoinerSpec,
    HSplitterSpec,
    JoinerSpec,
    SplitKind,
    SplitterSpec,
)
from ...graph.stream_graph import TapeEdge
from ...perf import events as ev
from ..errors import StreamRuntimeError
from ..compiled.backend import CompiledActor, CompiledBackend
from ..compiled.cache import KernelCache
from ..interpreter import ActorRuntime
from ..tape import Tape
from .kernel import BatchKernel, Unvectorizable, build_batch_kernel
from .np_compat import HAVE_NUMPY

__all__ = ["VectorActor", "VectorBackend"]

BatchFn = Callable[[int], None]


class VectorActor(CompiledActor):
    """Compiled actor that additionally batches its work function.

    The batch kernel is built lazily *after* ``run_init`` (vectorizability
    depends on the post-init state: types, array shapes), exactly once per
    actor instance.  ``vector_status`` records the decision.
    """

    __slots__ = ("vector_status", "_batch_kernel", "_spec", "_in_vector",
                 "_backend")

    def __init__(self, runtime: ActorRuntime, *args: Any) -> None:
        super().__init__(runtime, *args)
        self.vector_status = "fallback: not built"
        self._batch_kernel: Optional[BatchKernel] = None
        self._spec: Optional[FilterSpec] = None
        self._in_vector = False
        self._backend: Optional["VectorBackend"] = None

    def configure_vector(self, spec: FilterSpec, in_vector: bool,
                         backend: "VectorBackend") -> None:
        self._spec = spec
        self._in_vector = in_vector
        self._backend = backend
        if not spec.init_body:
            # No init body means the executor never calls run_init: the
            # state is already final, build now.
            self._build()

    def run_init(self, body: Any = None) -> None:
        super().run_init(body)
        if self._spec is not None and self._batch_kernel is None \
                and self.vector_status == "fallback: not built":
            self._build()

    def _build(self) -> None:
        try:
            self._batch_kernel = build_batch_kernel(
                self.rt, self._spec, self._in_vector)
            self.vector_status = "vector"
        except Unvectorizable as exc:
            self._batch_kernel = None
            self.vector_status = f"fallback: {exc}"
        if self._backend is not None:
            key = "vector" if self._batch_kernel is not None else "fallback"
            self._backend.vector_stats[key] += 1

    def run_work_batch(self, n: int) -> None:
        """Fire ``n`` times: one array batch when possible, else ``n``
        compiled firings (bit-identical either way)."""
        kernel = self._batch_kernel
        if kernel is not None and kernel.run(self.rt, n):
            return
        run_work = self.run_work
        for _ in range(n):
            run_work()


class VectorBackend(CompiledBackend):
    """Execution backend batching actor firings into array kernels."""

    name = "vector"
    _actor_class = VectorActor
    #: The executor may merge all steady iterations into one giant phase
    #: (after an admissibility check) so batch kernels see maximal ``n``.
    coalesce_iterations = True

    def __init__(self, cache: Optional[KernelCache] = None) -> None:
        if not HAVE_NUMPY:
            raise StreamRuntimeError(
                "backend 'vector' requires numpy (install the [vector] "
                "extra: pip install .[vector])")
        super().__init__(cache)
        #: counts of per-actor vectorization decisions ("vector" /
        #: "fallback") across every graph set up through this backend.
        self.vector_stats: Counter = Counter()

    def make_filter_actor(self, runtime: ActorRuntime, spec: FilterSpec,
                          in_edge: Optional[TapeEdge],
                          out_edge: Optional[TapeEdge]) -> VectorActor:
        actor = super().make_filter_actor(runtime, spec, in_edge, out_edge)
        in_vector = bool(in_edge is not None and in_edge.is_vector)
        actor.configure_vector(spec, in_vector, self)
        return actor

    # -- batched movers ---------------------------------------------------------
    def make_batch_mover(self, run: Any, actor: Any,
                         fire: Callable[[], None]) -> Optional[BatchFn]:
        """Return an ``n``-firing batch closure for a native mover, or
        ``None``.  ``fire`` is the per-firing closure used as fallback
        when a runtime guard fails."""
        spec = actor.spec
        if isinstance(spec, SplitterSpec):
            return _batch_splitter(run, actor.id, spec, fire)
        if isinstance(spec, JoinerSpec):
            return _batch_joiner(run, actor.id, spec, fire)
        if isinstance(spec, HSplitterSpec):
            return _batch_hsplitter(run, actor.id, spec, fire)
        if isinstance(spec, HJoinerSpec):
            return _batch_hjoiner(run, actor.id, spec, fire)
        return None


# ==============================================================================
# Batched movers: peek_block + strided slice writes, sequential element order
# ==============================================================================

def _lane_event(run: Any) -> str:
    return ev.SAGU if run.machine.has_sagu else ev.ADDR


def _charger(run: Any, actor_id: int, static: Counter):
    items = tuple((event, count) for event, count in static.items() if count)

    def charge(n: int) -> None:
        events = run.counters.for_actor(actor_id).events
        for event, count in items:
            events[event] += count * n
    return charge


def _plain(*tapes: Any) -> bool:
    """Batch movers require real in-process tapes (multicore ``Channel``
    subclasses Tape but has blocking/locking semantics the batched path
    must not bypass)."""
    return all(type(t) is Tape for t in tapes)


def _bulk_push(tape: Tape, values: List[Any]) -> None:
    tape.write_strided(0, 1, values)
    tape.advance_writer(len(values))


def _batch_splitter(run: Any, actor_id: int, spec: SplitterSpec,
                    fire: Callable[[], None]) -> BatchFn:
    graph = run.graph
    lane = _lane_event(run)
    in_edge = graph.in_tapes(actor_id)[0]
    outs = graph.out_tapes(actor_id)
    in_tape = run.tapes[in_edge.id]
    out_tapes = [run.tapes[edge.id] for edge in outs]
    static = Counter({ev.FIRE: 1})

    if spec.kind is SplitKind.DUPLICATE:
        static[ev.SCALAR_LOAD] += 1
        if in_edge.lane_ordered:
            static[lane] += 1
        for edge in outs:
            static[ev.SCALAR_STORE] += 1
            if edge.lane_ordered:
                static[lane] += 1
        charge = _charger(run, actor_id, static)

        def batch_dup(n: int) -> None:
            if not _plain(in_tape, *out_tapes) or len(in_tape) < n:
                for _ in range(n):
                    fire()
                return
            window = in_tape.peek_block(n)
            for tape in out_tapes:
                _bulk_push(tape, window)
            in_tape.advance_reader(n)
            charge(n)
        return batch_dup

    weights = [spec.weights[edge.src_port] for edge in outs]
    total = sum(weights)
    offsets = []
    acc = 0
    for w in weights:
        offsets.append(acc)
        acc += w
    for edge, w in zip(outs, weights):
        static[ev.SCALAR_LOAD] += w
        static[ev.SCALAR_STORE] += w
        if in_edge.lane_ordered:
            static[lane] += w
        if edge.lane_ordered:
            static[lane] += w
    charge = _charger(run, actor_id, static)

    def batch_rr(n: int) -> None:
        if not _plain(in_tape, *out_tapes) or len(in_tape) < n * total:
            for _ in range(n):
                fire()
            return
        window = in_tape.peek_block(n * total)
        for tape, w, off in zip(out_tapes, weights, offsets):
            for j in range(w):
                tape.write_strided(j, w, window[off + j::total])
            tape.advance_writer(n * w)
        in_tape.advance_reader(n * total)
        charge(n)
    return batch_rr


def _batch_joiner(run: Any, actor_id: int, spec: JoinerSpec,
                  fire: Callable[[], None]) -> BatchFn:
    graph = run.graph
    lane = _lane_event(run)
    ins = graph.in_tapes(actor_id)
    outs = graph.out_tapes(actor_id)
    out_tape = run.tapes[outs[0].id] if outs else None
    in_tapes = [run.tapes[edge.id] for edge in ins]
    weights = [spec.weights[edge.dst_port] for edge in ins]
    total = sum(weights)
    offsets = []
    acc = 0
    for w in weights:
        offsets.append(acc)
        acc += w
    static = Counter({ev.FIRE: 1})
    for edge, w in zip(ins, weights):
        static[ev.SCALAR_LOAD] += w
        if edge.lane_ordered:
            static[lane] += w
        if outs:
            static[ev.SCALAR_STORE] += w
            if outs[0].lane_ordered:
                static[lane] += w
    charge = _charger(run, actor_id, static)

    def batch(n: int) -> None:
        tapes = in_tapes if out_tape is None else in_tapes + [out_tape]
        if not _plain(*tapes) \
                or any(len(t) < n * w for t, w in zip(in_tapes, weights)):
            for _ in range(n):
                fire()
            return
        windows = [t.peek_block(n * w) for t, w in zip(in_tapes, weights)]
        if out_tape is not None:
            for win, w, off in zip(windows, weights, offsets):
                for j in range(w):
                    out_tape.write_strided(off + j, total, win[j::w])
            out_tape.advance_writer(n * total)
        for t, w in zip(in_tapes, weights):
            t.advance_reader(n * w)
        charge(n)
    return batch


def _batch_hsplitter(run: Any, actor_id: int, spec: HSplitterSpec,
                     fire: Callable[[], None]) -> BatchFn:
    graph = run.graph
    lane = _lane_event(run)
    in_edge = graph.in_tapes(actor_id)[0]
    out_edge = graph.out_tapes(actor_id)[0]
    in_tape = run.tapes[in_edge.id]
    out_tape = run.tapes[out_edge.id]
    width = spec.width
    weight = spec.weight
    static = Counter({ev.FIRE: 1})

    if spec.kind is SplitKind.DUPLICATE:
        static[ev.SCALAR_LOAD] += weight
        if in_edge.lane_ordered:
            static[lane] += weight
        static[ev.SPLAT] += weight
        static[ev.VECTOR_STORE] += weight
        charge = _charger(run, actor_id, static)

        def batch_dup(n: int) -> None:
            if not _plain(in_tape, out_tape) or len(in_tape) < n * weight:
                for _ in range(n):
                    fire()
                return
            window = in_tape.peek_block(n * weight)
            _bulk_push(out_tape, [[v] * width for v in window])
            in_tape.advance_reader(n * weight)
            charge(n)
        return batch_dup

    total = width * weight
    static[ev.SCALAR_LOAD] += total
    if in_edge.lane_ordered:
        static[lane] += total
    static[ev.PACK] += total
    static[ev.VECTOR_STORE] += weight
    charge = _charger(run, actor_id, static)

    def batch_rr(n: int) -> None:
        if not _plain(in_tape, out_tape) or len(in_tape) < n * total:
            for _ in range(n):
                fire()
            return
        window = in_tape.peek_block(n * total)
        vectors = []
        for f in range(n):
            base = f * total
            for j in range(weight):
                vectors.append([window[base + k * weight + j]
                                for k in range(width)])
        _bulk_push(out_tape, vectors)
        in_tape.advance_reader(n * total)
        charge(n)
    return batch_rr


def _batch_hjoiner(run: Any, actor_id: int, spec: HJoinerSpec,
                   fire: Callable[[], None]) -> BatchFn:
    graph = run.graph
    lane = _lane_event(run)
    in_edge = graph.in_tapes(actor_id)[0]
    outs = graph.out_tapes(actor_id)
    in_tape = run.tapes[in_edge.id]
    out_tape = run.tapes[outs[0].id] if outs else None
    width = spec.width
    weight = spec.weight
    static = Counter({ev.FIRE: 1, ev.VECTOR_LOAD: weight,
                      ev.UNPACK: width * weight})
    if outs:
        static[ev.SCALAR_STORE] += width * weight
        if outs[0].lane_ordered:
            static[lane] += width * weight
    charge = _charger(run, actor_id, static)

    def batch(n: int) -> None:
        tapes = (in_tape,) if out_tape is None else (in_tape, out_tape)
        if not _plain(*tapes) or len(in_tape) < n * weight:
            for _ in range(n):
                fire()
            return
        window = in_tape.peek_block(n * weight)
        if out_tape is not None:
            values = []
            for f in range(n):
                base = f * weight
                for k in range(width):
                    for j in range(weight):
                        values.append(window[base + j][k])
            _bulk_push(out_tape, values)
        in_tape.advance_reader(n * weight)
        charge(n)
    return batch
