"""The vector execution backend: whole-array batch execution per actor.

``VectorBackend`` extends :class:`~repro.runtime.compiled.CompiledBackend`
— every actor still gets the compiled closure kernels (they run the init
body and serve as the per-firing fallback) — and additionally attempts to
build a :class:`~.kernel.BatchKernel` per filter once its init body has
run.  Actors whose work body vectorizes execute ``n`` consecutive firings
as a handful of numpy array operations through ``run_work_batch``; actors
that do not (stateful beyond affine induction, data-dependent control
flow, inexact intrinsics, ...) fall back to the compiled path per firing,
and the decision — ``"vector"`` or ``"fallback: <reason>"`` — is recorded
per actor and surfaced through ``ExecutionResult.vectorized`` and the obs
layer.

Movers (splitters/joiners) get batched fast paths too: one
``peek_block`` + a few strided slice writes move ``n`` firings' worth of
elements with a single batched counter charge, in the exact element order
of the sequential path.  When the tapes are :class:`~repro.runtime.tape.
NdTape` (the backend's ``tape_class``) the window is a zero-copy array
view and the strided writes are slice assignments — no list round-trip.
Multicore ``Channel`` tapes batch too: the window is a blocking bulk read
(released before any blocking commit, so cores never wedge on each
other), falling back per-firing only when a window exceeds the channel
bound.

Every batch entry point re-validates at runtime and *returns control to
the per-firing path* when a guard fails (unknown tape subclass,
insufficient input, type drift, bound overflow) — so outputs and counter
bags stay bit-identical to the interpreter in every case the batch path
cannot prove, rather than being best-effort.  Batch closures report
whether the batched path actually ran; the executor aggregates that into
``ExecutionResult.batched_firings``.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, List, Optional

from ...graph.actor import FilterSpec
from ...graph.builtins import (
    HJoinerSpec,
    HSplitterSpec,
    JoinerSpec,
    SplitKind,
    SplitterSpec,
)
from ...graph.stream_graph import TapeEdge
from ...perf import events as ev
from ..errors import StreamRuntimeError
from ..compiled.backend import CompiledActor, CompiledBackend
from ..compiled.cache import KernelCache
from ..interpreter import ActorRuntime
from ..tape import NdTape, Tape
from .kernel import BatchKernel, Unvectorizable, build_batch_kernel, \
    _tape_mode
from .np_compat import HAVE_NUMPY

__all__ = ["VectorActor", "VectorBackend"]

#: A batch closure fires ``n`` times and reports whether the batched fast
#: path actually ran (``False`` means it replayed per-firing fallback).
BatchFn = Callable[[int], bool]


class VectorActor(CompiledActor):
    """Compiled actor that additionally batches its work function.

    The batch kernel is built lazily *after* ``run_init`` (vectorizability
    depends on the post-init state: types, array shapes), exactly once per
    actor instance.  ``vector_status`` records the decision.
    """

    __slots__ = ("vector_status", "_batch_kernel", "_spec", "_in_vector",
                 "_backend")

    def __init__(self, runtime: ActorRuntime, *args: Any) -> None:
        super().__init__(runtime, *args)
        self.vector_status = "fallback: not built"
        self._batch_kernel: Optional[BatchKernel] = None
        self._spec: Optional[FilterSpec] = None
        self._in_vector = False
        self._backend: Optional["VectorBackend"] = None

    def configure_vector(self, spec: FilterSpec, in_vector: bool,
                         backend: "VectorBackend") -> None:
        self._spec = spec
        self._in_vector = in_vector
        self._backend = backend
        if not spec.init_body:
            # No init body means the executor never calls run_init: the
            # state is already final, build now.
            self._build()

    def run_init(self, body: Any = None) -> None:
        super().run_init(body)
        if self._spec is not None and self._batch_kernel is None \
                and self.vector_status == "fallback: not built":
            self._build()

    def _build(self) -> None:
        try:
            self._batch_kernel = build_batch_kernel(
                self.rt, self._spec, self._in_vector)
            self.vector_status = "vector"
        except Unvectorizable as exc:
            self._batch_kernel = None
            self.vector_status = f"fallback: {exc}"
        if self._backend is not None:
            key = "vector" if self._batch_kernel is not None else "fallback"
            self._backend.vector_stats[key] += 1

    def run_work_batch(self, n: int) -> bool:
        """Fire ``n`` times: one array batch when possible, else ``n``
        compiled firings (bit-identical either way).  Returns whether the
        batched path actually ran."""
        kernel = self._batch_kernel
        if kernel is not None and kernel.run(self.rt, n):
            return True
        run_work = self.run_work
        for _ in range(n):
            run_work()
        return False


class VectorBackend(CompiledBackend):
    """Execution backend batching actor firings into array kernels."""

    name = "vector"
    _actor_class = VectorActor
    #: The executor may merge all steady iterations into one giant phase
    #: (after an admissibility check) so batch kernels see maximal ``n``.
    coalesce_iterations = True
    #: Tapes owned by this backend's runs keep stream data in machine
    #: layout (int64/float64 ndarrays with list fallback) so batch kernels
    #: read and commit zero-copy array views instead of round-tripping
    #: Python lists through ``asarray``/``tolist`` each batch.
    tape_class = NdTape

    def __init__(self, cache: Optional[KernelCache] = None) -> None:
        if not HAVE_NUMPY:
            raise StreamRuntimeError(
                "backend 'vector' requires numpy (install the [vector] "
                "extra: pip install .[vector])")
        super().__init__(cache)
        #: counts of per-actor vectorization decisions ("vector" /
        #: "fallback") across every graph set up through this backend.
        self.vector_stats: Counter = Counter()

    def make_filter_actor(self, runtime: ActorRuntime, spec: FilterSpec,
                          in_edge: Optional[TapeEdge],
                          out_edge: Optional[TapeEdge]) -> VectorActor:
        actor = super().make_filter_actor(runtime, spec, in_edge, out_edge)
        in_vector = bool(in_edge is not None and in_edge.is_vector)
        actor.configure_vector(spec, in_vector, self)
        return actor

    # -- batched movers ---------------------------------------------------------
    def make_batch_mover(self, run: Any, actor: Any,
                         fire: Callable[[], None]) -> Optional[BatchFn]:
        """Return an ``n``-firing batch closure for a native mover, or
        ``None``.  ``fire`` is the per-firing closure used as fallback
        when a runtime guard fails."""
        spec = actor.spec
        if isinstance(spec, SplitterSpec):
            return _batch_splitter(run, actor.id, spec, fire)
        if isinstance(spec, JoinerSpec):
            return _batch_joiner(run, actor.id, spec, fire)
        if isinstance(spec, HSplitterSpec):
            return _batch_hsplitter(run, actor.id, spec, fire)
        if isinstance(spec, HJoinerSpec):
            return _batch_hjoiner(run, actor.id, spec, fire)
        return None


# ==============================================================================
# Batched movers: peek_block + strided slice writes, sequential element order
# ==============================================================================

def _lane_event(run: Any) -> str:
    return ev.SAGU if run.machine.has_sagu else ev.ADDR


def _charger(run: Any, actor_id: int, static: Counter):
    items = tuple((event, count) for event, count in static.items() if count)

    def charge(n: int) -> None:
        events = run.counters.for_actor(actor_id).events
        for event, count in items:
            events[event] += count * n
    return charge


def _refire(fire: Callable[[], None], n: int) -> bool:
    for _ in range(n):
        fire()
    return False


def _window(tape: Any, mode: str, count: int) -> Optional[List[Any]]:
    """Fetch a ``count``-element list window for a batched mover, or
    ``None`` to fall back per-firing.  Channel windows *block* until the
    producing core has committed them (the batched analogue of ``count``
    blocking pops) — unless the window can never fit the channel bound."""
    if mode == "channel":
        if count > tape.capacity:
            return None
        return tape.peek_block(count)
    if len(tape) < count:
        return None
    return tape.peek_block(count)


def _nd_view(tape: Any, count: int) -> Optional[Any]:
    """Zero-copy read view over an ndarray tape's window, or ``None``
    (degraded / mixed-dtype representation, or not enough data)."""
    if type(tape) is NdTape and len(tape) >= count:
        return tape.peek_block_array(count)
    return None


def _bulk_push(tape: Any, values: List[Any]) -> None:
    tape.write_strided(0, 1, values)
    tape.advance_writer(len(values))


def _bulk_push_array(tape: Any, view: Any) -> None:
    """Commit an ndarray window contiguously: array staging when the
    destination holds machine layout, exact Python values otherwise
    (np scalars must never leak onto a list tape — downstream type
    checks distinguish ``float`` from ``np.float64``)."""
    if type(tape) is NdTape and tape.degrade_reason is None:
        tape.write_strided_array(0, 1, view)
    else:
        tape.write_strided(0, 1, view.tolist())
    tape.advance_writer(len(view))


def _strided_commit(tape: Any, offset: int, stride: int, col: Any) -> None:
    """Stage one strided column from an ndarray slice (no advance)."""
    if type(tape) is NdTape and tape.degrade_reason is None:
        tape.write_strided_array(offset, stride, col)
    else:
        tape.write_strided(offset, stride, col.tolist())


def _batch_splitter(run: Any, actor_id: int, spec: SplitterSpec,
                    fire: Callable[[], None]) -> BatchFn:
    graph = run.graph
    lane = _lane_event(run)
    in_edge = graph.in_tapes(actor_id)[0]
    outs = graph.out_tapes(actor_id)
    in_tape = run.tapes[in_edge.id]
    out_tapes = [run.tapes[edge.id] for edge in outs]
    static = Counter({ev.FIRE: 1})

    if spec.kind is SplitKind.DUPLICATE:
        static[ev.SCALAR_LOAD] += 1
        if in_edge.lane_ordered:
            static[lane] += 1
        for edge in outs:
            static[ev.SCALAR_STORE] += 1
            if edge.lane_ordered:
                static[lane] += 1
        charge = _charger(run, actor_id, static)

        def batch_dup(n: int) -> bool:
            in_mode = _tape_mode(in_tape)
            if in_mode is None \
                    or any(_tape_mode(t) is None for t in out_tapes):
                return _refire(fire, n)
            view = _nd_view(in_tape, n) if in_mode == "nd" else None
            if view is not None:
                for tape in out_tapes:
                    _bulk_push_array(tape, view)
                in_tape.advance_reader(n)
                charge(n)
                return True
            window = _window(in_tape, in_mode, n)
            if window is None:
                return _refire(fire, n)
            if in_mode == "channel":
                # A channel window is a copy: release the slots before any
                # (possibly blocking) downstream commit.
                in_tape.advance_reader(n)
            for tape in out_tapes:
                _bulk_push(tape, window)
            if in_mode != "channel":
                in_tape.advance_reader(n)
            charge(n)
            return True
        return batch_dup

    weights = [spec.weights[edge.src_port] for edge in outs]
    total = sum(weights)
    offsets = []
    acc = 0
    for w in weights:
        offsets.append(acc)
        acc += w
    for edge, w in zip(outs, weights):
        static[ev.SCALAR_LOAD] += w
        static[ev.SCALAR_STORE] += w
        if in_edge.lane_ordered:
            static[lane] += w
        if edge.lane_ordered:
            static[lane] += w
    charge = _charger(run, actor_id, static)

    def batch_rr(n: int) -> bool:
        in_mode = _tape_mode(in_tape)
        if in_mode is None or any(_tape_mode(t) is None for t in out_tapes):
            return _refire(fire, n)
        view = _nd_view(in_tape, n * total) if in_mode == "nd" else None
        if view is not None:
            for tape, w, off in zip(out_tapes, weights, offsets):
                for j in range(w):
                    _strided_commit(tape, j, w, view[off + j::total])
                tape.advance_writer(n * w)
            in_tape.advance_reader(n * total)
            charge(n)
            return True
        window = _window(in_tape, in_mode, n * total)
        if window is None:
            return _refire(fire, n)
        if in_mode == "channel":
            in_tape.advance_reader(n * total)
        for tape, w, off in zip(out_tapes, weights, offsets):
            for j in range(w):
                tape.write_strided(j, w, window[off + j::total])
            tape.advance_writer(n * w)
        if in_mode != "channel":
            in_tape.advance_reader(n * total)
        charge(n)
        return True
    return batch_rr


def _batch_joiner(run: Any, actor_id: int, spec: JoinerSpec,
                  fire: Callable[[], None]) -> BatchFn:
    graph = run.graph
    lane = _lane_event(run)
    ins = graph.in_tapes(actor_id)
    outs = graph.out_tapes(actor_id)
    out_tape = run.tapes[outs[0].id] if outs else None
    in_tapes = [run.tapes[edge.id] for edge in ins]
    weights = [spec.weights[edge.dst_port] for edge in ins]
    total = sum(weights)
    offsets = []
    acc = 0
    for w in weights:
        offsets.append(acc)
        acc += w
    static = Counter({ev.FIRE: 1})
    for edge, w in zip(ins, weights):
        static[ev.SCALAR_LOAD] += w
        if edge.lane_ordered:
            static[lane] += w
        if outs:
            static[ev.SCALAR_STORE] += w
            if outs[0].lane_ordered:
                static[lane] += w
    charge = _charger(run, actor_id, static)

    def batch(n: int) -> bool:
        in_modes = [_tape_mode(t) for t in in_tapes]
        if any(m is None for m in in_modes) \
                or (out_tape is not None
                    and _tape_mode(out_tape) is None):
            return _refire(fire, n)
        windows: List[Any] = []
        for t, w, m in zip(in_tapes, weights, in_modes):
            win = _nd_view(t, n * w) if m == "nd" else None
            if win is None:
                win = _window(t, m, n * w)
            if win is None:
                # Nothing consumed yet (peeks only): per-firing is safe.
                return _refire(fire, n)
            windows.append(win)
        for t, w, m in zip(in_tapes, weights, in_modes):
            if m == "channel":
                t.advance_reader(n * w)
        if out_tape is not None:
            for win, w, off in zip(windows, weights, offsets):
                if isinstance(win, list):
                    for j in range(w):
                        out_tape.write_strided(off + j, total, win[j::w])
                else:
                    for j in range(w):
                        _strided_commit(out_tape, off + j, total, win[j::w])
            out_tape.advance_writer(n * total)
        for t, w, m in zip(in_tapes, weights, in_modes):
            if m != "channel":
                t.advance_reader(n * w)
        charge(n)
        return True
    return batch


def _batch_hsplitter(run: Any, actor_id: int, spec: HSplitterSpec,
                     fire: Callable[[], None]) -> BatchFn:
    graph = run.graph
    lane = _lane_event(run)
    in_edge = graph.in_tapes(actor_id)[0]
    out_edge = graph.out_tapes(actor_id)[0]
    in_tape = run.tapes[in_edge.id]
    out_tape = run.tapes[out_edge.id]
    width = spec.width
    weight = spec.weight
    static = Counter({ev.FIRE: 1})

    if spec.kind is SplitKind.DUPLICATE:
        static[ev.SCALAR_LOAD] += weight
        if in_edge.lane_ordered:
            static[lane] += weight
        static[ev.SPLAT] += weight
        static[ev.VECTOR_STORE] += weight
        charge = _charger(run, actor_id, static)

        def batch_dup(n: int) -> bool:
            in_mode = _tape_mode(in_tape)
            if in_mode is None or _tape_mode(out_tape) is None:
                return _refire(fire, n)
            window = _window(in_tape, in_mode, n * weight)
            if window is None:
                return _refire(fire, n)
            if in_mode == "channel":
                in_tape.advance_reader(n * weight)
            _bulk_push(out_tape, [[v] * width for v in window])
            if in_mode != "channel":
                in_tape.advance_reader(n * weight)
            charge(n)
            return True
        return batch_dup

    total = width * weight
    static[ev.SCALAR_LOAD] += total
    if in_edge.lane_ordered:
        static[lane] += total
    static[ev.PACK] += total
    static[ev.VECTOR_STORE] += weight
    charge = _charger(run, actor_id, static)

    def batch_rr(n: int) -> bool:
        in_mode = _tape_mode(in_tape)
        if in_mode is None or _tape_mode(out_tape) is None:
            return _refire(fire, n)
        window = _window(in_tape, in_mode, n * total)
        if window is None:
            return _refire(fire, n)
        if in_mode == "channel":
            in_tape.advance_reader(n * total)
        vectors = []
        for f in range(n):
            base = f * total
            for j in range(weight):
                vectors.append([window[base + k * weight + j]
                                for k in range(width)])
        _bulk_push(out_tape, vectors)
        if in_mode != "channel":
            in_tape.advance_reader(n * total)
        charge(n)
        return True
    return batch_rr


def _batch_hjoiner(run: Any, actor_id: int, spec: HJoinerSpec,
                   fire: Callable[[], None]) -> BatchFn:
    graph = run.graph
    lane = _lane_event(run)
    in_edge = graph.in_tapes(actor_id)[0]
    outs = graph.out_tapes(actor_id)
    in_tape = run.tapes[in_edge.id]
    out_tape = run.tapes[outs[0].id] if outs else None
    width = spec.width
    weight = spec.weight
    static = Counter({ev.FIRE: 1, ev.VECTOR_LOAD: weight,
                      ev.UNPACK: width * weight})
    if outs:
        static[ev.SCALAR_STORE] += width * weight
        if outs[0].lane_ordered:
            static[lane] += width * weight
    charge = _charger(run, actor_id, static)

    def batch(n: int) -> bool:
        in_mode = _tape_mode(in_tape)
        if in_mode is None \
                or (out_tape is not None and _tape_mode(out_tape) is None):
            return _refire(fire, n)
        window = _window(in_tape, in_mode, n * weight)
        if window is None:
            return _refire(fire, n)
        if in_mode == "channel":
            in_tape.advance_reader(n * weight)
        if out_tape is not None:
            values = []
            for f in range(n):
                base = f * weight
                for k in range(width):
                    for j in range(weight):
                        values.append(window[base + j][k])
            _bulk_push(out_tape, values)
        if in_mode != "channel":
            in_tape.advance_reader(n * weight)
        charge(n)
        return True
    return batch
