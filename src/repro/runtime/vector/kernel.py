"""Whole-array batch kernels for the vector backend.

:func:`build_batch_kernel` abstract-interprets one actor's *work* body —
walking the exact same IR the tree-walking interpreter executes — and, when
the body's shape allows, emits a :class:`BatchKernel` that executes ``n``
consecutive firings as a handful of numpy array operations:

* every tape read becomes a strided **slab** view over one
  ``peek_block`` window (``window[pos::A_in]`` is the column of values the
  ``k``-th firing would read at relative position ``pos``);
* every arithmetic op becomes one elementwise array op over such columns;
* every tape write becomes one strided slice-assignment
  (:meth:`~repro.runtime.tape.Tape.write_strided`);
* performance events are charged statically (``count × n``), exactly the
  totals the interpreter would have accumulated over ``n`` firings.

Parity is the contract: outputs **and** counter bags must be bit-identical
to the interpreter.  The builder therefore refuses (raises
:class:`Unvectorizable`, triggering per-actor fallback to the compiled
closure path) anything whose batch semantics it cannot prove exact:

* data-dependent control flow (``If`` on a tape value, non-constant peek
  offsets, vector branch conditions);
* state that is not an *affine induction* (``s ← s + c`` with constant
  ``c``) or a never-written array/vector read;
* integer arithmetic it cannot bound below ``2**53`` (float64 carries
  integers exactly only up to that limit — a *bounds* lattice tracks the
  max magnitude of every column and emits runtime *checks*);
* math intrinsics whose numpy implementation is not bit-identical to the
  ``math``-module reference on this platform (:mod:`.np_compat`), and
  ``pow`` always;
* bitwise/shift operators, overlapping strided writes, pushes of aliased
  vector values.

Even a successfully built kernel re-validates per batch (state types may
have drifted, windows may mix int/float, bounds may have grown):
``BatchKernel.run`` returns ``False`` — and has changed **nothing** — when
any guard fails, and the caller replays the batch firing-by-firing through
the compiled path.  Runtime surprises inside array evaluation raise
:class:`_Abort` internally and roll back the same way (nothing is
committed to tapes, state, or counters until every array has been
computed).

Two deliberately injectable defects, ``_MUT_READ_SHIFT`` (off-by-one tail:
shifts every slab read) and ``_MUT_SWAP_SUB`` (wrong operand order on
subtraction), exist for the fuzz mutation tests: the differential oracle
must catch and shrink both.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from ...graph.actor import FilterSpec
from ...ir import expr as E
from ...ir import lvalue as L
from ...ir import stmt as S
from ...ir.types import Vector
from ...perf import events as ev
from ..interpreter import ActorRuntime
from ..tape import NdTape, Tape
from ..values import apply_binary, apply_math, apply_unary
from .np_compat import EXACT_INTRINSICS, NP_MATH, np

__all__ = ["Unvectorizable", "BatchKernel", "build_batch_kernel"]

#: float64 represents every integer of magnitude below this exactly.
_EXACT_LIMIT = float(2 ** 53)

#: Affine float state need not be integral to accumulate exactly: any
#: multiple of 2^-16 is a scaled integer, so sequential accumulation and
#: the closed-form ``base + k*delta`` agree exactly as long as the scaled
#: magnitude stays below 2^53 — i.e. the value stays below 2^37.
_DYADIC_SCALE = float(2 ** 16)
_DYADIC_LIMIT = _EXACT_LIMIT / _DYADIC_SCALE

#: Abstract-walk step budget (guards against huge unrolled loops).
_MAX_WALK_STEPS = 20000

_INF = float("inf")

# -- mutation seams (fuzz mutation tests monkeypatch these) --------------------
#: When non-zero, every slab read is shifted by this many tape positions
#: (modulo the window) — the classic off-by-one-tail defect.
_MUT_READ_SHIFT = 0
#: When True, ``a - b`` computes ``b - a`` — wrong operand order.
_MUT_SWAP_SUB = False


class Unvectorizable(Exception):
    """Raised at build time: this actor cannot take the vector fast path.

    The message is the recorded fallback reason surfaced through
    ``ExecutionResult.vectorized`` and the obs layer.
    """


class _Abort(Exception):
    """Raised at batch time, before anything is committed: replay the batch
    firing-by-firing through the fallback path."""


_ARANGE_CACHE: Dict[int, Any] = {}


def _tape_mode(tape: Any) -> Optional[str]:
    """Classify a tape for the batch path: ``"plain"`` (list tape),
    ``"nd"`` (ndarray tape), ``"channel"`` (multicore bounded channel —
    bulk ops block/commit under its lock), or ``None`` (unknown subclass:
    refuse the batch)."""
    tt = type(tape)
    if tt is Tape:
        return "plain"
    if tt is NdTape:
        return "nd"
    # Lazy import: repro.multicore imports the runtime package.
    global _CHANNEL_CLS
    if _CHANNEL_CLS is None:
        from ...multicore.channels import Channel
        _CHANNEL_CLS = Channel
    if isinstance(tape, _CHANNEL_CLS):
        return "channel"
    return None


_CHANNEL_CLS: Optional[type] = None


def _arange(n: int) -> Any:
    cached = _ARANGE_CACHE.get(n)
    if cached is None:
        if len(_ARANGE_CACHE) > 64:
            _ARANGE_CACHE.clear()
        cached = np.arange(n, dtype=np.float64)
        _ARANGE_CACHE[n] = cached
    return cached


def _tag_of_const(v: Any) -> str:
    if type(v) is bool:
        return "bool"
    if type(v) is float:
        return "float"
    return "int"


class _AffineVar:
    """Build-time record of one scalar state variable used affinely."""

    __slots__ = ("name", "baked_type", "delta", "sum_folds", "folds_integral",
                 "folds_dyadic", "materialized")

    def __init__(self, name: str, baked_type: type) -> None:
        self.name = name
        self.baked_type = baked_type
        self.delta: Any = 0           # net per-firing increment
        self.sum_folds: float = 0.0   # Σ|c| over every folded constant
        self.folds_integral = True    # every folded constant is integral
        self.folds_dyadic = True      # … a multiple of 2^-16 (exact sums)
        self.materialized = False     # some column was generated from it


class BatchKernel:
    """A compiled batch program: validate, evaluate arrays, commit."""

    __slots__ = ("actor_id", "a_in", "a_out", "need", "in_vector", "width",
                 "instrs", "rtags", "bound_fns", "checks", "records",
                 "state_reads", "sread_types", "aff_vars", "events",
                 "internal_used", "n_regs")

    def __init__(self, **kw: Any) -> None:
        for name in self.__slots__:
            setattr(self, name, kw[name])

    # -- batch execution -------------------------------------------------------
    def run(self, rt: ActorRuntime, n: int) -> bool:
        """Execute ``n`` firings as one batch.  Returns ``False`` (with no
        observable effect) when a runtime guard fails."""
        if n <= 0:
            return True
        inp = rt.input
        out = rt.output
        in_mode = "plain"
        out_mode = "plain"
        if self.a_in or self.need:
            in_mode = _tape_mode(inp)
            if in_mode is None:
                return False
        if self.a_out or self.records:
            out_mode = _tape_mode(out)
            if out_mode is None:
                return False
        if inp is not None and inp is out:
            return False
        if self.internal_used or rt.internal:
            for buf, items in rt.internal.items():
                if len(items) > rt.internal_head.get(buf, 0):
                    return False

        # -- window fetch + typing ---------------------------------------------
        need = (n - 1) * self.a_in + self.need if self.need else n * self.a_in
        if n * self.a_in > need:
            need = n * self.a_in
        int_mode = False
        m_window = 0.0
        arr = None
        nd_view = None
        window = None
        if need:
            if in_mode == "channel":
                # Blocking bulk read: the producing core commits the full
                # window within this steady iteration (schedule order), so
                # waiting is the batched analogue of n blocking pops.  A
                # window larger than the channel bound can never be fully
                # resident — pace that actor per firing instead.
                if need > inp.capacity:
                    return False
                window = inp.peek_block(need)
            elif len(inp) < need:
                return False
            elif in_mode == "nd" and not self.in_vector:
                # Zero-copy fast path: the window IS the tape storage.
                nd_view = inp.peek_block_array(need)
                if nd_view is None:     # degraded / mixed representation
                    window = inp.peek_block(need)
            else:
                window = inp.peek_block(need)
        if nd_view is not None:
            int_mode = nd_view.dtype.kind == "i"
            absd = np.abs(nd_view.astype(np.float64)) if int_mode \
                else np.abs(nd_view)
            m_window = float(absd.max()) if need else 0.0
            if m_window != m_window:    # window held a NaN
                m_window = _INF
        elif need:
            if self.in_vector:
                width = self.width
                kinds = set()
                for row in window:
                    if type(row) is not list or len(row) != width:
                        return False
                    kinds.update(map(type, row))
                    for x in row:
                        a = abs(x)
                        if a > m_window:
                            m_window = a
                        elif a != a:
                            m_window = _INF
                if kinds != {float}:
                    return False
            else:
                kinds = set(map(type, window))
                if kinds == {float}:
                    pass
                elif kinds == {int}:
                    int_mode = True
                else:
                    return False
                try:
                    for x in window:
                        a = abs(x)
                        if int_mode:
                            a = float(a)
                        if a > m_window:
                            m_window = a
                        elif a != a:
                            m_window = _INF
                except OverflowError:
                    return False
        else:
            window = []

        # -- state prefetch + affine guards ------------------------------------
        svals: List[Any] = []
        sv_abs: List[float] = []
        for (name, path), expect in zip(self.state_reads, self.sread_types):
            val = rt.state.get(name, _Abort)
            try:
                for idx in path:
                    val = val[idx]
            except (TypeError, IndexError, KeyError):
                return False
            if type(val) is not expect:
                return False
            if expect is int:
                if not -_EXACT_LIMIT < val < _EXACT_LIMIT:
                    return False
                sv_abs.append(float(abs(val)))
            elif expect is float:
                a = abs(val)
                sv_abs.append(_INF if a != a else a)
            else:
                sv_abs.append(1.0)
            svals.append(val)

        aff_base: Dict[str, Any] = {}
        aff_bound: Dict[str, float] = {}
        for av in self.aff_vars:
            sv = rt.state.get(av.name, _Abort)
            if type(sv) is not av.baked_type:
                return False
            delta = av.delta
            if av.baked_type is float:
                limit = _EXACT_LIMIT
                if delta != 0 or av.sum_folds > 0:
                    if sv.is_integer() and av.folds_integral:
                        pass
                    elif (sv * _DYADIC_SCALE).is_integer() and \
                            av.folds_dyadic:
                        limit = _DYADIC_LIMIT
                    else:
                        return False
                bound = abs(sv) + n * abs(delta) + av.sum_folds
                if (delta != 0 or av.sum_folds > 0) and bound >= limit:
                    return False
            elif av.baked_type is int:
                try:
                    bound = float(abs(sv)) + n * abs(delta) + av.sum_folds
                except OverflowError:
                    bound = _INF
                if (delta != 0 or av.materialized) and bound >= _EXACT_LIMIT:
                    return False
            else:  # bool: build guaranteed delta == 0 and d == 0 reads
                bound = 1.0
            aff_base[av.name] = sv
            aff_bound[av.name] = bound

        # -- bounds + exactness checks -----------------------------------------
        bvals: List[float] = []
        for fn in self.bound_fns:
            bvals.append(fn(bvals, m_window, aff_bound, sv_abs))
        for idx, mode in self.checks:
            if mode == "int" and not int_mode:
                continue
            if bvals[idx] >= _EXACT_LIMIT:
                return False

        # -- array evaluation --------------------------------------------------
        if nd_view is not None:
            # The window already lives in machine layout: no asarray pass.
            arr = nd_view.astype(np.float64) if int_mode else nd_view
        elif need:
            try:
                arr = np.asarray(window, dtype=np.float64)
            except (ValueError, OverflowError, TypeError):
                return False
            if self.in_vector and arr.ndim != 2:
                return False
        a_in = self.a_in
        shift = _MUT_READ_SHIFT
        aff_delta = {av.name: av.delta for av in self.aff_vars}
        regs: List[Any] = []
        try:
            with np.errstate(all="ignore"):
                for ins in self.instrs:
                    op = ins[0]
                    if op == "slab":
                        pos = ins[1]
                        if shift:
                            idx = (pos + shift
                                   + np.arange(n) * a_in) % max(len(arr), 1)
                            col = np.take(arr, idx, axis=0).astype(np.float64)
                        elif a_in:
                            col = arr[pos: pos + (n - 1) * a_in + 1: a_in]
                        else:
                            col = np.full(n, arr[pos])
                        regs.append(col)
                    elif op == "vslab":
                        pos, lane = ins[1], ins[2]
                        if a_in:
                            col = arr[pos: pos + (n - 1) * a_in + 1: a_in,
                                      lane]
                        else:
                            col = np.full(n, arr[pos, lane])
                        regs.append(col)
                    elif op == "aff":
                        _, name, d, tag = ins
                        base = aff_base[name]
                        delta = aff_delta[name]
                        if delta == 0:
                            if tag == "bool":
                                col = np.full(n, base, dtype=bool)
                            else:
                                col = np.full(n, float(base + d))
                        else:
                            col = (_arange(n) * float(delta)
                                   + float(base + d))
                        regs.append(col)
                    else:
                        regs.append(self._exec(ins, regs, svals, int_mode))
        except _Abort:
            return False

        # -- commit ------------------------------------------------------------
        if in_mode == "channel" and n * a_in:
            # The channel window is a copied list: release the input slots
            # before the (possibly blocking) output commit so downstream
            # cores can drain while we wait for space — no transitive wedge.
            inp.advance_reader(n * a_in)
        if self.records:
            nd_cols: Optional[List[Any]] = None
            if self.a_out and out_mode == "nd" and out.degrade_reason is None:
                nd_cols = [self._materialize_array(src, regs, svals, bvals,
                                                   int_mode, n)
                           for _, src in self.records]
                if any(c is None for c in nd_cols):
                    nd_cols = None
            if nd_cols is not None:
                for (offset, _), col in zip(self.records, nd_cols):
                    out.write_strided_array(offset, self.a_out, col)
                out.advance_writer(n * self.a_out)
            else:
                cols = [self._materialize(src, regs, svals, bvals,
                                          int_mode, n)
                        for _, src in self.records]
                if self.a_out:
                    for (offset, _), col in zip(self.records, cols):
                        out.write_strided(offset, self.a_out, col)
                    out.advance_writer(n * self.a_out)
                else:
                    for (offset, _), col in zip(self.records, cols):
                        out.rpush(col[-1], offset)
        elif self.a_out:
            out.advance_writer(n * self.a_out)
        if in_mode != "channel" and n * a_in:
            # nd inputs advance last: in-place compaction may move storage,
            # which must not happen while `arr` views are still live.
            inp.advance_reader(n * a_in)
        for av in self.aff_vars:
            if av.delta != 0:
                rt.state[av.name] = aff_base[av.name] + n * av.delta
        bag = rt.counters.events
        for event, count in self.events.items():
            bag[event] += count * n
        return True

    # -- instruction evaluation ------------------------------------------------
    def _exec(self, ins: Tuple[Any, ...], regs: List[Any],
              svals: List[Any], int_mode: bool) -> Any:
        op = ins[0]
        if op == "bin":
            _, code, a, b = ins
            x = self._op(a, regs, svals)
            y = self._op(b, regs, svals)
            if code == "add":
                return x + y
            if code == "sub":
                return (y - x) if _MUT_SWAP_SUB else (x - y)
            return x * y
        if op == "div":
            _, a, b, kind, zcheck = ins
            x = self._op(a, regs, svals)
            y = self._op(b, regs, svals)
            if zcheck and np.any(y == 0):
                raise _Abort
            q = x / y
            if kind == "cdiv" or (kind == "mode" and int_mode):
                return np.trunc(q)
            return q
        if op == "mod":
            _, a, b, kind, zcheck, fmod_ok = ins
            x = self._op(a, regs, svals)
            y = self._op(b, regs, svals)
            if zcheck and np.any(y == 0):
                raise _Abort
            if kind == "cmod" or (kind == "mode" and int_mode):
                return x - np.trunc(x / y) * y
            if not fmod_ok:
                raise _Abort
            return np.fmod(x, y)
        if op == "cmp":
            _, code, a, b = ins
            x = self._op(a, regs, svals)
            y = self._op(b, regs, svals)
            if code == "==":
                return x == y
            if code == "!=":
                return x != y
            if code == "<":
                return x < y
            if code == "<=":
                return x <= y
            if code == ">":
                return x > y
            return x >= y
        if op == "logic":
            _, is_and, a, b = ins
            x = self._op(a, regs, svals)
            y = self._op(b, regs, svals)
            return np.logical_and(x, y) if is_and else np.logical_or(x, y)
        if op == "truthy":
            return self._op(ins[1], regs, svals) != 0
        if op == "not":
            return np.logical_not(self._op(ins[1], regs, svals))
        if op == "neg":
            return -self._op(ins[1], regs, svals)
        if op == "b2f":
            x = self._op(ins[1], regs, svals)
            if isinstance(x, np.ndarray):
                return x.astype(np.float64)
            return float(x)
        if op == "bnot":
            res = -np.trunc(self._op(ins[1], regs, svals)) - 1.0
            if not np.isfinite(res).all():
                raise _Abort
            return res
        if op == "trunc":
            res = np.trunc(self._op(ins[1], regs, svals))
            if not np.isfinite(res).all():
                raise _Abort
            return res
        if op == "id":
            return self._op(ins[1], regs, svals)
        if op == "abs":
            return np.abs(self._op(ins[1], regs, svals))
        if op == "minmax":
            _, is_min, a, b, is_bool = ins
            x = self._op(a, regs, svals)
            y = self._op(b, regs, svals)
            res = np.minimum(x, y) if is_min else np.maximum(x, y)
            if not is_bool and not np.isfinite(res).all():
                raise _Abort
            return res
        if op == "call":
            _, func, args = ins
            fn = NP_MATH[func]
            res = fn(*[self._op(a, regs, svals) for a in args])
            if not np.isfinite(res).all():
                raise _Abort
            return res
        if op == "where":
            _, c, t, f, tag = ins
            cond = self._op(c, regs, svals)
            x = self._op(t, regs, svals)
            y = self._op(f, regs, svals)
            if tag != "bool":
                if not isinstance(x, np.ndarray):
                    x = float(x)
                if not isinstance(y, np.ndarray):
                    y = float(y)
            return np.where(cond, x, y)
        raise _Abort  # pragma: no cover - unknown instruction

    @staticmethod
    def _op(operand: Tuple[Any, ...], regs: List[Any],
            svals: List[Any]) -> Any:
        kind = operand[0]
        if kind == "r":
            return regs[operand[1]]
        if kind == "c":
            return operand[1]
        return svals[operand[1]]

    # -- output materialization ------------------------------------------------
    def _materialize(self, src: Tuple[Any, ...], regs: List[Any],
                     svals: List[Any], bvals: List[float],
                     int_mode: bool, n: int) -> List[Any]:
        kind = src[0]
        if kind == "c":
            return [src[1]] * n
        if kind == "s":
            return [svals[src[1]]] * n
        if kind == "r":
            return self._reg_to_list(src[1], regs, bvals, int_mode, n)
        # ('vec', lane_srcs): one list-valued column per firing.
        lane_srcs = src[1]
        if all(s[0] == "r" and self.rtags[s[1]] == "float"
               and isinstance(regs[s[1]], np.ndarray)
               and regs[s[1]].ndim == 1 for s in lane_srcs):
            stacked = np.stack([regs[s[1]] for s in lane_srcs], axis=1)
            return stacked.tolist()
        lanes = [self._materialize(s, regs, svals, bvals, int_mode, n)
                 for s in lane_srcs]
        return [list(row) for row in zip(*lanes)]

    def _materialize_array(self, src: Tuple[Any, ...], regs: List[Any],
                           svals: List[Any], bvals: List[float],
                           int_mode: bool, n: int) -> Optional[Any]:
        """ndarray analogue of _materialize for scalar output columns.

        Returns None whenever the column cannot be represented losslessly
        as an int64/float64 ndarray (bools, huge ints, vector payloads) —
        the caller then falls back to the list path for the whole record
        set so per-record ordering on the tape stays uniform.
        """
        kind = src[0]
        if kind == "c" or kind == "s":
            v = src[1] if kind == "c" else svals[src[1]]
            if type(v) is float:
                return np.full(n, v)
            if type(v) is int:
                try:
                    return np.full(n, v, dtype=np.int64)
                except OverflowError:
                    return None
            return None
        if kind == "r":
            idx = src[1]
            tag = self.rtags[idx]
            if tag == "bool":
                return None
            col = regs[idx]
            as_int = tag == "int" or (tag == "slab" and int_mode)
            if not (isinstance(col, np.ndarray) and col.ndim == 1):
                if as_int:
                    return np.full(n, int(col), dtype=np.int64)
                return np.full(n, float(col))
            if as_int:
                if bvals[idx] < _EXACT_LIMIT:
                    return col.astype(np.int64)
                return None
            return col
        return None  # ('vec', ...) columns carry list payloads

    def _reg_to_list(self, idx: int, regs: List[Any], bvals: List[float],
                     int_mode: bool, n: int) -> List[Any]:
        tag = self.rtags[idx]
        col = regs[idx]
        as_int = tag == "int" or (tag == "slab" and int_mode)
        if not (isinstance(col, np.ndarray) and col.ndim == 1):
            # Batch-constant register (every operand was a constant or a
            # batch-constant state read): one value, replicated.
            if tag == "bool":
                v: Any = bool(col)
            elif as_int:
                v = int(col)
            else:
                v = float(col)
            return [v] * n
        if as_int:
            if bvals[idx] < _EXACT_LIMIT:
                return col.astype(np.int64).tolist()
            return [int(v) for v in col.tolist()]
        return col.tolist()


# ==============================================================================
# The abstract-interpretation walk
# ==============================================================================

# Abstract values:
#   ('c', v)              constant (exact Python value)
#   ('r', i)              column register i (tag in self.rtags[i])
#   ('a', name, d, hf)    affine scalar-state read: state + d (hf: a float
#                         constant participated in the folds)
#   ('s', j)              batch-constant read of never-written array/vector
#                         state (j indexes state_reads)
# Vectors are Python lists of abstract values, mirroring the interpreter's
# list identity/aliasing semantics exactly.

_FOLD_OPS = frozenset({"+", "-"})
_BITWISE = frozenset({"<<", ">>", "&", "|", "^"})
_CMP_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})


class _Builder:
    def __init__(self, runtime: ActorRuntime, spec: FilterSpec,
                 in_vector: bool) -> None:
        self.rt = runtime
        self.spec = spec
        self.in_vector = in_vector
        self.steps = 0
        self.events: Dict[str, int] = {ev.FIRE: 1}
        self.locals: Dict[str, Any] = {}
        self.instrs: List[Tuple[Any, ...]] = []
        self.rtags: List[str] = []
        self.bound_fns: List[Callable[..., float]] = []
        self.checks: List[Tuple[int, str]] = []
        self.records: List[Tuple[int, Tuple[Any, ...]]] = []
        self.state_reads: List[Tuple[str, Tuple[int, ...]]] = []
        self.sread_types: List[type] = []
        self.aff: Dict[str, _AffineVar] = {}
        self.rcur = 0
        self.wcur = 0
        self.max_read = -1
        self.sim_internal: Dict[int, List[Any]] = {}
        self.internal_used = False
        # In-flight (offset, has_float) of each affine state var *within*
        # the firing; committed to the var's per-firing delta on
        # assignment.
        self._cur: Dict[str, Tuple[Any, bool]] = {}

    # -- small helpers ---------------------------------------------------------
    def fail(self, reason: str) -> None:
        raise Unvectorizable(reason)

    def step(self) -> None:
        self.steps += 1
        if self.steps > _MAX_WALK_STEPS:
            self.fail("body too large to batch")

    def charge(self, event: str, count: int = 1) -> None:
        self.events[event] = self.events.get(event, 0) + count

    def new_reg(self, ins: Tuple[Any, ...], tag: str,
                bound: Callable[..., float]) -> Tuple[str, int]:
        self.instrs.append(ins)
        self.rtags.append(tag)
        self.bound_fns.append(bound)
        return ("r", len(self.rtags) - 1)

    def add_check(self, operand: Tuple[Any, ...], mode: str) -> None:
        if operand[0] == "r":
            self.checks.append((operand[1], mode))

    # Bound closures: fn(bvals, m_window, aff_bound, sv_abs) -> float
    def bound_of(self, av: Tuple[Any, ...]) -> Callable[..., float]:
        kind = av[0]
        if kind == "c":
            try:
                b = float(abs(av[1]))
            except OverflowError:
                b = _INF
            return lambda bv, mw, ab, sv: b
        if kind == "r":
            i = av[1]
            return lambda bv, mw, ab, sv: bv[i]
        j = av[1]
        return lambda bv, mw, ab, sv: sv[j]

    # -- abstract value inspection ---------------------------------------------
    def tag_of(self, av: Any) -> str:
        kind = av[0]
        if kind == "c":
            return _tag_of_const(av[1])
        if kind == "r":
            return self.rtags[av[1]]
        if kind == "s":
            t = self.sread_types[av[1]]
            return "bool" if t is bool else ("float" if t is float else "int")
        # affine read
        _, name, d, hf = av
        baked = self.aff[name].baked_type
        if hf or baked is float:
            return "float"
        if baked is bool and d == 0:
            return "bool"
        return "int"

    def operand(self, av: Any) -> Tuple[Any, ...]:
        """Lower an abstract scalar to an instruction operand, materializing
        affine reads into columns."""
        kind = av[0]
        if kind == "a":
            _, name, d, hf = av
            var = self.aff[name]
            var.materialized = True
            tag = self.tag_of(av)
            bound = (lambda nm: lambda bv, mw, ab, sv: ab[nm])(name)
            return self.new_reg(("aff", name, d, tag), tag, bound)
        if kind == "c":
            v = av[1]
            if type(v) is int and not -_EXACT_LIMIT < v < _EXACT_LIMIT:
                self.fail("integer constant exceeds float64 exact range")
        return av

    def is_vec(self, av: Any) -> bool:
        return isinstance(av, list)

    def b2f(self, operand: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Coerce a bool operand to its 0/1 numeric value (Python bools are
        ints under arithmetic; numpy bools are not)."""
        if operand[0] == "c":
            return ("c", int(operand[1])) if type(operand[1]) is bool \
                else operand
        tag = self.tag_of(operand)
        if tag != "bool":
            return operand
        return self.new_reg(("b2f", operand), "int",
                            lambda bv, mw, ab, sv: 1.0)

    def truthify(self, operand: Tuple[Any, ...]) -> Tuple[Any, ...]:
        if operand[0] == "c":
            return ("c", bool(operand[1]))
        if self.tag_of(operand) == "bool":
            return operand
        return self.new_reg(("truthy", operand), "bool",
                            lambda bv, mw, ab, sv: 1.0)

    # ==========================================================================
    # Statements
    # ==========================================================================
    def walk_body(self, body: S.Body) -> None:
        for stmt in body:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: S.Stmt) -> None:
        self.step()
        if isinstance(stmt, S.Assign):
            self.assign(stmt.lhs, self.eval(stmt.rhs))
        elif isinstance(stmt, S.DeclVar):
            if stmt.init is not None:
                value = self.copy_av(self.eval(stmt.init))
            elif isinstance(stmt.type, Vector):
                value = [("c", 0.0) for _ in range(stmt.type.width)]
            else:
                value = ("c", 0.0)
            self.locals[stmt.name] = value
        elif isinstance(stmt, S.DeclArray):
            self.locals[stmt.name] = self.make_array(stmt)
        elif isinstance(stmt, S.Push):
            self.charge_scalar_out()
            value = self.eval(stmt.value)
            if self.is_vec(value):
                # The interpreter pushes the list *uncopied* (aliasing).
                self.fail("push of a vector value (aliases the tape)")
            self.record_write(self.wcur, value)
            self.wcur += 1
        elif isinstance(stmt, S.RPush):
            self.charge_scalar_out()
            offset = self.const_int(self.eval(stmt.offset), "rpush offset")
            value = self.eval(stmt.value)
            if self.is_vec(value):
                self.fail("rpush of a vector value")
            if offset < 0:
                self.fail("negative rpush offset")
            self.record_write(self.wcur + offset, value)
        elif isinstance(stmt, S.VPush):
            self.charge(ev.VECTOR_STORE)
            value = self.eval(stmt.value)
            if not self.is_vec(value):
                self.fail("vpush of a scalar value")
            if any(self.is_vec(x) for x in value):
                self.fail("vpush of a nested vector value")
            lanes = tuple(self.operand(x) for x in value)
            self.record_write(self.wcur, ("vec", lanes), raw=True)
            self.wcur += 1
        elif isinstance(stmt, S.ScatterPush):
            self.scatter_push(stmt)
        elif isinstance(stmt, S.InternalPush):
            value = self.eval(stmt.value)
            self.charge(ev.VECTOR_STORE if self.is_vec(value)
                        else ev.SCALAR_STORE)
            self.internal_used = True
            self.sim_internal.setdefault(stmt.buf, []).append(
                self.copy_av(value))
        elif isinstance(stmt, S.CostAnnotation):
            self.charge(stmt.event, stmt.count)
        elif isinstance(stmt, S.AdvanceReader):
            self.charge(ev.SCALAR_ALU)
            self.require_input()
            self.rcur += stmt.count
        elif isinstance(stmt, S.AdvanceWriter):
            self.charge(ev.SCALAR_ALU)
            self.require_output()
            self.wcur += stmt.count
        elif isinstance(stmt, S.ExprStmt):
            self.eval(stmt.expr)
        elif isinstance(stmt, S.For):
            start = self.const_int(self.eval(stmt.start), "loop start")
            end = self.const_int(self.eval(stmt.end), "loop end")
            self.locals[stmt.var] = ("c", start)
            for index in range(start, end):
                self.charge(ev.LOOP)
                self.locals[stmt.var] = ("c", index)
                self.walk_body(stmt.body)
        elif isinstance(stmt, S.If):
            cond = self.eval(stmt.cond)
            if self.is_vec(cond):
                self.fail("vector value used as branch condition")
            if cond[0] != "c":
                self.fail("data-dependent branch")
            if bool(cond[1]):
                self.walk_body(stmt.then_body)
            else:
                self.walk_body(stmt.else_body)
        else:
            self.fail(f"unknown statement {type(stmt).__name__}")

    def make_array(self, stmt: S.DeclArray) -> List[Any]:
        width = stmt.elem_type.width \
            if isinstance(stmt.elem_type, Vector) else 0
        if stmt.init is not None:
            if width:
                return [[("c", v) for v in item] if isinstance(item, tuple)
                        else [("c", item)] * width for item in stmt.init]
            return [("c", item) for item in stmt.init]
        if width:
            return [[("c", 0.0) for _ in range(width)]
                    for _ in range(stmt.size)]
        return [("c", 0.0)] * stmt.size

    def scatter_push(self, stmt: S.ScatterPush) -> None:
        value = self.eval(stmt.value)
        if not self.is_vec(value):
            self.fail("scatter_push of a scalar value")
        sw = len(value)
        if stmt.strategy == "scalar":
            self.charge(ev.SCALAR_STORE, sw)
            self.charge(ev.UNPACK, sw)
        elif stmt.strategy == "permute":
            self.charge(ev.VECTOR_STORE_U)
            if stmt.stride > 1:
                self.charge(ev.PERMUTE, int(math.log2(stmt.stride)))
        elif stmt.strategy == "sagu":
            self.charge(ev.VECTOR_STORE)
        else:
            self.fail(f"unknown scatter strategy {stmt.strategy!r}")
        for lane in range(1, sw):
            self.record_write(self.wcur + lane * stmt.stride, value[lane])
        self.record_write(self.wcur, value[0])
        self.wcur += 1

    def record_write(self, offset: int, value: Any, raw: bool = False) -> None:
        self.require_output()
        if not raw and self.is_vec(value):
            self.fail("write of a vector value through a scalar slot")
        src = value if raw else self.operand(value)
        self.records.append((offset, src))

    def charge_scalar_out(self) -> None:
        self.charge(ev.SCALAR_STORE)
        if self.rt.out_lane_ordered:
            self.charge(ev.SAGU if self.rt.has_sagu else ev.ADDR)

    def charge_scalar_in(self) -> None:
        self.charge(ev.SCALAR_LOAD)
        if self.rt.in_lane_ordered:
            self.charge(ev.SAGU if self.rt.has_sagu else ev.ADDR)

    def require_input(self) -> None:
        if self.rt.input is None:
            self.fail("actor has no input tape")

    def require_output(self) -> None:
        if self.rt.output is None:
            self.fail("actor has no output tape")

    # ==========================================================================
    # Assignment
    # ==========================================================================
    def copy_av(self, value: Any) -> Any:
        return list(value) if isinstance(value, list) else value

    def assign(self, lhs: L.LValue, value: Any) -> None:
        if isinstance(lhs, L.VarLV):
            if lhs.name in self.locals:
                self.locals[lhs.name] = self.copy_av(value)
                return
            if lhs.name in self.rt.state:
                self.assign_state(lhs.name, value)
                return
            self.fail(f"assignment to undeclared variable {lhs.name!r}")
        elif isinstance(lhs, L.ArrayLV):
            index = self.const_int(self.eval(lhs.index), "array index")
            if lhs.name not in self.locals:
                self.fail("stateful: assignment to state array")
            array = self.locals[lhs.name]
            self.charge(ev.VECTOR_STORE if self.is_vec(value)
                        else ev.SCALAR_STORE)
            try:
                array[index] = self.copy_av(value)
            except IndexError:
                self.fail("array store out of range")
        elif isinstance(lhs, L.LaneLV):
            if lhs.name not in self.locals:
                self.fail("stateful: lane store into state")
            vec = self.locals[lhs.name]
            if not self.is_vec(vec):
                self.fail(f"{lhs.name} is not a vector")
            self.charge(ev.PACK)
            try:
                vec[lhs.lane] = value
            except IndexError:
                self.fail("lane store out of range")
        elif isinstance(lhs, L.ArrayLaneLV):
            index = self.const_int(self.eval(lhs.index), "array index")
            if lhs.name not in self.locals:
                self.fail("stateful: lane store into state array")
            try:
                vec = self.locals[lhs.name][index]
            except IndexError:
                self.fail("array store out of range")
            if not self.is_vec(vec):
                self.fail("lane store into a scalar element")
            self.charge(ev.PACK)
            try:
                vec[lhs.lane] = value
            except IndexError:
                self.fail("lane store out of range")
        else:
            self.fail(f"unknown lvalue {type(lhs).__name__}")

    def assign_state(self, name: str, value: Any) -> None:
        if self.is_vec(value) or value[0] != "a" or value[1] != name:
            self.fail("stateful: non-affine state update")
        _, _, d, hf = value
        var = self.aff[name]
        if hf and var.baked_type is not float:
            self.fail("stateful: state type changes under float update")
        if var.baked_type is bool and d != 0:
            self.fail("stateful: bool state leaves {0,1} under update")
        var.delta = d
        self._cur[name] = (d, hf)

    # ==========================================================================
    # Expressions
    # ==========================================================================
    def eval(self, e: E.Expr) -> Any:
        self.step()
        if isinstance(e, (E.IntConst, E.FloatConst, E.BoolConst)):
            return ("c", e.value)
        if isinstance(e, E.VectorConst):
            return [("c", v) for v in e.values]
        if isinstance(e, E.Var):
            return self.read_var(e.name)
        if isinstance(e, E.ArrayRead):
            return self.array_read(e)
        if isinstance(e, E.Lane):
            base = self.eval(e.base)
            if not self.is_vec(base):
                self.fail("lane access on scalar value")
            self.charge(ev.UNPACK)
            if not 0 <= e.index < len(base):
                self.fail("lane index out of range")
            return base[e.index]
        if isinstance(e, E.BinaryOp):
            return self.binary(e)
        if isinstance(e, E.UnaryOp):
            return self.unary(e)
        if isinstance(e, E.Call):
            return self.call(e)
        if isinstance(e, E.Select):
            return self.select(e)
        if isinstance(e, E.Pop):
            self.charge_scalar_in()
            return self.tape_read(self.rcur, advance=1)
        if isinstance(e, E.Peek):
            self.charge_scalar_in()
            offset = self.const_int(self.eval(e.offset), "peek offset")
            if offset < 0:
                self.fail("negative peek offset")
            return self.tape_read(self.rcur + offset, advance=0)
        if isinstance(e, E.VPop):
            self.charge(ev.VECTOR_LOAD)
            return self.vtape_read(self.rcur, advance=1)
        if isinstance(e, E.VPeek):
            self.charge(ev.VECTOR_LOAD)
            offset = self.const_int(self.eval(e.offset), "vpeek offset")
            if offset < 0:
                self.fail("negative vpeek offset")
            return self.vtape_read(self.rcur + offset, advance=0)
        if isinstance(e, E.ArrayVec):
            return self.array_vec(e)
        if isinstance(e, E.Broadcast):
            value = self.eval(e.value)
            if self.is_vec(value):
                return value
            self.charge(ev.SPLAT)
            return [value] * e.width
        if isinstance(e, E.GatherPop):
            return self.gather(e.stride, self.rcur, e.strategy,
                               advance=e.advance)
        if isinstance(e, E.GatherPeek):
            offset = self.const_int(self.eval(e.offset), "gather offset")
            if offset < 0:
                self.fail("negative gather offset")
            return self.gather(e.stride, self.rcur + offset, e.strategy,
                               advance=0)
        if isinstance(e, E.InternalPop):
            return self.internal_pop(e.buf)
        if isinstance(e, E.InternalPeek):
            offset = self.const_int(self.eval(e.offset), "internal offset")
            buf = self.sim_internal.get(e.buf, [])
            if offset >= len(buf):
                self.fail(f"internal buffer {e.buf} underflow")
            value = buf[offset]
            self.charge(ev.VECTOR_LOAD if self.is_vec(value)
                        else ev.SCALAR_LOAD)
            self.internal_used = True
            return value
        if isinstance(e, E.Param):
            self.fail(f"unbound parameter {e.name!r}")
        self.fail(f"unknown expression {type(e).__name__}")

    def const_int(self, av: Any, what: str) -> int:
        if self.is_vec(av) or av[0] != "c":
            self.fail(f"data-dependent {what}")
        try:
            return int(av[1])
        except (ValueError, OverflowError, TypeError):
            self.fail(f"malformed {what}")

    # -- variable / state reads ------------------------------------------------
    def read_var(self, name: str) -> Any:
        if name in self.locals:
            return self.locals[name]
        state = self.rt.state
        if name not in state:
            self.fail(f"undefined variable {name!r}")
        sv = state[name]
        if isinstance(sv, list):
            # Never-written vector state: lanes become batch constants.
            return [self.state_const(name, (k,), sv[k])
                    for k in range(len(sv))]
        return self.affine_read(name)

    def affine_read(self, name: str) -> Any:
        var = self.aff.get(name)
        if var is None:
            sv = self.rt.state[name]
            baked = type(sv)
            if baked not in (bool, int, float):
                self.fail(f"unsupported state type for {name!r}")
            var = _AffineVar(name, baked)
            self.aff[name] = var
        d, hf = self._cur.get(name, (0, False))
        return ("a", name, d, hf)

    def state_const(self, name: str, path: Tuple[int, ...],
                    value: Any) -> Tuple[Any, ...]:
        if type(value) not in (bool, int, float):
            self.fail(f"unsupported state element type in {name!r}")
        key = (name, path)
        for j, existing in enumerate(self.state_reads):
            if existing == key:
                return ("s", j)
        self.state_reads.append(key)
        self.sread_types.append(type(value))
        return ("s", len(self.state_reads) - 1)

    def array_read(self, e: E.ArrayRead) -> Any:
        index = self.const_int(self.eval(e.index), "array index")
        if e.name in self.locals:
            array = self.locals[e.name]
        elif e.name in self.rt.state:
            sv = self.rt.state[e.name]
            if not isinstance(sv, list):
                self.fail(f"indexing non-array state {e.name!r}")
            if not 0 <= index < len(sv):
                self.fail("state array read out of range")
            elem = sv[index]
            if isinstance(elem, list):
                self.charge(ev.VECTOR_LOAD)
                return [self.state_const(e.name, (index, k), elem[k])
                        for k in range(len(elem))]
            self.charge(ev.SCALAR_LOAD)
            return self.state_const(e.name, (index,), elem)
        else:
            self.fail(f"undefined array {e.name!r}")
        try:
            value = array[index]
        except (IndexError, TypeError):
            self.fail("array read out of range")
        self.charge(ev.VECTOR_LOAD if self.is_vec(value) else ev.SCALAR_LOAD)
        return value

    def array_vec(self, e: E.ArrayVec) -> Any:
        start = self.const_int(self.eval(e.index), "vector-load index")
        sw = self.rt.simd_width
        if e.name in self.locals:
            array = self.locals[e.name]
            if not isinstance(array, list):
                self.fail(f"{e.name!r} is not an array")
            if start + sw > len(array):
                self.fail(f"vector load past end of array {e.name!r}")
            self.charge(ev.VECTOR_LOAD_U)
            return list(array[start:start + sw])
        if e.name in self.rt.state:
            sv = self.rt.state[e.name]
            if not isinstance(sv, list) or start + sw > len(sv):
                self.fail(f"vector load past end of array {e.name!r}")
            self.charge(ev.VECTOR_LOAD_U)
            return [self.state_const(e.name, (start + k,), sv[start + k])
                    for k in range(sw)]
        self.fail(f"undefined array {e.name!r}")

    # -- tape reads --------------------------------------------------------------
    def tape_read(self, pos: int, advance: int) -> Tuple[Any, ...]:
        self.require_input()
        if self.in_vector:
            self.fail("scalar pop/peek on a vector tape")
        if pos > self.max_read:
            self.max_read = pos
        self.rcur += advance
        bound = lambda bv, mw, ab, sv: mw  # noqa: E731
        reg = self.new_reg(("slab", pos), "slab", bound)
        self.checks.append((reg[1], "int"))
        return reg

    def vtape_read(self, pos: int, advance: int) -> List[Any]:
        self.require_input()
        if not self.in_vector:
            self.fail("vpop from a scalar tape")
        if pos > self.max_read:
            self.max_read = pos
        self.rcur += advance
        lanes = []
        for lane in range(self.rt.simd_width):
            bound = lambda bv, mw, ab, sv: mw  # noqa: E731
            lanes.append(self.new_reg(("vslab", pos, lane), "float", bound))
        return lanes

    def gather(self, stride: int, offset: int, strategy: str,
               advance: int) -> List[Any]:
        self.require_input()
        if self.in_vector:
            self.fail("gather on a vector tape")
        sw = self.rt.simd_width
        lanes = []
        for k in range(sw):
            pos = offset + k * stride
            if pos > self.max_read:
                self.max_read = pos
            bound = lambda bv, mw, ab, sv: mw  # noqa: E731
            reg = self.new_reg(("slab", pos), "slab", bound)
            self.checks.append((reg[1], "int"))
            lanes.append(reg)
        self.rcur += advance
        if strategy == "scalar":
            self.charge(ev.SCALAR_LOAD, sw)
            self.charge(ev.PACK, sw)
        elif strategy == "permute":
            self.charge(ev.VECTOR_LOAD_U)
            if stride > 1:
                self.charge(ev.PERMUTE, int(math.log2(stride)))
        elif strategy == "sagu":
            self.charge(ev.VECTOR_LOAD)
        else:
            self.fail(f"unknown gather strategy {strategy!r}")
        return lanes

    def internal_pop(self, buf_id: int) -> Any:
        buf = self.sim_internal.get(buf_id)
        if not buf:
            self.fail(f"internal buffer {buf_id} underflow")
        value = buf.pop(0)
        self.charge(ev.VECTOR_LOAD if self.is_vec(value) else ev.SCALAR_LOAD)
        self.internal_used = True
        return value

    # -- operators ---------------------------------------------------------------
    def binary(self, e: E.BinaryOp) -> Any:
        left = self.eval(e.left)
        right = self.eval(e.right)
        lv, rv = self.is_vec(left), self.is_vec(right)
        if lv or rv:
            width = len(left) if lv else len(right)
            lt = left if lv else [left] * width
            rt_ = right if rv else [right] * width
            self.charge(self.vector_op_event(e.op))
            return [self.scalar_binary(e.op, a, b)
                    for a, b in zip(lt, rt_)]
        self.charge(self.scalar_op_event(e.op))
        return self.scalar_binary(e.op, left, right)

    @staticmethod
    def scalar_op_event(op: str) -> str:
        if op == "*":
            return ev.SCALAR_MUL
        if op in ("/", "%"):
            return ev.SCALAR_DIV
        return ev.SCALAR_ALU

    @staticmethod
    def vector_op_event(op: str) -> str:
        if op == "*":
            return ev.VECTOR_MUL
        if op in ("/", "%"):
            return ev.VECTOR_DIV
        return ev.VECTOR_ALU

    def fold_const(self, op: str, a: Any, b: Any) -> Tuple[Any, ...]:
        try:
            return ("c", apply_binary(op, a, b))
        except Exception as exc:
            self.fail(f"constant fold of {op!r} failed: {exc}")

    def scalar_binary(self, op: str, left: Any, right: Any) -> Any:
        """Uncharged scalar combine (callers charge the op event once)."""
        if left[0] == "c" and right[0] == "c":
            return self.fold_const(op, left[1], right[1])
        # Affine induction folds: (state + d) ± const stays affine.
        if op in _FOLD_OPS:
            folded = self.try_affine_fold(op, left, right)
            if folded is not None:
                return folded
        if op in _BITWISE:
            self.fail(f"bitwise operator {op!r} on non-constant operands")
        if op in _CMP_OPS:
            a = self.b2f(self.operand(left))
            b = self.b2f(self.operand(right))
            return self.new_reg(("cmp", op, a, b), "bool",
                                lambda bv, mw, ab, sv: 1.0)
        if op in ("&&", "||"):
            a = self.truthify(self.operand(left))
            b = self.truthify(self.operand(right))
            return self.new_reg(("logic", op == "&&", a, b), "bool",
                                lambda bv, mw, ab, sv: 1.0)
        if op in ("+", "-", "*"):
            return self.arith(op, left, right)
        if op in ("/", "%"):
            return self.divide(op, left, right)
        self.fail(f"unknown binary operator {op!r}")

    def try_affine_fold(self, op: str, left: Any,
                        right: Any) -> Optional[Tuple[Any, ...]]:
        if left[0] == "a" and right[0] == "c" \
                and type(right[1]) in (bool, int, float):
            c = right[1]
            _, name, d, hf = left
            new_d = d + c if op == "+" else d - c
        elif op == "+" and right[0] == "a" and left[0] == "c" \
                and type(left[1]) in (bool, int, float):
            c = left[1]
            _, name, d, hf = right
            new_d = c + d
        else:
            return None
        var = self.aff[name]
        fc = abs(float(c)) if type(c) is not int \
            else (abs(c) if -_EXACT_LIMIT < c < _EXACT_LIMIT else None)
        if fc is None:
            return None
        var.sum_folds += fc
        if type(c) is float and not c.is_integer():
            var.folds_integral = False
            if not (c * _DYADIC_SCALE).is_integer():
                var.folds_dyadic = False
        hf = hf or type(c) is float
        return ("a", name, new_d, hf)

    def tag_join(self, *tags: str) -> str:
        if "float" in tags:
            return "float"
        if "slab" in tags:
            return "slab"
        return "int"

    def arith(self, op: str, left: Any, right: Any) -> Tuple[Any, ...]:
        a = self.b2f(self.operand(left))
        b = self.b2f(self.operand(right))
        ta, tb = self.tag_of(a), self.tag_of(b)
        tag = self.tag_join(ta, tb)
        ba, bb = self.bound_of(a), self.bound_of(b)
        if op == "*":
            code = "mul"
            bound = lambda bv, mw, ab, sv: ba(bv, mw, ab, sv) \
                * bb(bv, mw, ab, sv)  # noqa: E731
        else:
            code = "add" if op == "+" else "sub"
            bound = lambda bv, mw, ab, sv: ba(bv, mw, ab, sv) \
                + bb(bv, mw, ab, sv)  # noqa: E731
        reg = self.new_reg(("bin", code, a, b), tag, bound)
        if tag == "int":
            self.checks.append((reg[1], "always"))
        elif tag == "slab":
            self.checks.append((reg[1], "int"))
        return reg

    def divide(self, op: str, left: Any, right: Any) -> Tuple[Any, ...]:
        a = self.b2f(self.operand(left))
        b = self.b2f(self.operand(right))
        ta, tb = self.tag_of(a), self.tag_of(b)
        int_like = {"int"}
        if ta in int_like and tb in int_like:
            kind = "cdiv" if op == "/" else "cmod"
            tag = "int"
            mode = "always"
        elif ta == "float" or tb == "float":
            kind = "true" if op == "/" else "fmod"
            tag = "float"
            mode = None
        else:
            kind = "mode"
            tag = "slab"
            mode = "int"
        # Divisor validation.
        zcheck = True
        if b[0] == "c":
            zcheck = False
            if b[1] == 0 and kind != "fmod":
                # fmod(x, 0.0) raises too — but via apply_math; treat alike.
                self.fail("constant division by zero")
            if kind == "fmod" and b[1] == 0:
                self.fail("constant fmod by zero")
        if mode is not None:
            # Truncating division is exact only when |dividend| and
            # |divisor| both stay below 2**53.
            self.add_check(a, mode)
            self.add_check(b, mode)
            if b[0] == "c" and type(b[1]) is int \
                    and not -_EXACT_LIMIT < b[1] < _EXACT_LIMIT:
                self.fail("divisor constant exceeds float64 exact range")
        fmod_ok = "fmod" in EXACT_INTRINSICS
        if kind == "fmod" and not fmod_ok:
            self.fail("numpy fmod is not bit-exact on this platform")
        ba, bb = self.bound_of(a), self.bound_of(b)
        if op == "/":
            bound = ba  # |trunc(a/b)| <= |a| for |b| >= 1; float -> inf ok
            if tag == "float":
                bound = lambda bv, mw, ab, sv: _INF  # noqa: E731
            reg = self.new_reg(("div", a, b, kind, zcheck), tag, bound)
        else:
            bound = bb  # |a mod b| < |b|
            if tag == "float":
                bound = lambda bv, mw, ab, sv: _INF  # noqa: E731
            reg = self.new_reg(("mod", a, b, kind, zcheck, fmod_ok),
                               tag, bound)
        return reg

    def unary(self, e: E.UnaryOp) -> Any:
        operand = self.eval(e.operand)
        if self.is_vec(operand):
            self.charge(ev.VECTOR_ALU)
            return [self.scalar_unary(e.op, x) for x in operand]
        self.charge(ev.SCALAR_ALU)
        return self.scalar_unary(e.op, operand)

    def scalar_unary(self, op: str, operand: Any) -> Any:
        if operand[0] == "c":
            try:
                return ("c", apply_unary(op, operand[1]))
            except Exception as exc:
                self.fail(f"constant fold of unary {op!r} failed: {exc}")
        if op == "!":
            t = self.truthify(self.operand(operand))
            return self.new_reg(("not", t), "bool",
                                lambda bv, mw, ab, sv: 1.0)
        if op == "-":
            a = self.b2f(self.operand(operand))
            tag = self.tag_of(a)
            if tag == "bool":  # b2f produced int; unreachable, keep safe
                tag = "int"
            return self.new_reg(("neg", a), tag, self.bound_of(a))
        if op == "~":
            a = self.b2f(self.operand(operand))
            ba = self.bound_of(a)
            bound = lambda bv, mw, ab, sv: ba(bv, mw, ab, sv) + 1.0  # noqa: E731
            reg = self.new_reg(("bnot", a), "int", bound)
            self.checks.append((reg[1], "always"))
            return reg
        self.fail(f"unknown unary operator {op!r}")

    # -- intrinsic calls ----------------------------------------------------------
    def call(self, e: E.Call) -> Any:
        args = [self.eval(a) for a in e.args]
        if any(self.is_vec(a) for a in args):
            width = next(len(a) for a in args if self.is_vec(a))
            cols = [a if self.is_vec(a) else [a] * width for a in args]
            self.charge(ev.vector_math(e.func))
            return [self.scalar_call(e.func, [col[i] for col in cols])
                    for i in range(width)]
        self.charge(ev.scalar_math(e.func))
        return self.scalar_call(e.func, args)

    def scalar_call(self, func: str, args: List[Any]) -> Any:
        if all(a[0] == "c" for a in args):
            try:
                return ("c", apply_math(func, [a[1] for a in args]))
            except Exception as exc:
                self.fail(f"constant fold of {func!r} failed: {exc}")
        if func == "abs":
            a = self.b2f(self.operand(args[0]))
            tag = self.tag_of(a)
            if tag == "bool":
                tag = "int"
            return self.new_reg(("abs", a), tag, self.bound_of(a))
        if func in ("min", "max"):
            return self.minmax(func == "min", args)
        if func == "float":
            a = self.operand(args[0])
            tag = self.tag_of(a)
            if tag == "bool":
                a = self.b2f(a)
            return self.new_reg(("id", a), "float", self.bound_of(a))
        if func == "int":
            a = self.b2f(self.operand(args[0]))
            tag = self.tag_of(a)
            if tag == "int":
                return self.new_reg(("id", a), "int", self.bound_of(a))
            return self.new_reg(("trunc", a), "int", self.bound_of(a))
        if func == "pow":
            self.fail("pow is never vectorized (domain errors differ)")
        if func not in NP_MATH or func not in EXACT_INTRINSICS:
            self.fail(f"numpy {func!r} is not bit-exact on this platform")
        ops = tuple(self.b2f(self.operand(a)) for a in args)
        bound = lambda bv, mw, ab, sv: _INF  # noqa: E731
        return self.new_reg(("call", func, ops), "float", bound)

    def minmax(self, is_min: bool, args: List[Any]) -> Any:
        if len(args) < 2:
            self.fail("min/max with fewer than two arguments")
        acc = args[0]
        for nxt in args[1:]:
            if acc[0] == "c" and nxt[0] == "c":
                acc = ("c", min(acc[1], nxt[1]) if is_min
                       else max(acc[1], nxt[1]))
                continue
            ta, tb = self.tag_of(acc), self.tag_of(nxt)
            if ta != tb:
                # Python min/max preserve the *argument's* type; a mixed
                # int/float pair can surface either type data-dependently.
                self.fail("min/max over mixed operand types")
            a = self.operand(acc)
            b = self.operand(nxt)
            ba, bb = self.bound_of(a), self.bound_of(b)
            bound = lambda bv, mw, ab, sv: max(
                ba(bv, mw, ab, sv), bb(bv, mw, ab, sv))  # noqa: E731
            acc = self.new_reg(("minmax", is_min, a, b, ta == "bool"),
                               ta, bound)
        return acc

    # -- select --------------------------------------------------------------------
    def select(self, e: E.Select) -> Any:
        cond = self.eval(e.cond)
        if_true = self.eval(e.if_true)
        if_false = self.eval(e.if_false)
        if self.is_vec(cond):
            self.charge(ev.VECTOR_ALU)  # blend
            width = len(cond)
            t = if_true if self.is_vec(if_true) else [if_true] * width
            f = if_false if self.is_vec(if_false) else [if_false] * width
            return [self.scalar_select(cond[i], t[i], f[i])
                    for i in range(width)]
        self.charge(ev.SCALAR_ALU)
        if cond[0] == "c":
            return self.copy_pick(cond[1], if_true, if_false)
        if self.is_vec(if_true) or self.is_vec(if_false):
            self.fail("data-dependent select between vector values")
        return self.scalar_select(cond, if_true, if_false)

    def copy_pick(self, cond_val: Any, if_true: Any, if_false: Any) -> Any:
        return if_true if cond_val else if_false

    def scalar_select(self, cond: Any, if_true: Any, if_false: Any) -> Any:
        if cond[0] == "c":
            return self.copy_pick(cond[1], if_true, if_false)
        if self.is_vec(if_true) or self.is_vec(if_false):
            self.fail("data-dependent select between vector values")
        tt, tf = self.tag_of(if_true), self.tag_of(if_false)
        tag = tt if tt == tf else None
        if tag is None:
            if "bool" in (tt, tf):
                self.fail("select arms of mixed bool/number type")
            tag = self.tag_join(tt, tf)
        c = self.truthify(self.operand(cond))
        a = self.operand(if_true)
        b = self.operand(if_false)
        ba, bb = self.bound_of(a), self.bound_of(b)
        bound = lambda bv, mw, ab, sv: max(
            ba(bv, mw, ab, sv), bb(bv, mw, ab, sv))  # noqa: E731
        return self.new_reg(("where", c, a, b, tag), tag, bound)

    # ==========================================================================
    # Finalization
    # ==========================================================================
    def build(self) -> BatchKernel:
        self.walk_body(self.spec.work_body)
        for buf, items in self.sim_internal.items():
            if items:
                self.fail(f"internal buffer {buf} not drained by firing")
        a_in = self.rcur
        a_out = self.wcur
        if a_out >= 1 and self.records:
            residues = [offset % a_out for offset, _ in self.records]
            if len(set(residues)) != len(residues):
                self.fail("overlapping strided writes")
        need = self.max_read + 1 if self.max_read >= 0 else 0
        # Build-time bound sanity: any *checked* register must have a
        # finite symbolic bound, else the check could never pass anyway.
        test_sv = [1.0] * len(self.state_reads)
        test_ab = {name: 1.0 for name in self.aff}
        bvals: List[float] = []
        for fn in self.bound_fns:
            try:
                bvals.append(float(fn(bvals, 1.0, test_ab, test_sv)))
            except (OverflowError, ValueError):
                bvals.append(_INF)
        for idx, _mode in self.checks:
            if bvals[idx] == _INF:
                self.fail("unbounded integer arithmetic")
        return BatchKernel(
            actor_id=self.rt.actor_id,
            a_in=a_in,
            a_out=a_out,
            need=need,
            in_vector=self.in_vector,
            width=self.rt.simd_width,
            instrs=tuple(self.instrs),
            rtags=tuple(self.rtags),
            bound_fns=tuple(self.bound_fns),
            checks=tuple(dict.fromkeys(self.checks)),
            records=tuple(self.records),
            state_reads=tuple(self.state_reads),
            sread_types=tuple(self.sread_types),
            aff_vars=tuple(self.aff.values()),
            events=dict(self.events),
            internal_used=self.internal_used,
            n_regs=len(self.rtags),
        )


def build_batch_kernel(runtime: ActorRuntime, spec: FilterSpec,
                       in_vector: bool) -> BatchKernel:
    """Abstract-interpret ``spec.work_body`` against ``runtime`` (whose
    state must already reflect ``run_init``) and return a batch kernel.

    Raises :class:`Unvectorizable` with a human-readable reason when the
    actor must take the per-firing fallback path instead.
    """
    if np is None:
        raise Unvectorizable("numpy is not installed")
    return _Builder(runtime, spec, in_vector).build()
