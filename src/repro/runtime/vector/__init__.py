"""Vectorized numpy data-plane backend (``backend="vector"``).

Batches SW-wide × M-repetition runs of actor firings into whole-array
numpy kernels over contiguous tape windows, falling back per actor to the
compiled-closure path when the work body is not provably vectorizable.
See :mod:`.kernel` for the vectorizability analysis and
:mod:`.np_compat` for the bit-parity intrinsic calibration.
"""

from .backend import VectorActor, VectorBackend
from .kernel import BatchKernel, Unvectorizable, build_batch_kernel
from .np_compat import HAVE_NUMPY, EXACT_INTRINSICS, exact_intrinsics

__all__ = [
    "VectorActor",
    "VectorBackend",
    "BatchKernel",
    "Unvectorizable",
    "build_batch_kernel",
    "HAVE_NUMPY",
    "EXACT_INTRINSICS",
    "exact_intrinsics",
]
