"""Kernel cache: one compiled kernel per (canonical body, specialisation).

Horizontal SIMDization thrives on isomorphic actor sets (§3.3); a graph
with sixteen structurally identical band-pass filters should pay the
compile cost once, not sixteen times.  The cache key is exactly the
equivalence the structhash isomorphism check induces — the typed canonical
body from :mod:`.canon` — crossed with the :class:`~.compiler.Specialization`
(tape kinds, lane ordering, SIMD width, state shapes), since a kernel's
closures and static counter deltas are only valid under the specialisation
they were compiled for.

``CacheStats`` exposes compile/hit counts so tests can assert that
structhash-equal actors really do share one kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ...ir import stmt as S
from .compiler import Kernel, Specialization, compile_kernel


@dataclass
class CacheStats:
    """Observable cache behaviour (mutated in place by the cache)."""

    lookups: int = 0
    hits: int = 0

    @property
    def compiled(self) -> int:
        """Number of distinct kernels actually compiled."""
        return self.lookups - self.hits


class KernelCache:
    """Maps ``(canonical body, specialisation)`` to a compiled kernel."""

    def __init__(self) -> None:
        self._kernels: Dict[Tuple[S.Body, Specialization], Kernel] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._kernels)

    def get_or_compile(self, canon_body: S.Body,
                       spec: Specialization) -> Kernel:
        """Return the kernel for ``canon_body`` under ``spec``, compiling it
        on first request.  Kernels are stateless (per-instance constants are
        bound into the :class:`~.compiler.Frame`, not the kernel), so
        sharing across actors and executions is always sound."""
        self.stats.lookups += 1
        key = (canon_body, spec)
        kernel = self._kernels.get(key)
        if kernel is None:
            kernel = compile_kernel(canon_body, spec)
            self._kernels[key] = kernel
        else:
            self.stats.hits += 1
        return kernel
