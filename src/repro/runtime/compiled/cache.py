"""Kernel cache: one compiled kernel per (canonical body, specialisation).

Horizontal SIMDization thrives on isomorphic actor sets (§3.3); a graph
with sixteen structurally identical band-pass filters should pay the
compile cost once, not sixteen times.  The cache key is exactly the
equivalence the structhash isomorphism check induces — the typed canonical
body from :mod:`.canon` — crossed with the :class:`~.compiler.Specialization`
(tape kinds, lane ordering, SIMD width, state shapes), since a kernel's
closures and static counter deltas are only valid under the specialisation
they were compiled for.

``CacheStats`` exposes lookup/hit/miss/eviction counts so tests can
assert that structhash-equal actors really do share one kernel, and so
``macross run/profile/trace --backend compiled`` can surface cache
behaviour per execution (see
:meth:`repro.runtime.executor.ExecutionResult.kernel_cache`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ...ir import stmt as S
from .compiler import Kernel, Specialization, compile_kernel


@dataclass
class CacheStats:
    """Observable cache behaviour (mutated in place by the cache)."""

    lookups: int = 0
    hits: int = 0
    evictions: int = 0

    @property
    def compiled(self) -> int:
        """Number of distinct kernels actually compiled."""
        return self.lookups - self.hits

    @property
    def misses(self) -> int:
        """Alias of :attr:`compiled` (every miss compiles exactly once)."""
        return self.compiled

    def snapshot(self) -> Dict[str, int]:
        """Immutable copy of the counters (for before/after deltas)."""
        return {"lookups": self.lookups, "hits": self.hits,
                "misses": self.misses, "compiled": self.compiled,
                "evictions": self.evictions}

    def delta(self, before: Mapping[str, int]) -> Dict[str, int]:
        """Counter changes since a previous :meth:`snapshot`."""
        now = self.snapshot()
        return {key: now[key] - before.get(key, 0) for key in now}


class KernelCache:
    """Maps ``(canonical body, specialisation)`` to a compiled kernel.

    ``max_kernels`` optionally bounds residency: when set, inserting
    beyond the bound evicts the least-recently-*inserted* kernel (FIFO —
    kernels are cheap to recompile and the working set of a single graph
    is small, so anything fancier is not worth the bookkeeping).  The
    default is unbounded, which is correct for every in-tree workload;
    the bound exists for long-running fuzz campaigns and services.
    """

    def __init__(self, max_kernels: Optional[int] = None) -> None:
        if max_kernels is not None and max_kernels < 1:
            raise ValueError("max_kernels must be >= 1 (or None)")
        self._kernels: Dict[Tuple[S.Body, Specialization], Kernel] = {}
        self.max_kernels = max_kernels
        self.stats = CacheStats()
        # The parallel runtime sets up per-core actors concurrently, so
        # lookup/compile/evict must be atomic.  Setup-time only (kernels
        # are looked up once per actor, never per firing), so the lock is
        # off every hot path.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._kernels)

    def get_or_compile(self, canon_body: S.Body,
                       spec: Specialization) -> Kernel:
        """Return the kernel for ``canon_body`` under ``spec``, compiling it
        on first request.  Kernels are stateless (per-instance constants are
        bound into the :class:`~.compiler.Frame`, not the kernel), so
        sharing across actors and executions is always sound.  Thread-safe:
        concurrent per-core setup threads serialise here."""
        with self._lock:
            self.stats.lookups += 1
            key = (canon_body, spec)
            kernel = self._kernels.get(key)
            if kernel is None:
                kernel = compile_kernel(canon_body, spec)
                if self.max_kernels is not None and \
                        len(self._kernels) >= self.max_kernels:
                    # FIFO eviction: dicts preserve insertion order.
                    oldest = next(iter(self._kernels))
                    del self._kernels[oldest]
                    self.stats.evictions += 1
                self._kernels[key] = kernel
            else:
                self.stats.hits += 1
            return kernel
