"""IR -> closure compiler with static event aggregation.

``compile_kernel`` turns one actor body (in constant-abstracted canonical
form, see :mod:`.canon`) into a :class:`Kernel`: a single Python callable
that executes the body against a :class:`Frame` (the per-actor runtime
view).  Compilation happens once per canonical shape; every firing then
runs pre-composed closures instead of re-walking the IR tree.

Two properties are load-bearing:

* **Counter equivalence.**  For any input, the kernel charges exactly the
  same multiset of performance events as
  :class:`repro.runtime.interpreter.Interpreter` does for the same body —
  the differential suite asserts this event-for-event over every registry
  app.  Events whose kind is statically certain (tape accesses, loop
  back-edges, pack/unpack, shape-inferred ALU ops) are summed into one
  per-block :class:`collections.Counter` delta at compile time and charged
  with a single batched update; only genuinely data-dependent events
  (operations on values whose scalar/vector shape the inference cannot
  prove) are charged at runtime.
* **Loud shape guards.**  Every shape-specialised fast path verifies its
  assumption with a cheap ``type(x) is list`` test and raises
  :class:`InterpreterError` on violation.  The compiled engine can
  therefore never return a silently-different answer than the
  interpreter: it either matches or fails noisily.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ...ir import expr as E
from ...ir import lvalue as L
from ...ir import stmt as S
from ...ir.types import Vector
from ...ir.visitors import iter_stmts
from ...perf import events as ev
from ..errors import InterpreterError
from ..interpreter import ActorRuntime
from ..values import BINARY_IMPLS, UNARY_IMPLS, math_impl
from .canon import array_slot_index, slot_index
from .shapes import (
    SCALAR,
    UNKNOWN,
    VECTOR,
    Shape,
    array_of,
    elem_shape,
    is_list_shape,
    merge,
)

import math

__all__ = ["Frame", "Kernel", "Specialization", "compile_kernel"]

#: Event name charged per binary op, by operator and operand class.
_SCALAR_EVENT = {
    op: (ev.SCALAR_MUL if op == "*"
         else ev.SCALAR_DIV if op in ("/", "%")
         else ev.SCALAR_ALU)
    for op in E.BINARY_OPS
}
_VECTOR_EVENT = {
    op: (ev.VECTOR_MUL if op == "*"
         else ev.VECTOR_DIV if op in ("/", "%")
         else ev.VECTOR_ALU)
    for op in E.BINARY_OPS
}


class Frame:
    """Mutable per-actor execution frame the compiled closures run against.

    Refreshed at the top of every firing: ``locals`` is cleared, ``events``
    re-fetched from the runtime's (phase-swappable) counter bag, and the
    tape endpoints re-read so executor re-pointing (collector tapes,
    steady-phase counters) is respected.
    """

    __slots__ = ("locals", "state", "rt", "consts", "events", "inp", "out")

    def __init__(self, rt: ActorRuntime) -> None:
        self.locals: Dict[str, Any] = {}
        self.state = rt.state
        self.rt = rt
        self.consts: Tuple[Any, ...] = ()
        self.events = rt.counters.events
        self.inp = rt.input
        self.out = rt.output


@dataclass(frozen=True)
class Specialization:
    """Everything (besides the canonical body) a kernel is specialised on."""

    is_work: bool
    simd_width: int
    has_sagu: bool
    in_lane_ordered: bool
    out_lane_ordered: bool
    in_vector: bool
    state_shapes: Tuple[Tuple[str, Shape], ...]

    @property
    def lane_event(self) -> str:
        return ev.SAGU if self.has_sagu else ev.ADDR


class Kernel:
    """A compiled actor body: one callable plus chaining metadata."""

    __slots__ = ("run", "spec", "exit_state_shapes")

    def __init__(self, run: Callable[[Frame], None], spec: Specialization,
                 exit_state_shapes: Tuple[Tuple[str, Shape], ...]) -> None:
        self.run = run
        self.spec = spec
        #: state shapes after executing this body (sound over-approximation);
        #: an init kernel's exit shapes seed the work kernel's entry shapes.
        self.exit_state_shapes = exit_state_shapes


# ---------------------------------------------------------------------------
# compile context
# ---------------------------------------------------------------------------

ExprFn = Callable[[Frame], Any]
StmtFn = Callable[[Frame], None]


class _Ctx:
    __slots__ = ("spec", "state_names", "declared_locals", "shapes")

    def __init__(self, spec: Specialization,
                 declared_locals: frozenset) -> None:
        self.spec = spec
        self.state_names = frozenset(name for name, _ in spec.state_shapes)
        self.declared_locals = declared_locals
        self.shapes: Dict[str, Shape] = {}

    def shape_of(self, name: str) -> Shape:
        return self.shapes.get(name, UNKNOWN)


def _collect_locals(body: S.Body) -> frozenset:
    names = set()
    for stmt in iter_stmts(body):
        if isinstance(stmt, (S.DeclVar, S.DeclArray)):
            names.add(stmt.name)
        elif isinstance(stmt, S.For):
            names.add(stmt.var)
    return frozenset(names)


def _shape_violation(what: str) -> InterpreterError:
    return InterpreterError(
        f"compiled backend: shape assumption violated in {what} "
        f"(please report — the interpreter backend is unaffected)")


# ---------------------------------------------------------------------------
# name resolution
# ---------------------------------------------------------------------------

def _loader(name: str, ctx: _Ctx) -> ExprFn:
    """Closure reading ``name`` with Env semantics (locals shadow state)."""
    in_local = name in ctx.declared_locals
    in_state = name in ctx.state_names
    if in_local and in_state:
        def get(f: Frame) -> Any:
            loc = f.locals
            if name in loc:
                return loc[name]
            return f.state[name]
    elif in_local:
        def get(f: Frame) -> Any:
            try:
                return f.locals[name]
            except KeyError:
                raise InterpreterError(
                    f"undefined variable {name!r}") from None
    elif in_state:
        def get(f: Frame) -> Any:
            return f.state[name]
    else:
        def get(f: Frame) -> Any:
            raise InterpreterError(f"undefined variable {name!r}")
    return get


def _storer(name: str, ctx: _Ctx) -> Callable[[Frame, Any], None]:
    """Closure writing ``name`` with Env semantics (owning layer wins)."""
    in_local = name in ctx.declared_locals
    in_state = name in ctx.state_names
    if in_local and in_state:
        def put(f: Frame, value: Any) -> None:
            loc = f.locals
            if name in loc:
                loc[name] = value
            else:
                f.state[name] = value
    elif in_local:
        def put(f: Frame, value: Any) -> None:
            loc = f.locals
            if name in loc:
                loc[name] = value
            else:
                raise InterpreterError(
                    f"assignment to undeclared variable {name!r}")
    elif in_state:
        def put(f: Frame, value: Any) -> None:
            f.state[name] = value
    else:
        def put(f: Frame, value: Any) -> None:
            raise InterpreterError(
                f"assignment to undeclared variable {name!r}")
    return put


def _need_in(f: Frame):
    inp = f.inp
    if inp is None:
        raise InterpreterError("actor has no input tape")
    return inp


def _need_out(f: Frame):
    out = f.out
    if out is None:
        raise InterpreterError("actor has no output tape")
    return out


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

def _compile_expr(e: E.Expr, ctx: _Ctx) -> Tuple[ExprFn, Shape, Counter]:
    spec = ctx.spec

    if isinstance(e, E.Var):
        idx = slot_index(e.name)
        if idx is not None:
            def const_fn(f: Frame, _i=idx) -> Any:
                return f.consts[_i]
            return const_fn, SCALAR, Counter()
        get = _loader(e.name, ctx)
        return get, ctx.shape_of(e.name), Counter()

    if isinstance(e, (E.IntConst, E.FloatConst, E.BoolConst)):
        value = e.value

        def lit_fn(f: Frame, _v=value) -> Any:
            return _v
        return lit_fn, SCALAR, Counter()

    if isinstance(e, E.VectorConst):
        values = e.values

        def vconst_fn(f: Frame, _v=values) -> Any:
            return list(_v)
        return vconst_fn, VECTOR, Counter()

    if isinstance(e, E.BinaryOp):
        return _compile_binary(e, ctx)

    if isinstance(e, E.UnaryOp):
        return _compile_unary(e, ctx)

    if isinstance(e, E.Call):
        return _compile_call(e, ctx)

    if isinstance(e, E.Select):
        return _compile_select(e, ctx)

    if isinstance(e, E.ArrayRead):
        return _compile_array_read(e, ctx)

    if isinstance(e, E.Lane):
        base_fn, _, st = _compile_expr(e.base, ctx)
        st = st + Counter({ev.UNPACK: 1})
        lane = e.index

        def lane_fn(f: Frame) -> Any:
            base = base_fn(f)
            if type(base) is not list:
                raise InterpreterError("lane access on scalar value")
            return base[lane]
        return lane_fn, SCALAR, st

    if isinstance(e, E.Pop):
        st = Counter({ev.SCALAR_LOAD: 1})
        if spec.in_lane_ordered:
            st[spec.lane_event] += 1

        def pop_fn(f: Frame) -> Any:
            return _need_in(f).pop()
        return pop_fn, (VECTOR if spec.in_vector else SCALAR), st

    if isinstance(e, E.Peek):
        off_fn, _, st = _compile_expr(e.offset, ctx)
        st = st + Counter({ev.SCALAR_LOAD: 1})
        if spec.in_lane_ordered:
            st[spec.lane_event] += 1

        def peek_fn(f: Frame) -> Any:
            return _need_in(f).peek(int(off_fn(f)))
        return peek_fn, (VECTOR if spec.in_vector else SCALAR), st

    if isinstance(e, E.VPop):
        st = Counter({ev.VECTOR_LOAD: 1})

        def vpop_fn(f: Frame) -> Any:
            value = _need_in(f).pop()
            if type(value) is not list:
                raise InterpreterError("vpop from a scalar tape")
            return value
        return vpop_fn, VECTOR, st

    if isinstance(e, E.VPeek):
        off_fn, _, st = _compile_expr(e.offset, ctx)
        st = st + Counter({ev.VECTOR_LOAD: 1})

        def vpeek_fn(f: Frame) -> Any:
            value = _need_in(f).peek(int(off_fn(f)))
            if type(value) is not list:
                raise InterpreterError("vpeek from a scalar tape")
            return value
        return vpeek_fn, VECTOR, st

    if isinstance(e, E.ArrayVec):
        idx_fn, _, st = _compile_expr(e.index, ctx)
        st = st + Counter({ev.VECTOR_LOAD_U: 1})
        get = _loader(e.name, ctx)
        sw = spec.simd_width
        name = e.name

        def arrayvec_fn(f: Frame) -> Any:
            start = int(idx_fn(f))
            array = get(f)
            if start + sw > len(array):
                raise InterpreterError(
                    f"vector load past end of array {name!r}")
            return list(array[start:start + sw])
        return arrayvec_fn, VECTOR, st

    if isinstance(e, E.Broadcast):
        return _compile_broadcast(e, ctx)

    if isinstance(e, E.GatherPop):
        st = _gather_static(e.strategy, e.stride, spec)
        offsets = tuple(k * e.stride for k in range(spec.simd_width))
        advance = e.advance

        def gather_pop_fn(f: Frame) -> Any:
            tape = _need_in(f)
            peek = tape.peek
            lanes = [peek(o) for o in offsets]
            tape.advance_reader(advance)
            return lanes
        return gather_pop_fn, VECTOR, st

    if isinstance(e, E.GatherPeek):
        off_fn, _, ost = _compile_expr(e.offset, ctx)
        st = ost + _gather_static(e.strategy, e.stride, spec)
        offsets = tuple(k * e.stride for k in range(spec.simd_width))

        def gather_peek_fn(f: Frame) -> Any:
            tape = _need_in(f)
            base = int(off_fn(f))
            peek = tape.peek
            return [peek(base + o) for o in offsets]
        return gather_peek_fn, VECTOR, st

    if isinstance(e, E.InternalPop):
        buf_id = e.buf

        def internal_pop_fn(f: Frame) -> Any:
            rt = f.rt
            buf = rt.internal.get(buf_id)
            head = rt.internal_head.get(buf_id, 0)
            if buf is None or head >= len(buf):
                raise InterpreterError(f"internal buffer {buf_id} underflow")
            value = buf[head]
            head += 1
            rt.internal_head[buf_id] = head
            if head == len(buf):
                buf.clear()
                rt.internal_head[buf_id] = 0
            f.events[ev.VECTOR_LOAD if type(value) is list
                     else ev.SCALAR_LOAD] += 1
            return value
        return internal_pop_fn, UNKNOWN, Counter()

    if isinstance(e, E.InternalPeek):
        off_fn, _, st = _compile_expr(e.offset, ctx)
        buf_id = e.buf

        def internal_peek_fn(f: Frame) -> Any:
            rt = f.rt
            offset = int(off_fn(f))
            buf = rt.internal.get(buf_id, [])
            head = rt.internal_head.get(buf_id, 0)
            if head + offset >= len(buf):
                raise InterpreterError(f"internal buffer {buf_id} underflow")
            value = buf[head + offset]
            f.events[ev.VECTOR_LOAD if type(value) is list
                     else ev.SCALAR_LOAD] += 1
            return value
        return internal_peek_fn, UNKNOWN, st

    raise InterpreterError(f"unknown expression {e!r}")


def _gather_static(strategy: str, stride: int,
                   spec: Specialization) -> Counter:
    sw = spec.simd_width
    if strategy == "scalar":
        return Counter({ev.SCALAR_LOAD: sw, ev.PACK: sw})
    if strategy == "permute":
        st = Counter({ev.VECTOR_LOAD_U: 1})
        if stride > 1:
            st[ev.PERMUTE] += int(math.log2(stride))
        return st
    if strategy == "sagu":
        return Counter({ev.VECTOR_LOAD: 1})
    raise InterpreterError(f"unknown gather strategy {strategy!r}")


def _compile_binary(e: E.BinaryOp, ctx: _Ctx) -> Tuple[ExprFn, Shape, Counter]:
    lf, lsh, lst = _compile_expr(e.left, ctx)
    rf, rsh, rst = _compile_expr(e.right, ctx)
    static = lst + rst
    op = e.op
    impl = BINARY_IMPLS[op]
    s_event = _SCALAR_EVENT[op]
    v_event = _VECTOR_EVENT[op]

    if lsh is SCALAR and rsh is SCALAR:
        static[s_event] += 1

        def scalar_fn(f: Frame) -> Any:
            a = lf(f)
            b = rf(f)
            if type(a) is list or type(b) is list:
                raise _shape_violation(f"scalar {op}")
            return impl(a, b)
        return scalar_fn, SCALAR, static

    l_list = is_list_shape(lsh)
    r_list = is_list_shape(rsh)
    if l_list or r_list:
        static[v_event] += 1
        if l_list and r_list:
            def vv_fn(f: Frame) -> Any:
                a = lf(f)
                b = rf(f)
                if type(a) is not list or type(b) is not list:
                    raise _shape_violation(f"vector {op}")
                return [impl(x, y) for x, y in zip(a, b)]
            return vv_fn, VECTOR, static
        if l_list:
            def vx_fn(f: Frame) -> Any:
                a = lf(f)
                b = rf(f)
                if type(a) is not list:
                    raise _shape_violation(f"vector {op}")
                if type(b) is list:
                    return [impl(x, y) for x, y in zip(a, b)]
                return [impl(x, b) for x in a]
            return vx_fn, VECTOR, static

        def xv_fn(f: Frame) -> Any:
            a = lf(f)
            b = rf(f)
            if type(b) is not list:
                raise _shape_violation(f"vector {op}")
            if type(a) is list:
                return [impl(x, y) for x, y in zip(a, b)]
            return [impl(a, y) for y in b]
        return xv_fn, VECTOR, static

    def dyn_fn(f: Frame) -> Any:
        a = lf(f)
        b = rf(f)
        a_vec = type(a) is list
        b_vec = type(b) is list
        if a_vec or b_vec:
            f.events[v_event] += 1
            if a_vec and b_vec:
                return [impl(x, y) for x, y in zip(a, b)]
            if a_vec:
                return [impl(x, b) for x in a]
            return [impl(a, y) for y in b]
        f.events[s_event] += 1
        return impl(a, b)
    return dyn_fn, UNKNOWN, static


def _compile_unary(e: E.UnaryOp, ctx: _Ctx) -> Tuple[ExprFn, Shape, Counter]:
    vf, vsh, static = _compile_expr(e.operand, ctx)
    impl = UNARY_IMPLS[e.op]
    op = e.op

    if vsh is SCALAR:
        static = static + Counter({ev.SCALAR_ALU: 1})

        def scalar_fn(f: Frame) -> Any:
            a = vf(f)
            if type(a) is list:
                raise _shape_violation(f"scalar unary {op}")
            return impl(a)
        return scalar_fn, SCALAR, static

    if is_list_shape(vsh):
        static = static + Counter({ev.VECTOR_ALU: 1})

        def vector_fn(f: Frame) -> Any:
            a = vf(f)
            if type(a) is not list:
                raise _shape_violation(f"vector unary {op}")
            return [impl(x) for x in a]
        return vector_fn, VECTOR, static

    def dyn_fn(f: Frame) -> Any:
        a = vf(f)
        if type(a) is list:
            f.events[ev.VECTOR_ALU] += 1
            return [impl(x) for x in a]
        f.events[ev.SCALAR_ALU] += 1
        return impl(a)
    return dyn_fn, UNKNOWN, static


def _compile_call(e: E.Call, ctx: _Ctx) -> Tuple[ExprFn, Shape, Counter]:
    compiled = [_compile_expr(a, ctx) for a in e.args]
    arg_fns = tuple(fn for fn, _, _ in compiled)
    shapes = [sh for _, sh, _ in compiled]
    static = Counter()
    for _, _, st in compiled:
        static.update(st)
    impl = math_impl(e.func)
    func = e.func
    s_event = ev.scalar_math(func)
    v_event = ev.vector_math(func)

    if all(sh is SCALAR for sh in shapes):
        static[s_event] += 1

        def scalar_fn(f: Frame) -> Any:
            args = [fn(f) for fn in arg_fns]
            for a in args:
                if type(a) is list:
                    raise _shape_violation(f"scalar call {func}")
            return impl(*args)
        return scalar_fn, SCALAR, static

    def lanewise(args: List[Any], f: Frame) -> Any:
        width = next(len(a) for a in args if type(a) is list)
        cols = [a if type(a) is list else [a] * width for a in args]
        return [impl(*[col[i] for col in cols]) for i in range(width)]

    if any(is_list_shape(sh) for sh in shapes):
        static[v_event] += 1

        def vector_fn(f: Frame) -> Any:
            args = [fn(f) for fn in arg_fns]
            if not any(type(a) is list for a in args):
                raise _shape_violation(f"vector call {func}")
            return lanewise(args, f)
        return vector_fn, VECTOR, static

    def dyn_fn(f: Frame) -> Any:
        args = [fn(f) for fn in arg_fns]
        if any(type(a) is list for a in args):
            f.events[v_event] += 1
            return lanewise(args, f)
        f.events[s_event] += 1
        return impl(*args)
    return dyn_fn, UNKNOWN, static


def _compile_select(e: E.Select, ctx: _Ctx) -> Tuple[ExprFn, Shape, Counter]:
    cf, csh, cst = _compile_expr(e.cond, ctx)
    tf, tsh, tst = _compile_expr(e.if_true, ctx)
    ff, fsh, fst = _compile_expr(e.if_false, ctx)
    static = cst + tst + fst

    def blend(cond: List[Any], t: Any, fv: Any) -> Any:
        width = len(cond)
        tt = t if type(t) is list else [t] * width
        flist = fv if type(fv) is list else [fv] * width
        return [tt[i] if cond[i] else flist[i] for i in range(width)]

    if csh is SCALAR:
        static[ev.SCALAR_ALU] += 1

        def scalar_fn(f: Frame) -> Any:
            cond = cf(f)
            t = tf(f)
            fv = ff(f)
            if type(cond) is list:
                raise _shape_violation("scalar select")
            return t if cond else fv
        return scalar_fn, merge(tsh, fsh), static

    if is_list_shape(csh):
        static[ev.VECTOR_ALU] += 1

        def vector_fn(f: Frame) -> Any:
            cond = cf(f)
            t = tf(f)
            fv = ff(f)
            if type(cond) is not list:
                raise _shape_violation("vector select")
            return blend(cond, t, fv)
        return vector_fn, VECTOR, static

    def dyn_fn(f: Frame) -> Any:
        cond = cf(f)
        t = tf(f)
        fv = ff(f)
        if type(cond) is list:
            f.events[ev.VECTOR_ALU] += 1
            return blend(cond, t, fv)
        f.events[ev.SCALAR_ALU] += 1
        return t if cond else fv
    return dyn_fn, UNKNOWN, static


def _compile_array_read(e: E.ArrayRead,
                        ctx: _Ctx) -> Tuple[ExprFn, Shape, Counter]:
    idx_fn, _, static = _compile_expr(e.index, ctx)
    get = _loader(e.name, ctx)
    elem = elem_shape(ctx.shape_of(e.name))

    if elem is SCALAR:
        static = static + Counter({ev.SCALAR_LOAD: 1})

        def scalar_fn(f: Frame) -> Any:
            index = int(idx_fn(f))
            value = get(f)[index]
            if type(value) is list:
                raise _shape_violation("scalar array read")
            return value
        return scalar_fn, SCALAR, static

    if elem is VECTOR:
        static = static + Counter({ev.VECTOR_LOAD: 1})

        def vector_fn(f: Frame) -> Any:
            index = int(idx_fn(f))
            value = get(f)[index]
            if type(value) is not list:
                raise _shape_violation("vector array read")
            return value
        return vector_fn, VECTOR, static

    def dyn_fn(f: Frame) -> Any:
        index = int(idx_fn(f))
        value = get(f)[index]
        f.events[ev.VECTOR_LOAD if type(value) is list
                 else ev.SCALAR_LOAD] += 1
        return value
    return dyn_fn, elem, static


def _compile_broadcast(e: E.Broadcast,
                       ctx: _Ctx) -> Tuple[ExprFn, Shape, Counter]:
    vf, vsh, static = _compile_expr(e.value, ctx)
    width = e.width

    if is_list_shape(vsh):
        # Broadcasting an existing vector is the identity (and charges
        # nothing), exactly as in the interpreter.
        return vf, VECTOR, static

    if vsh is SCALAR:
        static = static + Counter({ev.SPLAT: 1})

        def splat_fn(f: Frame) -> Any:
            value = vf(f)
            if type(value) is list:
                raise _shape_violation("broadcast")
            return [value] * width
        return splat_fn, VECTOR, static

    def dyn_fn(f: Frame) -> Any:
        value = vf(f)
        if type(value) is list:
            return value
        f.events[ev.SPLAT] += 1
        return [value] * width
    return dyn_fn, VECTOR, static


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

def _compile_stmt(stmt: S.Stmt,
                  ctx: _Ctx) -> Tuple[Optional[StmtFn], Counter]:
    spec = ctx.spec

    if isinstance(stmt, S.Assign):
        return _compile_assign(stmt, ctx)

    if isinstance(stmt, S.DeclVar):
        name = stmt.name
        if stmt.init is not None:
            init_fn, ish, static = _compile_expr(stmt.init, ctx)

            def decl_fn(f: Frame) -> None:
                value = init_fn(f)
                if type(value) is list:
                    value = list(value)
                f.locals[name] = value
            ctx.shapes[name] = ish
            return decl_fn, static
        if isinstance(stmt.type, Vector):
            width = stmt.type.width

            def declv_fn(f: Frame) -> None:
                f.locals[name] = [0.0] * width
            ctx.shapes[name] = VECTOR
            return declv_fn, Counter()

        def decl0_fn(f: Frame) -> None:
            f.locals[name] = 0.0
        ctx.shapes[name] = SCALAR
        return decl0_fn, Counter()

    if isinstance(stmt, S.DeclArray):
        return _compile_decl_array(stmt, ctx)

    if isinstance(stmt, S.Push):
        val_fn, _, static = _compile_expr(stmt.value, ctx)
        static[ev.SCALAR_STORE] += 1
        if spec.out_lane_ordered:
            static[spec.lane_event] += 1

        def push_fn(f: Frame) -> None:
            out = _need_out(f)
            out.push(val_fn(f))
        return push_fn, static

    if isinstance(stmt, S.RPush):
        val_fn, _, vst = _compile_expr(stmt.value, ctx)
        off_fn, _, ost = _compile_expr(stmt.offset, ctx)
        static = vst + ost
        static[ev.SCALAR_STORE] += 1
        if spec.out_lane_ordered:
            static[spec.lane_event] += 1

        def rpush_fn(f: Frame) -> None:
            offset = off_fn(f)
            out = _need_out(f)
            out.rpush(val_fn(f), int(offset))
        return rpush_fn, static

    if isinstance(stmt, S.VPush):
        val_fn, _, static = _compile_expr(stmt.value, ctx)
        static[ev.VECTOR_STORE] += 1

        def vpush_fn(f: Frame) -> None:
            value = val_fn(f)
            if type(value) is not list:
                raise InterpreterError("vpush of a scalar value")
            _need_out(f).push(list(value))
        return vpush_fn, static

    if isinstance(stmt, S.ScatterPush):
        return _compile_scatter_push(stmt, ctx)

    if isinstance(stmt, S.InternalPush):
        val_fn, vsh, static = _compile_expr(stmt.value, ctx)
        buf_id = stmt.buf
        if vsh is SCALAR or is_list_shape(vsh):
            want_list = is_list_shape(vsh)
            static[ev.VECTOR_STORE if want_list else ev.SCALAR_STORE] += 1

            def ipush_fn(f: Frame) -> None:
                value = val_fn(f)
                if (type(value) is list) is not want_list:
                    raise _shape_violation("internal push")
                if want_list:
                    value = list(value)
                f.rt.internal.setdefault(buf_id, []).append(value)
            return ipush_fn, static

        def ipush_dyn_fn(f: Frame) -> None:
            value = val_fn(f)
            if type(value) is list:
                f.events[ev.VECTOR_STORE] += 1
                value = list(value)
            else:
                f.events[ev.SCALAR_STORE] += 1
            f.rt.internal.setdefault(buf_id, []).append(value)
        return ipush_dyn_fn, static

    if isinstance(stmt, S.CostAnnotation):
        return None, Counter({stmt.event: stmt.count})

    if isinstance(stmt, S.AdvanceReader):
        count = stmt.count

        def adv_r_fn(f: Frame) -> None:
            _need_in(f).advance_reader(count)
        return adv_r_fn, Counter({ev.SCALAR_ALU: 1})

    if isinstance(stmt, S.AdvanceWriter):
        count = stmt.count

        def adv_w_fn(f: Frame) -> None:
            _need_out(f).advance_writer(count)
        return adv_w_fn, Counter({ev.SCALAR_ALU: 1})

    if isinstance(stmt, S.ExprStmt):
        fn, _, static = _compile_expr(stmt.expr, ctx)

        def expr_stmt_fn(f: Frame) -> None:
            fn(f)
        return expr_stmt_fn, static

    if isinstance(stmt, S.For):
        return _compile_for(stmt, ctx)

    if isinstance(stmt, S.If):
        return _compile_if(stmt, ctx)

    raise InterpreterError(f"unknown statement {stmt!r}")


def _compile_decl_array(stmt: S.DeclArray,
                        ctx: _Ctx) -> Tuple[StmtFn, Counter]:
    name = stmt.name
    width = stmt.elem_type.width if isinstance(stmt.elem_type, Vector) else 0
    size = stmt.size
    slot = array_slot_index(stmt.init) if stmt.init is not None else None

    if stmt.init is None:
        if width:
            def decl_fn(f: Frame) -> None:
                f.locals[name] = [[0.0] * width for _ in range(size)]
        else:
            def decl_fn(f: Frame) -> None:
                f.locals[name] = [0.0] * size
    elif slot is not None:
        if width:
            def decl_fn(f: Frame) -> None:
                init = f.consts[slot]
                f.locals[name] = [
                    list(item) if isinstance(item, tuple) else [item] * width
                    for item in init]
        else:
            def decl_fn(f: Frame) -> None:
                f.locals[name] = list(f.consts[slot])
    else:  # literal (non-abstracted) initialiser — not produced by canon,
        # but kept for robustness when compiling raw bodies in tests.
        init = stmt.init
        if width:
            def decl_fn(f: Frame) -> None:
                f.locals[name] = [
                    list(item) if isinstance(item, tuple) else [item] * width
                    for item in init]
        else:
            def decl_fn(f: Frame) -> None:
                f.locals[name] = list(init)
    ctx.shapes[name] = array_of(VECTOR if width else SCALAR)
    return decl_fn, Counter()


def _compile_scatter_push(stmt: S.ScatterPush,
                          ctx: _Ctx) -> Tuple[StmtFn, Counter]:
    val_fn, _, static = _compile_expr(stmt.value, ctx)
    stride = stmt.stride
    strategy = stmt.strategy
    if strategy == "permute":
        static[ev.VECTOR_STORE_U] += 1
        if stride > 1:
            static[ev.PERMUTE] += int(math.log2(stride))
    elif strategy == "sagu":
        static[ev.VECTOR_STORE] += 1
    elif strategy != "scalar":
        raise InterpreterError(f"unknown scatter strategy {strategy!r}")
    dynamic_sw = strategy == "scalar"

    def scatter_fn(f: Frame) -> None:
        value = val_fn(f)
        if type(value) is not list:
            raise InterpreterError("scatter_push of a scalar value")
        out = _need_out(f)
        sw = len(value)
        if dynamic_sw:
            events = f.events
            events[ev.SCALAR_STORE] += sw
            events[ev.UNPACK] += sw
        for lane in range(1, sw):
            out.rpush(value[lane], lane * stride)
        out.push(value[0])
    return scatter_fn, static


def _compile_assign(stmt: S.Assign, ctx: _Ctx) -> Tuple[StmtFn, Counter]:
    rhs_fn, rsh, static = _compile_expr(stmt.rhs, ctx)
    lhs = stmt.lhs

    if isinstance(lhs, L.VarLV):
        put = _storer(lhs.name, ctx)

        def var_assign_fn(f: Frame) -> None:
            value = rhs_fn(f)
            if type(value) is list:
                value = list(value)
            put(f, value)
        ctx.shapes[lhs.name] = rsh
        return var_assign_fn, static

    if isinstance(lhs, L.ArrayLV):
        idx_fn, _, ist = _compile_expr(lhs.index, ctx)
        static = static + ist
        get = _loader(lhs.name, ctx)
        current = ctx.shape_of(lhs.name)
        if isinstance(current, tuple):
            ctx.shapes[lhs.name] = ("array", merge(current[1], rsh))
        if rsh is SCALAR or is_list_shape(rsh):
            want_list = is_list_shape(rsh)
            static[ev.VECTOR_STORE if want_list else ev.SCALAR_STORE] += 1

            def array_assign_fn(f: Frame) -> None:
                value = rhs_fn(f)
                index = int(idx_fn(f))
                array = get(f)
                if (type(value) is list) is not want_list:
                    raise _shape_violation("array store")
                if want_list:
                    value = list(value)
                array[index] = value
            return array_assign_fn, static

        def array_assign_dyn_fn(f: Frame) -> None:
            value = rhs_fn(f)
            index = int(idx_fn(f))
            array = get(f)
            if type(value) is list:
                f.events[ev.VECTOR_STORE] += 1
                value = list(value)
            else:
                f.events[ev.SCALAR_STORE] += 1
            array[index] = value
        return array_assign_dyn_fn, static

    if isinstance(lhs, L.LaneLV):
        get = _loader(lhs.name, ctx)
        lane = lhs.lane
        name = lhs.name
        static[ev.PACK] += 1

        def lane_assign_fn(f: Frame) -> None:
            value = rhs_fn(f)
            vec = get(f)
            if type(vec) is not list:
                raise InterpreterError(f"{name} is not a vector")
            vec[lane] = value
        return lane_assign_fn, static

    if isinstance(lhs, L.ArrayLaneLV):
        idx_fn, _, ist = _compile_expr(lhs.index, ctx)
        static = static + ist
        get = _loader(lhs.name, ctx)
        lane = lhs.lane
        static[ev.PACK] += 1

        def array_lane_assign_fn(f: Frame) -> None:
            value = rhs_fn(f)
            index = int(idx_fn(f))
            vec = get(f)[index]
            vec[lane] = value
        return array_lane_assign_fn, static

    raise InterpreterError(f"unknown lvalue {lhs!r}")


def _compile_if(stmt: S.If, ctx: _Ctx) -> Tuple[StmtFn, Counter]:
    cond_fn, _, static = _compile_expr(stmt.cond, ctx)
    base = dict(ctx.shapes)

    ctx.shapes = dict(base)
    then_fns, then_static = _compile_body(stmt.then_body, ctx)
    then_shapes = ctx.shapes

    ctx.shapes = dict(base)
    else_fns, else_static = _compile_body(stmt.else_body, ctx)
    else_shapes = ctx.shapes

    merged: Dict[str, Shape] = {}
    for name in set(then_shapes) | set(else_shapes):
        a = then_shapes.get(name, base.get(name))
        b = else_shapes.get(name, base.get(name))
        if a is None:
            a = b
        if b is None:
            b = a
        merged[name] = merge(a, b)
    ctx.shapes = merged

    then_run = _make_runner(then_fns, then_static)
    else_run = _make_runner(else_fns, else_static)

    def if_fn(f: Frame) -> None:
        cond = cond_fn(f)
        if type(cond) is list:
            raise InterpreterError("vector value used as branch condition")
        if cond:
            then_run(f)
        else:
            else_run(f)
    return if_fn, static


def _compile_for(stmt: S.For, ctx: _Ctx) -> Tuple[StmtFn, Counter]:
    start_fn, _, sst = _compile_expr(stmt.start, ctx)
    end_fn, _, est = _compile_expr(stmt.end, ctx)
    static = sst + est
    var = stmt.var

    pre = dict(ctx.shapes)
    pre[var] = SCALAR
    body_fns: Tuple[StmtFn, ...] = ()
    body_static = Counter()
    for attempt in range(8):
        ctx.shapes = dict(pre)
        body_fns, body_static = _compile_body(stmt.body, ctx)
        post = ctx.shapes
        stable = dict(post)
        for name, shape in post.items():
            if name in pre:
                stable[name] = merge(pre[name], shape)
        if stable == pre:
            break
        if attempt >= 5:  # safety valve: force everything unstable to ⊤
            stable = {name: UNKNOWN for name in stable}
        pre = stable
    ctx.shapes = dict(pre)

    body_items = tuple(body_static.items())

    def for_fn(f: Frame) -> None:
        start = int(start_fn(f))
        end = int(end_fn(f))
        loc = f.locals
        loc[var] = start
        n = end - start
        if n <= 0:
            return
        events = f.events
        events[ev.LOOP] += n
        for event, count in body_items:
            events[event] += count * n
        for index in range(start, end):
            loc[var] = index
            for fn in body_fns:
                fn(f)
    return for_fn, static


# ---------------------------------------------------------------------------
# bodies and kernels
# ---------------------------------------------------------------------------

def _compile_body(body: S.Body,
                  ctx: _Ctx) -> Tuple[Tuple[StmtFn, ...], Counter]:
    fns: List[StmtFn] = []
    static = Counter()
    for stmt in body:
        fn, st = _compile_stmt(stmt, ctx)
        if st:
            static.update(st)
        if fn is not None:
            fns.append(fn)
    return tuple(fns), static


def _make_runner(fns: Tuple[StmtFn, ...],
                 static: Counter) -> Callable[[Frame], None]:
    items = tuple((event, count) for event, count in static.items() if count)
    if not items:
        if not fns:
            return lambda f: None

        def run_plain(f: Frame) -> None:
            for fn in fns:
                fn(f)
        return run_plain

    def run(f: Frame) -> None:
        events = f.events
        for event, count in items:
            events[event] += count
        for fn in fns:
            fn(f)
    return run


def compile_kernel(body: S.Body, spec: Specialization) -> Kernel:
    """Compile one canonical body under ``spec`` into a :class:`Kernel`.

    Work kernels iterate state-shape inference to a cross-firing fixpoint
    (a state variable assigned a different shape than it started with
    degrades to ``UNKNOWN``, never to a wrong specialisation).
    """
    declared = _collect_locals(body)
    entry: Dict[str, Shape] = dict(spec.state_shapes)
    ctx = _Ctx(spec, declared)
    fns: Tuple[StmtFn, ...] = ()
    static = Counter()
    exit_state: Dict[str, Shape] = dict(entry)
    for _ in range(8):
        ctx.shapes = dict(entry)
        fns, static = _compile_body(body, ctx)
        exit_state = {name: merge(entry[name],
                                  ctx.shapes.get(name, entry[name]))
                      for name in entry}
        if not spec.is_work or exit_state == entry:
            break
        entry = exit_state

    if spec.is_work:
        static = static + Counter({ev.FIRE: 1})
    run = _make_runner(fns, static)
    return Kernel(run, spec, tuple(sorted(exit_state.items())))
