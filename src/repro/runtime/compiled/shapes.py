"""Static value-shape lattice for kernel specialisation.

The interpreter decides *scalar vs. vector* per operation at runtime with
``is_vector_value``; the compiled backend decides it at compile time
wherever the IR makes the answer certain, which lets it (a) emit direct
Python arithmetic instead of generic dispatch and (b) fold the
corresponding performance events into a block's static counter delta.

The lattice is deliberately tiny::

    SCALAR          definitely a Python int/float/bool
    VECTOR          definitely a list of scalars
    ("array", s)    a declared array whose elements have shape ``s``
    UNKNOWN         anything (forces the generic runtime path)

``merge`` is the join: equal shapes join to themselves, arrays join
element-wise, everything else degrades to ``UNKNOWN``.  Compiled fast
paths guard their shape assumptions and raise loudly on violation rather
than ever computing a silently-different answer.
"""

from __future__ import annotations

from typing import Any

from ...graph.actor import StateVar
from ...ir.types import IRType, Vector

SCALAR = "scalar"
VECTOR = "vector"
UNKNOWN = "unknown"

Shape = Any  # SCALAR | VECTOR | UNKNOWN | ("array", Shape)


def array_of(elem: Shape) -> Shape:
    return ("array", elem)


def is_array_shape(shape: Shape) -> bool:
    return isinstance(shape, tuple)


def elem_shape(shape: Shape) -> Shape:
    """Element shape of an array shape (``UNKNOWN`` for non-arrays)."""
    return shape[1] if isinstance(shape, tuple) else UNKNOWN


def merge(a: Shape, b: Shape) -> Shape:
    if a == b:
        return a
    if isinstance(a, tuple) and isinstance(b, tuple):
        return ("array", merge(a[1], b[1]))
    return UNKNOWN


def is_list_shape(shape: Shape) -> bool:
    """True when the runtime value is certainly a Python list (vectors and
    whole arrays both satisfy ``is_vector_value``)."""
    return shape is VECTOR or isinstance(shape, tuple)


def shape_of_type(ty: IRType) -> Shape:
    return VECTOR if isinstance(ty, Vector) else SCALAR


def shape_of_state(var: StateVar) -> Shape:
    """Declared shape of a state variable's runtime value."""
    base = shape_of_type(var.type)
    return array_of(base) if var.is_array else base
