"""The compiled execution backend: kernel instantiation per actor.

``CompiledBackend`` is the object :func:`repro.runtime.executor.execute`
talks to when run with ``backend="compiled"``.  For every filter it
canonicalises the actor's bodies, fetches (or compiles) the shared kernels
from the :class:`~.cache.KernelCache`, and wraps them in a
:class:`CompiledActor` that is API-compatible with
:class:`repro.runtime.interpreter.Interpreter` (``.rt``, ``run_init``,
``run_work``).  Splitters and joiners get native closure fast paths from
:mod:`.movers`.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ...graph.actor import FilterSpec
from ...graph.stream_graph import TapeEdge
from ...ir import stmt as S
from ..errors import InterpreterError
from ..interpreter import ActorRuntime
from .cache import KernelCache
from .canon import TypedCanonical, is_param_slot, typed_canonicalize
from .compiler import Frame, Kernel, Specialization
from .movers import make_mover
from .shapes import shape_of_state

__all__ = ["CompiledActor", "CompiledBackend"]


class CompiledActor:
    """Drop-in replacement for ``Interpreter`` backed by compiled kernels.

    The frame is refreshed at the top of every firing: locals cleared, the
    constant tuple switched to the body being run, and the event bag / tape
    endpoints re-read from the runtime so executor re-pointing (collector
    tape, steady-phase counter swap) takes effect exactly as it does for
    the interpreter.
    """

    __slots__ = ("rt", "_frame", "_init_kernel", "_init_consts",
                 "_work_kernel", "_work_consts")

    def __init__(self, runtime: ActorRuntime,
                 init_kernel: Kernel, init_consts: Tuple[Any, ...],
                 work_kernel: Kernel, work_consts: Tuple[Any, ...]) -> None:
        self.rt = runtime
        self._frame = Frame(runtime)
        self._init_kernel = init_kernel
        self._init_consts = init_consts
        self._work_kernel = work_kernel
        self._work_consts = work_consts

    def _refresh(self, consts: Tuple[Any, ...]) -> Frame:
        frame = self._frame
        rt = self.rt
        frame.locals.clear()
        frame.consts = consts
        frame.events = rt.counters.events
        frame.inp = rt.input
        frame.out = rt.output
        return frame

    def run_init(self, body: Any = None) -> None:
        """Run the compiled init kernel (``body`` is accepted for interface
        parity with the interpreter and ignored — the kernel was compiled
        from the same spec)."""
        self._init_kernel.run(self._refresh(self._init_consts))

    def run_work(self, body: Any = None) -> None:
        self._work_kernel.run(self._refresh(self._work_consts))


class CompiledBackend:
    """Execution backend compiling actor bodies to cached closures."""

    name = "compiled"

    #: Actor wrapper class — subclasses (the vector backend) override this
    #: to wrap the same compiled kernels in a batching actor.
    _actor_class = CompiledActor

    def __init__(self, cache: Optional[KernelCache] = None) -> None:
        self.cache = cache if cache is not None else KernelCache()
        # Canonicalisation memo: specs are immutable value objects and
        # bodies hashable tuples, so re-executing the same graph (or the
        # same spec instantiated many times) never re-walks the IR.
        self._canon: dict[S.Body, TypedCanonical] = {}

    def _canonicalize(self, body: S.Body) -> TypedCanonical:
        canon = self._canon.get(body)
        if canon is None:
            canon = typed_canonicalize(body)
            for value in canon.consts:
                if is_param_slot(value):
                    raise InterpreterError(
                        f"unbound parameter {value.name!r} reached the "
                        f"compiled backend (bind_params first)")
            self._canon[body] = canon
        return canon

    def make_filter_actor(self, runtime: ActorRuntime, spec: FilterSpec,
                          in_edge: Optional[TapeEdge],
                          out_edge: Optional[TapeEdge]) -> CompiledActor:
        state_shapes = tuple(sorted(
            (var.name, shape_of_state(var)) for var in spec.state))
        common = dict(
            simd_width=runtime.simd_width,
            has_sagu=runtime.has_sagu,
            in_lane_ordered=runtime.in_lane_ordered,
            out_lane_ordered=runtime.out_lane_ordered,
            in_vector=bool(in_edge is not None and in_edge.is_vector),
        )

        init_canon = self._canonicalize(spec.init_body)
        init_spec = Specialization(is_work=False, state_shapes=state_shapes,
                                   **common)
        init_kernel = self.cache.get_or_compile(init_canon.body, init_spec)

        # The work kernel's entry state shapes are whatever the init body
        # may have left behind (e.g. a scalar state seeded with a vector).
        work_canon = self._canonicalize(spec.work_body)
        work_spec = Specialization(is_work=True,
                                   state_shapes=init_kernel.exit_state_shapes,
                                   **common)
        work_kernel = self.cache.get_or_compile(work_canon.body, work_spec)

        return self._actor_class(runtime, init_kernel, init_canon.consts,
                                 work_kernel, work_canon.consts)

    def make_mover(self, run: Any, actor: Any):
        """Native splitter/joiner fast path (see :mod:`.movers`)."""
        return make_mover(run, actor)
