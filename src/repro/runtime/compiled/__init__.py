"""Compiled execution backend: IR -> Python-closure compiler.

Instead of tree-walking the work-function IR on every firing (what
:mod:`repro.runtime.interpreter` does), this subsystem compiles each
actor's init/work body **once** into a composition of small Python
closures, specialised on

* scalar vs. vector operand shapes (a static shape-inference pass),
* tape access kind (scalar / vector input and output tapes),
* lane-ordering and SAGU flags of the surrounding tapes.

Two further tricks make the compiled engine fast while keeping the modeled
cycle counts **bit-identical** to the interpreter:

* **kernel caching** — kernels are keyed by the constant-abstracted
  canonical form of the body (the same canonicalisation
  :mod:`repro.ir.structhash` uses for horizontal-fusion isomorphism), so
  structurally identical actors that differ only in constants share one
  compiled kernel; per-instance constants are bound at instantiation.
* **static event aggregation** — the :class:`~repro.perf.counters.PerfCounters`
  delta of every straight-line block is pre-computed at compile time and
  charged in one batched update per execution of the block, instead of one
  ``counters.add`` call per IR operation.

The public entry point is :class:`CompiledBackend`, selected through
``execute(..., backend="compiled")`` or the ``--backend`` CLI flag.
"""

from __future__ import annotations

from .backend import CompiledActor, CompiledBackend
from .cache import CacheStats, KernelCache
from .canon import TypedCanonical, typed_canonicalize
from .compiler import Kernel, Specialization, compile_kernel

__all__ = [
    "CompiledActor",
    "CompiledBackend",
    "CacheStats",
    "KernelCache",
    "TypedCanonical",
    "typed_canonicalize",
    "Kernel",
    "Specialization",
    "compile_kernel",
]
