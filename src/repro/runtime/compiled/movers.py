"""Compiled fast paths for native data movers (splitters / joiners).

The executor runs splitters and joiners natively; its generic ``_fire_*``
methods charge counters one ``add`` call per moved element.  For any given
actor, though, the event multiset of one firing is *fully static* — it
depends only on the spec's weights and the lane-ordered flags of the
adjacent tapes.  The compiled backend therefore pre-computes one
``Counter`` delta per mover at setup time and each firing performs a
single batched update followed by the bare data movement.

Element movement order is kept identical to the executor's generic path
(reads and writes interleave the same way), so tape contents — and hence
everything downstream — are bit-identical.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Optional

from ...graph.builtins import (
    HJoinerSpec,
    HSplitterSpec,
    JoinerSpec,
    SplitKind,
    SplitterSpec,
)
from ...perf import events as ev

FireFn = Callable[[], None]


def make_mover(run: Any, actor: Any) -> Optional[FireFn]:
    """Return a zero-argument firing closure for ``actor``, or ``None`` if
    its spec is not a native mover (filters are handled by kernels)."""
    spec = actor.spec
    if isinstance(spec, SplitterSpec):
        return _splitter(run, actor.id, spec)
    if isinstance(spec, JoinerSpec):
        return _joiner(run, actor.id, spec)
    if isinstance(spec, HSplitterSpec):
        return _hsplitter(run, actor.id, spec)
    if isinstance(spec, HJoinerSpec):
        return _hjoiner(run, actor.id, spec)
    return None


def _lane_event(run: Any) -> str:
    return ev.SAGU if run.machine.has_sagu else ev.ADDR


def _batcher(run: Any, actor_id: int, static: Counter):
    """Per-firing batched charge.  ``run.counters`` is swapped between the
    init and steady phases, so the bag is re-fetched on every firing."""
    items = tuple((event, count) for event, count in static.items() if count)

    def charge() -> None:
        events = run.counters.for_actor(actor_id).events
        for event, count in items:
            events[event] += count
    return charge


def _splitter(run: Any, actor_id: int, spec: SplitterSpec) -> FireFn:
    graph = run.graph
    lane = _lane_event(run)
    in_edge = graph.in_tapes(actor_id)[0]
    outs = graph.out_tapes(actor_id)
    in_tape = run.tapes[in_edge.id]
    static = Counter({ev.FIRE: 1})

    if spec.kind is SplitKind.DUPLICATE:
        static[ev.SCALAR_LOAD] += 1
        if in_edge.lane_ordered:
            static[lane] += 1
        out_tapes = []
        for edge in outs:
            static[ev.SCALAR_STORE] += 1
            if edge.lane_ordered:
                static[lane] += 1
            out_tapes.append(run.tapes[edge.id])
        charge = _batcher(run, actor_id, static)

        def fire_dup() -> None:
            charge()
            value = in_tape.pop()
            for tape in out_tapes:
                tape.push(value)
        return fire_dup

    plan = []
    for edge in outs:
        weight = spec.weights[edge.src_port]
        static[ev.SCALAR_LOAD] += weight
        static[ev.SCALAR_STORE] += weight
        if in_edge.lane_ordered:
            static[lane] += weight
        if edge.lane_ordered:
            static[lane] += weight
        plan.append((run.tapes[edge.id].push, weight))
    charge = _batcher(run, actor_id, static)
    pop = in_tape.pop

    def fire_rr() -> None:
        charge()
        for push, weight in plan:
            for _ in range(weight):
                push(pop())
    return fire_rr


def _joiner(run: Any, actor_id: int, spec: JoinerSpec) -> FireFn:
    graph = run.graph
    lane = _lane_event(run)
    ins = graph.in_tapes(actor_id)
    outs = graph.out_tapes(actor_id)
    out_edge = outs[0] if outs else None
    static = Counter({ev.FIRE: 1})
    plan = []
    for edge in ins:
        weight = spec.weights[edge.dst_port]
        static[ev.SCALAR_LOAD] += weight
        if edge.lane_ordered:
            static[lane] += weight
        if out_edge is not None:
            static[ev.SCALAR_STORE] += weight
            if out_edge.lane_ordered:
                static[lane] += weight
        plan.append((run.tapes[edge.id].pop, weight))
    charge = _batcher(run, actor_id, static)
    push = run.tapes[out_edge.id].push if out_edge is not None else None

    def fire() -> None:
        charge()
        if push is None:
            for pop, weight in plan:
                for _ in range(weight):
                    pop()
        else:
            for pop, weight in plan:
                for _ in range(weight):
                    push(pop())
    return fire


def _hsplitter(run: Any, actor_id: int, spec: HSplitterSpec) -> FireFn:
    graph = run.graph
    lane = _lane_event(run)
    in_edge = graph.in_tapes(actor_id)[0]
    out_edge = graph.out_tapes(actor_id)[0]
    pop = run.tapes[in_edge.id].pop
    push = run.tapes[out_edge.id].push
    width = spec.width
    weight = spec.weight
    static = Counter({ev.FIRE: 1})

    if spec.kind is SplitKind.DUPLICATE:
        static[ev.SCALAR_LOAD] += weight
        if in_edge.lane_ordered:
            static[lane] += weight
        static[ev.SPLAT] += weight
        static[ev.VECTOR_STORE] += weight
        charge = _batcher(run, actor_id, static)

        def fire_dup() -> None:
            charge()
            for _ in range(weight):
                push([pop()] * width)
        return fire_dup

    total = width * weight
    static[ev.SCALAR_LOAD] += total
    if in_edge.lane_ordered:
        static[lane] += total
    static[ev.PACK] += total
    static[ev.VECTOR_STORE] += weight
    charge = _batcher(run, actor_id, static)

    def fire_rr() -> None:
        charge()
        chunk = [pop() for _ in range(total)]
        for j in range(weight):
            push([chunk[k * weight + j] for k in range(width)])
    return fire_rr


def _hjoiner(run: Any, actor_id: int, spec: HJoinerSpec) -> FireFn:
    graph = run.graph
    lane = _lane_event(run)
    in_edge = graph.in_tapes(actor_id)[0]
    outs = graph.out_tapes(actor_id)
    pop = run.tapes[in_edge.id].pop
    width = spec.width
    weight = spec.weight
    static = Counter({ev.FIRE: 1, ev.VECTOR_LOAD: weight,
                      ev.UNPACK: width * weight})
    if outs:
        static[ev.SCALAR_STORE] += width * weight
        if outs[0].lane_ordered:
            static[lane] += width * weight
        push = run.tapes[outs[0].id].push
    else:
        push = None
    charge = _batcher(run, actor_id, static)

    def fire() -> None:
        charge()
        vectors = [pop() for _ in range(weight)]
        if push is not None:
            for k in range(width):
                for j in range(weight):
                    push(vectors[j][k])
    return fire
