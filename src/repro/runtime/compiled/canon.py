"""Typed constant abstraction for kernel caching.

The kernel cache must equate exactly the actor bodies that
:func:`repro.ir.structhash.isomorphic` equates (horizontal-fusion
candidates): identical structure up to numeric literals, ``Param``
bindings, and coefficient-table initialisers.  We reuse the same slot
naming and traversal order as :mod:`repro.ir.structhash`, but record the
abstracted constants **with their Python types intact** — the interpreter's
C-style ``/`` and ``%`` distinguish ``IntConst(2)`` from
``FloatConst(2.0)``, so a cache that coerced everything to ``float`` (as
the isomorphism check harmlessly does) would change semantics.

``typed_canonicalize`` returns the canonical body (the cache key) plus the
per-instance constant tuple that the shared kernel is instantiated with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ...ir import expr as E
from ...ir import stmt as S
from ...ir.structhash import _SLOT as SLOT_PREFIX
from ...ir.visitors import rewrite_body_exprs, rewrite_body_stmts


class _ParamSlot:
    """Marker recorded for an unbound ``Param`` (never valid at runtime)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<unbound param {self.name!r}>"


def is_param_slot(value: Any) -> bool:
    return isinstance(value, _ParamSlot)


@dataclass(frozen=True)
class TypedCanonical:
    """A constant-abstracted body plus its typed constant sequence."""

    body: S.Body
    consts: Tuple[Any, ...]


def slot_index(name: str) -> Optional[int]:
    """Return the constant-slot index encoded in ``name``, or ``None``."""
    if name.startswith(SLOT_PREFIX):
        try:
            return int(name[len(SLOT_PREFIX):])
        except ValueError:
            return None
    return None


def array_slot_index(init: Any) -> Optional[int]:
    """Return the slot index of an abstracted ``DeclArray`` initialiser."""
    if (isinstance(init, tuple) and len(init) == 2
            and init[0] == SLOT_PREFIX and isinstance(init[1], int)):
        return init[1]
    return None


def typed_canonicalize(body: S.Body) -> TypedCanonical:
    """Abstract every constant of ``body``, preserving value types.

    The canonical body discriminates exactly as
    :func:`repro.ir.structhash.canonicalize` does: two bodies receive equal
    canonical forms iff they are structhash-isomorphic.  ``DeclArray``
    initialisers are recorded as one tuple-valued constant (rather than one
    float per element) so vector-lane tuple initialisers survive intact.
    """
    consts: list[Any] = []

    def abstract(e: E.Expr) -> E.Expr:
        if isinstance(e, (E.IntConst, E.FloatConst)):
            consts.append(e.value)
            return E.Var(f"{SLOT_PREFIX}{len(consts) - 1}")
        if isinstance(e, E.Param):
            consts.append(_ParamSlot(e.name))
            return E.Var(f"{SLOT_PREFIX}{len(consts) - 1}")
        return e

    canon = rewrite_body_exprs(body, abstract)

    def abstract_array_inits(stmt: S.Stmt) -> S.Stmt:
        if isinstance(stmt, S.DeclArray) and stmt.init is not None:
            consts.append(stmt.init)
            return S.DeclArray(stmt.name, stmt.elem_type, stmt.size,
                               (SLOT_PREFIX, len(consts) - 1))
        return stmt

    canon = rewrite_body_stmts(canon, abstract_array_inits)
    return TypedCanonical(canon, tuple(consts))
