"""Steady-state execution of flat stream graphs.

The executor allocates runtime tapes, initialises actor state, runs the
init phase (priming peeking filters), then runs ``iterations`` steady-state
cycles of the schedule (the outer while-loop of Figure 1b).  Filters run
through the selected execution backend — the tree-walking IR interpreter
(``backend="interp"``, the default) or the closure compiler
(``backend="compiled"``, see :mod:`repro.runtime.compiled`) — while
splitters and joiners (plain and horizontal) are executed natively with
equivalent event charging.  Both backends produce identical outputs and
identical performance counters.

Outputs pushed by the terminal actor are collected and returned, which is
how tests establish that a SIMDized graph computes exactly what the scalar
graph computes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from ..graph.actor import FilterSpec, StateVar
from ..graph.builtins import (
    HJoinerSpec,
    HSplitterSpec,
    JoinerSpec,
    SplitKind,
    SplitterSpec,
)
from ..graph.stream_graph import StreamGraph
from ..ir.types import Vector
from ..obs.tracer import Tracer, ensure_tracer
from ..perf import events as ev
from ..perf.counters import PerActorCounters, PerfCounters
from ..schedule.steady_state import Schedule, build_schedule
from ..simd.machine import CORE_I7, MachineDescription
from .backends import resolve_backend
from .errors import StreamRuntimeError
from .interpreter import ActorRuntime
from .tape import Tape
from .values import splat


@dataclass
class ExecutionResult:
    """Outputs plus per-phase performance counters."""

    graph_name: str
    iterations: int
    #: items pushed by the terminal actor during the steady iterations.
    outputs: List[Any]
    #: items pushed during the init (priming) phase.
    init_outputs: List[Any]
    init_counters: PerActorCounters
    steady_counters: PerActorCounters
    schedule: Schedule
    #: name of the execution backend that produced this result.
    backend: str = "interp"
    #: kernel-cache counter deltas for this execution (compiled backend
    #: only; ``None`` for backends without a kernel cache) — keys:
    #: ``lookups``, ``hits``, ``misses``, ``compiled``, ``evictions``,
    #: ``size`` (kernels resident after the run).
    kernel_cache: Optional[Dict[str, int]] = None
    #: vector backend only: per-actor vectorization decision — ``"vector"``
    #: (batch array kernel), ``"vector:mover"`` (batched native mover), or
    #: ``"fallback: <reason>"`` (per-firing compiled path).  When a
    #: batched actor's ndarray tape degraded to list storage mid-run
    #: (vector payloads, non-numeric elements, ints beyond exact range)
    #: the status is suffixed ``" (tape fallback: <reason>)"``.  ``None``
    #: for other backends.
    vectorized: Optional[Dict[int, str]] = None
    #: steady-phase firings executed through a batched fast path (array
    #: kernel or batched mover); 0 for non-batching backends.
    batched_firings: int = 0

    def cycles_per_output(self, machine: MachineDescription) -> float:
        """Steady-state cycles per produced item — the throughput metric all
        speedup comparisons use (immune to Equation (1) rescaling, which
        changes work-per-iteration)."""
        if not self.outputs:
            raise StreamRuntimeError("graph produced no steady-state output")
        return self.steady_cycles(machine) / len(self.outputs)

    def steady_cycles(self, machine: MachineDescription) -> float:
        """Modeled cycles for the measured steady iterations."""
        return self.steady_counters.cycles(machine)

    def cycles_per_iteration(self, machine: MachineDescription) -> float:
        return self.steady_cycles(machine) / max(1, self.iterations)

    def actor_cycles(self, machine: MachineDescription) -> Dict[int, float]:
        return self.steady_counters.cycles_by_actor(machine)

    def firings_by_actor(self) -> Dict[int, int]:
        """Steady-state firing count per actor (from the ``fire`` event
        every backend charges once per firing)."""
        return {actor_id: counters["fire"]
                for actor_id, counters in
                self.steady_counters.by_actor.items()}


def state_initial_value(var: StateVar, simd_width: int) -> Any:
    """Materialise a state variable's initial runtime value."""
    width = var.type.width if isinstance(var.type, Vector) else 0
    if var.is_array:
        if isinstance(var.init, tuple):
            items = list(var.init)
            if len(items) != var.size:
                raise StreamRuntimeError(
                    f"state {var.name}: initialiser length {len(items)} != "
                    f"size {var.size}")
        else:
            items = [var.init] * var.size
        if width:
            return [list(item) if isinstance(item, tuple) else splat(item, width)
                    for item in items]
        return [float(item) for item in items]
    if width:
        if isinstance(var.init, tuple):
            return list(var.init)
        return splat(var.init, width)
    return var.init


class _GraphRun:
    """All mutable state of one execution.

    By default a run owns every actor and allocates (and preloads) every
    tape.  The parallel runtime instead passes a *shared* ``tapes`` map —
    local :class:`Tape` objects plus cross-core
    :class:`~repro.multicore.channels.Channel` objects, preloaded by the
    caller — and an ``only_actors`` subset, so each core's run sets up
    and fires exactly its slice of the partition while reading and
    writing the shared boundary tapes.
    """

    def __init__(self, graph: StreamGraph, schedule: Schedule,
                 machine: MachineDescription,
                 backend: Any = "interp",
                 *,
                 tapes: Optional[Dict[int, Tape]] = None,
                 only_actors: Optional[Any] = None) -> None:
        backend = resolve_backend(backend)
        self.graph = graph
        self.schedule = schedule
        self.machine = machine
        self.backend = backend
        #: tape implementation the backend prefers for run-local tapes
        #: (the vector backend substitutes ndarray-native ``NdTape``).
        self.tape_cls = getattr(backend, "tape_class", Tape)
        if tapes is None:
            self.tapes: Dict[int, Tape] = {
                tid: self.tape_cls(f"tape{tid}") for tid in graph.tapes}
            # Feedback-loop delays: pre-load enqueued items.
            for tid, edge in graph.tapes.items():
                for item in edge.initial:
                    self.tapes[tid].push(item)
        else:
            # Shared (possibly cross-core) tapes: the caller preloads.
            self.tapes = tapes
        self.local_actors = (frozenset(graph.actors)
                             if only_actors is None
                             else frozenset(only_actors))
        self.collector: Optional[Tape] = None
        #: filter actors by id (``Interpreter`` or ``CompiledActor``).
        self.actors: Dict[int, Any] = {}
        #: per-actor firing closures (filters and movers alike).
        self.fire_fns: Dict[int, Callable[[], None]] = {}
        #: batched firing closures ``fn(n)`` equivalent to ``n`` single
        #: firings, returning whether the batched fast path actually ran
        #: (vector backend only; every entry point re-validates its tapes
        #: — including cross-core ``Channel`` tapes — at runtime).
        self.batch_fns: Dict[int, Callable[[int], bool]] = {}
        #: vectorization decisions for batched *movers* (filter decisions
        #: live on the actor objects themselves).
        self.vector_status: Dict[int, str] = {}
        #: firings executed through a batched fast path (array kernel or
        #: batched mover) rather than per-firing replay.
        self.batched_firings = 0
        self.counters = PerActorCounters()
        self._setup_actors()

    def _setup_actors(self) -> None:
        terminal_candidates = [
            a for a in self.graph.actors.values()
            if not self.graph.out_tapes(a.id)
            and isinstance(a.spec, FilterSpec) and a.spec.push > 0]
        if len(terminal_candidates) > 1:
            raise StreamRuntimeError("multiple dangling outputs")
        collector_owner = terminal_candidates[0].id if terminal_candidates else None

        for actor in self.graph.actors.values():
            if actor.id not in self.local_actors:
                continue
            spec = actor.spec
            if not isinstance(spec, FilterSpec):
                mover = self.backend.make_mover(self, actor)
                if mover is None:
                    mover = self._generic_mover(actor.id, spec)
                self.fire_fns[actor.id] = mover
                make_batch = getattr(self.backend, "make_batch_mover", None)
                if make_batch is not None:
                    batch = make_batch(self, actor, mover)
                    if batch is not None:
                        self.batch_fns[actor.id] = batch
                        self.vector_status[actor.id] = "vector:mover"
                continue
            in_tape = self.graph.input_tape(actor.id)
            out_tape = self.graph.output_tape(actor.id)
            runtime = ActorRuntime(
                actor_id=actor.id,
                simd_width=self.machine.simd_width,
                counters=self.counters.for_actor(actor.id),
                state={var.name: state_initial_value(var, self.machine.simd_width)
                       for var in spec.state},
                input=self.tapes[in_tape.id] if in_tape else None,
                output=self.tapes[out_tape.id] if out_tape else None,
                in_lane_ordered=bool(in_tape and in_tape.lane_ordered),
                out_lane_ordered=bool(out_tape and out_tape.lane_ordered),
                has_sagu=self.machine.has_sagu,
            )
            if actor.id == collector_owner:
                self.collector = self.tape_cls("collector")
                runtime.output = self.collector
            runner = self.backend.make_filter_actor(
                runtime, spec, in_tape, out_tape)
            if spec.init_body:
                runner.run_init(spec.init_body)
            self.actors[actor.id] = runner
            work_body = spec.work_body

            def fire_filter(_runner=runner, _body=work_body) -> None:
                _runner.run_work(_body)
            self.fire_fns[actor.id] = fire_filter
            if hasattr(runner, "run_work_batch"):
                self.batch_fns[actor.id] = runner.run_work_batch

    def _generic_mover(self, actor_id: int, spec: Any) -> Callable[[], None]:
        """Fallback mover firing through the generic ``_fire_*`` paths."""
        if isinstance(spec, SplitterSpec):
            method = self._fire_splitter
        elif isinstance(spec, JoinerSpec):
            method = self._fire_joiner
        elif isinstance(spec, HSplitterSpec):
            method = self._fire_hsplitter
        elif isinstance(spec, HJoinerSpec):
            method = self._fire_hjoiner
        else:
            raise StreamRuntimeError(f"cannot fire {spec!r}")
        return lambda: method(actor_id, spec)

    # -- firing ---------------------------------------------------------------
    def fire(self, actor_id: int) -> None:
        self.fire_fns[actor_id]()

    def _scalar_read(self, counters: PerfCounters, tape_id: int) -> Any:
        counters.add(ev.SCALAR_LOAD)
        edge = self.graph.tapes[tape_id]
        if edge.lane_ordered:
            counters.add(ev.SAGU if self.machine.has_sagu else ev.ADDR)
        return self.tapes[tape_id].pop()

    def _scalar_write(self, counters: PerfCounters, tape_id: int,
                      value: Any) -> None:
        counters.add(ev.SCALAR_STORE)
        edge = self.graph.tapes[tape_id]
        if edge.lane_ordered:
            counters.add(ev.SAGU if self.machine.has_sagu else ev.ADDR)
        self.tapes[tape_id].push(value)

    def _fire_splitter(self, actor_id: int, spec: SplitterSpec) -> None:
        counters = self.counters.for_actor(actor_id)
        counters.add(ev.FIRE)
        in_tape = self.graph.in_tapes(actor_id)[0]
        outs = self.graph.out_tapes(actor_id)
        if spec.kind is SplitKind.DUPLICATE:
            value = self._scalar_read(counters, in_tape.id)
            for tape in outs:
                self._scalar_write(counters, tape.id, value)
        else:
            for tape in outs:
                for _ in range(spec.weights[tape.src_port]):
                    value = self._scalar_read(counters, in_tape.id)
                    self._scalar_write(counters, tape.id, value)

    def _fire_joiner(self, actor_id: int, spec: JoinerSpec) -> None:
        counters = self.counters.for_actor(actor_id)
        counters.add(ev.FIRE)
        ins = self.graph.in_tapes(actor_id)
        out = self.graph.out_tapes(actor_id)
        out_tape = out[0] if out else None
        for tape in ins:
            for _ in range(spec.weights[tape.dst_port]):
                value = self._scalar_read(counters, tape.id)
                if out_tape is not None:
                    self._scalar_write(counters, out_tape.id, value)

    def _fire_hsplitter(self, actor_id: int, spec: HSplitterSpec) -> None:
        counters = self.counters.for_actor(actor_id)
        counters.add(ev.FIRE)
        in_tape = self.graph.in_tapes(actor_id)[0]
        out_tape = self.graph.out_tapes(actor_id)[0]
        if spec.kind is SplitKind.DUPLICATE:
            for _ in range(spec.weight):
                value = self._scalar_read(counters, in_tape.id)
                counters.add(ev.SPLAT)
                counters.add(ev.VECTOR_STORE)
                self.tapes[out_tape.id].push(splat(value, spec.width))
        else:
            chunk = [self._scalar_read(counters, in_tape.id)
                     for _ in range(spec.width * spec.weight)]
            for j in range(spec.weight):
                counters.add(ev.PACK, spec.width)
                counters.add(ev.VECTOR_STORE)
                self.tapes[out_tape.id].push(
                    [chunk[k * spec.weight + j] for k in range(spec.width)])

    def _fire_hjoiner(self, actor_id: int, spec: HJoinerSpec) -> None:
        counters = self.counters.for_actor(actor_id)
        counters.add(ev.FIRE)
        in_tape = self.graph.in_tapes(actor_id)[0]
        outs = self.graph.out_tapes(actor_id)
        vectors = []
        for _ in range(spec.weight):
            counters.add(ev.VECTOR_LOAD)
            vectors.append(self.tapes[in_tape.id].pop())
        for k in range(spec.width):
            for j in range(spec.weight):
                counters.add(ev.UNPACK)
                if outs:
                    self._scalar_write(counters, outs[0].id, vectors[j][k])

    # -- phases ----------------------------------------------------------------
    def run_phase(self, phase) -> None:
        fire_fns = self.fire_fns
        batch_fns = self.batch_fns
        if batch_fns:
            for actor_id, firings in phase:
                batch = batch_fns.get(actor_id)
                # Batch even single firings: parallel slices run one steady
                # iteration at a time, and a per-core actor often fires once
                # per iteration — the batched path is still the one that
                # does bulk (blocking) channel I/O.
                if batch is not None and firings > 0:
                    if batch(firings):
                        self.batched_firings += firings
                else:
                    fn = fire_fns[actor_id]
                    for _ in range(firings):
                        fn()
            return
        for actor_id, firings in phase:
            fn = fire_fns[actor_id]
            for _ in range(firings):
                fn()

    def drain_collector(self) -> List[Any]:
        """Items the terminal actor has pushed since the last drain."""
        return self.collector.drain() if self.collector is not None else []

    def reset_counters(self) -> PerActorCounters:
        """Start a fresh counting phase: install an empty counter set,
        re-point every filter actor at it, and return the old one.
        (Mover closures re-fetch ``self.counters`` per firing.)"""
        old = self.counters
        self.counters = PerActorCounters()
        for actor_id, runner in self.actors.items():
            runner.rt.counters = self.counters.for_actor(actor_id)
        return old


def _annotate_tape_fallbacks(run: _GraphRun,
                             vectorized: Dict[int, str]) -> None:
    """Suffix batched actors' statuses with the degrade reason of any
    adjacent ndarray tape that fell back to list storage mid-run (vector
    payloads, non-numeric elements, ints beyond exact range) — the
    record the dtype-edge tests and the obs layer read."""
    for actor_id, status in vectorized.items():
        if not status.startswith("vector"):
            continue
        reasons: List[str] = []
        for edge in (*run.graph.in_tapes(actor_id),
                     *run.graph.out_tapes(actor_id)):
            reason = getattr(run.tapes.get(edge.id), "degrade_reason", None)
            if reason and reason not in reasons:
                reasons.append(reason)
        runner = run.actors.get(actor_id)
        if runner is not None and run.collector is not None \
                and runner.rt.output is run.collector:
            reason = getattr(run.collector, "degrade_reason", None)
            if reason and reason not in reasons:
                reasons.append(reason)
        if reasons:
            vectorized[actor_id] = (
                f"{status} (tape fallback: {'; '.join(reasons)})")


def _merged_phase_admissible(run: _GraphRun, phase, iterations: int) -> bool:
    """Whether ``iterations`` steady cycles can run as ONE phase with every
    entry's firings multiplied — i.e. whether each actor, fired all at
    once in schedule order, still finds its full input window on its tapes.

    Simulated with the *declared* rates (the same ones the scheduler
    balances); a ``False`` answer just keeps the per-cycle loop.  Batch
    kernels and movers re-check availability at runtime regardless, so an
    optimistic ``True`` on a rate-lying graph degrades to per-firing
    execution rather than to divergence.
    """
    graph = run.graph
    levels = {tid: len(tape) for tid, tape in run.tapes.items()}
    for actor_id, firings in phase:
        n = firings * iterations
        spec = graph.actors[actor_id].spec
        reads: List[Any] = []
        writes: List[Any] = []
        if isinstance(spec, FilterSpec):
            in_edge = graph.input_tape(actor_id)
            if in_edge is not None:
                reads.append((in_edge.id, spec.pop, spec.peek))
            out_edge = graph.output_tape(actor_id)
            if out_edge is not None:
                writes.append((out_edge.id, spec.push))
        elif isinstance(spec, SplitterSpec):
            pop = spec.pop_per_exec
            reads.append((graph.in_tapes(actor_id)[0].id, pop, pop))
            writes.extend((e.id, spec.push_per_exec(e.src_port))
                          for e in graph.out_tapes(actor_id))
        elif isinstance(spec, JoinerSpec):
            reads.extend((e.id, spec.weights[e.dst_port],
                          spec.weights[e.dst_port])
                         for e in graph.in_tapes(actor_id))
            outs = graph.out_tapes(actor_id)
            if outs:
                writes.append((outs[0].id, spec.push_per_exec))
        elif isinstance(spec, (HSplitterSpec, HJoinerSpec)):
            pop = spec.pop_per_exec
            reads.append((graph.in_tapes(actor_id)[0].id, pop, pop))
            outs = graph.out_tapes(actor_id)
            if outs:
                writes.append((outs[0].id, spec.push_per_exec))
        else:
            return False
        for tid, pop, window in reads:
            if tid not in levels:
                return False
            if n and levels[tid] < (n - 1) * pop + window:
                return False
            levels[tid] -= n * pop
        for tid, push in writes:
            if tid in levels:
                levels[tid] += n * push
    return True


def execute(graph: StreamGraph,
            schedule: Optional[Schedule] = None,
            *,
            machine: MachineDescription = CORE_I7,
            iterations: int = 8,
            backend: Any = "interp",
            tracer: Optional[Tracer] = None,
            cores: int = 1,
            partitioner: Union[str, Callable, None] = None,
            stall_timeout: float = 30.0,
            pace: Optional[Dict[int, float]] = None) -> ExecutionResult:
    """Run ``iterations`` steady-state cycles of ``graph`` and return
    collected outputs plus performance counters.

    ``backend`` selects the execution engine: ``"interp"`` (tree-walking
    interpreter, the reference), ``"compiled"`` (cached closure kernels,
    same outputs and counters, much faster), or a backend object.

    ``tracer`` (optional) records runtime spans — setup (with kernel
    cache deltas on the compiled backend), the init phase, and the steady
    phase — each with output counts and modeled-cycle attribution.

    ``cores`` > 1 (or an explicit ``partitioner``) routes the run through
    the thread-based parallel executor; ``partitioner`` may be a callable
    or a name registered with the planning subsystem (``"lpt"``,
    ``"contiguous"``, ``"opt"``, …) resolved via
    :func:`repro.plan.get_partitioner`
    (:func:`repro.multicore.parallel.parallel_execute`): the graph is
    partitioned across ``cores`` worker threads, cut tapes become bounded
    blocking channels, and the returned
    :class:`~repro.multicore.parallel.ParallelExecutionResult` carries
    per-core counters and channel statistics on top of the (identical)
    sequential outputs and aggregate counters.  ``stall_timeout``
    (seconds) and ``pace`` (actor id -> wall seconds per firing) are
    forwarded to the parallel runtime: a cross-core stall longer than the
    timeout raises :class:`~repro.multicore.channels.ChannelStallTimeout`
    carrying the stalled channel's name, side, and occupancy — the
    serving layer's hang diagnostics.  Both are ignored for sequential
    runs (``cores=1`` without a partitioner).
    """
    if cores < 1:
        raise StreamRuntimeError(f"cores must be >= 1, got {cores}")
    if cores > 1 or partitioner is not None:
        # Lazy import: repro.multicore.parallel imports this module.
        from ..multicore.parallel import parallel_execute
        return parallel_execute(graph, schedule, machine=machine,
                                iterations=iterations, backend=backend,
                                tracer=tracer, cores=cores,
                                partitioner=partitioner,
                                stall_timeout=stall_timeout, pace=pace)
    tracer = ensure_tracer(tracer)
    if schedule is None:
        with tracer.span("runtime.schedule", cat="runtime",
                         graph=graph.name):
            schedule = build_schedule(graph)
    be = resolve_backend(backend)
    cache = getattr(be, "cache", None)
    with tracer.span("execute", cat="runtime", graph=graph.name,
                     backend=be.name, machine=machine.name,
                     iterations=iterations) as exec_span:
        with tracer.span("runtime.setup", cat="runtime") as sp:
            cache_before = cache.stats.snapshot() if cache is not None \
                else None
            run = _GraphRun(graph, schedule, machine, be)
            kernel_cache: Optional[Dict[str, int]] = None
            if cache is not None:
                kernel_cache = cache.stats.delta(cache_before)
                kernel_cache["size"] = len(cache)
                sp.add(kernel_cache=dict(kernel_cache))
            sp.add(actors=len(graph.actors), tapes=len(graph.tapes))
        with tracer.span("runtime.init", cat="runtime") as sp:
            run.run_phase(schedule.init)
            init_outputs = run.drain_collector()
            init_counters = run.reset_counters()
            if tracer.enabled:
                sp.add(outputs=len(init_outputs),
                       modeled_cycles=round(init_counters.cycles(machine), 1),
                       firings=sum(c["fire"] for c in
                                   init_counters.by_actor.values()))
        with tracer.span("runtime.steady", cat="runtime",
                         iterations=iterations) as sp:
            # The vector backend merges all steady cycles into one phase
            # when tape levels admit it, so batch kernels see the maximal
            # firing count (outputs and counters are identical either way).
            coalesced = (iterations > 1 and run.batch_fns
                         and getattr(be, "coalesce_iterations", False)
                         and _merged_phase_admissible(
                             run, schedule.steady, iterations))
            if coalesced:
                run.run_phase(tuple((actor_id, firings * iterations)
                                    for actor_id, firings in schedule.steady))
            else:
                for _ in range(iterations):
                    run.run_phase(schedule.steady)
            outputs = run.drain_collector()
            if tracer.enabled:
                sp.add(outputs=len(outputs), coalesced=bool(coalesced),
                       modeled_cycles=round(run.counters.cycles(machine), 1),
                       firings=sum(c["fire"] for c in
                                   run.counters.by_actor.values()))
        vectorized: Optional[Dict[int, str]] = None
        if be.name == "vector":
            vectorized = dict(run.vector_status)
            for actor_id, runner in run.actors.items():
                status = getattr(runner, "vector_status", None)
                if status is not None:
                    vectorized[actor_id] = status
            _annotate_tape_fallbacks(run, vectorized)
        result = ExecutionResult(
            graph_name=graph.name,
            iterations=iterations,
            outputs=outputs,
            init_outputs=init_outputs,
            init_counters=init_counters,
            steady_counters=run.counters,
            schedule=schedule,
            backend=be.name,
            kernel_cache=kernel_cache,
            vectorized=vectorized,
            batched_firings=run.batched_firings,
        )
        if tracer.enabled:
            exec_span.add(outputs=len(outputs),
                          modeled_cycles=round(
                              result.steady_cycles(machine), 1))
            # Per-actor attribution as instant events: firing counts and
            # modeled cycles per actor, so the Chrome trace carries the
            # hottest-actor breakdown alongside the phase spans.
            firings = result.firings_by_actor()
            for actor_id, cycles in result.actor_cycles(machine).items():
                name = (graph.actors[actor_id].name
                        if actor_id in graph.actors else f"actor{actor_id}")
                extra = {}
                if vectorized is not None and actor_id in vectorized:
                    extra["vectorized"] = vectorized[actor_id]
                tracer.event(f"actor.{name}", cat="actor",
                             cycles=round(cycles, 1),
                             firings=firings.get(actor_id, 0), **extra)
    return result
