"""Runtime error types."""

from __future__ import annotations


class StreamRuntimeError(Exception):
    """Base class for execution errors."""


class TapeUnderflow(StreamRuntimeError):
    """An actor read more data than its input tape held — a scheduling or
    rate-declaration bug, never a legal runtime condition in SDF."""


class UninitializedRead(StreamRuntimeError):
    """A tape slot reserved by ``rpush``/``advance_writer`` was consumed
    before being written."""


class InterpreterError(StreamRuntimeError):
    """Malformed IR reached the interpreter (undeclared variable, bad lane,
    type mismatch)."""
