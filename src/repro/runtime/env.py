"""Variable environment for work-function interpretation.

Each firing gets a fresh local namespace layered over the actor's persistent
state dictionary.  Name resolution checks locals first, then state; writes
go to whichever layer already owns the name (state variables persist across
firings, locals do not).
"""

from __future__ import annotations

from typing import Any, Dict

from .errors import InterpreterError


class Env:
    __slots__ = ("state", "locals")

    def __init__(self, state: Dict[str, Any]) -> None:
        self.state = state
        self.locals: Dict[str, Any] = {}

    def declare(self, name: str, value: Any) -> None:
        self.locals[name] = value

    def get(self, name: str) -> Any:
        if name in self.locals:
            return self.locals[name]
        if name in self.state:
            return self.state[name]
        raise InterpreterError(f"undefined variable {name!r}")

    def set(self, name: str, value: Any) -> None:
        if name in self.locals:
            self.locals[name] = value
        elif name in self.state:
            self.state[name] = value
        else:
            raise InterpreterError(f"assignment to undeclared variable {name!r}")

    def reset_locals(self) -> None:
        self.locals.clear()
