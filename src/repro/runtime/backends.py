"""Execution backend selection.

An execution backend decides *how* actor bodies run; the executor owns
*when* they run (scheduling, tapes, phases) regardless of backend.  A
backend provides two hooks:

``make_filter_actor(runtime, spec, in_edge, out_edge)``
    Return an object with ``.rt`` (the :class:`ActorRuntime`),
    ``run_init(body)`` and ``run_work(body)`` — the interface the executor
    fires filters through.

``make_mover(run, actor)``
    Optionally return a zero-argument firing closure for a native mover
    (splitter/joiner); ``None`` falls back to the executor's generic path.

Three backends exist: ``"interp"`` (the tree-walking
:class:`~repro.runtime.interpreter.Interpreter`; the reference semantics),
``"compiled"`` (:class:`~repro.runtime.compiled.CompiledBackend`; IR
compiled once to Python closures with cached kernels and batched counter
charging), and ``"vector"``
(:class:`~repro.runtime.vector.VectorBackend`; numpy whole-array batch
kernels over many firings at once, falling back per actor to the compiled
path when a work body is not provably vectorizable — requires the
optional numpy dependency, ``pip install .[vector]``).  All produce
bit-identical outputs and performance counters — the differential test
suite enforces this over every registry application.

``resolve_backend`` maps the string names to backend objects.  The
``"compiled"`` and ``"vector"`` strings resolve to process-wide
singletons so repeated ``execute`` calls share one kernel cache; pass a
fresh backend instance instead when isolated cache statistics are needed.
"""

from __future__ import annotations

from typing import Any, Optional

from ..graph.actor import FilterSpec
from ..graph.stream_graph import TapeEdge
from .errors import StreamRuntimeError
from .interpreter import ActorRuntime, Interpreter

__all__ = ["InterpreterBackend", "resolve_backend"]


class InterpreterBackend:
    """Reference backend: one tree-walking interpreter per filter."""

    name = "interp"

    def make_filter_actor(self, runtime: ActorRuntime, spec: FilterSpec,
                          in_edge: Optional[TapeEdge],
                          out_edge: Optional[TapeEdge]) -> Interpreter:
        return Interpreter(runtime)

    def make_mover(self, run: Any, actor: Any) -> None:
        return None  # executor's generic native path


_COMPILED_SINGLETON: Any = None
_VECTOR_SINGLETON: Any = None


def resolve_backend(backend: Any) -> Any:
    """Resolve ``backend`` to a backend object.

    Accepts ``"interp"``, ``"compiled"``, ``"vector"``, or any object
    already implementing the backend interface (returned unchanged).
    """
    if not isinstance(backend, str):
        return backend
    if backend == "interp":
        return InterpreterBackend()
    if backend == "compiled":
        global _COMPILED_SINGLETON
        if _COMPILED_SINGLETON is None:
            from .compiled import CompiledBackend
            _COMPILED_SINGLETON = CompiledBackend()
        return _COMPILED_SINGLETON
    if backend == "vector":
        from .vector.np_compat import HAVE_NUMPY
        if not HAVE_NUMPY:
            raise StreamRuntimeError(
                "backend 'vector' requires numpy, which is not installed "
                "(pip install .[vector])")
        global _VECTOR_SINGLETON
        if _VECTOR_SINGLETON is None:
            from .vector import VectorBackend
            _VECTOR_SINGLETON = VectorBackend()
        return _VECTOR_SINGLETON
    raise StreamRuntimeError(
        f"unknown backend {backend!r} (expected 'interp', 'compiled' or "
        f"'vector')")
