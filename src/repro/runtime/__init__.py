"""Functional execution of stream graphs with performance-event accounting."""

from .errors import (
    InterpreterError,
    StreamRuntimeError,
    TapeUnderflow,
    UninitializedRead,
)
from .backends import InterpreterBackend, resolve_backend
from .executor import ExecutionResult, execute, state_initial_value
from .interpreter import ActorRuntime, Interpreter
from .tape import NdTape, Tape

__all__ = [
    "InterpreterError", "StreamRuntimeError", "TapeUnderflow",
    "UninitializedRead",
    "ExecutionResult", "execute", "state_initial_value",
    "ActorRuntime", "Interpreter",
    "InterpreterBackend", "resolve_backend",
    "NdTape", "Tape",
]
