"""Ablation (beyond the paper): cumulative contribution of each MacroSS
technique — single-actor only, + vertical, + horizontal, + tape
optimization — over the scalar baseline.
"""

from repro.experiments.harness import (
    DEFAULT_BENCHMARKS,
    Variants,
    arithmetic_mean,
)
from repro.experiments.tables import format_table
from repro.simd.machine import CORE_I7
from repro.simd.pipeline import MacroSSOptions

from .conftest import record

CONFIGS = [
    ("single", MacroSSOptions(vertical=False, horizontal=False,
                              tape_optimization=False)),
    ("+vertical", MacroSSOptions(horizontal=False, tape_optimization=False)),
    ("+horizontal", MacroSSOptions(tape_optimization=False)),
    ("+tape-opt", MacroSSOptions()),
]


def run_ablation():
    rows = []
    for name in DEFAULT_BENCHMARKS:
        variants = Variants(name, CORE_I7)
        base = variants.baseline_cpo()
        speedups = [base / variants.macro_cpo(options, tag=label)
                    for label, options in CONFIGS]
        rows.append((name, *speedups))
    means = [arithmetic_mean([row[i] for row in rows])
             for i in range(1, len(CONFIGS) + 1)]
    rows.append(("AVERAGE", *means))
    return rows, means


def test_ablation_techniques(benchmark):
    rows, means = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    record("ablation_techniques",
           format_table(["benchmark"] + [c[0] for c in CONFIGS], rows))
    # Each technique must help on average, cumulatively.
    assert means[0] > 1.0
    assert means[1] >= means[0]
    assert means[2] >= means[1]
    assert means[3] >= means[2]
    # Horizontal is the largest single contributor on this suite
    # (FilterBank/BeamFormer/AudioBeam/ChannelVocoder/FMRadio depend on it).
    assert means[2] - means[1] > 0.1
