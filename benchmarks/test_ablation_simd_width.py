"""Ablation (beyond the paper): SIMD width sweep (SW in {2, 4, 8}).

The paper's introduction warns that wider SIMD under-utilises unless the
compiler finds enough parallelism: with this suite's split-join widths and
repetition counts, SW=8 still helps compute-bound apps but pack/unpack
chains grow linearly with SW at scalar boundaries, and split-joins narrower
than SW lose horizontal SIMDization entirely.
"""

from repro.experiments.harness import Variants, arithmetic_mean
from repro.experiments.tables import format_table
from repro.simd.machine import wide_machine

from .conftest import record

BENCHES = ("DCT", "FFT", "FilterBank", "MP3Decoder", "BeamFormer",
           "MatrixMult")
WIDTHS = (2, 4, 8)


def run_sweep():
    rows = []
    for name in BENCHES:
        speedups = []
        for sw in WIDTHS:
            machine = wide_machine(4).with_simd_width(sw)
            variants = Variants(name, machine)
            speedups.append(variants.baseline_cpo() / variants.macro_cpo())
        rows.append((name, *speedups))
    means = [arithmetic_mean([r[i] for r in rows])
             for i in range(1, len(WIDTHS) + 1)]
    rows.append(("AVERAGE", *means))
    return rows, means


def test_simd_width_sweep(benchmark):
    rows, means = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record("ablation_simd_width",
           format_table(["benchmark"] + [f"SW={w}" for w in WIDTHS], rows))
    sw2, sw4, sw8 = means
    assert sw2 > 1.0
    assert sw4 > sw2, "SW=4 should beat SW=2 on average"
    by_name = {r[0]: r for r in rows}
    # BeamFormer's split-joins are 4 wide: at SW=8 horizontal SIMDization
    # is lost and the speedup collapses.
    assert by_name["BeamFormer"][3] < by_name["BeamFormer"][2]
    # Compute-bound MP3Decoder keeps scaling.
    assert by_name["MP3Decoder"][3] > by_name["MP3Decoder"][2]
